"""The cycle-level out-of-order core: a thin stage orchestrator.

The machine itself lives in :class:`~repro.pipeline.state.PipelineState`
(all mutable state) and :mod:`repro.pipeline.stages` (one module per
phase); observers attach through :mod:`repro.pipeline.probes`.  ``Core``
wires those together, preserves the public API (``Core(...)``,
``step()``, ``run()``, stats, ``architectural_state()``), and drives the
documented per-cycle phase order — see DESIGN.md, "Pipeline
architecture", the single source of truth for stages, state, and the
probe event table.

Value execution (``config.execute_values``) computes every correct-path
result through *physical* registers, so the committed architectural
state can be compared against the functional emulator — the end-to-end
safety check for early register release.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..frontend import ArchState, Trace
from ..rename import make_scheme
from ..rename.schemes import ReleaseScheme
from .config import CoreConfig
from .probes import Probe, ProbeManager, RegisterEventProbe
from .stages import (
    CommitStage,
    ExecuteStage,
    ExecuteUnit,
    FetchStage,
    FlushStage,
    IssueStage,
    PrecommitStage,
    RenameStage,
    StagePipeline,
)
from .state import PipelineState, build_state
from .stats import RegisterEventLog, SimStats


class DeadlockError(RuntimeError):
    """The simulation made no forward progress for too many cycles.

    Always carries the cycle, the retired-instruction count, and the
    ROB-head seq/opcode (when occupied); ``snapshot`` additionally holds
    the full :func:`~repro.validate.snapshot.pipeline_snapshot` and is
    rendered by ``__str__`` so harness failure reports show where the
    machine was stuck.
    """

    def __init__(self, message: str, cycle: int = -1, committed: int = -1,
                 total: int = -1, head_seq: Optional[int] = None,
                 head_opcode: Optional[str] = None,
                 snapshot: Optional[Dict] = None):
        super().__init__(message)
        self.message = message
        self.cycle = cycle
        self.committed = committed
        self.total = total
        self.head_seq = head_seq
        self.head_opcode = head_opcode
        self.snapshot = snapshot

    def __str__(self) -> str:
        text = self.message
        if self.snapshot is not None:
            from ..validate.snapshot import format_snapshot
            text += "\n" + format_snapshot(self.snapshot)
        return text


class Core:
    """One simulated core, bound to a trace and a release scheme."""

    def __init__(self, config: CoreConfig, trace: Trace,
                 scheme: Optional[ReleaseScheme] = None,
                 warmup=None, consume_warmup: bool = False):
        config.validate()
        if scheme is None:
            scheme = make_scheme(config.scheme, config.redefine_delay,
                                 config.scheme_debug_checks)
        self.state = build_state(config, trace, scheme)
        if warmup is not None:
            # Must precede stage construction: stages cache identity-
            # stable references to branch_unit/memory/mem_values.
            from .warmup import apply_warmup
            apply_warmup(self.state, warmup, consume=consume_warmup)
        self._chained_release = None
        self._chained_claim = None
        # Freeze the dispatcher bound methods: attribute access would mint
        # a fresh bound-method object each time, defeating the identity
        # checks in _sync_scheme_listeners (and self-chaining the
        # dispatcher once a second release/claim subscriber registers).
        self._dispatch_release = self._dispatch_release
        self._dispatch_claim = self._dispatch_claim

        #: Register-event log for the analysis package (probe-fed).
        self.event_log: Optional[RegisterEventLog] = None
        if config.record_register_events:
            self.event_log = RegisterEventLog()
            self.add_probe(RegisterEventProbe(self.event_log))

        self.stages = self._build_stages(self.state)
        self._pipeline = self.stages.in_order
        # Hot-loop caches: bound stage methods (one LOAD_FAST + call per
        # stage per cycle instead of two attribute chases) and the
        # structural limits the skip-ahead progress test needs.  All of
        # these are identity-stable for the life of the core.
        self._stage_runs = tuple(stage.run for stage in self._pipeline)
        self._scheme_tick = self.state.scheme.tick
        self._rs_size = config.rs_size
        self._lq_size = config.lq_size
        self._sq_size = config.sq_size
        self._fetch_queue_cap = 3 * config.fetch_width
        self._trace_len = len(trace.entries)
        ready = self.state.ready
        self._ready_heaps = ((ready["alu"], False), (ready["load"], True),
                             (ready["store"], False))
        self._load_blocked = self.stages.issue._load_blocked_by_store

        # Online invariant sanitizer (repro.validate).  Imported lazily at
        # construction time only: validate layers on top of the harness,
        # which imports this module, so a top-level import would cycle.
        if config.check_invariants:
            from ..validate.sanitizer import InvariantChecker
            self.add_probe(InvariantChecker(self.state))

    # -- stage construction (overridable: chaos wraps fetch/execute) ------------
    def _build_stages(self, state: PipelineState) -> StagePipeline:
        execute_unit = self._make_execute_unit(state)
        flush = FlushStage(state)
        return StagePipeline(
            fetch=self._make_fetch_stage(state),
            rename=RenameStage(state),
            issue=IssueStage(state, execute_unit),
            execute=ExecuteStage(state, flush),
            precommit=PrecommitStage(state),
            commit=CommitStage(state),
            flush=flush,
            execute_unit=execute_unit,
        )

    def _make_execute_unit(self, state: PipelineState) -> ExecuteUnit:
        return ExecuteUnit(state)

    def _make_fetch_stage(self, state: PipelineState) -> FetchStage:
        return FetchStage(state)

    # -- public state views (delegating to PipelineState) -----------------------
    config = property(lambda self: self.state.config)
    trace = property(lambda self: self.state.trace)
    stats = property(lambda self: self.state.stats)
    rob = property(lambda self: self.state.rob)
    scheme = property(lambda self: self.state.scheme)
    rename_unit = property(lambda self: self.state.rename_unit)
    branch_unit = property(lambda self: self.state.branch_unit)
    memory = property(lambda self: self.state.memory)
    checkpoints = property(lambda self: self.state.checkpoints)
    #: Per-committed-instruction timeline rows when record_timeline is set.
    timeline = property(lambda self: self.state.timeline)
    cycle = property(lambda self: self.state.cycle,
                     lambda self, v: setattr(self.state, "cycle", v))

    @property
    def checker(self):
        """The attached invariant sanitizer probe, or None."""
        from ..validate.sanitizer import InvariantChecker
        probes = self.state.probes
        if probes is None:
            return None
        return next(probes.find(InvariantChecker), None)

    # -- probe registration -----------------------------------------------------
    def add_probe(self, probe: Probe) -> Probe:
        """Register *probe*; takes effect from the next emission point."""
        manager = self.state.probes
        if manager is None:
            manager = self.state.probes = ProbeManager()
        manager.add(probe)
        self._sync_scheme_listeners()
        return probe

    def remove_probe(self, probe: Probe) -> None:
        manager = self.state.probes
        manager.remove(probe)
        if not manager.probes:
            self.state.probes = None
        self._sync_scheme_listeners()

    def _sync_scheme_listeners(self) -> None:
        """Route the scheme's free/claim callbacks into the probe layer
        while preserving any externally installed listener."""
        scheme = self.state.scheme
        manager = self.state.probes
        if manager is not None and manager.early_release:
            if scheme.release_listener is not self._dispatch_release:
                self._chained_release = scheme.release_listener
                scheme.release_listener = self._dispatch_release
        elif scheme.release_listener is self._dispatch_release:
            scheme.release_listener = self._chained_release
            self._chained_release = None
        if manager is not None and manager.claim:
            if scheme.claim_listener is not self._dispatch_claim:
                self._chained_claim = scheme.claim_listener
                scheme.claim_listener = self._dispatch_claim
        elif scheme.claim_listener is self._dispatch_claim:
            scheme.claim_listener = self._chained_claim
            self._chained_claim = None

    def _dispatch_release(self, file_cls, ptag: int) -> None:
        state = self.state
        for fn in state.probes.early_release:
            fn(file_cls, ptag, state.cycle)
        if self._chained_release is not None:
            self._chained_release(file_cls, ptag)

    def _dispatch_claim(self, file_cls, ptag: int) -> None:
        state = self.state
        for fn in state.probes.claim:
            fn(file_cls, ptag, state.cycle)
        if self._chained_claim is not None:
            self._chained_claim(file_cls, ptag)

    # -- interrupts -------------------------------------------------------------
    def attach_interrupt_controller(self, controller) -> None:
        self.state.interrupt_controller = controller

    def interrupt_flush(self, cycle: int) -> int:
        """Squash the speculative tail at the precommit boundary for
        interrupt service; see :meth:`FlushStage.interrupt_flush`."""
        return self.stages.flush.interrupt_flush(self.state, cycle)

    # -- run --------------------------------------------------------------------
    def run(self, max_cycles: Optional[int] = None) -> SimStats:
        """Simulate until the trace is fully committed; returns the stats.

        When ``config.skip_ahead`` is set and no probes or interrupt
        controller are attached, quiescent windows — stretches of cycles
        in which no stage can make progress because everything in flight
        waits on a known-latency event — are jumped instead of spun, with
        the per-cycle rename-stall accounting replayed in bulk so the
        resulting :class:`SimStats` are bit-identical to the spin loop.
        """
        state = self.state
        if max_cycles is None:
            max_cycles = 5000 + 100 * len(state.trace)
        last_commit_cycle = 0
        last_committed = 0
        stats = state.stats
        step = self.step
        skip_enabled = state.config.skip_ahead
        while not state.done:
            state.cycle += 1
            step()
            if stats.committed != last_committed:
                last_committed = stats.committed
                last_commit_cycle = state.cycle
            else:
                if state.cycle - last_commit_cycle > 200_000:
                    raise self._deadlock("no commit for 200k cycles")
                if (skip_enabled and not state.done
                        and state.probes is None
                        and state.interrupt_controller is None):
                    # Furthest cycle provably indistinguishable from
                    # spinning; clamped so the deadlock/max-cycle raises
                    # fire at exactly the cycle the spin loop would.
                    bound = last_commit_cycle + 200_000
                    if max_cycles - 1 < bound:
                        bound = max_cycles - 1
                    target = self._skip_target(bound)
                    if target > state.cycle:
                        self._charge_skipped(target - state.cycle)
                        state.cycle = target
            if state.cycle >= max_cycles:
                raise self._deadlock(f"exceeded max_cycles={max_cycles}")
        stats.cycles = state.cycle
        if state.config.conservation_check:
            self.check_conservation()
        return stats

    def _skip_target(self, bound: int) -> int:
        """The furthest cycle the clock may jump to with no stage able to
        make progress in between; returns the current cycle when any stage
        could act next cycle (i.e. nothing may be skipped).

        Soundness: during a quiescent window the only per-cycle state
        change the spin loop performs is rename-stall accounting (replayed
        by :meth:`_charge_skipped`) — the scheme tick is a no-op until its
        next pending signal, the memory hierarchy reaps MSHRs lazily on
        access, and completion wakeups are keyed by absolute cycle — so
        every candidate below is an *upper* bound on the jump and the
        minimum of them is exact.
        """
        state = self.state
        cycle = state.cycle
        completions = state.completions
        if cycle + 1 in completions:
            return cycle  # writeback next cycle: the common busy case
        rob = state.rob
        head = rob.head()
        if head is not None and head.completed and head.precommitted:
            return cycle  # commit can retire
        pre = rob.at_offset(rob.precommit_offset)
        if (pre is not None and pre.resolved
                and (pre.issued or not pre.instr.may_except)):
            return cycle  # precommit pointer can advance
        load_blocked = self._load_blocked
        # Scan budget: heaps can be tombstone-heavy on busy phases, where
        # a deep scan costs more than the skip it almost never finds.
        # Giving up early is conservative — "no skip" is always sound.
        budget = 64
        for heap, is_load in self._ready_heaps:
            for _seq, entry in heap:
                budget -= 1
                if budget < 0:
                    return cycle
                if entry.issued or entry.squashed:
                    continue  # tombstone; popping it is not progress
                if is_load and load_blocked(entry):
                    continue  # deferred until an older store issues
                return cycle  # a ready instruction can issue
        fetch_queue = state.fetch_queue
        fq_head = state.fq_head
        if fq_head < len(fetch_queue):
            ready = fetch_queue[fq_head].ready_cycle
            if ready <= cycle + 1:
                # The frontend head is (or will be) renameable; skipping
                # is only sound while a structural limit blocks it.
                instr = fetch_queue[fq_head].dyn.instr
                if not (rob.is_full
                        or state.rs_used >= self._rs_size
                        or (instr.is_load and state.lq_used >= self._lq_size)
                        or (instr.is_store and state.sq_used >= self._sq_size)
                        or not state.rename_unit.can_rename(instr)):
                    return cycle
            elif ready - 1 < bound:
                bound = ready - 1  # frontend pipeline delay
        if (not state.stalled_for_resolve
                and not state.interrupt_fetch_stall
                and len(fetch_queue) - fq_head < self._fetch_queue_cap
                and (state.wrong_pc is not None if state.wrong_path
                     else state.cursor < self._trace_len)):
            stall = state.fetch_stall_until
            if stall <= cycle + 1:
                return cycle  # fetch can supply next cycle
            if stall - 1 < bound:
                bound = stall - 1  # icache-miss / redirect-penalty stall
        if completions:
            next_completion = min(completions) - 1
            if next_completion < bound:
                bound = next_completion
        pending = state.scheme.next_pending_cycle()
        if pending is not None and pending - 1 < bound:
            bound = pending - 1  # delayed redefinition signal (ATR)
        return bound if bound > cycle else cycle

    def _charge_skipped(self, skipped: int) -> None:
        """Replay the rename-stall accounting the spin loop would have
        performed over *skipped* quiescent cycles (the blocking cause is
        invariant across the window: nothing runs, so nothing changes)."""
        state = self.state
        stats = state.stats
        fetch_queue = state.fetch_queue
        fq_head = state.fq_head
        if fq_head >= len(fetch_queue):
            stats.stall_empty += skipped
            return
        if fetch_queue[fq_head].ready_cycle > state.cycle + 1:
            return  # head still in the frontend pipeline: no stall charged
        instr = fetch_queue[fq_head].dyn.instr
        if state.rob.is_full:
            stats.stall_rob += skipped
        elif state.rs_used >= self._rs_size:
            stats.stall_rs += skipped
        elif instr.is_load and state.lq_used >= self._lq_size:
            stats.stall_lq += skipped
        elif instr.is_store and state.sq_used >= self._sq_size:
            stats.stall_sq += skipped
        else:
            # _skip_target only skips past a renameable head when the free
            # list is the blocker.
            stats.stall_freelist += skipped
            state.rename_unit.stall_cycles += skipped

    def step(self) -> None:
        """Advance one cycle through the documented phase order."""
        state = self.state
        cycle = state.cycle
        probes = state.probes
        if probes is None:
            self._scheme_tick(cycle)
            controller = state.interrupt_controller
            if controller is not None:
                state.interrupt_fetch_stall = controller.tick(cycle)
            for run in self._stage_runs:
                run(state, cycle)
        else:
            phase_probes = probes.phase
            for fn in phase_probes:
                fn("scheme_tick", cycle)
            state.scheme.tick(cycle)
            controller = state.interrupt_controller
            if controller is not None:
                state.interrupt_fetch_stall = controller.tick(cycle)
            for stage in self._pipeline:
                for fn in phase_probes:
                    fn(stage.name, cycle)
                stage.run(state, cycle)
            for fn in probes.cycle_end:
                fn(cycle)
        # Inlined state.frontend_exhausted() — this runs every cycle.
        if (state.cursor >= self._trace_len
                and state.fq_head >= len(state.fetch_queue)
                and len(state.rob) == 0):
            state.done = True

    def _deadlock(self, reason: str) -> DeadlockError:
        """Build a fully diagnosed :class:`DeadlockError` for *reason*."""
        from ..validate.snapshot import pipeline_snapshot
        state = self.state
        head = state.rob.head()
        if head is not None:
            head_desc = (f"ROB head #{head.seq} {head.instr.opcode.name}"
                         f" [{'issued' if head.issued else 'not issued'}, "
                         f"{'completed' if head.completed else 'not completed'}, "
                         f"{'precommitted' if head.precommitted else 'not precommitted'}]")
        else:
            head_desc = "ROB empty"
        return DeadlockError(
            f"{reason} at cycle {state.cycle} "
            f"({state.stats.committed}/{len(state.trace)} committed, {head_desc})",
            cycle=state.cycle,
            committed=state.stats.committed,
            total=len(state.trace),
            head_seq=head.seq if head is not None else None,
            head_opcode=head.instr.opcode.name if head is not None else None,
            snapshot=pipeline_snapshot(state),
        )

    # -- queries ----------------------------------------------------------------
    def architectural_state(self) -> ArchState:
        """Committed architectural state (requires value execution)."""
        return self.state.architectural_state()

    def check_conservation(self) -> None:
        """Free-list conservation: with an empty ROB every allocated ptag
        is exactly an SRT mapping."""
        self.state.check_conservation()


def simulate(config: CoreConfig, trace: Trace, max_cycles: Optional[int] = None) -> SimStats:
    """One-call simulation: build a core, run it, return the stats."""
    core = Core(config, trace)
    return core.run(max_cycles=max_cycles)
