"""Fetch stage: frontend supply, branch prediction, wrong-path entry.

Trace-driven with execution-driven wrong-path modeling, mirroring the
paper's Scarab setup (section 5.1): the correct path replays the
functional emulator's trace; after a detected misprediction, fetch
follows the predicted (wrong) target through the *static* program image
until the mispredicted branch resolves and the pipeline flushes.
"""

from __future__ import annotations

from typing import Optional

from ...branch import PREDICTORS, Prediction
from ...frontend import DynamicInstruction
from ...isa import I_BYTES
from ..state import FetchedInstr
from . import Stage


def make_predictor(name: str):
    """Build a direction predictor from the shared registry."""
    try:
        factory = PREDICTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; valid: {', '.join(sorted(PREDICTORS))}"
        ) from None
    return factory()


class FetchStage(Stage):
    """Per-cycle instruction supply into the frontend queue."""

    name = "fetch"

    def __init__(self, state):
        super().__init__(state)
        config = self.config
        self.fetch_width = config.fetch_width
        self.fetch_targets = config.fetch_targets_per_cycle
        self.frontend_depth = config.frontend_depth
        self.model_icache = config.model_icache
        self.ft_block_bytes = config.ft_block_bytes
        self.l1i_latency = config.memory.l1i_latency
        self.branch_unit = state.branch_unit
        self.memory = state.memory
        self.trace = state.trace
        self.stats = state.stats
        self.wp_supplier = state.wp_supplier

    def run(self, state, cycle: int) -> None:
        if cycle < state.fetch_stall_until or state.stalled_for_resolve:
            return
        if state.interrupt_fetch_stall:
            return
        fetch_queue = state.fetch_queue
        if len(fetch_queue) - state.fq_head >= 3 * self.fetch_width:
            return
        probes = state.probes
        ready_at = cycle + self.frontend_depth
        slots = self.fetch_width
        targets = self.fetch_targets
        while slots > 0 and targets > 0:
            dyn = self._next_instr(state)
            if dyn is None:
                break
            if self.model_icache and not self._icache_ok(state, dyn.pc, cycle):
                break
            prediction, mispredicted, taken_redirect = self.predict(dyn)
            fetched = FetchedInstr(
                ready_cycle=ready_at,
                dyn=dyn,
                prediction=prediction,
                mispredicted=mispredicted,
                fetch_cycle=cycle,
            )
            fetch_queue.append(fetched)
            self.stats.fetched += 1
            if probes is not None:
                for fn in probes.fetch:
                    fn(fetched, cycle)
            self._advance_pc(state, dyn, prediction, mispredicted)
            slots -= 1
            if taken_redirect:
                targets -= 1
                state.last_fetch_block = -1
            if state.stalled_for_resolve:
                break

    # -- supply -------------------------------------------------------------------
    def _next_instr(self, state) -> Optional[DynamicInstruction]:
        if state.wrong_path:
            if state.wrong_pc is None:
                return None
            dyn = self.wp_supplier.fetch(state.wrong_pc, state.next_seq)
            if dyn is None:
                return None
        else:
            if state.cursor >= len(self.trace.entries):
                return None
            traced = self.trace.entries[state.cursor]
            dyn = DynamicInstruction(
                seq=state.next_seq,
                pc=traced.pc,
                instr=traced.instr,
                next_pc=traced.next_pc,
                taken=traced.taken,
                mem_addr=traced.mem_addr,
                trace_seq=state.cursor,
            )
        dyn.seq = state.next_seq
        state.next_seq += 1
        return dyn

    def _icache_ok(self, state, pc: int, cycle: int) -> bool:
        """Model fetch-target block accesses; returns False on a miss that
        stalls the rest of this fetch cycle."""
        block = (pc * I_BYTES) // self.ft_block_bytes
        if block == state.last_fetch_block:
            return True
        completion = self.memory.fetch(cycle, pc * I_BYTES)
        state.last_fetch_block = block
        if completion > cycle + self.l1i_latency:
            state.fetch_stall_until = completion
            return False
        return True

    # -- prediction ---------------------------------------------------------------
    def predict(self, dyn: DynamicInstruction):
        """Predict control flow; returns (prediction, mispredicted, redirect).

        Overridable extension point: the chaos engine's forced-mispredict
        wrapper subclasses this stage and perturbs the return value.
        """
        instr = dyn.instr
        if not instr.is_control or instr.is_halt:
            return None, False, False
        prediction = self.branch_unit.predict(dyn.pc, instr)
        if dyn.wrong_path:
            # No ground truth; fetch follows the prediction.
            return prediction, False, prediction.taken
        mispredicted = self.branch_unit.resolve(
            dyn.pc, instr, prediction, dyn.taken, dyn.next_pc
        )
        redirect = prediction.taken or dyn.taken
        return prediction, mispredicted, redirect

    def _advance_pc(self, state, dyn: DynamicInstruction,
                    prediction: Optional[Prediction], mispredicted: bool) -> None:
        if state.wrong_path:
            if prediction is not None and prediction.taken:
                state.wrong_pc = prediction.target  # may be None -> stall
                if state.wrong_pc is None:
                    state.stalled_for_resolve = True
            else:
                state.wrong_pc = dyn.pc + 1
            return
        state.cursor += 1
        if mispredicted:
            # Enter wrong-path mode at the predicted target.
            state.wp_ras_snapshot = self.branch_unit.ras.snapshot()
            state.wrong_path = True
            if prediction is not None and prediction.taken and prediction.target is not None:
                state.wrong_pc = prediction.target
            elif prediction is not None and not prediction.taken:
                state.wrong_pc = dyn.pc + 1
            else:
                state.wrong_pc = None
                state.stalled_for_resolve = True
