"""ATomic register Release — the paper's core contribution (section 4).

ATR releases a physical register *out of order*, while older branches are
still unresolved, when three conditions hold:

1. the register was allocated inside an **atomic commit region** — no
   conditional branch, indirect jump, or exception-causing instruction was
   renamed between its allocating and redefining instructions (tracked by
   the bulk no-early-release marking below);
2. it has been **redefined** (and the pipelined redefinition signal has
   become visible, modeling the N-stage bulk-marking logic);
3. its **consumer count is zero** — every renamed consumer has issued.

Safety comes from atomicity: producer, consumers, and redefiner commit or
flush as a group, so no new consumer of the released register can ever be
renamed, even after a misprediction (paper section 4.1).

Mechanisms implemented exactly as described:

* **Bulk no-early-release** (4.2.2): when a region-breaking instruction is
  renamed, every ptag currently referenced by the SRT (both register
  files) is marked no-early-release.  Instructions renamed earlier in the
  same cycle have already updated the SRT, so superscalar ordering is
  preserved; the breaking instruction's own destination is allocated
  *after* the scan and is therefore not marked (a region may begin with
  the breaker itself).
* **Pipelined redefinition delay** (4.2.2 / 5.5): the redefined signal
  becomes visible ``redefine_delay`` cycles after rename.
* **Double-free avoidance at commit** (4.2.4): claiming a prev ptag
  invalidates the instruction's ``release_prev`` so the commit logic
  never frees it.
* **Double-free avoidance on flush** (4.2.4): the two-bits-per-
  architectural-register walk.  The paper sketches the walk in ROB order;
  this implementation walks the flushed region youngest -> oldest (the
  direction the baseline tail walk already uses) with the per-entry step
  order (check-free, set-bits-if-claimed, clear-consumed-for-unissued-
  sources) that makes the chain bookkeeping consistent in that direction.
  A debug oracle (allocation-epoch based) cross-checks every free/skip
  decision when ``debug_checks`` is enabled.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from ...isa import RegClass
from .tracking import ConsumerTrackingScheme


class AtrScheme(ConsumerTrackingScheme):
    """Out-of-order register release exploiting atomic regions."""

    name = "atr"

    def __init__(self, redefine_delay: int = 0, debug_checks: bool = True,
                 restore_counts_on_flush: bool = False):
        super().__init__(restore_counts_on_flush=restore_counts_on_flush)
        if redefine_delay < 0:
            raise ValueError("redefine_delay must be >= 0")
        self.redefine_delay = redefine_delay
        self.debug_checks = debug_checks
        # In-flight pipelined redefinition signals:
        # (visible_cycle, file_cls, ptag, epoch_at_claim)
        self._pending: Deque[Tuple[int, RegClass, int, int]] = deque()

    # -- per-cycle -----------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Deliver redefinition signals whose pipeline delay has elapsed."""
        while self._pending and self._pending[0][0] <= cycle:
            _, file_cls, ptag, epoch = self._pending.popleft()
            self._try_delayed_release(file_cls, ptag, epoch)

    def next_pending_cycle(self):
        """Visibility cycle of the oldest in-flight redefinition signal
        (the deque is appended in rename order with a constant delay, so
        the head is always the earliest)."""
        return self._pending[0][0] if self._pending else None

    def _try_delayed_release(self, file_cls: RegClass, ptag: int, epoch: int) -> None:
        file = self.unit.files[file_cls]
        e = file.prt.entries[ptag]
        if e.epoch != epoch or e.early_released or file.freelist.is_free(ptag):
            self.stats.pending_squashed += 1
            return
        if e.consumer_count == 0 and e.value_ready:
            self._atr_release(file_cls, ptag)

    # -- rename ------------------------------------------------------------------------
    def pre_rename(self, entry, cycle: int) -> None:
        super().pre_rename(entry, cycle)  # consumer increments
        if entry.instr.breaks_atomic_region:
            self._bulk_mark()

    def _bulk_mark(self) -> None:
        """Mark every current SRT mapping in both files no-early-release."""
        self.stats.bulk_mark_events += 1
        for file in self.unit.files.values():
            self.stats.bulk_marked_ptags += file.prt.bulk_no_early_release(
                file.rat.live_ptags()
            )

    def post_rename(self, entry, cycle: int) -> None:
        for record in entry.dests:
            ptag = record.release_prev
            if ptag is None:
                continue
            file = self.unit.files[record.file]
            if file.prt.is_no_early_release(ptag):
                self._not_claimed(entry, record, cycle)
                continue
            # Claim: from here on only ATR may free this ptag.
            record.release_prev = None
            self.stats.atr_claims += 1
            self.stats.record_claim_consumers(file.prt.entries[ptag].lifetime_consumers)
            self._notify_claim(record.file, ptag)
            visible = cycle + self.redefine_delay
            file.prt.mark_redefined(ptag, visible)
            if self.redefine_delay == 0:
                e = file.prt.entries[ptag]
                if e.consumer_count == 0 and e.value_ready:
                    self._atr_release(record.file, ptag)
            else:
                self._pending.append(
                    (visible, record.file, ptag, file.prt.epoch(ptag))
                )

    def _not_claimed(self, entry, record, cycle: int) -> None:
        """Hook for the combined scheme (registers with nonspec-ER)."""

    # -- release triggers -----------------------------------------------------------------
    def _count_reached_zero(self, file_cls: RegClass, ptag: int, cycle: int) -> None:
        file = self.unit.files[file_cls]
        e = file.prt.entries[ptag]
        if file.prt.redefined_visible(ptag, cycle) and e.value_ready and not e.early_released:
            self._atr_release(file_cls, ptag)

    def on_writeback(self, file_cls: RegClass, ptag: int, cycle: int) -> None:
        file = self.unit.files[file_cls]
        e = file.prt.entries[ptag]
        if (
            file.prt.redefined_visible(ptag, cycle)
            and e.consumer_count == 0
            and not e.early_released
        ):
            self._atr_release(file_cls, ptag)

    def _atr_release(self, file_cls: RegClass, ptag: int) -> None:
        file = self.unit.files[file_cls]
        file.prt.entries[ptag].early_released = True
        file.freelist.free(ptag)
        self.stats.atr_frees += 1
        self._notify_release(file_cls, ptag)

    # -- flush ---------------------------------------------------------------------------------
    def on_flush(self, flushed: List, cycle: int) -> None:
        self.stats.flush_walks += 1
        # Order matters: the in-flight redefinition signals complete
        # BEFORE recovery mutates any state.  Undoing the rename-time
        # increments of never-issued consumers first would let the drain
        # release a register the two-bit walk still (correctly) believes
        # unreleased — its consumers never issued — and double-free it.
        self._drain_pending(cycle)
        if self.restore_counts_on_flush:
            for entry in flushed:
                if not entry.issued:
                    for file_cls, _slot, ptag in entry.src_ptags:
                        self.unit.files[file_cls].prt.undo_consumer(ptag)
        self._flush_walk(flushed, cycle)

    def _drain_pending(self, cycle: int) -> None:
        """Complete all in-flight redefinition signals before the walk.

        The bulk-marking pipeline is short (<= 2 stages) while a flush
        walk takes many cycles, so the hardware drains these signals
        before reclamation frees anything; modeling that removes any
        release/walk race.  Signals whose ptag was reallocated since the
        claim are stale and squashed.
        """
        while self._pending:
            _, file_cls, ptag, epoch = self._pending.popleft()
            file = self.unit.files[file_cls]
            e = file.prt.entries[ptag]
            if e.epoch != epoch:
                self.stats.pending_squashed += 1
                continue
            file.prt.mark_redefined(ptag, cycle)
            self._try_delayed_release(file_cls, ptag, epoch)

    def _flush_walk(self, flushed: List, cycle: int) -> None:
        """The paper's two-bit-per-architectural-register flush walk."""
        redefined = {
            file_cls: [False] * file.arch_slots
            for file_cls, file in self.unit.files.items()
        }
        consumed = {
            file_cls: [False] * file.arch_slots
            for file_cls, file in self.unit.files.items()
        }
        for entry in flushed:  # youngest -> oldest
            for record in entry.dests:
                file = self.unit.files[record.file]
                r_bits = redefined[record.file]
                c_bits = consumed[record.file]
                slot = record.slot
                # A claimed ptag is only actually released once all its
                # consumers issued (the bits) AND its producer wrote back
                # (this entry's completed flag): both gate the release.
                already_released = r_bits[slot] and c_bits[slot] and entry.completed
                if self.debug_checks:
                    self._check_walk_decision(file, record, already_released)
                if not already_released:
                    file.freelist.free(record.new_ptag)
                    self.stats.flush_frees += 1
                r_bits[slot] = False
                c_bits[slot] = False
                if record.release_prev is None:  # ATR-claimed its prev ptag
                    r_bits[slot] = True
                    c_bits[slot] = True
            if not entry.issued:
                for file_cls, slot, _ptag in entry.src_ptags:
                    if redefined[file_cls][slot]:
                        consumed[file_cls][slot] = False
        if self.debug_checks:
            for file_cls, bits in redefined.items():
                if any(bits):
                    raise AssertionError(
                        f"flush walk left redefined bits set in {file_cls}: "
                        f"{[i for i, b in enumerate(bits) if b]}"
                    )

    def _check_walk_decision(self, file, record, already_released: bool) -> None:
        """Cross-check the 2-bit decision against the allocation-epoch oracle."""
        e = file.prt.entries[record.new_ptag]
        oracle = e.epoch != record.new_epoch or e.early_released
        if oracle != already_released:
            raise AssertionError(
                f"flush-walk divergence on p{record.new_ptag}: "
                f"bits say released={already_released}, oracle says {oracle} "
                f"(epoch {e.epoch} vs {record.new_epoch}, early={e.early_released})"
            )
