"""Register release schemes: baseline, nonspec-ER, ATR, combined.

The scheme catalog is the :data:`SCHEMES` registry: each entry is a
factory ``(redefine_delay, debug_checks) -> ReleaseScheme``.  Every
layer that needs the list of schemes — CLI ``choices=``, sweep grids,
the service's job submission, ``repro list schemes`` — derives it from
here, so registering a new scheme (in-tree or through the plugin hook,
see :mod:`repro.registry`) is one declaration, not four edits.
"""

from .atr import AtrScheme
from .base import ReleaseScheme, SchemeStats
from .baseline import BaselineScheme
from .combined import CombinedScheme
from .nonspec import NonSpecEarlyReleaseScheme
from .tracking import ConsumerTrackingScheme
from ...registry import Registry

SCHEMES: Registry = Registry(
    "scheme", doc="register release schemes (paper Figure 10)")


@SCHEMES.register("baseline")
def _make_baseline(redefine_delay: int = 0,
                   debug_checks: bool = True) -> ReleaseScheme:
    return BaselineScheme()


@SCHEMES.register("nonspec_er")
def _make_nonspec(redefine_delay: int = 0,
                  debug_checks: bool = True) -> ReleaseScheme:
    return NonSpecEarlyReleaseScheme()


@SCHEMES.register("atr")
def _make_atr(redefine_delay: int = 0,
              debug_checks: bool = True) -> ReleaseScheme:
    return AtrScheme(redefine_delay=redefine_delay, debug_checks=debug_checks)


@SCHEMES.register("combined")
def _make_combined(redefine_delay: int = 0,
                   debug_checks: bool = True) -> ReleaseScheme:
    return CombinedScheme(redefine_delay=redefine_delay,
                          debug_checks=debug_checks)


#: The built-in scheme names, frozen at import (back-compat constant;
#: use ``SCHEMES.names()`` for the live set including plugins).
SCHEME_NAMES = SCHEMES.names()


def make_scheme(name: str, redefine_delay: int = 0, debug_checks: bool = True) -> ReleaseScheme:
    """Factory for a registered release scheme.

    Args:
        name: A name in :data:`SCHEMES` (the paper's four, or a plugin).
        redefine_delay: Pipeline delay of the ATR redefinition signal
            (paper Figure 13 evaluates 0, 1, 2).
        debug_checks: Cross-check ATR's flush walk against the oracle.
    """
    try:
        factory = SCHEMES.get(name)
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; expected one of {SCHEMES.names()}"
        ) from None
    return factory(redefine_delay=redefine_delay, debug_checks=debug_checks)


__all__ = [
    "ReleaseScheme", "SchemeStats", "ConsumerTrackingScheme",
    "BaselineScheme", "NonSpecEarlyReleaseScheme", "AtrScheme", "CombinedScheme",
    "make_scheme", "SCHEMES", "SCHEME_NAMES",
]
