"""Experiment execution: one simulation = one (benchmark, config) cell.

Every figure module builds on :func:`run_cell`, which caches results
in-process so overlapping sweeps (Figure 10's 64-register column reuses
Figure 11's) simulate each cell once.  Scale is controlled by the
``REPRO_BENCH_INSTRUCTIONS`` environment variable (default 5000 dynamic
instructions per benchmark — enough for steady-state register-pressure
behaviour of these loop-dominated kernels; raise it for tighter numbers).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis import RegionReport, classify_regions
from ..pipeline import Core, CoreConfig, SimStats, golden_cove_config
from ..rename.schemes import SchemeStats
from ..workloads import SPEC_FP, SPEC_INT, build_trace, is_fp


def default_instructions() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "5000"))


def default_int_suite() -> Tuple[str, ...]:
    return SPEC_INT


def default_fp_suite() -> Tuple[str, ...]:
    return SPEC_FP


@dataclass
class CellResult:
    """One simulated (benchmark, configuration) cell."""

    benchmark: str
    scheme: str
    rf_size: int
    instructions: int
    stats: SimStats
    scheme_stats: SchemeStats
    event_records: Optional[list] = None
    region_report: Optional[RegionReport] = None

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def is_fp(self) -> bool:
        return is_fp(self.benchmark)


_cell_cache: Dict[tuple, CellResult] = {}
_region_cache: Dict[tuple, RegionReport] = {}


def run_cell(
    benchmark: str,
    rf_size: int,
    scheme: str,
    instructions: Optional[int] = None,
    redefine_delay: int = 0,
    record_register_events: bool = False,
    config: Optional[CoreConfig] = None,
    use_cache: bool = True,
) -> CellResult:
    """Simulate one benchmark under one configuration."""
    instructions = instructions or default_instructions()
    key = (benchmark, rf_size, scheme, instructions, redefine_delay,
           record_register_events, config is None)
    if use_cache and config is None and key in _cell_cache:
        return _cell_cache[key]
    if config is None:
        config = golden_cove_config(
            rf_size=rf_size,
            scheme=scheme,
            redefine_delay=redefine_delay,
            record_register_events=record_register_events,
        )
        # Value execution is a correctness harness, not a performance
        # model; experiments disable it for speed (tests keep it on).
        config = replace(config, execute_values=False)
    trace = build_trace(benchmark, instructions)
    core = Core(config, trace)
    stats = core.run()
    result = CellResult(
        benchmark=benchmark,
        scheme=scheme,
        rf_size=rf_size,
        instructions=instructions,
        stats=stats,
        scheme_stats=core.scheme.stats,
        event_records=(core.event_log.records if core.event_log else None),
    )
    if use_cache and key[-1]:
        _cell_cache[key] = result
    return result


def region_report(benchmark: str, instructions: Optional[int] = None) -> RegionReport:
    """Trace-level region classification (no simulation needed)."""
    instructions = instructions or default_instructions()
    key = (benchmark, instructions)
    if key not in _region_cache:
        _region_cache[key] = classify_regions(build_trace(benchmark, instructions))
    return _region_cache[key]


def clear_result_cache() -> None:
    _cell_cache.clear()
    _region_cache.clear()


# -- aggregation helpers ---------------------------------------------------------


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def speedup(test_ipc: float, base_ipc: float) -> float:
    """Fractional speedup (0.05 == +5%)."""
    if base_ipc == 0:
        return 0.0
    return test_ipc / base_ipc - 1.0


def suite_speedup(
    benchmarks: Sequence[str],
    rf_size: int,
    scheme: str,
    baseline: str = "baseline",
    instructions: Optional[int] = None,
    redefine_delay: int = 0,
) -> float:
    """Mean per-benchmark speedup of *scheme* over *baseline* (the
    paper's 'average speedup' aggregation)."""
    speedups = []
    for benchmark in benchmarks:
        test = run_cell(benchmark, rf_size, scheme, instructions,
                        redefine_delay=redefine_delay)
        base = run_cell(benchmark, rf_size, baseline, instructions)
        speedups.append(speedup(test.ipc, base.ipc))
    return mean(speedups)
