"""Static atomic-region pass: prove def→redef windows atomic from text.

The dynamic classifier (:func:`repro.analysis.regions.classify_regions`)
and the runtime ATR scheme both discover regions along the *renamed
instruction stream*.  The key structural fact that makes a static mirror
exact is that the stream between a definition and a breaker-free
redefinition is **deterministic**: the only instructions that can fork
the renamed stream are conditional branches and indirect jumps — and
those are precisely the region-*breaking* control instructions.  Direct
``JMP``/``CALL`` never mispredict in this machine (the decoder hands
fetch the static target), so any window that contains one still follows
the unique static successor chain.

Each definition site therefore owns at most one *chain*: walk
fallthrough / ``JMP`` target / ``CALL`` target successors until the
register is redefined (window closes) or a region-breaking control
instruction, ``HALT``, the image edge, or a revisit (a ``JMP`` loop with
no redefinition) ends the chain.  Per step the breaker rules are applied
in the dynamic classifier's exact order:

1. region-breaking control (``BEQ``/``BNE``/``BLT``/``BGE``/``JR``/
   ``RET``) ends the chain — the breaker may *start* the next region,
   so its effect lands before any same-pc redefinition could;
2. ``may_except`` (loads, stores, divides) clears ``non_except`` —
   *including* when that same instruction is the redefiner (a faulting
   redefiner would be flushed, un-redefining the register);
3. source reads of the register count as consumers;
4. a destination write of the register closes the window.

Windows with ``def_pc is None`` start at the virtual entry definition
(the initial SRT mapping of each register), which the pipeline may also
claim and release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa import ArchReg, Opcode, Program, RegClass, all_arch_regs


@dataclass(frozen=True)
class StaticWindow:
    """One statically-analyzed def→redef chain of one register."""

    reg: ArchReg
    def_pc: Optional[int]   # None: virtual entry definition
    redef_pc: Optional[int]  # None: chain ended without redefinition
    consumers: int
    non_branch: bool
    non_except: bool
    #: What ended or declassified the chain, for diagnostics
    #: (e.g. "bne@12", "ld@7", "halt", "image-edge", "revisit").
    breaker: Optional[str] = None
    #: The pcs the chain walked, in execution order (ends with
    #: ``redef_pc`` when the window closed).  The memory-aware region
    #: pass (:mod:`repro.staticcheck.memdep`) classifies the accesses at
    #: these pcs; each pc appears at most once, so two accesses on one
    #: chain observe the same instance of any load-produced address.
    chain: Tuple[int, ...] = ()

    @property
    def atomic(self) -> bool:
        return self.closed and self.non_branch and self.non_except

    @property
    def closed(self) -> bool:
        return self.redef_pc is not None

    @property
    def key(self) -> Tuple[RegClass, int, Optional[int], Optional[int]]:
        """(physical file, SRT slot, def_pc, redef_pc) — the identity the
        runtime oracle can observe through the probe layer."""
        return (self.reg.cls.file, self.reg.srt_slot,
                self.def_pc, self.redef_pc)


@dataclass
class StaticRegionReport:
    """All windows of one program, plus the atomic subset by oracle key."""

    program: Program
    windows: List[StaticWindow] = field(default_factory=list)

    def closed_windows(self) -> List[StaticWindow]:
        return [w for w in self.windows if w.closed]

    def atomic_windows(self) -> List[StaticWindow]:
        return [w for w in self.windows if w.atomic]

    def atomic_keys(self) -> FrozenSet[Tuple]:
        return frozenset(w.key for w in self.atomic_windows())

    def counts(self) -> Dict[str, int]:
        closed = self.closed_windows()
        return {
            "windows": len(self.windows),
            "closed": len(closed),
            "non_branch": sum(1 for w in closed if w.non_branch),
            "non_except": sum(1 for w in closed if w.non_except),
            "atomic": sum(1 for w in closed if w.atomic),
        }


def _chain_successor(program: Program, pc: int) -> Optional[int]:
    """The unique next pc of the renamed stream after a non-breaking,
    non-redefining instruction — or ``None`` at the image edge."""
    instr = program.instructions[pc]
    if instr.opcode in (Opcode.JMP, Opcode.CALL):
        target = instr.target
        if target is None or not 0 <= target < len(program):
            return None
        return target
    nxt = pc + 1
    return nxt if nxt < len(program) else None


def _walk_chain(program: Program, reg: ArchReg,
                def_pc: Optional[int]) -> StaticWindow:
    """Walk the deterministic chain of the definition of *reg* at *def_pc*."""
    consumers = 0
    non_branch = True
    non_except = True
    visited: Set[int] = set()
    chain: List[int] = []
    pc: Optional[int] = 0 if def_pc is None \
        else _chain_successor(program, def_pc)
    while pc is not None:
        if pc in visited:
            return StaticWindow(reg, def_pc, None, consumers,
                                False, False, breaker="revisit",
                                chain=tuple(chain))
        visited.add(pc)
        chain.append(pc)
        instr = program.instructions[pc]
        if instr.breaks_region_control:
            # Chain forks (or leaves through a register): window stays
            # open past the breaker, so it can never be proven atomic.
            return StaticWindow(reg, def_pc, None, consumers,
                                False, False,
                                breaker=f"{instr.opcode.value}@{pc}",
                                chain=tuple(chain))
        if instr.may_except:
            non_except = False
        consumers += sum(1 for src in instr.srcs if src == reg)
        if reg in instr.dests:
            return StaticWindow(reg, def_pc, pc, consumers,
                                non_branch, non_except,
                                chain=tuple(chain))
        if instr.is_halt:
            return StaticWindow(reg, def_pc, None, consumers,
                                False, False, breaker="halt",
                                chain=tuple(chain))
        pc = _chain_successor(program, pc)
    return StaticWindow(reg, def_pc, None, consumers,
                        False, False, breaker="image-edge",
                        chain=tuple(chain))


def analyze_regions(program: Program) -> StaticRegionReport:
    """Classify every definition's chain in *program*.

    Mirrors :func:`repro.analysis.regions.classify_regions`: chains that
    never close (no redefinition before a breaker / halt) are reported
    with ``non_branch = non_except = False``, matching the dynamic
    classifier's treatment of still-open chains at trace end.
    """
    report = StaticRegionReport(program=program)
    for reg in all_arch_regs():
        report.windows.append(_walk_chain(program, reg, None))
    for pc, instr in enumerate(program.instructions):
        for reg in instr.dests:
            report.windows.append(_walk_chain(program, reg, pc))
    return report
