"""Reproduction ISA: registers, opcodes, instructions, programs, assembler.

This is a 64-bit load/store ISA with an x86-flavored register structure
(16 integer GPRs, a renamed FLAGS register, 16 vector registers) designed so
that the register-renaming phenomena the ATR paper studies — atomic commit
regions bounded by conditional branches and exception-causing instructions —
appear exactly as they do on the paper's x86 target.
"""

from .assembler import AssemblyError, assemble, disassemble
from .instruction import I_BYTES, Instruction, validate_instruction
from .opcodes import (
    MNEMONICS,
    OpClass,
    Opcode,
    breaks_atomic_region,
    breaks_region_control,
    is_conditional_branch,
    is_control,
    is_indirect,
    is_load,
    is_memory,
    is_store,
    is_vector,
    may_except,
    op_class,
)
from .program import LINK_REG, Program, ProgramBuilder, ProgramValidationError
from .registers import (
    FLAGS,
    INT_SRT_SLOTS,
    NUM_INT_REGS,
    NUM_VEC_REGS,
    VEC_LANES,
    VEC_SRT_SLOTS,
    ArchReg,
    RegClass,
    all_arch_regs,
    ireg,
    parse_reg,
    vreg,
)

__all__ = [
    "ArchReg", "RegClass", "ireg", "vreg", "FLAGS", "parse_reg",
    "all_arch_regs", "NUM_INT_REGS", "NUM_VEC_REGS", "VEC_LANES",
    "INT_SRT_SLOTS", "VEC_SRT_SLOTS",
    "Opcode", "OpClass", "op_class", "is_control", "is_conditional_branch",
    "is_indirect", "is_memory", "is_load", "is_store", "is_vector",
    "may_except", "breaks_region_control", "breaks_atomic_region",
    "MNEMONICS",
    "Instruction", "validate_instruction", "I_BYTES",
    "Program", "ProgramBuilder", "ProgramValidationError", "LINK_REG",
    "assemble", "disassemble", "AssemblyError",
]
