"""Programs and the fluent builder API used by the workload kernels.

A :class:`Program` is an immutable sequence of static instructions plus a
label table and an initial data image.  :class:`ProgramBuilder` offers one
method per opcode with forward-label support, so kernels read close to
assembly::

    b = ProgramBuilder()
    b.movi(r(0), 0)
    with b.loop("head"):
        ...
    prog = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .instruction import Instruction, validate_instruction
from .opcodes import Opcode
from .registers import FLAGS, ArchReg, ireg

#: Link register written by CALL and read by RET.
LINK_REG = ireg(15)


class ProgramValidationError(ValueError):
    """A built program is structurally malformed: an unresolved or
    out-of-range control target, or code that can fall off the image.

    Raised by :meth:`ProgramBuilder.build` so malformed (e.g.
    synthesized) programs fail at build time instead of inside the
    emulator or the pipeline's fetch stage.
    """


@dataclass(frozen=True)
class Program:
    """An immutable program: code, labels, and an initial memory image."""

    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)
    data: Dict[int, int] = field(default_factory=dict)
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def at(self, pc: int) -> Optional[Instruction]:
        """The instruction at *pc*, or ``None`` if outside the image.

        Wrong-path fetch may run past the program end; callers treat
        ``None`` as an implicit HALT-like fetch stall.
        """
        if 0 <= pc < len(self.instructions):
            return self.instructions[pc]
        return None

    def label_of(self, pc: int) -> Optional[str]:
        instr = self.at(pc)
        return instr.label if instr is not None else None

    def disassemble(self) -> str:
        """Full program listing with PCs and labels."""
        lines = []
        for pc, instr in enumerate(self.instructions):
            if instr.label:
                lines.append(f"{instr.label}:")
            lines.append(f"  {pc:5d}  {instr.render()}")
        return "\n".join(lines)


class _ForwardLabel:
    """Placeholder target resolved at :meth:`ProgramBuilder.build`."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class ProgramBuilder:
    """Incrementally builds a :class:`Program`.

    Labels may be referenced before they are defined; they are resolved at
    :meth:`build` time.  Every emit method returns the PC of the emitted
    instruction.
    """

    def __init__(self, name: str = "program"):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._pending_label: Optional[str] = None
        self._data: Dict[int, int] = {}

    # -- structure ----------------------------------------------------------
    @property
    def pc(self) -> int:
        """PC of the next instruction to be emitted."""
        return len(self._instructions)

    def label(self, name: str) -> int:
        """Define *name* at the current PC."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = self.pc
        self._pending_label = name
        return self.pc

    def word(self, addr: int, value: int) -> None:
        """Place a 64-bit word in the initial data image."""
        self._data[addr] = value

    def words(self, addr: int, values: Sequence[int], stride: int = 8) -> None:
        """Place consecutive words starting at *addr*."""
        for i, value in enumerate(values):
            self._data[addr + i * stride] = value

    def _emit(self, opcode: Opcode, dests=(), srcs=(), imm=0, target=None) -> int:
        instr = Instruction(
            opcode=opcode,
            dests=tuple(dests),
            srcs=tuple(srcs),
            imm=imm,
            target=target,
            label=self._pending_label,
        )
        self._pending_label = None
        if not isinstance(target, _ForwardLabel):
            validate_instruction(instr)
        self._instructions.append(instr)
        return len(self._instructions) - 1

    def _target(self, where) -> object:
        """Resolve *where* (label name or PC) now if possible."""
        if isinstance(where, str):
            if where in self._labels:
                return self._labels[where]
            return _ForwardLabel(where)
        return int(where)

    # -- integer ALU ----------------------------------------------------------
    def add(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.ADD, [d], [a, b])

    def sub(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.SUB, [d], [a, b])

    def and_(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.AND, [d], [a, b])

    def or_(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.OR, [d], [a, b])

    def xor(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.XOR, [d], [a, b])

    def shl(self, d: ArchReg, a: ArchReg, amount: int) -> int:
        return self._emit(Opcode.SHL, [d], [a], imm=amount)

    def shr(self, d: ArchReg, a: ArchReg, amount: int) -> int:
        return self._emit(Opcode.SHR, [d], [a], imm=amount)

    def not_(self, d: ArchReg, a: ArchReg) -> int:
        return self._emit(Opcode.NOT, [d], [a])

    def neg(self, d: ArchReg, a: ArchReg) -> int:
        return self._emit(Opcode.NEG, [d], [a])

    def mov(self, d: ArchReg, a: ArchReg) -> int:
        return self._emit(Opcode.MOV, [d], [a])

    def movi(self, d: ArchReg, value: int) -> int:
        return self._emit(Opcode.MOVI, [d], [], imm=value)

    def lea(self, d: ArchReg, a: ArchReg, disp: int) -> int:
        return self._emit(Opcode.LEA, [d], [a], imm=disp)

    def cmp(self, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.CMP, [FLAGS], [a, b])

    def test(self, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.TEST, [FLAGS], [a, b])

    def select(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        """d = a if FLAGS says equal/zero else b."""
        return self._emit(Opcode.SELECT, [d], [FLAGS, a, b])

    def mul(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.MUL, [d], [a, b])

    def div(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.DIV, [d], [a, b])

    def mod(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.MOD, [d], [a, b])

    # -- memory -------------------------------------------------------------
    def ld(self, d: ArchReg, base: ArchReg, disp: int = 0) -> int:
        return self._emit(Opcode.LD, [d], [base], imm=disp)

    def st(self, value: ArchReg, base: ArchReg, disp: int = 0) -> int:
        return self._emit(Opcode.ST, [], [value, base], imm=disp)

    # -- control flow ---------------------------------------------------------
    def beq(self, where) -> int:
        return self._emit(Opcode.BEQ, [], [FLAGS], target=self._target(where))

    def bne(self, where) -> int:
        return self._emit(Opcode.BNE, [], [FLAGS], target=self._target(where))

    def blt(self, where) -> int:
        return self._emit(Opcode.BLT, [], [FLAGS], target=self._target(where))

    def bge(self, where) -> int:
        return self._emit(Opcode.BGE, [], [FLAGS], target=self._target(where))

    def jmp(self, where) -> int:
        return self._emit(Opcode.JMP, target=self._target(where))

    def jr(self, reg: ArchReg) -> int:
        return self._emit(Opcode.JR, [], [reg])

    def call(self, where) -> int:
        return self._emit(Opcode.CALL, [LINK_REG], [], target=self._target(where))

    def ret(self) -> int:
        return self._emit(Opcode.RET, [], [LINK_REG])

    # -- vector ---------------------------------------------------------------
    def vadd(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.VADD, [d], [a, b])

    def vsub(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.VSUB, [d], [a, b])

    def vmul(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.VMUL, [d], [a, b])

    def vfma(self, d: ArchReg, a: ArchReg, b: ArchReg, c: ArchReg) -> int:
        return self._emit(Opcode.VFMA, [d], [a, b, c])

    def vdiv(self, d: ArchReg, a: ArchReg, b: ArchReg) -> int:
        return self._emit(Opcode.VDIV, [d], [a, b])

    def vbroadcast(self, d: ArchReg, a: ArchReg) -> int:
        return self._emit(Opcode.VBROADCAST, [d], [a])

    def vld(self, d: ArchReg, base: ArchReg, disp: int = 0) -> int:
        return self._emit(Opcode.VLD, [d], [base], imm=disp)

    def vst(self, value: ArchReg, base: ArchReg, disp: int = 0) -> int:
        return self._emit(Opcode.VST, [], [value, base], imm=disp)

    def vreduce(self, d: ArchReg, a: ArchReg) -> int:
        return self._emit(Opcode.VREDUCE, [d], [a])

    # -- lint suppression -----------------------------------------------------
    def lint_ignore(self, *rules: str) -> "ProgramBuilder":
        """Suppress the named lint rules on the last emitted instruction.

        Attaches a ``lint: ignore[rule-id, ...]`` marker to the
        instruction's comment, which ``repro.staticcheck`` honors when
        reporting findings::

            b.add(r(2), r(2), r(6))
            b.lint_ignore("df-dead-store")  # immediate redefinition is the point
        """
        if not rules:
            raise ValueError("lint_ignore needs at least one rule id")
        if not self._instructions:
            raise ValueError("lint_ignore must follow an emitted instruction")
        last = self._instructions[-1]
        marker = f"lint: ignore[{', '.join(rules)}]"
        comment = f"{last.comment} {marker}".strip()
        self._instructions[-1] = replace(last, comment=comment)
        return self

    # -- misc -----------------------------------------------------------------
    def nop(self) -> int:
        return self._emit(Opcode.NOP)

    def halt(self) -> int:
        return self._emit(Opcode.HALT)

    # -- finalization -----------------------------------------------------------
    def build(self) -> Program:
        """Resolve forward labels, validate, freeze into a :class:`Program`.

        Raises :class:`ProgramValidationError` if a control-flow target
        does not resolve to a pc inside the final code image (the
        auto-appended trailing HALT also rules out falling off the end),
        so malformed programs fail here instead of inside the emulator.
        """
        resolved: List[Instruction] = []
        for pc, instr in enumerate(self._instructions):
            target = instr.target
            if isinstance(target, _ForwardLabel):
                if target.name not in self._labels:
                    raise ProgramValidationError(
                        f"undefined label {target.name!r} at pc {pc}")
                instr = replace(instr, target=self._labels[target.name])
            validate_instruction(instr)
            resolved.append(instr)
        if not resolved or not resolved[-1].is_halt:
            resolved.append(Instruction(Opcode.HALT))
        size = len(resolved)
        for pc, instr in enumerate(resolved):
            if (instr.is_control and not instr.is_indirect
                    and not instr.is_halt
                    and not 0 <= instr.target < size):
                raise ProgramValidationError(
                    f"{instr.opcode.value} at pc {pc} targets {instr.target}, "
                    f"outside the code image [0, {size})")
        return Program(
            instructions=tuple(resolved),
            labels=dict(self._labels),
            data=dict(self._data),
            name=self.name,
        )
