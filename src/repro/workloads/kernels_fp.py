"""SPEC CPU 2017 floating-point-suite stand-in kernels (paper Table 2).

The fp suite exercises the *vector* register file (the paper evaluates
split scalar/vector files; section 3.1 reports the vector file's
lifecycle shares separately).  These kernels use the vector ISA
(vld/vfma/vst...) with scalar loop control, mirroring compiled SPECfp
inner loops: long FMA chains between memory operations, fewer branches
than SPECint, and a few division-heavy kernels (nab, roms) whose vdiv
instructions break atomic regions.

All kernels stream over 128 KiB arrays with a rotating window, so the
data set exceeds the 48 KiB L1D and register pressure builds behind L2
misses — the regime the paper's RF-size sweeps measure.
"""

from __future__ import annotations

import random
from typing import Callable

from ..isa import Program, ProgramBuilder, ireg, vreg

_A = 0x200000
_B = 0x800000
_ARRAY_WORDS = 262144         # 2 MiB per array (exceeds the L2)
_ARRAY_BYTES = _ARRAY_WORDS * 8


def _fill(b: ProgramBuilder, base: int, seed: int, bound: int = 1 << 20) -> None:
    rng = random.Random(seed)
    b.words(base, [rng.randrange(1, bound) for _ in range(_ARRAY_WORDS)])


def _streaming_kernel(
    name: str,
    body: Callable[[ProgramBuilder], None],
    iterations: int,
    seed: int,
    blocks: int = 64,
    stride: int = 32,
    miss_every: int = 4,
    prologue: Callable[[ProgramBuilder], None] = None,
) -> Program:
    """Scaffold: a hot compute window plus periodic independent cold loads.

    The *body* (one vectorized block; r2 = source pointer, r3 =
    destination pointer, r4 = 1) runs over a 16 KiB hot window that is
    L1/L2-resident after warmup.  Every ``miss_every`` blocks, an
    *independent* scalar load walks a cold multi-MiB region and misses to
    DRAM.  The cold load blocks in-order commit (and precommit — it may
    fault) while the hot blocks behind it complete out of order: exactly
    the regime of the paper's Figure 5, where registers pile up
    un-released in the baseline and ATR's early release pays off.
    """
    b = ProgramBuilder(name)
    r = ireg
    _fill(b, _A, seed)
    _fill(b, _B, seed + 1)
    hot_mask = 16 * 1024 - 1          # 16 KiB hot window
    cold_stride = 64 * 101            # always a fresh line, sparse banks
    b.movi(r(1), iterations)
    b.movi(r(4), 1)
    b.movi(r(13), 0)                  # hot window offset
    b.movi(r(14), hot_mask)
    b.movi(r(12), _A + _ARRAY_BYTES // 2)  # cold cursor (upper half)
    b.movi(r(10), 0)                  # cold accumulator
    if prologue is not None:
        prologue(b)
    b.label("sweep")
    b.movi(r(2), _A + 64)
    b.add(r(2), r(2), r(13))
    b.movi(r(3), _B + 64)
    b.add(r(3), r(3), r(13))
    b.movi(r(5), blocks)
    b.label("loop")
    for i in range(miss_every):
        body(b)
        b.lea(r(2), r(2), stride)
        b.lea(r(3), r(3), stride)
    # independent cold load: misses to DRAM, blocks commit/precommit
    b.ld(r(11), r(12), 0)
    b.add(r(10), r(10), r(11))
    b.movi(r(11), cold_stride)
    b.add(r(12), r(12), r(11))
    b.movi(r(11), _A + _ARRAY_BYTES // 2)
    b.cmp(r(12), r(11))               # wrap the cold cursor region
    b.bge("no_wrap")
    b.mov(r(12), r(11))
    b.label("no_wrap")
    b.sub(r(5), r(5), r(4))
    b.test(r(5), r(5))
    b.bne("loop")
    # rotate the hot window within 16 KiB (stays resident)
    b.movi(r(6), 512)
    b.add(r(13), r(13), r(6))
    b.and_(r(13), r(13), r(14))
    b.sub(r(1), r(1), r(4))
    b.test(r(1), r(1))
    b.bne("sweep")
    b.halt()
    return b.build()


def bwaves(iterations: int = 40, seed: int = 11) -> Program:
    """1-D wave stencil: u'[i] = a*u[i-1] + b*u[i] + c*u[i+1]."""
    r, v = ireg, vreg

    def prologue(b: ProgramBuilder) -> None:
        b.movi(r(6), 3)
        b.vbroadcast(v(7), r(6))
        b.vbroadcast(v(8), r(4))

    def body(b: ProgramBuilder) -> None:
        b.vld(v(0), r(2), -32)
        b.vld(v(1), r(2), 0)
        b.vld(v(2), r(2), 32)
        b.vmul(v(3), v(0), v(7))
        b.vfma(v(3), v(1), v(8), v(3))      # v3 redefined (atomic)
        b.vfma(v(3), v(2), v(7), v(3))      # v3 redefined again
        b.vst(v(3), r(3), 0)

    return _streaming_kernel("503.bwaves_r", body, iterations, seed, prologue=prologue)


def cactubssn(iterations: int = 24, seed: int = 12) -> Program:
    """Einstein-equation stencil: many loads, very long FMA chains with
    temporaries redefined mid-chain — the longest atomic regions in fp."""
    r, v = ireg, vreg

    def body(b: ProgramBuilder) -> None:
        b.vld(v(0), r(2), -64)
        b.vld(v(1), r(2), -32)
        b.vld(v(2), r(2), 0)
        b.vld(v(3), r(2), 32)
        b.vld(v(4), r(2), 64)
        b.vmul(v(5), v(0), v(4))
        b.vfma(v(5), v(1), v(3), v(5))      # v5 chain: redefined twice
        b.vfma(v(5), v(2), v(2), v(5))
        b.vmul(v(6), v(5), v(1))
        b.vfma(v(6), v(5), v(3), v(6))      # v6 redefined
        b.vadd(v(7), v(6), v(5))
        b.vsub(v(8), v(7), v(0))
        b.vfma(v(8), v(8), v(7), v(6))      # v8 redefined
        b.vst(v(8), r(3), 0)

    return _streaming_kernel("507.cactuBSSN_r", body, iterations, seed, blocks=192)


def namd(iterations: int = 24, seed: int = 13) -> Program:
    """Pairwise force loop: one loaded position vector consumed by MANY
    FMA terms (namd drives the high consumer counts in paper Fig. 12)."""
    r, v = ireg, vreg

    def body(b: ProgramBuilder) -> None:
        b.vld(v(0), r(2), 0)                 # position i
        b.vld(v(1), r(2), 32)
        b.vsub(v(2), v(0), v(1))             # dx: consumed 5x and then
        b.vmul(v(3), v(2), v(2))             # redefined in-block, so its
        b.vfma(v(4), v(2), v(2), v(3))       # chain is an atomic region
        b.vfma(v(4), v(2), v(3), v(4))       # with 5 consumers — namd is
        b.vfma(v(4), v(2), v(4), v(3))       # Fig. 12's outlier
        b.vfma(v(4), v(2), v(3), v(4))
        b.vmul(v(2), v(4), v(4))             # redefine dx (closes region)
        b.vadd(v(5), v(4), v(2))
        b.vst(v(5), r(3), 0)

    return _streaming_kernel("508.namd_r", body, iterations, seed)


def parest(iterations: int = 32, seed: int = 14) -> Program:
    """Sparse matrix-vector product: index load -> gathered load -> FMA."""
    r, v = ireg, vreg

    def body(b: ProgramBuilder) -> None:
        b.ld(r(6), r(2), 0)                  # pseudo column index
        b.movi(r(7), (_ARRAY_WORDS // 2 - 1) * 8)
        b.and_(r(6), r(6), r(7))
        b.movi(r(7), _B)
        b.add(r(6), r(6), r(7))
        b.vld(v(0), r(6), 0)                 # gathered vector
        b.vld(v(1), r(2), 0)                 # matrix values
        b.vfma(v(6), v(0), v(1), v(6))
        b.vst(v(6), r(3), 0)

    def prologue(b: ProgramBuilder) -> None:
        b.movi(r(7), 0)
        b.vbroadcast(v(6), r(7))

    return _streaming_kernel("510.parest_r", body, iterations, seed, prologue=prologue)


def povray(iterations: int = 32, seed: int = 15) -> Program:
    """Ray-sphere intersection: dot products then a discriminant branch —
    povray is the branchiest fp benchmark."""
    r, v = ireg, vreg

    def body(b: ProgramBuilder) -> None:
        b.vld(v(0), r(2), 0)                 # ray dir
        b.vld(v(1), r(2), 32)                # center - origin
        b.vmul(v(2), v(0), v(1))
        b.vreduce(r(6), v(2))                # b coefficient
        b.vmul(v(3), v(1), v(1))
        b.vreduce(r(7), v(3))                # c coefficient
        b.mul(r(6), r(6), r(6))
        b.cmp(r(6), r(7))
        miss = f"miss_{b.pc}"
        b.blt(miss)
        b.sub(r(8), r(6), r(7))
        b.shr(r(8), r(8), 8)                 # r8 redefined (atomic)
        b.vbroadcast(v(4), r(8))
        b.vfma(v(5), v(4), v(0), v(1))
        b.vst(v(5), r(3), 0)
        b.label(miss)

    return _streaming_kernel("511.povray_r", body, iterations, seed)


def lbm(iterations: int = 32, seed: int = 16) -> Program:
    """Lattice-Boltzmann streaming: load distributions, collide, store to
    shifted locations — the most store-heavy fp kernel."""
    r, v = ireg, vreg

    def body(b: ProgramBuilder) -> None:
        b.vld(v(0), r(2), 0)
        b.vld(v(1), r(2), 32)
        b.vadd(v(2), v(0), v(1))
        b.vmul(v(3), v(2), v(0))
        b.vsub(v(3), v(3), v(1))             # v3 redefined (atomic)
        b.vst(v(2), r(3), 0)
        b.vst(v(3), r(3), 32)

    return _streaming_kernel("519.lbm_r", body, iterations, seed)


def wrf(iterations: int = 32, seed: int = 17) -> Program:
    """Weather column physics: scalar/vector mix with a conditional
    saturation branch per column."""
    r, v = ireg, vreg

    def prologue(b: ProgramBuilder) -> None:
        b.movi(r(9), 1000)

    def body(b: ProgramBuilder) -> None:
        b.vld(v(0), r(2), 0)
        b.vmul(v(1), v(0), v(0))
        b.vadd(v(2), v(1), v(0))
        b.vreduce(r(6), v(2))
        b.cmp(r(6), r(9))
        nosat = f"nosat_{b.pc}"
        b.blt(nosat)
        b.shr(r(6), r(6), 4)
        b.label(nosat)
        b.add(r(9), r(9), r(6))
        b.vbroadcast(v(3), r(6))
        b.vfma(v(4), v(3), v(0), v(2))
        b.vst(v(4), r(3), 0)

    return _streaming_kernel("521.wrf_r", body, iterations, seed, prologue=prologue)


def blender(iterations: int = 32, seed: int = 18) -> Program:
    """4x4 matrix-vector transforms: four FMA chains per vertex, pure
    compute between vertex load and store."""
    r, v = ireg, vreg

    def prologue(b: ProgramBuilder) -> None:
        b.movi(r(6), _A)
        b.vld(v(10), r(6), 512)
        b.vld(v(11), r(6), 544)
        b.vld(v(12), r(6), 576)
        b.vld(v(13), r(6), 608)

    def body(b: ProgramBuilder) -> None:
        b.vld(v(0), r(2), 0)
        b.vmul(v(1), v(0), v(10))
        b.vfma(v(1), v(0), v(11), v(1))      # v1 redefined (atomic)
        b.vmul(v(2), v(0), v(12))
        b.vfma(v(2), v(0), v(13), v(2))      # v2 redefined (atomic)
        b.vadd(v(3), v(1), v(2))
        b.vst(v(3), r(3), 0)

    return _streaming_kernel("526.blender_r", body, iterations, seed, prologue=prologue)


def cam4(iterations: int = 32, seed: int = 19) -> Program:
    """Atmosphere column loop with two-way conditional physics."""
    r, v = ireg, vreg

    def prologue(b: ProgramBuilder) -> None:
        b.movi(r(9), 512)

    def body(b: ProgramBuilder) -> None:
        b.vld(v(0), r(2), 0)
        b.vreduce(r(6), v(0))
        b.cmp(r(6), r(9))
        cold = f"cold_{b.pc}"
        store = f"store_{b.pc}"
        b.blt(cold)
        b.vmul(v(1), v(0), v(0))
        b.vadd(v(2), v(1), v(0))
        b.jmp(store)
        b.label(cold)
        b.vadd(v(1), v(0), v(0))
        b.vsub(v(2), v(1), v(0))
        b.label(store)
        b.vst(v(2), r(3), 0)

    return _streaming_kernel("527.cam4_r", body, iterations, seed,
                             prologue=prologue)


def imagick(iterations: int = 24, seed: int = 20) -> Program:
    """3-tap convolution over image rows: three loads, FMA reduce, store."""
    r, v = ireg, vreg

    def prologue(b: ProgramBuilder) -> None:
        b.movi(r(6), 4)
        b.vbroadcast(v(9), r(6))

    def body(b: ProgramBuilder) -> None:
        b.vld(v(0), r(2), -32)
        b.vld(v(1), r(2), 0)
        b.vld(v(2), r(2), 32)
        b.vmul(v(3), v(1), v(9))
        b.vadd(v(4), v(0), v(2))
        b.vfma(v(4), v(4), v(9), v(3))       # v4 redefined (atomic)
        b.vst(v(4), r(3), 0)

    return _streaming_kernel("538.imagick_r", body, iterations, seed,
                             prologue=prologue)


def nab(iterations: int = 24, seed: int = 21) -> Program:
    """Molecular solvation: distance terms with vector DIVIDES — division
    is exception-causing, so nab's regions are short."""
    r, v = ireg, vreg

    def body(b: ProgramBuilder) -> None:
        b.vld(v(0), r(2), 0)
        b.vld(v(1), r(2), 32)
        b.vsub(v(2), v(0), v(1))
        b.vmul(v(3), v(2), v(2))
        b.vadd(v(4), v(3), v(0))
        b.vdiv(v(5), v(0), v(4))             # 1/r-like term (region breaker)
        b.vfma(v(6), v(5), v(3), v(4))
        b.vst(v(6), r(3), 0)

    return _streaming_kernel("544.nab_r", body, iterations, seed, blocks=192)


def fotonik3d(iterations: int = 32, seed: int = 22) -> Program:
    """FDTD curl update: two-plane stencil, regular and branch-light."""
    r, v = ireg, vreg

    def body(b: ProgramBuilder) -> None:
        b.vld(v(0), r(2), 0)                 # E
        b.vld(v(1), r(2), -32)               # H left
        b.vld(v(2), r(2), 32)                # H right
        b.vsub(v(3), v(2), v(1))             # curl
        b.vfma(v(3), v(3), v(0), v(0))       # v3 redefined (atomic)
        b.vst(v(3), r(3), 0)

    return _streaming_kernel("549.fotonik3d_r", body, iterations, seed)


def roms(iterations: int = 24, seed: int = 23) -> Program:
    """Ocean model with SELECT-based upwinding and a periodic divide."""
    r, v = ireg, vreg

    def prologue(b: ProgramBuilder) -> None:
        b.movi(r(9), 3)

    def body(b: ProgramBuilder) -> None:
        b.vld(v(0), r(2), 0)
        b.vld(v(1), r(2), 32)
        b.vreduce(r(6), v(0))
        b.vreduce(r(7), v(1))
        b.cmp(r(6), r(7))
        b.select(r(8), r(6), r(7))           # upwind pick
        b.div(r(8), r(8), r(9))              # CFL divide (region breaker)
        b.vbroadcast(v(2), r(8))
        b.vfma(v(3), v(2), v(0), v(1))
        b.vst(v(3), r(3), 0)

    return _streaming_kernel("554.roms_r", body, iterations, seed, blocks=192,
                             prologue=prologue)
