"""Dynamic-vs-static ATR soundness oracle (probe-based, event layer only)."""

import pytest

from repro.frontend import run_program
from repro.isa import ProgramBuilder, ireg
from repro.pipeline import Core
from repro.pipeline.config import fast_test_config
from repro.staticcheck import (
    AtrSoundnessProbe,
    analyze_regions,
    check_benchmark,
    check_trace,
)
from repro.workloads import build_trace

r = ireg

#: A spread of int/fp kernels with known ATR activity at short traces.
_KERNELS = ["505.mcf_r", "557.xz_r", "531.deepsjeng_r", "503.bwaves_r"]


def _redef_heavy_trace():
    """Straight-line redefinition chains: every window is atomic."""
    b = ProgramBuilder("redef-heavy")
    b.movi(r(1), 1)
    for i in range(40):
        b.add(r(2), r(1), r(1))
        b.movi(r(1), i)
    b.halt()
    return run_program(b.build())


class TestSoundKernels:
    @pytest.mark.parametrize("name", _KERNELS)
    def test_no_unsound_release(self, name):
        for report in check_benchmark(name, instructions=700):
            assert report.ok, report.render()

    @pytest.mark.parametrize("name", _KERNELS)
    def test_pure_atr_claims_every_release(self, name):
        """Under the pure atr scheme there is no nonspec path: every early
        release must carry a claim (strict_unclaimed found none)."""
        report, = check_benchmark(name, instructions=700, schemes=("atr",))
        assert report.releases_seen > 0
        assert report.atr_releases == report.releases_seen

    def test_straight_line_program_is_sound(self):
        trace = _redef_heavy_trace()
        report = check_trace(trace, scheme="atr")
        assert report.ok
        assert report.releases_seen > 0
        # Every def->redef window in this program is statically atomic.
        static = analyze_regions(trace.program)
        counts = static.counts()
        assert counts["atomic"] == counts["closed"] > 0


class TestAdversarial:
    def test_broken_breaker_marking_is_caught(self):
        """Disable the scheme's bulk no-early-release marking at region
        breakers: releases then cross branch boundaries, and the oracle
        must flag them as lacking a static atomic proof."""
        trace = build_trace("505.mcf_r", 800)
        config = fast_test_config(rf_size=48, scheme="atr")
        core = Core(config, trace)
        probe = AtrSoundnessProbe(trace.program, strict_unclaimed=True)
        core.add_probe(probe)
        core.scheme._bulk_mark = lambda: None
        try:
            core.run()
        except Exception:
            pass  # the corruption usually crashes the run; the oracle
            #      verdict is what this test is about
        assert probe.violations
        assert any("not a statically-proven atomic region" in v.reason
                   for v in probe.violations)

    def test_violation_rendering(self):
        trace = build_trace("505.mcf_r", 400)
        config = fast_test_config(rf_size=48, scheme="atr")
        core = Core(config, trace)
        probe = AtrSoundnessProbe(trace.program, strict_unclaimed=True)
        core.add_probe(probe)
        core.scheme._bulk_mark = lambda: None
        try:
            core.run()
        except Exception:
            pass
        assert probe.violations
        text = str(probe.violations[0])
        assert "unsound ATR release" in text
        assert "violations" in probe.summary()


class TestReportApi:
    def test_report_renders_ok(self):
        report = check_trace(_redef_heavy_trace(), scheme="combined")
        assert "OK" in report.render()

    def test_rejects_non_atr_scheme(self):
        with pytest.raises(ValueError, match="no ATR claims"):
            check_trace(_redef_heavy_trace(), scheme="baseline")


class TestChaosIntegration:
    def test_chaos_cell_attaches_oracle(self):
        """ATR chaos cells run with the soundness probe; a healthy scheme
        produces no oracle error."""
        from repro.validate.chaos import ChaosSpec, run_chaos_cell

        spec = ChaosSpec(benchmark="505.mcf_r", scheme="atr", rf_size=48,
                         instructions=300, seed=7, intensity="low")
        result = run_chaos_cell(spec)
        assert result.error is None
