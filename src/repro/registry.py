"""Declarative name registries: one plugin layer for every catalog.

Everything the matrix is made of — workloads, release schemes, branch
predictors, core-config presets, figure modules — is a *named entry* in
a :class:`Registry`.  A registry is a small ordered name->entry map with

* ``register(name)`` usable as a decorator or a direct call,
* aliases (short names resolving to canonical ones),
* lazy entries (a zero-arg thunk resolved, once, on first ``get``), and
* out-of-tree plugin discovery.

The domain registries live next to their entry types (``WORKLOADS`` in
:mod:`repro.workloads.suite`, ``SCHEMES`` in
:mod:`repro.rename.schemes`, ``PREDICTORS`` in :mod:`repro.branch`,
``CORE_CONFIGS`` in :mod:`repro.pipeline.config`, ``FIGURES`` in
:mod:`repro.experiments`); this module owns only the generic core, so
it can be imported from anywhere without cycles.

Plugin discovery
----------------

``load_plugins()`` imports, once per process,

* every module named in the ``REPRO_PLUGINS`` environment variable
  (comma-separated importable module names), then
* a module called ``repro_plugins`` if one is importable (the
  entry-point-style hook: drop a ``repro_plugins.py`` on ``sys.path``).

A plugin module registers its entries at import time::

    # my_plugins.py  (REPRO_PLUGINS=my_plugins)
    from repro.workloads.suite import WORKLOADS, Workload
    WORKLOADS.register("900.toy_r", Workload(...))

or, to receive every registry at once, defines
``repro_register(registries)`` which is called with the
``{kind: Registry}`` map after import.  Registries call
``load_plugins()`` themselves on a lookup miss, so a plugin workload is
resolvable the first time anyone names it; ``repro list`` forces a load
so plugin entries always show up there.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

PLUGINS_ENV = "REPRO_PLUGINS"
PLUGIN_MODULE = "repro_plugins"

_MISSING = object()


class RegistryError(KeyError):
    """Unknown / duplicate name in a registry (a ``KeyError`` subclass so
    existing ``except KeyError`` call sites keep working)."""

    def __str__(self) -> str:  # KeyError repr-quotes its arg; we don't want that
        return self.args[0] if self.args else ""


class Registry:
    """An ordered name -> entry map with aliases, lazy entries, plugins."""

    #: Every live registry by kind, for ``repro list`` and the
    #: ``repro_register(registries)`` plugin hook.
    _instances: Dict[str, "Registry"] = {}

    def __init__(self, kind: str, *, doc: str = ""):
        self.kind = kind
        self.doc = doc
        self._entries: Dict[str, Any] = {}
        self._lazy: Dict[str, Callable[[], Any]] = {}
        self._aliases: Dict[str, str] = {}
        Registry._instances[kind] = self

    # -- registration ------------------------------------------------------------
    def register(self, name: str, entry: Any = _MISSING, *,
                 aliases: Tuple[str, ...] = (), replace: bool = False):
        """Register *entry* under *name*; usable as a decorator.

        As a decorator (``@REG.register("name")``) the decorated object
        is the entry and is returned unchanged.
        """
        if entry is _MISSING:
            def decorator(obj):
                self.register(name, obj, aliases=aliases, replace=replace)
                return obj
            return decorator
        self._claim(name, replace)
        self._entries[name] = entry
        for alias in aliases:
            self.alias(alias, name, replace=replace)
        return entry

    def register_lazy(self, name: str, thunk: Callable[[], Any], *,
                      aliases: Tuple[str, ...] = (),
                      replace: bool = False) -> None:
        """Register a zero-arg *thunk* resolved (once) on first ``get``."""
        self._claim(name, replace)
        self._lazy[name] = thunk
        for alias in aliases:
            self.alias(alias, name, replace=replace)

    def alias(self, alias: str, target: str, *, replace: bool = False) -> None:
        if not replace and (alias in self._entries or alias in self._lazy
                            or alias in self._aliases):
            raise RegistryError(
                f"{self.kind} alias {alias!r} collides with an existing name")
        self._aliases[alias] = target

    def unregister(self, name: str) -> None:
        """Remove *name* and any aliases pointing at it (test/plugin hook)."""
        self._entries.pop(name, None)
        self._lazy.pop(name, None)
        for alias in [a for a, t in self._aliases.items() if t == name or a == name]:
            del self._aliases[alias]

    def _claim(self, name: str, replace: bool) -> None:
        if not isinstance(name, str) or not name:
            raise RegistryError(f"{self.kind} name must be a non-empty string")
        if not replace and name in self:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered "
                f"(pass replace=True to override)")
        # A re-registration (replace=True) must not leave a stale twin
        # behind in the other table.
        self._entries.pop(name, None)
        self._lazy.pop(name, None)

    # -- lookup ------------------------------------------------------------------
    def canonical(self, name: str) -> str:
        """Resolve aliases to the canonical registered name (no entry load)."""
        seen = set()
        while name in self._aliases:
            if name in seen:  # defensive: alias cycle
                break
            seen.add(name)
            name = self._aliases[name]
        return name

    def get(self, name: str) -> Any:
        """The entry for *name* (alias-resolved, lazy entries realized).

        A miss triggers one plugin-discovery pass before failing with a
        :class:`RegistryError` naming the valid choices.
        """
        key = self.canonical(name)
        if key not in self._entries and key not in self._lazy:
            load_plugins()
            key = self.canonical(name)
        if key in self._lazy:
            entry = self._lazy.pop(key)()
            self._entries[key] = entry
            return entry
        try:
            return self._entries[key]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; "
                f"valid: {', '.join(self.names())}") from None

    def names(self) -> Tuple[str, ...]:
        """Canonical names, in registration order."""
        ordered = dict.fromkeys(self._entries)
        ordered.update(dict.fromkeys(self._lazy))
        return tuple(ordered)

    def aliases(self) -> Dict[str, str]:
        return dict(self._aliases)

    def items(self) -> Iterator[Tuple[str, Any]]:
        for name in self.names():
            yield name, self.get(name)

    def keys(self) -> Tuple[str, ...]:
        return self.names()

    def values(self) -> Iterator[Any]:
        for name in self.names():
            yield self.get(name)

    # Mapping-shaped access so a Registry drops in where a plain dict
    # used to live (``name in PREDICTORS``, ``sorted(PREDICTORS)``,
    # ``PREDICTORS[name]``).
    def __getitem__(self, name: str) -> Any:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        key = self.canonical(name)
        if key in self._entries or key in self._lazy:
            return True
        load_plugins()
        key = self.canonical(name)
        return key in self._entries or key in self._lazy

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries) + len(self._lazy)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self)} entries)"


def registries() -> Dict[str, Registry]:
    """Every live registry by kind (imports the standard providers first)."""
    # The domain registries are created as a side effect of importing
    # their home modules; pull them all in so the map is complete.
    for module in ("repro.workloads.suite", "repro.rename.schemes",
                   "repro.branch", "repro.pipeline.config",
                   "repro.experiments"):
        importlib.import_module(module)
    return dict(Registry._instances)


# -- plugin discovery ----------------------------------------------------------

_plugins_attempted: set = set()
_plugins_done = False


def plugin_modules() -> List[str]:
    """The module names a discovery pass would import, in order."""
    names = [part.strip()
             for part in os.environ.get(PLUGINS_ENV, "").split(",")
             if part.strip()]
    if PLUGIN_MODULE not in names and \
            importlib.util.find_spec(PLUGIN_MODULE) is not None:
        names.append(PLUGIN_MODULE)
    return names


def load_plugins(force: bool = False) -> Tuple[str, ...]:
    """Import every plugin module (once per process); returns those loaded.

    Import errors propagate: a broken plugin should fail loudly at the
    first lookup that needed it, not silently vanish from the matrix.
    """
    global _plugins_done
    wanted = plugin_modules()
    if _plugins_done and not force and all(m in _plugins_attempted for m in wanted):
        return ()
    loaded = []
    for name in wanted:
        if name in _plugins_attempted and not force:
            continue
        _plugins_attempted.add(name)
        module = importlib.import_module(name)
        hook = getattr(module, "repro_register", None)
        if callable(hook):
            hook(dict(Registry._instances))
        loaded.append(name)
    _plugins_done = True
    return tuple(loaded)


def reset_plugins() -> None:
    """Forget which plugin modules were loaded (test hook).

    Does not un-import them — combine with ``sys.modules`` surgery and
    ``Registry.unregister`` to fully undo a plugin in a test.
    """
    global _plugins_done
    _plugins_attempted.clear()
    _plugins_done = False


__all__ = [
    "Registry", "RegistryError", "registries",
    "load_plugins", "reset_plugins", "plugin_modules",
    "PLUGINS_ENV", "PLUGIN_MODULE",
]
