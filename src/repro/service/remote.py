"""Remote sweep resolution: route cold cells through a running service.

``repro figure all --remote`` (and any other sweep) can hand its cold
specs to the shared service instead of forking local workers: the specs
are submitted as one job, watched to completion, and the results pulled
back — from the local store when the client shares the coordinator's
filesystem (the common case: every put lands there), otherwise over the
``fetch`` op.  A warm service answers the whole sweep without a single
local simulation; that is the "millions of users hit a warm cache"
serving path.

The hook is deliberately failure-transparent: if no service is
reachable the sweep falls back to the local scheduler, and a service
that dies mid-sweep only costs the cells it had not finished.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, Tuple

from ..harness.scheduler import CellFailure, run_specs
from ..harness.spec import Spec, spec_digest, spec_to_dict
from ..harness.store import ResultStore
from ..harness.sweep import set_remote_resolver
from ..harness.serialize import decode_result
from .api import ServiceClient, ServiceError, ServiceUnavailable


def remote_resolver(client: ServiceClient,
                    store: Optional[ResultStore] = None,
                    label: str = "sweep", priority: int = 0,
                    interval: float = 0.2):
    """A ``sweep``-layer resolver bound to *client*.

    Matches the :func:`repro.harness.scheduler.run_specs` contract:
    ``resolver(cold_specs, progress) -> (results, failures)``.
    """
    store = store or ResultStore()

    def resolve(cold: List[Spec], progress) -> Tuple[list, List[CellFailure]]:
        try:
            receipt = client.submit([spec_to_dict(spec) for spec in cold],
                                    priority=priority, label=label)
            final = client.wait(receipt["job"], interval=interval)
        except (ServiceError, OSError) as exc:
            print(f"remote sweep failed ({exc}); running locally",
                  file=sys.stderr)
            return run_specs(cold, progress=progress)

        failed_digests = {cell["digest"]: cell.get("error") or "cell failed"
                          for cell in final.get("failed_cells", [])}
        results = []
        failures: List[CellFailure] = []
        started = time.monotonic()
        for spec in cold:
            digest = spec_digest(spec)
            if digest in failed_digests:
                error = f"remote: {failed_digests[digest]}"
                progress.fail(spec, error)
                failures.append(CellFailure(spec, error, attempts=1))
                continue
            result = store.get(spec)
            if result is None:
                # No shared filesystem with the coordinator: pull the
                # encoded payload over the wire (and cache it locally).
                try:
                    payload = client.fetch(spec_to_dict(spec))
                except (ServiceError, OSError):
                    payload = None
                if payload is None:
                    error = "remote: job done but result unavailable"
                    progress.fail(spec, error)
                    failures.append(CellFailure(spec, error, attempts=1))
                    continue
                result = decode_result(payload)
                store.put(spec, result)
            results.append((spec, result))
            progress.done(spec, time.monotonic() - started)
            started = time.monotonic()
        return results, failures

    return resolve


def use_remote(addr: Optional[str] = None,
               store: Optional[ResultStore] = None,
               label: str = "sweep") -> Optional[ServiceClient]:
    """Install the remote resolver if a service answers at *addr*.

    Returns the connected client, or None (resolver untouched) when no
    service is reachable — callers fall back to local execution.
    """
    client = ServiceClient(addr)
    try:
        client.ping()
    except ServiceUnavailable:
        return None
    except ServiceError:
        return None
    set_remote_resolver(remote_resolver(client, store=store, label=label))
    return client


def clear_remote() -> None:
    set_remote_resolver(None)
