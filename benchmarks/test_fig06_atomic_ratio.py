"""Figure 6: atomic register ratio (non-branch / non-except / atomic)."""

from repro.experiments import expectations, fig06

from conftest import emit


def test_fig06_atomic_ratio(benchmark, int_suite, fp_suite, instructions):
    result = benchmark.pedantic(
        fig06.run,
        kwargs=dict(int_benchmarks=int_suite, fp_benchmarks=fp_suite,
                    instructions=instructions),
        rounds=1, iterations=1,
    )
    emit(result)
    # Paper: 17.04% int / 13.14% fp of allocations are atomic; our kernels
    # land in the same band.
    assert 0.05 < result.average("int") < 0.60
    assert 0.05 < result.average("fp") < 0.40
