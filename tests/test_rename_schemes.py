"""Scheme unit tests: drive the release schemes through their hook API
directly, without the pipeline, to pin down the ATR mechanisms —
claiming, bulk marking, delayed redefinition, and the two-bit flush walk
(including the reallocation-during-flush corner cases)."""

import pytest

from repro.isa import FLAGS, Instruction, Opcode, RegClass, ireg
from repro.rename import RenameUnit, make_scheme
from repro.rename.schemes import SCHEME_NAMES


class FakeEntry:
    """Stands in for a ROB entry in scheme unit tests."""

    def __init__(self, seq, instr):
        self.seq = seq
        self.instr = instr
        self.dests = []
        self.src_ptags = []
        self.issued = False
        self.completed = False
        self.precommitted = False
        self.squashed = False
        self.wrong_path = False
        self.dyn = None


class Machine:
    """Minimal rename-stage driver around a scheme."""

    def __init__(self, scheme_name, int_size=32, delay=0):
        self.unit = RenameUnit(int_size=int_size, vec_size=24, reserve=0)
        self.scheme = make_scheme(scheme_name, redefine_delay=delay)
        self.scheme.attach(self.unit)
        self.cycle = 0
        self.seq = 0

    def tick(self, cycles=1):
        for _ in range(cycles):
            self.cycle += 1
            self.scheme.tick(self.cycle)

    def rename(self, opcode, dest=None, srcs=()):
        instr = Instruction(
            opcode,
            dests=(dest,) if dest else (),
            srcs=tuple(srcs),
            target=0 if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.JMP) else None,
        )
        entry = FakeEntry(self.seq, instr)
        self.seq += 1
        entry.src_ptags = self.unit.lookup_sources(instr)
        self.scheme.pre_rename(entry, self.cycle)
        entry.dests = self.unit.allocate_dests(instr, self.cycle, entry.seq)
        self.scheme.post_rename(entry, self.cycle)
        return entry

    def issue(self, entry):
        entry.issued = True
        self.scheme.on_issue(entry, self.cycle)

    def complete(self, entry):
        entry.completed = True
        for record in entry.dests:
            prt = self.unit.files[record.file].prt
            prt.mark_written(record.new_ptag)
            self.scheme.on_writeback(record.file, record.new_ptag, self.cycle)

    def run_to_completion(self, entry):
        self.issue(entry)
        self.complete(entry)

    def precommit(self, entry):
        entry.precommitted = True
        self.scheme.on_precommit(entry, self.cycle)

    def commit(self, entry):
        self.scheme.on_commit(entry, self.cycle)

    def flush(self, entries_young_to_old):
        for entry in entries_young_to_old:
            entry.squashed = True
            for record in entry.dests:
                self.unit.files[record.file].rat.write(record.slot, record.prev_ptag)
        self.scheme.on_flush(entries_young_to_old, self.cycle)

    def int_free(self):
        return self.unit.files[RegClass.INT].freelist.free_count

    def is_free(self, ptag):
        return self.unit.files[RegClass.INT].freelist.is_free(ptag)


R1, R2, R3 = ireg(1), ireg(2), ireg(3)


def _flush_point(m):
    """Rename the mispredicted branch that will be the flush point.

    Any real flush is caused by a breaker, whose bulk marking guarantees
    no flushed instruction claimed a surviving register; scheme flush
    tests must reproduce that structure.
    """
    branch = m.rename(Opcode.BNE, srcs=[FLAGS])
    m.run_to_completion(branch)
    return branch



class TestBaseline:
    def test_frees_only_at_commit(self):
        m = Machine("baseline")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        old = producer.dests[0].prev_ptag
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        m.run_to_completion(producer)
        m.run_to_completion(redefiner)
        assert not m.is_free(old)
        m.commit(producer)
        assert m.is_free(old)

    def test_flush_reclaims_new_ptags(self):
        m = Machine("baseline")
        before = m.int_free()
        e1 = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        e2 = m.rename(Opcode.SUB, dest=R2, srcs=[R1, R3])
        m.flush([e2, e1])
        assert m.int_free() == before


class TestAtrClaiming:
    def test_atomic_chain_released_at_redefine(self):
        """alloc -> consume -> redefine with no breakers: freed without
        any commit (the paper's Figure 8)."""
        m = Machine("atr")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        consumer = m.rename(Opcode.SUB, dest=R2, srcs=[R1, R3])
        m.run_to_completion(consumer)
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        assert m.is_free(p1)
        assert redefiner.dests[0].release_prev is None  # claimed
        # p1 plus the architectural mappings displaced by producer/consumer
        assert m.scheme.stats.atr_frees >= 1

    def test_branch_between_blocks_claim(self):
        m = Machine("atr")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        m.rename(Opcode.BNE, srcs=[FLAGS])       # breaker
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        assert not m.is_free(p1)
        assert redefiner.dests[0].release_prev == p1  # commit will free

    @pytest.mark.parametrize("breaker,kwargs", [
        (Opcode.LD, dict(dest=R3, srcs=[R2])),
        (Opcode.ST, dict(srcs=[R2, R3])),
        (Opcode.DIV, dict(dest=R3, srcs=[R2, R3])),
        (Opcode.JR, dict(srcs=[R2])),
    ])
    def test_all_breaker_kinds_block_claim(self, breaker, kwargs):
        m = Machine("atr")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        m.rename(breaker, **kwargs)
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        assert redefiner.dests[0].release_prev == p1

    def test_direct_jump_does_not_block(self):
        m = Machine("atr")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        m.run_to_completion(producer)
        m.rename(Opcode.JMP)
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        assert redefiner.dests[0].release_prev is None

    def test_region_may_begin_with_breaker(self):
        """A load's own destination is not marked by its own bulk scan."""
        m = Machine("atr")
        load = m.rename(Opcode.LD, dest=R1, srcs=[R2])
        p1 = load.dests[0].new_ptag
        m.run_to_completion(load)
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        assert redefiner.dests[0].release_prev is None
        assert m.is_free(p1)

    def test_release_waits_for_consumers(self):
        m = Machine("atr")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        consumer = m.rename(Opcode.SUB, dest=R2, srcs=[R1, R3])
        m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])  # redefine (claims)
        assert not m.is_free(p1)  # consumer not issued yet
        m.issue(consumer)
        assert m.is_free(p1)

    def test_release_waits_for_producer_writeback(self):
        m = Machine("atr")
        producer = m.rename(Opcode.MUL, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.issue(producer)  # issued but value not written yet
        m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        assert not m.is_free(p1)
        m.complete(producer)
        assert m.is_free(p1)

    def test_seventh_consumer_saturates_and_blocks(self):
        m = Machine("atr")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        consumers = [m.rename(Opcode.ADD, dest=R2, srcs=[R1, R1]) for _ in range(4)]
        for consumer in consumers:
            m.run_to_completion(consumer)  # 8 source reads > 6
        m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        assert not m.is_free(p1)

    def test_redefine_delay_postpones_release(self):
        m = Machine("atr", delay=2)
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        assert not m.is_free(p1)
        m.tick()  # +1
        assert not m.is_free(p1)
        m.tick()  # +2: signal visible
        assert m.is_free(p1)


class TestAtrFlushWalk:
    def test_released_ptag_not_double_freed(self):
        m = Machine("atr")
        _flush_point(m)
        before = m.int_free()
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        m.run_to_completion(redefiner)
        assert m.is_free(p1)
        m.flush([redefiner, producer])  # no DoubleFreeError
        assert m.int_free() == before

    def test_unreleased_claim_is_reclaimed(self):
        """Claimed but consumers never issued: the walk must free it."""
        m = Machine("atr")
        _flush_point(m)
        before = m.int_free()
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        m.run_to_completion(producer)
        consumer = m.rename(Opcode.SUB, dest=R2, srcs=[R1, R3])
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        m.run_to_completion(redefiner)
        m.flush([redefiner, consumer, producer])
        assert m.int_free() == before

    def test_unwritten_producer_claim_reclaimed(self):
        m = Machine("atr")
        _flush_point(m)
        before = m.int_free()
        producer = m.rename(Opcode.MUL, dest=R1, srcs=[R2, R3])
        m.issue(producer)  # never completes (flushed)
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        m.flush([redefiner, producer])
        assert m.int_free() == before

    def test_reallocation_during_flush_window(self):
        """p1 released, reallocated to a younger (also flushed)
        instruction: exactly one free of p1 during the walk."""
        m = Machine("atr", int_size=20)  # tight file to force quick reuse
        _flush_point(m)
        before = m.int_free()
        flushed = []
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        flushed.append(producer)
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        m.run_to_completion(redefiner)
        flushed.append(redefiner)
        assert m.is_free(p1)
        # Burn through the free list until p1 is reallocated.
        reused = None
        for _ in range(m.int_free()):
            entry = m.rename(Opcode.ADD, dest=R2, srcs=[R3, R3])
            m.run_to_completion(entry)
            flushed.append(entry)
            if entry.dests[0].new_ptag == p1:
                reused = entry
                break
        assert reused is not None, "p1 was not reallocated"
        m.flush(list(reversed(flushed)))
        assert m.int_free() == before

    def test_pending_delay_signal_drained_on_flush(self):
        m = Machine("atr", delay=2)
        _flush_point(m)
        before = m.int_free()
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        m.run_to_completion(producer)
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        m.run_to_completion(redefiner)
        # Flush arrives before the redefinition signal becomes visible.
        m.flush([redefiner, producer])
        assert m.int_free() == before

    def test_chained_claims_same_register(self):
        m = Machine("atr")
        _flush_point(m)
        before = m.int_free()
        entries = []
        for _ in range(4):
            entry = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
            m.run_to_completion(entry)
            entries.append(entry)
        m.flush(list(reversed(entries)))
        assert m.int_free() == before


class TestNonSpec:
    def test_release_needs_precommit(self):
        m = Machine("nonspec_er")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        m.run_to_completion(redefiner)
        assert not m.is_free(p1)
        m.precommit(redefiner)
        assert m.is_free(p1)
        assert m.scheme.stats.nonspec_frees == 1

    def test_release_on_late_count_zero(self):
        m = Machine("nonspec_er")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        consumer = m.rename(Opcode.SUB, dest=R2, srcs=[R1, R3])
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        m.run_to_completion(redefiner)
        m.precommit(redefiner)
        assert not m.is_free(p1)  # consumer outstanding
        m.issue(consumer)
        assert m.is_free(p1)

    def test_no_double_free_at_commit(self):
        m = Machine("nonspec_er")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        m.run_to_completion(producer)
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        m.run_to_completion(redefiner)
        m.precommit(redefiner)
        m.commit(redefiner)  # must not double free

    def test_works_across_branches(self):
        """nonspec-ER covers non-atomic regions (unlike ATR)."""
        m = Machine("nonspec_er")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        m.rename(Opcode.BNE, srcs=[FLAGS])
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        m.run_to_completion(redefiner)
        m.precommit(redefiner)
        assert m.is_free(p1)

    def test_flush_restores_counts(self):
        m = Machine("nonspec_er")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        ghost = m.rename(Opcode.SUB, dest=R2, srcs=[R1, R3])  # never issues
        m.flush([ghost])
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        m.run_to_completion(redefiner)
        m.precommit(redefiner)
        assert m.is_free(p1)  # stale increment was undone


class TestCombined:
    def test_atomic_released_before_precommit(self):
        m = Machine("combined")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        assert m.is_free(p1)
        # one free for p1 plus one for the displaced architectural mapping
        assert m.scheme.stats.atr_frees == 2

    def test_non_atomic_released_at_precommit(self):
        m = Machine("combined")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        m.rename(Opcode.BNE, srcs=[FLAGS])
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        m.run_to_completion(redefiner)
        assert not m.is_free(p1)
        m.precommit(redefiner)
        assert m.is_free(p1)
        assert m.scheme.stats.nonspec_frees == 1

    def test_counts_survive_bulk_marking(self):
        """The NER bit must not destroy the shared consumer count."""
        m = Machine("combined")
        producer = m.rename(Opcode.ADD, dest=R1, srcs=[R2, R3])
        p1 = producer.dests[0].new_ptag
        m.run_to_completion(producer)
        consumer = m.rename(Opcode.SUB, dest=R2, srcs=[R1, R3])
        m.rename(Opcode.BNE, srcs=[FLAGS])  # bulk-marks p1
        redefiner = m.rename(Opcode.ADD, dest=R1, srcs=[R3, R3])
        m.run_to_completion(redefiner)
        m.precommit(redefiner)
        assert not m.is_free(p1)  # consumer still outstanding
        m.issue(consumer)
        assert m.is_free(p1)      # count reached zero -> nonspec frees


@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_factory_builds_every_scheme(name):
    scheme = make_scheme(name)
    assert scheme.name == name


def test_factory_rejects_unknown():
    with pytest.raises(ValueError):
        make_scheme("magic")
