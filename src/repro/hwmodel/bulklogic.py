"""Gate-level model of the bulk no-early-release logic (paper section 4.2.2 / 4.4).

In an N-wide rename group on an x86-like core, renaming a branch or
exception-causing instruction must set no-early-release for every ptag
currently referenced by the SRT *and* for the new ptags of instructions
renamed earlier in the same cycle.  For the paper's 8-wide example that
is ``16 + 7 = 23`` candidate ptags, each compared against nothing — the
marking is unconditional once a breaker is present — but each of the 23
*no-early-release signals* must account for:

* which of the N instructions in the group is a breaker (``is_breaker``
  flags after decode),
* group ordering: instruction *i*'s new ptag is only marked by breakers
  *younger* than *i* in the same group,
* redefinition within the group: an SRT ptag that instruction *i*
  redefines is only marked by breakers at or older than *i* (younger
  breakers see the new mapping instead), which requires comparing each
  SRT slot against the destination indices of the group's instructions.

The circuit below implements exactly that and is what the depth/area
figures of section 4.4 describe (their Yosys run reports 42 logic levels
and 2,960 gates for the 8-wide configuration; our generator's numbers
land in the same regime and scale the same way with width).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .gates import Netlist


@dataclass
class BulkLogicSpec:
    """Geometry of the rename group and register files."""

    width: int = 8          # superscalar rename width
    arch_regs: int = 16     # SRT slots scanned
    arch_bits: int = 5      # architectural register id width (x86: 4-5)

    @property
    def signal_count(self) -> int:
        """SRT slots + (width - 1) same-group new ptags (the paper's
        16 + 7 = 23 for an 8-wide group)."""
        return self.arch_regs + self.width - 1


def build_bulk_ner_circuit(spec: BulkLogicSpec = BulkLogicSpec()) -> Netlist:
    """The bulk no-early-release signal generator.

    Inputs (per rename group, all active-high):
        is_breaker[i]          instruction i is a branch/ld/st/div
        has_dest[i]            instruction i renames a destination
        dest_id[i][b]          architectural destination id bits
    Outputs:
        ner_srt[s]             mark the ptag currently in SRT slot s
        ner_new[i]             mark the new ptag of group instruction i
                               (for i < width-1; the youngest has no
                               younger breaker)
    """
    n = Netlist("bulk_ner")
    width, slots, bits = spec.width, spec.arch_regs, spec.arch_bits

    is_breaker = [n.input(f"is_breaker{i}") for i in range(width)]
    has_dest = [n.input(f"has_dest{i}") for i in range(width)]
    dest_id = [[n.input(f"dest{i}_b{b}") for b in range(bits)] for i in range(width)]

    # Slot-id constants for the comparators.
    slot_bits: List[List[int]] = []
    for s in range(slots):
        slot_bits.append([n.const(bool((s >> b) & 1)) for b in range(bits)])

    # redefined_before[s][i]: SRT slot s was redefined by an instruction
    # strictly older than i within the group.
    ner_srt: List[int] = []
    for s in range(slots):
        redefined_so_far = n.const(False)
        marked_terms: List[int] = []
        for i in range(width):
            # Breaker i marks slot s only if s not yet redefined in-group.
            visible = n.not_(redefined_so_far)
            marked_terms.append(n.and_(is_breaker[i], visible))
            writes_s = n.and_(has_dest[i], n.equals(dest_id[i], slot_bits[s]))
            redefined_so_far = n.or_(redefined_so_far, writes_s)
        ner_srt.append(n.reduce_tree(n.or_, marked_terms))
        n.output(f"ner_srt{s}", ner_srt[s])

    # ner_new[i]: any younger breaker in the group marks i's new ptag,
    # unless an intervening instruction redefines the same arch reg.
    for i in range(width - 1):
        terms: List[int] = []
        redefined_after = n.const(False)
        for j in range(i + 1, width):
            visible = n.not_(redefined_after)
            terms.append(n.and_(is_breaker[j], visible))
            same_dest = n.and_(
                has_dest[j], n.equals(dest_id[j], dest_id[i])
            )
            redefined_after = n.or_(redefined_after, same_dest)
        n.output(f"ner_new{i}", n.reduce_tree(n.or_, terms))
    return n


def reference_bulk_ner(
    spec: BulkLogicSpec,
    is_breaker: Sequence[bool],
    has_dest: Sequence[bool],
    dest_id: Sequence[int],
) -> Tuple[List[bool], List[bool]]:
    """Pure-Python reference semantics for the circuit (property-tested
    against :func:`build_bulk_ner_circuit`)."""
    ner_srt = [False] * spec.arch_regs
    redefined = [False] * spec.arch_regs
    for i in range(spec.width):
        if is_breaker[i]:
            for s in range(spec.arch_regs):
                if not redefined[s]:
                    ner_srt[s] = True
        if has_dest[i] and dest_id[i] < spec.arch_regs:
            redefined[dest_id[i]] = True

    ner_new = [False] * max(0, spec.width - 1)
    for i in range(spec.width - 1):
        redefined_after = False
        for j in range(i + 1, spec.width):
            if is_breaker[j] and not redefined_after:
                ner_new[i] = True
            if has_dest[j] and dest_id[j] == dest_id[i]:
                redefined_after = True
    return ner_srt, ner_new


def evaluate_circuit(
    netlist: Netlist,
    spec: BulkLogicSpec,
    is_breaker: Sequence[bool],
    has_dest: Sequence[bool],
    dest_id: Sequence[int],
) -> Tuple[List[bool], List[bool]]:
    """Drive the netlist with a concrete rename group."""
    inputs: Dict[str, bool] = {}
    for i in range(spec.width):
        inputs[f"is_breaker{i}"] = bool(is_breaker[i])
        inputs[f"has_dest{i}"] = bool(has_dest[i])
        for b in range(spec.arch_bits):
            inputs[f"dest{i}_b{b}"] = bool((dest_id[i] >> b) & 1)
    out = netlist.evaluate(inputs)
    ner_srt = [out[f"ner_srt{s}"] for s in range(spec.arch_regs)]
    ner_new = [out[f"ner_new{i}"] for i in range(spec.width - 1)]
    return ner_srt, ner_new


@dataclass
class TimingReport:
    """Section 4.4-style synthesis summary."""

    gates: int
    logic_levels: int
    fo4_delay: float
    #: ps per FO4 at the assumed node (paper: 4.5 ps at 5nm).
    ps_per_fo4: float = 4.5
    #: Wire/fan-in margin (paper assumes 100%).
    margin: float = 2.0

    @property
    def delay_ps(self) -> float:
        return self.fo4_delay * self.ps_per_fo4 * self.margin

    @property
    def max_frequency_ghz(self) -> float:
        return 1000.0 / self.delay_ps if self.delay_ps else float("inf")

    def frequency_with_pipelining(self, stages: int) -> float:
        """Clock after splitting into *stages* pipeline stages."""
        return self.max_frequency_ghz * stages


def timing_report(spec: BulkLogicSpec = BulkLogicSpec()) -> TimingReport:
    netlist = build_bulk_ner_circuit(spec)
    return TimingReport(
        gates=netlist.gate_count,
        logic_levels=netlist.logic_depth(),
        fo4_delay=netlist.fo4_delay(),
    )
