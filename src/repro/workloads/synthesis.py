"""Statistical workload synthesis.

Generates random programs whose dynamic behaviour matches a
:class:`WorkloadProfile` — instruction mix, branch density and bias,
atomic-region length distribution, consumers per value.  This complements
the hand-written SPEC kernels: property tests sweep profile space to probe
scheme correctness on program shapes nobody wrote by hand, and users can
model their own workloads.

The generator emits a chain of basic blocks.  Each block is a run of
straight-line code (the atomic-region material) terminated by the
profile's choice of branch / call / memory instruction; a loop around the
whole chain provides the dynamic length.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..isa import Program, ProgramBuilder, ireg, vreg

_DATA = 0x30000


@dataclass
class WorkloadProfile:
    """Statistical description of a synthetic workload.

    Fractions need not sum to one; they are sampled as relative weights
    for each emitted instruction.
    """

    name: str = "synthetic"
    #: Relative weights of instruction categories in straight-line code.
    alu_weight: float = 6.0
    mul_weight: float = 0.8
    div_weight: float = 0.1
    load_weight: float = 1.5
    store_weight: float = 0.8
    vec_weight: float = 0.0
    #: Average instructions per basic block (geometric distribution).
    block_length: float = 7.0
    #: Probability a block ends in a conditional branch (vs jump/fallthrough).
    branch_prob: float = 0.7
    #: Probability a conditional branch is taken (controls dynamic path).
    taken_bias: float = 0.5
    #: Number of distinct basic blocks in the generated program.
    blocks: int = 24
    #: Fraction of ALU results consumed 0, 1, 2, 3+ times (weights).
    consumer_weights: tuple = (1.0, 4.0, 2.0, 1.0)
    #: Working-set size in 8-byte words.
    working_set: int = 512
    seed: int = 1234


def synthesize(profile: WorkloadProfile, iterations: int = 32) -> Program:
    """Generate a program matching *profile*; outer loop runs *iterations*."""
    rng = random.Random(profile.seed)
    b = ProgramBuilder(profile.name)
    r, v = ireg, vreg
    b.words(_DATA, [rng.randrange(1, 1 << 20) for _ in range(min(profile.working_set, 2048))])

    # Register roles: r1 loop counter, r2 data pointer, r3 scratch base,
    # r4 constant one, r5..r12 value pool, r13 rng state.
    b.movi(r(1), iterations)
    b.movi(r(2), _DATA)
    b.movi(r(4), 1)
    b.movi(r(13), profile.seed % (1 << 20) + 3)
    for i in range(5, 13):
        b.movi(r(i), rng.randrange(1, 1 << 16))
    if profile.vec_weight > 0:
        for i in range(0, 6):
            b.vbroadcast(v(i), r(5 + i % 8))

    pool = list(range(5, 13))
    weights = [
        (profile.alu_weight, "alu"),
        (profile.mul_weight, "mul"),
        (profile.div_weight, "div"),
        (profile.load_weight, "load"),
        (profile.store_weight, "store"),
        (profile.vec_weight, "vec"),
    ]
    categories = [c for w, c in weights for _ in range(max(0, int(w * 10)))]
    if not categories:
        categories = ["alu"]

    mask = (min(profile.working_set, 2048) - 1) * 8

    def emit_body(block_rng: random.Random) -> None:
        length = max(1, int(block_rng.expovariate(1.0 / profile.block_length)))
        for _ in range(length):
            category = block_rng.choice(categories)
            dst = block_rng.choice(pool)
            a = block_rng.choice(pool)
            c = block_rng.choice(pool)
            if category == "alu":
                op = block_rng.choice(["add", "sub", "xor", "or", "and", "shl", "lea"])
                if op == "shl":
                    b.shl(r(dst), r(a), block_rng.randrange(1, 8))
                elif op == "lea":
                    b.lea(r(dst), r(a), block_rng.randrange(0, 64))
                else:
                    getattr(b, op if op not in ("or", "and") else op + "_")(r(dst), r(a), r(c))
            elif category == "mul":
                b.mul(r(dst), r(a), r(c))
            elif category == "div":
                b.div(r(dst), r(a), r(c))
            elif category == "load":
                b.and_(r(3), r(a), r(4))
                b.shl(r(3), r(a), 3)
                b.movi(r(14), mask)
                b.and_(r(3), r(3), r(14))
                b.add(r(3), r(3), r(2))
                b.ld(r(dst), r(3), 0)
            elif category == "store":
                b.shl(r(3), r(a), 3)
                b.movi(r(14), mask)
                b.and_(r(3), r(3), r(14))
                b.add(r(3), r(3), r(2))
                b.st(r(c), r(3), 0)
            elif category == "vec":
                vd, va, vb_ = (block_rng.randrange(6) for _ in range(3))
                choice = block_rng.random()
                if choice < 0.5:
                    b.vadd(v(vd), v(va), v(vb_))
                elif choice < 0.8:
                    b.vmul(v(vd), v(va), v(vb_))
                else:
                    b.vfma(v(vd), v(va), v(vb_), v(vd))

    # Pseudo-random branch decisions from an LCG over r13 keep the dynamic
    # path data-dependent (and hence realistically mispredictable).
    b.label("top")
    for block in range(profile.blocks):
        b.label(f"block{block}")
        emit_body(rng)
        if rng.random() < profile.branch_prob:
            # threshold on LCG state encodes the taken bias
            b.movi(r(14), 1103515245)
            b.mul(r(13), r(13), r(14))
            b.movi(r(14), 12345)
            b.add(r(13), r(13), r(14))
            b.shr(r(3), r(13), 16)
            b.movi(r(14), 1023)
            b.and_(r(3), r(3), r(14))
            b.movi(r(14), int(1024 * profile.taken_bias))
            b.cmp(r(3), r(14))
            target = f"block{rng.randrange(block + 1, profile.blocks)}" \
                if block + 1 < profile.blocks else "bottom"
            b.blt(target)
    b.label("bottom")
    b.sub(r(1), r(1), r(4))
    b.test(r(1), r(1))
    b.bne("top")
    b.halt()
    return b.build()


#: A few ready-made profiles used by tests and examples.
PROFILES = {
    "alu_heavy": WorkloadProfile(
        name="alu_heavy", alu_weight=10, load_weight=0.5, store_weight=0.2,
        branch_prob=0.3, block_length=12, seed=7,
    ),
    "branchy": WorkloadProfile(
        name="branchy", alu_weight=3, branch_prob=0.95, taken_bias=0.5,
        block_length=3, seed=8,
    ),
    "memory_bound": WorkloadProfile(
        name="memory_bound", alu_weight=2, load_weight=5, store_weight=2,
        working_set=2048, block_length=6, seed=9,
    ),
    "vector": WorkloadProfile(
        name="vector", alu_weight=2, vec_weight=6, load_weight=1,
        branch_prob=0.3, block_length=10, seed=10,
    ),
    "div_heavy": WorkloadProfile(
        name="div_heavy", alu_weight=4, div_weight=2, block_length=6, seed=11,
    ),
}
