"""Serialization round-trips: worker pipe and store share one encoding."""

import json

import pytest

from repro.harness import (
    CellSpec,
    RegionSpec,
    analyze_regions,
    decode_result,
    encode_result,
    simulate_cell,
    spec_digest,
    spec_from_dict,
    spec_to_dict,
)
from repro.pipeline import SimStats
from repro.rename.schemes import SchemeStats


def _json_roundtrip(result):
    """Encode -> JSON text -> decode, exactly as the store does."""
    return decode_result(json.loads(json.dumps(encode_result(result))))


class TestSpecs:
    def test_cell_spec_roundtrip(self):
        spec = CellSpec("505.mcf_r", 64, "atr", 1200, redefine_delay=2,
                        record_register_events=True)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_region_spec_roundtrip(self):
        spec = RegionSpec("557.xz_r", 900)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_digest_depends_on_every_field(self):
        base = CellSpec("mcf", 64, "atr", 1200)
        assert spec_digest(base) == spec_digest(CellSpec("mcf", 64, "atr", 1200))
        for other in (
            CellSpec("xz", 64, "atr", 1200),
            CellSpec("mcf", 96, "atr", 1200),
            CellSpec("mcf", 64, "baseline", 1200),
            CellSpec("mcf", 64, "atr", 1300),
            CellSpec("mcf", 64, "atr", 1200, redefine_delay=1),
            CellSpec("mcf", 64, "atr", 1200, record_register_events=True),
        ):
            assert spec_digest(other) != spec_digest(base)

    def test_specs_are_dict_keys(self):
        cells = {CellSpec("mcf", 64, "atr", 1200): 1,
                 RegionSpec("mcf", 1200): 2}
        assert cells[CellSpec("mcf", 64, "atr", 1200)] == 1
        assert cells[RegionSpec("mcf", 1200)] == 2


class TestSimStats:
    def test_roundtrip(self):
        stats = SimStats(cycles=100, committed=70, fetched=150,
                         committed_by_class={"alu": 50, "mem": 20},
                         stall_freelist=7)
        back = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert back == stats
        assert back.ipc == stats.ipc


class TestSchemeStats:
    def test_roundtrip_restores_int_histogram_keys(self):
        stats = SchemeStats(atr_frees=5, commit_frees=9,
                            claim_consumers={0: 3, 2: 1})
        back = SchemeStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert back == stats
        assert all(isinstance(k, int) for k in back.claim_consumers)


class TestCellResult:
    def test_roundtrip_plain_cell(self):
        result = simulate_cell(CellSpec("505.mcf_r", 64, "atr", 1200))
        back = _json_roundtrip(result)
        assert back.stats == result.stats
        assert back.scheme_stats == result.scheme_stats
        assert back.ipc == result.ipc
        assert back.event_records is None

    def test_roundtrip_with_event_records(self):
        result = simulate_cell(
            CellSpec("531.deepsjeng_r", 128, "baseline", 1200,
                     record_register_events=True))
        back = _json_roundtrip(result)
        assert len(back.event_records) == len(result.event_records)
        for original, restored in zip(result.event_records, back.event_records):
            assert restored.file is original.file
            assert restored.ptag == original.ptag
            assert restored.alloc_cycle == original.alloc_cycle
            assert restored.last_consume_cycle == original.last_consume_cycle
            assert restored.redefiner_commit_cycle == original.redefiner_commit_cycle


class TestRegionReport:
    def test_roundtrip_preserves_figures(self):
        report = analyze_regions(RegionSpec("505.mcf_r", 1200))
        back = _json_roundtrip(report)
        assert back.name == report.name
        assert back.total_allocations == report.total_allocations
        for kind in ("non_branch", "non_except", "atomic"):
            assert back.ratio(kind) == report.ratio(kind)
        assert back.consumer_histogram() == report.consumer_histogram()
        assert back.mean_consumers() == report.mean_consumers()


class TestEnvelope:
    def test_raw_passthrough(self):
        assert decode_result(encode_result({"a": 1})) == {"a": 1}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            decode_result({"kind": "nope", "data": None})
