"""Host-side performance benchmark of the cycle core (``repro bench``).

Measures *simulator* throughput — simulated kilocycles per wall-clock
second and instructions per second — on a fixed protocol, so hot-loop
regressions show up as numbers rather than vibes:

* 505.mcf_r and 503.bwaves_r (one int pointer-chaser, one fp/vector
  kernel), baseline and atr schemes, rf=128, n=20000;
* best-of-3 wall time per cell (per-process best, not mean, to shave
  scheduler noise);
* probes off — the zero-cost-when-off path is the one that matters.

``--quick`` shrinks the protocol to a CI smoke (n=4000, single repeat)
whose only job is to crash loudly if the hot path breaks.

Results are printed and written to ``BENCH_core.json``; EXPERIMENTS.md
records the accepted baseline numbers for the current machine class.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

#: The fixed measurement protocol.
BENCH_BENCHMARKS = ("505.mcf_r", "503.bwaves_r")
BENCH_SCHEMES = ("baseline", "atr")
DEFAULT_INSTRUCTIONS = 20_000
DEFAULT_RF_SIZE = 128
DEFAULT_REPEATS = 3


def bench_core(instructions: int = DEFAULT_INSTRUCTIONS,
               rf_size: int = DEFAULT_RF_SIZE,
               repeats: int = DEFAULT_REPEATS,
               verbose: bool = False) -> Dict:
    """Run the core-throughput protocol; returns the result dict."""
    from .pipeline import Core, golden_cove_config
    from .workloads import build_trace

    cells: List[Dict] = []
    for benchmark in BENCH_BENCHMARKS:
        trace = build_trace(benchmark, instructions)
        for scheme in BENCH_SCHEMES:
            config = golden_cove_config(rf_size=rf_size, scheme=scheme)
            best = None
            cycles = committed = 0
            for _ in range(repeats):
                core = Core(config, trace)
                start = time.perf_counter()
                stats = core.run()
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
                cycles, committed = stats.cycles, stats.committed
            cell = {
                "benchmark": benchmark,
                "scheme": scheme,
                "instructions": committed,
                "sim_cycles": cycles,
                "best_seconds": round(best, 6),
                "kcycles_per_sec": round(cycles / best / 1e3, 1),
                "instr_per_sec": round(committed / best, 1),
            }
            cells.append(cell)
            if verbose:
                print(f"  {benchmark}/{scheme}: "
                      f"{cell['kcycles_per_sec']:.1f} kcycles/s")
    total_cycles = sum(c["sim_cycles"] for c in cells)
    total_instr = sum(c["instructions"] for c in cells)
    total_time = sum(c["best_seconds"] for c in cells)
    return {
        "protocol": {
            "instructions": instructions,
            "rf_size": rf_size,
            "repeats": repeats,
            "benchmarks": list(BENCH_BENCHMARKS),
            "schemes": list(BENCH_SCHEMES),
        },
        "cells": cells,
        "aggregate": {
            "kcycles_per_sec": round(total_cycles / total_time / 1e3, 1),
            "instr_per_sec": round(total_instr / total_time, 1),
            "wall_seconds": round(total_time, 3),
        },
    }


def format_bench(result: Dict) -> str:
    proto = result["protocol"]
    lines = [
        f"core throughput (n={proto['instructions']}, rf={proto['rf_size']}, "
        f"best of {proto['repeats']}):",
        f"  {'cell':<24} {'kcycles/s':>10} {'instr/s':>12}",
    ]
    for cell in result["cells"]:
        name = f"{cell['benchmark']}/{cell['scheme']}"
        lines.append(f"  {name:<24} {cell['kcycles_per_sec']:>10.1f} "
                     f"{cell['instr_per_sec']:>12.1f}")
    agg = result["aggregate"]
    lines.append(f"  {'aggregate':<24} {agg['kcycles_per_sec']:>10.1f} "
                 f"{agg['instr_per_sec']:>12.1f}   "
                 f"({agg['wall_seconds']:.2f}s wall)")
    return "\n".join(lines)


def run_bench_cli(quick: bool = False, output: Optional[str] = "BENCH_core.json",
                  instructions: Optional[int] = None,
                  rf_size: int = DEFAULT_RF_SIZE,
                  repeats: Optional[int] = None,
                  verbose: bool = False) -> int:
    """CLI entry: run, print, persist."""
    if quick:
        n = instructions or 4_000
        reps = repeats or 1
    else:
        n = instructions or DEFAULT_INSTRUCTIONS
        reps = repeats or DEFAULT_REPEATS
    result = bench_core(instructions=n, rf_size=rf_size, repeats=reps,
                        verbose=verbose)
    print(format_bench(result))
    if output:
        with open(output, "w") as fh:
            json.dump(result, fh, indent=1, sort_keys=True)
        print(f"wrote {output}")
    return 0
