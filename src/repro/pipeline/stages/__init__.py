"""The staged pipeline: one module per per-cycle phase.

Each stage implements ``Stage.run(state, cycle)`` over the shared
:class:`~repro.pipeline.state.PipelineState`, mirroring the documented
phase order (oldest work first):

1. scheme tick (delayed ATR redefinition signals become visible)
2. execute — completions: writeback, wakeup, branch resolution -> flush
   (:mod:`.execute`)
3. precommit pointer advance (:mod:`.precommit`)
4. commit, up to retire width (:mod:`.commit`)
5. issue — select oldest-ready per port group (:mod:`.issue`)
6. rename/dispatch, up to rename width, with all stall causes
   (:mod:`.rename`)
7. fetch — up to 2 fetch targets / 6 instructions, icache modeled
   (:mod:`.fetch`)

Flush (:mod:`.flush`) is event-driven, not per-cycle: branch resolution
(execute stage) and the interrupt controller invoke it.  Stages bind hot
state attributes at construction and emit probe events
(:mod:`repro.pipeline.probes`) only when a probe is registered.
"""

from __future__ import annotations


class Stage:
    """One pipeline phase bound to a :class:`PipelineState`.

    Stages cache hot, identity-stable state attributes at construction
    (the ROB, the scheme, heaps, value arrays); anything reassigned at
    runtime (counters, cursors, the probe manager) is read through
    ``state`` inside :meth:`run`.
    """

    name = "abstract"

    def __init__(self, state):
        self.state = state
        self.config = state.config

    def run(self, state, cycle: int) -> None:
        raise NotImplementedError


from .commit import CommitStage
from .execute import ExecuteStage, ExecuteUnit
from .fetch import FetchStage, make_predictor
from .flush import FlushStage
from .issue import PORT_GROUPS, IssueStage, enqueue_ready
from .precommit import PrecommitStage
from .rename import RenameStage


class StagePipeline:
    """The constructed stages of one core, in per-cycle run order."""

    __slots__ = ("fetch", "rename", "issue", "execute", "precommit",
                 "commit", "flush", "execute_unit", "in_order")

    def __init__(self, fetch: FetchStage, rename: RenameStage,
                 issue: IssueStage, execute: ExecuteStage,
                 precommit: PrecommitStage, commit: CommitStage,
                 flush: FlushStage, execute_unit: ExecuteUnit):
        self.fetch = fetch
        self.rename = rename
        self.issue = issue
        self.execute = execute
        self.precommit = precommit
        self.commit = commit
        self.flush = flush
        self.execute_unit = execute_unit
        #: Per-cycle phase order (the scheme tick precedes these).
        self.in_order = (execute, precommit, commit, issue, rename, fetch)


__all__ = [
    "Stage", "StagePipeline",
    "FetchStage", "RenameStage", "IssueStage", "ExecuteStage",
    "ExecuteUnit", "PrecommitStage", "CommitStage", "FlushStage",
    "PORT_GROUPS", "enqueue_ready", "make_predictor",
]
