"""Memory hierarchy: caches, prefetchers, DRAM, MSHRs."""

from .cache import Cache, CacheStats
from .hierarchy import DramModel, HierarchyConfig, MemoryHierarchy
from .prefetch import CompositePrefetcher, NextLinePrefetcher, StridePrefetcher

__all__ = [
    "Cache", "CacheStats",
    "MemoryHierarchy", "HierarchyConfig", "DramModel",
    "NextLinePrefetcher", "StridePrefetcher", "CompositePrefetcher",
]
