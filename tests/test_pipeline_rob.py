"""Reorder buffer unit tests."""

import pytest

from repro.frontend import DynamicInstruction
from repro.isa import Instruction, Opcode, ireg
from repro.pipeline import ReorderBuffer, ROBEntry


def _entry(seq):
    instr = Instruction(Opcode.ADD, dests=(ireg(1),), srcs=(ireg(2), ireg(3)))
    dyn = DynamicInstruction(seq=seq, pc=seq, instr=instr, next_pc=seq + 1)
    return ROBEntry(seq=seq, dyn=dyn, cycle_fetch=0)


def test_append_and_len():
    rob = ReorderBuffer(4)
    rob.append(_entry(0))
    rob.append(_entry(1))
    assert len(rob) == 2
    assert rob.free_slots == 2


def test_overflow_raises():
    rob = ReorderBuffer(1)
    rob.append(_entry(0))
    assert rob.is_full
    with pytest.raises(RuntimeError):
        rob.append(_entry(1))


def test_head_and_pop():
    rob = ReorderBuffer(4)
    rob.append(_entry(0))
    rob.append(_entry(1))
    assert rob.head().seq == 0
    assert rob.pop_head().seq == 0
    assert rob.head().seq == 1


def test_flush_younger_orders_young_first():
    rob = ReorderBuffer(8)
    for seq in range(5):
        rob.append(_entry(seq))
    flushed = rob.flush_younger(2)
    assert [e.seq for e in flushed] == [4, 3]
    assert all(e.squashed for e in flushed)
    assert len(rob) == 3


def test_flush_nothing_younger():
    rob = ReorderBuffer(8)
    rob.append(_entry(0))
    assert rob.flush_younger(5) == []


def test_precommit_offset_tracks_commits():
    rob = ReorderBuffer(8)
    for seq in range(3):
        rob.append(_entry(seq))
    rob.precommit_offset = 2
    rob.pop_head()
    assert rob.precommit_offset == 1
    assert rob.at_offset(rob.precommit_offset).seq == 2


def test_precommit_offset_clamped_by_flush():
    rob = ReorderBuffer(8)
    for seq in range(5):
        rob.append(_entry(seq))
    rob.precommit_offset = 4
    rob.flush_younger(1)
    assert rob.precommit_offset <= len(rob)


def test_compaction_preserves_contents():
    rob = ReorderBuffer(8)
    for seq in range(6000):  # cross the compaction threshold
        rob.append(_entry(seq))
        assert rob.pop_head().seq == seq
    assert len(rob) == 0


def test_in_flight_iterates_oldest_first():
    rob = ReorderBuffer(8)
    for seq in range(3):
        rob.append(_entry(seq))
    rob.pop_head()
    assert [e.seq for e in rob.in_flight()] == [1, 2]
