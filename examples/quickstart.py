#!/usr/bin/env python
"""Quickstart: simulate one workload under every release scheme.

Builds the mcf stand-in kernel, runs the Golden-Cove-like core with a
64-entry register file under the four schemes the paper evaluates, and
prints IPC plus where every register release came from.

Run:  python examples/quickstart.py
"""

from repro.pipeline import Core, golden_cove_config
from repro.workloads import build_trace

INSTRUCTIONS = 8_000
RF_SIZE = 64


def main() -> None:
    trace = build_trace("531.deepsjeng_r", INSTRUCTIONS)
    print(f"workload: {trace.name}  ({len(trace)} instructions)")
    print(f"register file: {RF_SIZE} entries per file (int / vector)\n")

    header = (f"{'scheme':12} {'IPC':>6} {'cycles':>8} {'commit':>7} "
              f"{'ATR':>6} {'nonspec':>8} {'flush':>6}")
    print(header)
    print("-" * len(header))
    baseline_ipc = None
    for scheme in ("baseline", "nonspec_er", "atr", "combined"):
        config = golden_cove_config(rf_size=RF_SIZE, scheme=scheme)
        core = Core(config, trace)
        stats = core.run()
        s = core.scheme.stats
        if baseline_ipc is None:
            baseline_ipc = stats.ipc
        gain = stats.ipc / baseline_ipc - 1
        print(f"{scheme:12} {stats.ipc:6.3f} {stats.cycles:8d} "
              f"{s.commit_frees:7d} {s.atr_frees:6d} {s.nonspec_frees:8d} "
              f"{s.flush_frees:6d}   ({gain:+.1%} vs baseline)")

    print("\nEvery run's committed architectural state is checked against")
    print("the functional emulator inside the test suite; free-list")
    print("conservation is asserted at the end of each run.")


if __name__ == "__main__":
    main()
