"""Unit tests for the architectural register model."""

import pytest

from repro.isa import (
    FLAGS,
    INT_SRT_SLOTS,
    NUM_INT_REGS,
    NUM_VEC_REGS,
    VEC_SRT_SLOTS,
    ArchReg,
    RegClass,
    all_arch_regs,
    ireg,
    parse_reg,
    vreg,
)


class TestArchReg:
    def test_int_reg_name(self):
        assert ireg(3).name == "r3"

    def test_vec_reg_name(self):
        assert vreg(11).name == "v11"

    def test_flags_name(self):
        assert FLAGS.name == "flags"

    def test_int_reg_identity(self):
        assert ireg(5) is ireg(5)

    def test_equality_is_structural(self):
        assert ireg(2) == ArchReg(RegClass.INT, 2)

    def test_int_and_vec_differ(self):
        assert ireg(0) != vreg(0)

    def test_out_of_range_int(self):
        with pytest.raises(IndexError):
            ireg(NUM_INT_REGS)

    def test_out_of_range_vec(self):
        with pytest.raises(IndexError):
            vreg(NUM_VEC_REGS)

    def test_direct_construction_validates(self):
        with pytest.raises(ValueError):
            ArchReg(RegClass.INT, 99)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            ArchReg(RegClass.VEC, -1)

    def test_flags_index_restricted(self):
        with pytest.raises(ValueError):
            ArchReg(RegClass.FLAGS, 1)

    def test_hashable(self):
        assert len({ireg(1), ireg(1), ireg(2)}) == 2

    def test_orderable(self):
        assert sorted([ireg(3), ireg(1)]) == [ireg(1), ireg(3)]


class TestSrtSlots:
    def test_int_slots_are_indices(self):
        for i in range(NUM_INT_REGS):
            assert ireg(i).srt_slot == i

    def test_flags_slot_after_gprs(self):
        assert FLAGS.srt_slot == NUM_INT_REGS

    def test_vec_slots_are_indices(self):
        for i in range(NUM_VEC_REGS):
            assert vreg(i).srt_slot == i

    def test_slot_counts(self):
        assert INT_SRT_SLOTS == NUM_INT_REGS + 1
        assert VEC_SRT_SLOTS == NUM_VEC_REGS

    def test_flags_allocates_from_int_file(self):
        assert RegClass.FLAGS.file is RegClass.INT

    def test_int_file_is_itself(self):
        assert RegClass.INT.file is RegClass.INT
        assert RegClass.VEC.file is RegClass.VEC


class TestParseReg:
    @pytest.mark.parametrize("text,expected", [
        ("r0", ireg(0)), ("r15", ireg(15)), ("v0", vreg(0)),
        ("v15", vreg(15)), ("flags", FLAGS), ("  R3 ", ireg(3)),
        ("FLAGS", FLAGS),
    ])
    def test_valid(self, text, expected):
        assert parse_reg(text) == expected

    @pytest.mark.parametrize("text", ["", "x3", "r", "r16", "v16", "r-1", "reg1"])
    def test_invalid(self, text):
        with pytest.raises((ValueError, IndexError)):
            parse_reg(text)


def test_all_arch_regs_complete():
    regs = all_arch_regs()
    assert len(regs) == NUM_INT_REGS + 1 + NUM_VEC_REGS
    assert FLAGS in regs
    assert len(set(regs)) == len(regs)
