"""Cycle-level out-of-order core (Golden-Cove-like, paper Table 1)."""

from .config import CoreConfig, fast_test_config, golden_cove_config
from .core import Core, DeadlockError, simulate
from .interrupts import InterruptController, InterruptStats
from .rob import ROBEntry, ReorderBuffer
from .stats import RegisterEventLog, RegisterLifetime, SimStats

__all__ = [
    "CoreConfig", "golden_cove_config", "fast_test_config",
    "Core", "simulate", "DeadlockError",
    "InterruptController", "InterruptStats",
    "ReorderBuffer", "ROBEntry",
    "SimStats", "RegisterEventLog", "RegisterLifetime",
]
