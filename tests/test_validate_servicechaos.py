"""Service-chaos campaigns: seeded schedules against a live topology."""

from repro.harness.spec import spec_digest
from repro.service import ServiceFaultSpec
from repro.validate import (
    ScheduleResult,
    ServiceCampaignReport,
    campaign_fault_specs,
    run_service_campaign,
    run_service_chaos_schedule,
)
from repro.validate.servicechaos import chaos_cells

ALL_CLASSES = ("transport", "queuefs", "worker", "coordinator")


def small_spec(seed=1, intensity="medium"):
    """A trimmed topology so a live schedule finishes in ~1s."""
    return ServiceFaultSpec(seed=seed, cells=8, workers=2,
                            intensity=intensity)


def make_result(seed=0, ok=True, classes=ALL_CLASSES, replayable=True):
    return ScheduleResult(
        seed=seed, intensity="low", described=f"servicechaos#{seed}(low)",
        plan_digest="ab" * 32, classes=list(classes), ok=ok,
        failures=[] if ok else ["1 cell(s) lost"],
        fired={"transport": 3}, puts=8, cells=8, worker_respawns=0,
        coordinator_restarts=0, replayable=replayable, duration=0.5)


def test_chaos_cells_deterministic_distinct_and_sized():
    cells = chaos_cells(small_spec())
    assert cells == chaos_cells(small_spec())
    assert len(cells) == 8
    assert len({spec_digest(cell) for cell in cells}) == 8


def test_campaign_fault_specs_cycle_seeds_and_intensities():
    specs = campaign_fault_specs(6, base_seed=10, cells=8, workers=2)
    assert [s.seed for s in specs] == [10, 11, 12, 13, 14, 15]
    assert [s.intensity for s in specs] == ["medium", "high", "low"] * 2
    assert all(s.cells == 8 and s.workers == 2 for s in specs)


def test_single_schedule_proves_exactly_once(tmp_path):
    result = run_service_chaos_schedule(small_spec(seed=3),
                                        tmp_path / "s3")
    assert result.ok, result.failures
    # Exactly-once: the store's lifetime put counter equals the
    # distinct cells, despite crashes/retries/torn writes.
    assert result.puts == result.cells == 8
    assert sum(result.fired.values()) > 0  # chaos actually happened
    assert result.replayable


def test_same_seed_replays_the_identical_plan(tmp_path):
    a = run_service_chaos_schedule(small_spec(seed=5), tmp_path / "a")
    b = run_service_chaos_schedule(small_spec(seed=5), tmp_path / "b")
    assert a.plan_digest == b.plan_digest  # bit-identical schedules
    assert a.ok and b.ok


def test_mini_campaign_end_to_end(tmp_path):
    lines = []
    report = run_service_campaign(schedules=2, base_seed=40,
                                  root=tmp_path, cells=8, workers=2,
                                  progress=lines.append)
    assert len(report.schedules) == 2
    assert len(lines) == 2 and lines[0].startswith("[1/2]")
    assert report.ok, report.render()
    text = report.render()
    assert "campaign: 2 schedules, 2 ok, 0 failed" in text
    assert "replay: plans bit-identical" in text


def test_report_flags_missing_fault_classes():
    report = ServiceCampaignReport([make_result(classes=("transport",))])
    assert report.missing_classes == ["queuefs", "worker", "coordinator"]
    assert not report.ok
    assert "MISSING" in report.render()


def test_report_flags_failures_and_broken_replay():
    assert ServiceCampaignReport([make_result()]).ok

    failed = ServiceCampaignReport([make_result(ok=False)])
    assert not failed.ok
    assert failed.failures and "FAILED" in failed.render()
    assert "1 cell(s) lost" in failed.render()

    broken = ServiceCampaignReport([make_result(replayable=False)])
    assert not broken.ok
    assert "MISMATCH" in broken.render()
