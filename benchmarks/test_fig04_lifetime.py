"""Figure 4: register lifecycle shares (in-use / unused / verified-unused)."""

from repro.experiments import fig04

from conftest import emit


def test_fig04_lifetime(benchmark, int_suite, fp_suite, instructions):
    result = benchmark.pedantic(
        fig04.run,
        kwargs=dict(int_benchmarks=int_suite, fp_benchmarks=fp_suite,
                    instructions=instructions),
        rounds=1, iterations=1,
    )
    emit(result)
    # Shape: a meaningful not-in-use window exists after last-use (the
    # opportunity early release exploits).  Note: our precommit models the
    # guaranteed-not-to-fault point at address translation (issue), which
    # is more aggressive than the paper's measured precommit, so some of
    # the paper's 'unused' share appears here as 'verified-unused'.
    not_in_use = result.int_total.unused + result.int_total.verified_unused
    assert not_in_use > 0.05
    assert result.int_total.in_use > 0.3
