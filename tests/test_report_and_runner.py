"""Experiment runner/report helpers not covered elsewhere."""

import os

import pytest

from repro.experiments.runner import (
    clear_result_cache,
    default_fp_suite,
    default_instructions,
    default_int_suite,
    region_report,
    suite_speedup,
)
from repro.workloads import SPEC_FP, SPEC_INT


def test_default_suites_match_registry():
    assert tuple(default_int_suite()) == SPEC_INT
    assert tuple(default_fp_suite()) == SPEC_FP


def test_default_instructions_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "1234")
    assert default_instructions() == 1234
    monkeypatch.delenv("REPRO_BENCH_INSTRUCTIONS")
    assert default_instructions() == 5000


def test_region_report_cached():
    a = region_report("xz", 1000)
    b = region_report("xz", 1000)
    assert a is b


def test_suite_speedup_small():
    value = suite_speedup(["531.deepsjeng_r"], 64, "nonspec_er",
                          instructions=1500)
    assert -0.2 < value < 3.0


def test_clear_result_cache():
    region_report("xz", 1000)
    clear_result_cache()  # must not raise; next call recomputes
    region_report("xz", 1000)
