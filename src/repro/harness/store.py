"""Persistent result store: content-addressed JSON files on disk.

Layout::

    <root>/                     ~/.cache/repro, or $REPRO_CACHE_DIR
      stats.json                lifetime hit/miss/put/eviction counters
      stats.lock                flock guard for counter updates
      v-<fingerprint16>/        one generation per code version
        <kind>-<digest16>.json  {"spec": ..., "result": ..., "elapsed": ...}

The *code fingerprint* is a SHA-256 over every ``.py`` source of the
``repro`` package — the whole tree, so new subpackages are picked up
automatically — and editing the simulator silently invalidates the
cache (stale generations stay on disk until ``repro cache clear`` or
``repro cache gc``).  Writes are atomic (tmp file + ``os.replace``);
corrupt or unreadable entries read as misses, are deleted, and emit a
warning.  A hit touches the entry's mtime so ``cache gc`` can evict
least-recently-used entries.  Set ``REPRO_NO_CACHE=1`` to disable the
default store entirely.

Accounting happens at two levels: per-instance session counters
(``hits``/``misses``/``puts``) and lifetime counters persisted in
``stats.json`` under an ``fcntl`` file lock, so every process writing
through one root — sweep clients, service workers, the server — adds up
to one coherent total (the service's dedup proof reads the lifetime
``puts`` counter).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional

from .serialize import decode_result, encode_result
from .spec import Spec, spec_digest, spec_to_dict

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_CACHE"
DEFAULT_CACHE_DIR = "~/.cache/repro"

STATS_FILE = "stats.json"
STATS_LOCK = "stats.lock"
#: Lifetime counter names tracked in ``stats.json``.
STATS_KEYS = ("hits", "misses", "puts", "evictions")

_fingerprint_cache: Dict[str, str] = {}


def cache_root() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR).expanduser()


def fingerprint_sources(package_dir: Optional[Path] = None) -> List[Path]:
    """Every source file the code fingerprint covers, sorted.

    Walks the package tree rather than a hard-coded module list, so a
    new subpackage (``repro.service``, …) can never be silently missing
    from the fingerprint; ``tests/test_harness_store.py`` asserts every
    subpackage is represented.
    """
    if package_dir is None:
        package_dir = Path(__file__).resolve().parent.parent
    return sorted(package_dir.rglob("*.py"))


def code_fingerprint(package_dir: Optional[Path] = None) -> str:
    """SHA-256 of the ``repro`` package sources (cached per process)."""
    if package_dir is None:
        package_dir = Path(__file__).resolve().parent.parent
    package_dir = Path(package_dir).resolve()
    key = str(package_dir)
    if key not in _fingerprint_cache:
        digest = hashlib.sha256()
        for path in fingerprint_sources(package_dir):
            digest.update(str(path.relative_to(package_dir)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint_cache[key] = digest.hexdigest()
    return _fingerprint_cache[key]


@contextmanager
def _file_lock(path: Path):
    """Exclusive advisory lock on *path* (created on demand).

    Serializes cross-process read-modify-write of the shared counter
    file; on platforms without ``fcntl`` (Windows) it degrades to
    lock-free best effort — counters may undercount there, never crash.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = open(path, "a+")
    try:
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX fallback
            yield
        else:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    finally:
        handle.close()


class ResultStore:
    """Spec-addressed result cache under one root directory."""

    def __init__(self, root: Optional[Path] = None,
                 fingerprint: Optional[str] = None):
        self.root = Path(root) if root is not None else cache_root()
        self.fingerprint = fingerprint or code_fingerprint()
        #: Session counters (this instance only); lifetime totals live in
        #: ``stats.json`` and are visible through :meth:`counters`.
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # -- paths -------------------------------------------------------------------
    @property
    def generation_dir(self) -> Path:
        return self.root / f"v-{self.fingerprint[:16]}"

    def path_for(self, spec: Spec) -> Path:
        return self.generation_dir / f"{spec.kind}-{spec_digest(spec)[:16]}.json"

    def contains(self, spec: Spec) -> bool:
        """Cheap presence probe (no decode, no counter update)."""
        return self.path_for(spec).is_file()

    # -- lifetime counters -------------------------------------------------------
    @property
    def _stats_path(self) -> Path:
        return self.root / STATS_FILE

    def _bump(self, **deltas: int) -> None:
        """Add *deltas* to the persistent lifetime counters (flock'd)."""
        try:
            with _file_lock(self.root / STATS_LOCK):
                totals = self._read_counters()
                for key, delta in deltas.items():
                    totals[key] = totals.get(key, 0) + delta
                fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
                with os.fdopen(fd, "w") as handle:
                    json.dump(totals, handle)
                os.replace(tmp, self._stats_path)
        except OSError:
            # Counters are accounting, not correctness: a read-only or
            # vanished cache root must never fail a get/put.
            pass

    def _read_counters(self) -> Dict[str, int]:
        try:
            data = json.loads(self._stats_path.read_text())
        except (OSError, ValueError):
            return {}
        return {k: int(v) for k, v in data.items() if isinstance(v, (int, float))}

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Session (this instance) and lifetime (all processes) counters."""
        lifetime = {key: 0 for key in STATS_KEYS}
        lifetime.update(self._read_counters())
        return {
            "session": {"hits": self.hits, "misses": self.misses,
                        "puts": self.puts},
            "lifetime": lifetime,
        }

    # -- access ------------------------------------------------------------------
    def get(self, spec: Spec):
        """The stored result for *spec*, or None on a miss."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            result = decode_result(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            self._bump(misses=1)
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # Corrupt entry (interrupted write of an old layout, truncated
            # file): drop it, warn, and recompute.
            warnings.warn(f"repro cache: dropping corrupt entry {path.name} "
                          f"({type(exc).__name__}: {exc})", stacklevel=2)
            path.unlink(missing_ok=True)
            self.misses += 1
            self._bump(misses=1)
            return None
        self.hits += 1
        self._bump(hits=1)
        try:
            os.utime(path)  # LRU clock for `cache gc`
        except OSError:
            pass
        return result

    def put(self, spec: Spec, result, elapsed: Optional[float] = None) -> Path:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "spec": spec_to_dict(spec),
            "result": encode_result(result),
            "elapsed": elapsed,
        }
        # Atomic publish: a reader sees the old entry or the new one,
        # never a torn write — concurrent writers of the same digest are
        # safe because each replace is all-or-nothing.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        finally:
            # After a successful replace the temp name is gone; anything
            # still there means we are unwinding (including Ctrl-C) and
            # must not leave the orphan behind.  Nothing is caught, so
            # KeyboardInterrupt/SystemExit propagate untouched.
            if os.path.exists(tmp):
                os.unlink(tmp)
        self.puts += 1
        self._bump(puts=1)
        return path

    # -- management --------------------------------------------------------------
    def info(self) -> Dict:
        generations = []
        total_entries = 0
        total_bytes = 0
        if self.root.is_dir():
            for directory in sorted(self.root.glob("v-*")):
                entries = list(directory.glob("*.json"))
                size = sum(p.stat().st_size for p in entries)
                generations.append({
                    "name": directory.name,
                    "entries": len(entries),
                    "bytes": size,
                    "current": directory == self.generation_dir,
                })
                total_entries += len(entries)
                total_bytes += size
        return {
            "root": str(self.root),
            "fingerprint": self.fingerprint,
            "generations": generations,
            "entries": total_entries,
            "bytes": total_bytes,
            "counters": self.counters(),
        }

    def clear(self) -> int:
        """Delete every cached entry (all generations); returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for directory in self.root.glob("v-*"):
            for path in directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            try:
                directory.rmdir()
            except OSError:
                pass
        if removed:
            self._bump(evictions=removed)
        return removed


def default_store() -> Optional[ResultStore]:
    """The process-default store, or None when caching is disabled."""
    if os.environ.get(NO_CACHE_ENV, "").lower() in ("1", "true", "yes", "on"):
        return None
    return ResultStore()
