"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's figures and prints the same
rows/series the paper reports, with measured-vs-paper comparison lines.

Scale knobs (environment variables):

* ``REPRO_BENCH_INSTRUCTIONS`` — dynamic instructions per benchmark
  (default 5000; the paper uses 10M-instruction SimPoints in a C++
  simulator — raise this for tighter numbers at proportional cost).
* ``REPRO_BENCH_SUITE`` — ``full`` (default) or ``quick`` (2 int + 2 fp
  benchmarks, for CI-speed runs).
"""

import os

import pytest

QUICK_INT = ["505.mcf_r", "531.deepsjeng_r"]
QUICK_FP = ["503.bwaves_r", "508.namd_r"]


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_SUITE", "full") == "quick"


@pytest.fixture(scope="session")
def int_suite():
    from repro.workloads import SPEC_INT

    return QUICK_INT if _quick() else list(SPEC_INT)


@pytest.fixture(scope="session")
def fp_suite():
    from repro.workloads import SPEC_FP

    return QUICK_FP if _quick() else list(SPEC_FP)


@pytest.fixture(scope="session")
def instructions():
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "5000"))


def emit(result) -> None:
    """Print a figure's rendering under the benchmark output."""
    print()
    print(result.render())
