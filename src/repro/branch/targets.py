"""Target prediction: BTB, indirect target predictor, return address stack.

The paper's configuration has a 12K-entry BTB and a 3K-entry indirect
target buffer; both are modeled as set-associative tagged structures with
LRU replacement.  The :class:`ReturnAddressStack` mirrors the hardware RAS
including overflow wraparound and (optional) checkpoint/restore used on
flush recovery.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .interface import TargetPredictor


class _SetAssocTargets:
    """Generic set-associative (tag -> target) store with LRU."""

    def __init__(self, entries: int, ways: int):
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.sets = entries // ways
        self.ways = ways
        # Each set is an ordered list of (tag, target); index 0 = MRU.
        self._sets: List[List[Tuple[int, int]]] = [[] for _ in range(self.sets)]

    def _set_of(self, pc: int) -> List[Tuple[int, int]]:
        return self._sets[pc % self.sets]

    def lookup(self, pc: int) -> Optional[int]:
        entries = self._set_of(pc)
        for i, (tag, target) in enumerate(entries):
            if tag == pc:
                entries.insert(0, entries.pop(i))
                return target
        return None

    def install(self, pc: int, target: int) -> None:
        entries = self._set_of(pc)
        for i, (tag, _) in enumerate(entries):
            if tag == pc:
                entries.pop(i)
                break
        entries.insert(0, (pc, target))
        if len(entries) > self.ways:
            entries.pop()


class BranchTargetBuffer(TargetPredictor):
    """BTB for direct branches/jumps/calls."""

    def __init__(self, entries: int = 12288, ways: int = 6):
        self._store = _SetAssocTargets(entries, ways)
        self.lookups = 0
        self.misses = 0

    def predict(self, pc: int) -> Optional[int]:
        self.lookups += 1
        target = self._store.lookup(pc)
        if target is None:
            self.misses += 1
        return target

    def update(self, pc: int, target: int) -> None:
        self._store.install(pc, target)


class IndirectTargetPredictor(TargetPredictor):
    """Path-history-hashed predictor for indirect jumps (ITTAGE-lite).

    Indexes a tagged store with pc XOR folded target history, falling back
    to a per-PC last-target table.
    """

    def __init__(self, entries: int = 3072, ways: int = 3, history_targets: int = 4):
        self._hashed = _SetAssocTargets(entries, ways)
        self._last_target: dict = {}
        self._history: List[int] = []
        self._history_targets = history_targets

    def _hash(self, pc: int) -> int:
        h = pc
        for i, target in enumerate(self._history):
            h ^= (target << (i + 1)) | (target >> 7)
        return h & 0x7FFFFFFF

    def predict(self, pc: int) -> Optional[int]:
        target = self._hashed.lookup(self._hash(pc))
        if target is not None:
            return target
        return self._last_target.get(pc)

    def update(self, pc: int, target: int) -> None:
        self._hashed.install(self._hash(pc), target)
        self._last_target[pc] = target
        self._history.append(target)
        if len(self._history) > self._history_targets:
            self._history.pop(0)


class ReturnAddressStack:
    """Hardware return-address stack with wraparound overflow."""

    def __init__(self, depth: int = 32):
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None

    def peek(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def snapshot(self) -> Tuple[int, ...]:
        return tuple(self._stack)

    def restore(self, snap: Tuple[int, ...]) -> None:
        self._stack = list(snap)

    def __len__(self) -> int:
        return len(self._stack)
