"""Figure 15: register file size needed to stay within 3% of the
280-register baseline, plus the McPAT power/area deltas.

The paper: ATR needs 204 registers (-27.1%), nonspec-ER 212 (-24.3%),
combined 196 (-30%); the ATR configuration saves 5.5% runtime power and
2.7% core area (combined: 5.5% / 2.9%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..hwmodel import CorePowerModel
from ..pipeline import golden_cove_config
from . import expectations
from .report import compare_line, format_table
from .runner import (
    cell_spec,
    default_instructions,
    default_int_suite,
    mean,
    prime_cells,
    run_cell,
)

SCHEMES = ("baseline", "nonspec_er", "atr", "combined")
#: 3-bit consumer counter per physical register for the ER schemes.
_EXTRA_BITS = {"baseline": 0, "nonspec_er": 3, "atr": 3, "combined": 3}


@dataclass
class Fig15Result:
    reference_rf: int
    slowdown_budget: float
    required: Dict[str, int]
    power_delta: Dict[str, float]
    area_delta: Dict[str, float]

    def reduction(self, scheme: str) -> float:
        return 1 - self.required[scheme] / self.reference_rf

    def render(self) -> str:
        rows = [
            [scheme, self.required[scheme], f"{self.reduction(scheme) * 100:.1f}%",
             f"{self.power_delta[scheme] * 100:+.1f}%",
             f"{self.area_delta[scheme] * 100:+.1f}%"]
            for scheme in SCHEMES
        ]
        table = format_table(
            ["scheme", "registers needed", "RF reduction", "power", "area"],
            rows,
            title=f"Figure 15: overhead to stay within "
                  f"{self.slowdown_budget * 100:.0f}% of the "
                  f"{self.reference_rf}-register baseline")
        e = expectations
        lines = [
            table, "",
            compare_line("atr RF reduction", self.reduction("atr"),
                         e.FIG15_REDUCTION["atr"]),
            compare_line("nonspec RF reduction", self.reduction("nonspec_er"),
                         e.FIG15_REDUCTION["nonspec_er"]),
            compare_line("combined RF reduction", self.reduction("combined"),
                         e.FIG15_REDUCTION["combined"]),
            compare_line("atr power saving", -self.power_delta["atr"],
                         e.FIG15_POWER_SAVING["atr"]),
            compare_line("atr area saving", -self.area_delta["atr"],
                         e.FIG15_AREA_SAVING["atr"]),
        ]
        return "\n".join(lines)


def _suite_ipc(benchmarks, rf_size, scheme, instructions, jobs=None) -> float:
    if jobs is not None:
        prime_cells([cell_spec(b, rf_size, scheme, instructions)
                     for b in benchmarks], jobs=jobs)
    return mean(
        run_cell(b, rf_size, scheme, instructions).ipc for b in benchmarks
    )


def minimum_rf_size(
    benchmarks: Sequence[str],
    scheme: str,
    target_ipc: float,
    instructions: int,
    lo: int = 48,
    hi: int = 280,
    step: int = 4,
    jobs: Optional[int] = None,
) -> int:
    """Smallest RF size (on a *step* grid) whose suite IPC >= target.

    Suite IPC is monotone in RF size to within noise, so a binary search
    over the grid suffices.  The search is sequential across sizes, but
    each probe's suite sweeps in parallel with *jobs* workers.
    """
    lo_idx, hi_idx = 0, (hi - lo) // step
    # Ensure the target is achievable at the top of the range.
    if _suite_ipc(benchmarks, hi, scheme, instructions, jobs) < target_ipc:
        return hi
    while lo_idx < hi_idx:
        mid = (lo_idx + hi_idx) // 2
        size = lo + mid * step
        if _suite_ipc(benchmarks, size, scheme, instructions, jobs) >= target_ipc:
            hi_idx = mid
        else:
            lo_idx = mid + 1
    return lo + lo_idx * step


def run(
    benchmarks: Optional[Sequence[str]] = None,
    reference_rf: int = 280,
    slowdown_budget: float = 0.03,
    instructions: Optional[int] = None,
    step: int = 4,
    jobs: Optional[int] = None,
) -> Fig15Result:
    benchmarks = list(default_int_suite() if benchmarks is None else benchmarks)
    instructions = instructions or default_instructions()

    reference_ipc = _suite_ipc(benchmarks, reference_rf, "baseline",
                               instructions, jobs)
    target = reference_ipc * (1 - slowdown_budget)

    required: Dict[str, int] = {}
    power: Dict[str, float] = {}
    area: Dict[str, float] = {}
    reference_config = golden_cove_config(rf_size=reference_rf)
    reference_model = CorePowerModel(reference_config, extra_prf_bits=0)
    reference_cell = run_cell(benchmarks[0], reference_rf, "baseline", instructions)
    reference_power = reference_model.runtime_power(reference_cell.stats)
    reference_area = reference_model.core_area()

    for scheme in SCHEMES:
        required[scheme] = minimum_rf_size(
            benchmarks, scheme, target, instructions, hi=reference_rf, step=step,
            jobs=jobs,
        )
        config = golden_cove_config(rf_size=required[scheme])
        model = CorePowerModel(config, extra_prf_bits=_EXTRA_BITS[scheme])
        cell = run_cell(benchmarks[0], required[scheme], scheme, instructions)
        power[scheme] = (model.runtime_power(cell.stats) - reference_power) / reference_power
        area[scheme] = (model.core_area() - reference_area) / reference_area

    return Fig15Result(
        reference_rf=reference_rf,
        slowdown_budget=slowdown_budget,
        required=required,
        power_delta=power,
        area_delta=area,
    )
