"""Figure 15: RF size needed to stay within 3% of the 280-register
baseline, with McPAT-lite power/area deltas."""

from repro.experiments import fig15

from conftest import emit


def test_fig15_overhead(benchmark, int_suite, instructions):
    result = benchmark.pedantic(
        fig15.run,
        kwargs=dict(benchmarks=int_suite, reference_rf=280, step=16,
                    instructions=instructions),
        rounds=1, iterations=1,
    )
    emit(result)
    # Shape: every early-release scheme needs at most the baseline's
    # registers; combined needs the fewest (paper: 196 vs 204/212/280).
    assert result.required["atr"] <= result.required["baseline"]
    assert result.required["nonspec_er"] <= result.required["baseline"]
    assert result.required["combined"] <= min(
        result.required["atr"], result.required["nonspec_er"]
    ) + 16
    # Smaller RF saves area and power relative to the reference.
    assert result.area_delta["combined"] <= 0.001
