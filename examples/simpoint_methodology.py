#!/usr/bin/env python
"""SimPoint-style evaluation (the paper's section 5.1 methodology).

Slices a long trace into intervals, clusters their basic-block vectors
with k-means, simulates only the representative interval of each cluster,
and aggregates IPC by cluster weight — then compares against simulating
the whole trace.

Run:  python examples/simpoint_methodology.py [benchmark]
"""

import sys

from repro.pipeline import Core, golden_cove_config
from repro.workloads import (
    build_trace,
    pick_simpoints,
    resolve,
    slice_trace,
    weighted_mean,
)


def main() -> None:
    name = resolve(sys.argv[1] if len(sys.argv) > 1 else "x264")
    trace = build_trace(name, 24_000)
    simpoints = pick_simpoints(trace, interval=3_000, max_k=5)
    print(f"workload: {name} ({len(trace)} instructions)")
    print(f"simpoints: {len(simpoints)}")
    for sp in simpoints:
        print(f"  interval @{sp.start:>6} weight {sp.weight:.2f}")

    config = golden_cove_config(rf_size=64, scheme="atr")
    ipcs = []
    for sp in simpoints:
        core = Core(config, slice_trace(trace, sp))
        ipcs.append(core.run().ipc)
    aggregated = weighted_mean(ipcs, simpoints)

    full = Core(config, trace).run().ipc
    error = abs(aggregated - full) / full
    print(f"\nweighted simpoint IPC: {aggregated:.3f}")
    print(f"full-trace IPC:        {full:.3f}   (error {error:.1%})")


if __name__ == "__main__":
    main()
