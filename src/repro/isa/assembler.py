"""Text assembler for the reproduction ISA.

Grammar (one statement per line, ``;`` or ``#`` starts a comment)::

    label:                      ; define a label
    .word  <addr> <value>       ; initial data image entry
    add    r1, r2, r3           ; dest first, then sources
    movi   r1, 42
    ld     r1, r2, 8            ; r1 = mem[r2 + 8]
    st     r1, r2, 8            ; mem[r2 + 8] = r1
    cmp    r1, r2               ; writes flags
    bne    loop                 ; label or absolute @pc
    jr     r4
    halt

The assembler is the inverse of :meth:`Instruction.render` for every opcode
and is used by tests for round-tripping and by users who prefer text kernels
over the builder API.
"""

from __future__ import annotations

from typing import List

from .opcodes import MNEMONICS, Opcode
from .program import Program, ProgramBuilder
from .registers import parse_reg


class AssemblyError(ValueError):
    """Raised on a malformed assembly line, with line-number context."""

    def __init__(self, lineno: int, line: str, reason: str):
        super().__init__(f"line {lineno}: {reason}: {line.strip()!r}")
        self.lineno = lineno
        self.reason = reason


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [op.strip() for op in rest.split(",")]


def _parse_int(text: str) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise ValueError(f"not an integer: {text!r}") from None


def assemble(source: str, name: str = "program") -> Program:
    """Assemble *source* text into a :class:`Program`."""
    builder = ProgramBuilder(name=name)
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        try:
            _assemble_line(builder, line)
        except ValueError as exc:
            raise AssemblyError(lineno, raw, str(exc)) from None
    return builder.build()


def _branch_target(text: str):
    if text.startswith("@"):
        return _parse_int(text[1:])
    return text


def _assemble_line(b: ProgramBuilder, line: str) -> None:
    if line.endswith(":"):
        b.label(line[:-1].strip())
        return
    head, _, rest = line.partition(" ")
    mnemonic = head.lower()
    ops = _split_operands(rest)

    if mnemonic == ".word":
        parts = rest.split()
        if len(parts) != 2:
            raise ValueError(".word takes <addr> <value>")
        b.word(_parse_int(parts[0]), _parse_int(parts[1]))
        return

    if mnemonic not in MNEMONICS:
        raise ValueError(f"unknown mnemonic {mnemonic!r}")
    opcode = MNEMONICS[mnemonic]

    three_reg = {
        Opcode.ADD: b.add, Opcode.SUB: b.sub, Opcode.AND: b.and_,
        Opcode.OR: b.or_, Opcode.XOR: b.xor, Opcode.MUL: b.mul,
        Opcode.DIV: b.div, Opcode.MOD: b.mod, Opcode.VADD: b.vadd,
        Opcode.VSUB: b.vsub, Opcode.VMUL: b.vmul, Opcode.VDIV: b.vdiv,
        Opcode.SELECT: b.select,
    }
    two_reg = {
        Opcode.NOT: b.not_, Opcode.NEG: b.neg, Opcode.MOV: b.mov,
        Opcode.CMP: b.cmp, Opcode.TEST: b.test,
        Opcode.VBROADCAST: b.vbroadcast, Opcode.VREDUCE: b.vreduce,
    }
    branches = {
        Opcode.BEQ: b.beq, Opcode.BNE: b.bne, Opcode.BLT: b.blt,
        Opcode.BGE: b.bge, Opcode.JMP: b.jmp, Opcode.CALL: b.call,
    }
    reg_imm = {Opcode.SHL: b.shl, Opcode.SHR: b.shr, Opcode.LEA: b.lea}
    mem_loads = {Opcode.LD: b.ld, Opcode.VLD: b.vld}
    mem_stores = {Opcode.ST: b.st, Opcode.VST: b.vst}

    if opcode in three_reg:
        if len(ops) != 3:
            raise ValueError(f"{mnemonic} takes 3 registers")
        three_reg[opcode](parse_reg(ops[0]), parse_reg(ops[1]), parse_reg(ops[2]))
    elif opcode is Opcode.VFMA:
        if len(ops) != 4:
            raise ValueError("vfma takes 4 registers")
        b.vfma(*(parse_reg(op) for op in ops))
    elif opcode in two_reg:
        if len(ops) != 2:
            raise ValueError(f"{mnemonic} takes 2 registers")
        two_reg[opcode](parse_reg(ops[0]), parse_reg(ops[1]))
    elif opcode is Opcode.MOVI:
        if len(ops) != 2:
            raise ValueError("movi takes register, immediate")
        b.movi(parse_reg(ops[0]), _parse_int(ops[1]))
    elif opcode in reg_imm:
        if len(ops) != 3:
            raise ValueError(f"{mnemonic} takes register, register, immediate")
        reg_imm[opcode](parse_reg(ops[0]), parse_reg(ops[1]), _parse_int(ops[2]))
    elif opcode in mem_loads or opcode in mem_stores:
        if len(ops) not in (2, 3):
            raise ValueError(f"{mnemonic} takes reg, base[, disp]")
        disp = _parse_int(ops[2]) if len(ops) == 3 else 0
        table = mem_loads if opcode in mem_loads else mem_stores
        table[opcode](parse_reg(ops[0]), parse_reg(ops[1]), disp)
    elif opcode in branches:
        if len(ops) != 1:
            raise ValueError(f"{mnemonic} takes a target")
        branches[opcode](_branch_target(ops[0]))
    elif opcode is Opcode.JR:
        if len(ops) != 1:
            raise ValueError("jr takes a register")
        b.jr(parse_reg(ops[0]))
    elif opcode in (Opcode.RET, Opcode.NOP, Opcode.HALT):
        if ops:
            raise ValueError(f"{mnemonic} takes no operands")
        {Opcode.RET: b.ret, Opcode.NOP: b.nop, Opcode.HALT: b.halt}[opcode]()
    else:  # pragma: no cover - exhaustive above
        raise ValueError(f"unhandled opcode {opcode}")


def disassemble(program: Program) -> str:
    """Round-trippable listing of *program* (see :func:`assemble`)."""
    lines: List[str] = []
    for instr in program.instructions:
        if instr.label:
            lines.append(f"{instr.label}:")
        lines.append(f"    {instr.render()}")
    return "\n".join(lines)
