"""Pipeline snapshots: the diagnostic payload of every validator failure.

A snapshot is a plain JSON-safe dict of the core's scheduling state at
one instant — ROB head/tail, the precommit pointer, free-list occupancy,
queue usage, frontend position, release-scheme accounting, and (when the
online sanitizer is attached) the ring buffer of recent pipeline events.
``DeadlockError`` and :class:`~repro.validate.sanitizer.InvariantViolation`
both carry one, so a hung or corrupted run reports *where the machine
was*, not just that it died.

This module deliberately imports nothing from ``repro.pipeline``: it
duck-types the core object, which keeps it importable from inside the
pipeline package without a cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional


def _entry_summary(entry) -> Optional[Dict]:
    if entry is None:
        return None
    return {
        "seq": entry.seq,
        "trace_seq": entry.dyn.trace_seq,
        "pc": entry.dyn.pc,
        "opcode": entry.instr.opcode.name,
        "issued": entry.issued,
        "completed": entry.completed,
        "precommitted": entry.precommitted,
        "wrong_path": entry.wrong_path,
        "unready_sources": entry.unready_sources,
    }


def pipeline_snapshot(core) -> Dict:
    """Capture the scheduling state as a JSON-safe dict.

    Accepts a ``Core`` or a ``PipelineState`` — only public fields of the
    pipeline state are read.
    """
    state = getattr(core, "state", core)
    rob = state.rob
    tail = None
    for entry in rob.in_flight():
        tail = entry
    files = {}
    for file_cls, file in state.rename_unit.files.items():
        files[file_cls.value] = {
            "size": file.size,
            "free": file.freelist.free_count,
            "min_free_watermark": file.freelist.min_free_watermark,
            "allocations": file.freelist.total_allocations,
            "frees": file.freelist.total_frees,
        }
    snap = {
        "cycle": state.cycle,
        "committed": state.stats.committed,
        "trace_length": len(state.trace),
        "rob_occupancy": len(rob),
        "rob_capacity": rob.capacity,
        "rob_head": _entry_summary(rob.head()),
        "rob_tail": _entry_summary(tail),
        "precommit_offset": rob.precommit_offset,
        "freelists": files,
        "rs_used": state.rs_used,
        "lq_used": state.lq_used,
        "sq_used": state.sq_used,
        "fetch_queue_depth": state.fetch_queue_depth,
        "trace_cursor": state.cursor,
        "wrong_path_fetch": state.wrong_path,
        "scheme": state.scheme.name,
        "scheme_frees": {
            "commit": state.scheme.stats.commit_frees,
            "flush": state.scheme.stats.flush_frees,
            "atr": state.scheme.stats.atr_frees,
            "nonspec": state.scheme.stats.nonspec_frees,
        },
        "flushes": state.stats.flushes,
    }
    # Duck-typed: any attached probe exposing a ring of recent events
    # (the invariant sanitizer does) contributes its trail.
    if state.probes is not None:
        for probe in state.probes:
            ring = getattr(probe, "ring", None)
            if ring is not None:
                snap["recent_events"] = ring.formatted()
                break
    return snap


def _format_entry(label: str, info: Optional[Dict]) -> str:
    if info is None:
        return f"  {label}: (empty)"
    flags = "".join(
        c for c, on in (
            ("W", info["wrong_path"]), ("I", info["issued"]),
            ("C", info["completed"]), ("P", info["precommitted"]),
        ) if on
    )
    return (f"  {label}: #{info['seq']} {info['opcode']} pc={info['pc']} "
            f"trace_seq={info['trace_seq']} [{flags or '-'}] "
            f"unready={info['unready_sources']}")


def format_snapshot(snap: Dict) -> str:
    """Human-readable multi-line rendering of a pipeline snapshot."""
    lines: List[str] = [
        f"pipeline snapshot @ cycle {snap['cycle']} "
        f"({snap['committed']}/{snap['trace_length']} committed, "
        f"scheme {snap['scheme']})",
        f"  ROB {snap['rob_occupancy']}/{snap['rob_capacity']}, "
        f"precommit offset {snap['precommit_offset']}, "
        f"flushes {snap['flushes']}",
        _format_entry("head", snap["rob_head"]),
        _format_entry("tail", snap["rob_tail"]),
    ]
    for name, info in snap["freelists"].items():
        lines.append(
            f"  {name} freelist: {info['free']}/{info['size']} free "
            f"(low-watermark {info['min_free_watermark']}, "
            f"{info['allocations']} allocs / {info['frees']} frees)")
    lines.append(
        f"  RS {snap['rs_used']}, LQ {snap['lq_used']}, SQ {snap['sq_used']}, "
        f"fetch-queue {snap['fetch_queue_depth']}, "
        f"cursor {snap['trace_cursor']}"
        f"{' (wrong-path fetch)' if snap['wrong_path_fetch'] else ''}")
    frees = snap["scheme_frees"]
    lines.append(
        f"  releases: commit {frees['commit']}, flush {frees['flush']}, "
        f"atr {frees['atr']}, nonspec {frees['nonspec']}")
    events = snap.get("recent_events")
    if events:
        lines.append(f"  last {len(events)} events:")
        lines.extend(f"    {event}" for event in events)
    return "\n".join(lines)
