"""Scheduler: sharding, failure isolation, per-cell timeout with retry.

Custom executors run in forked workers, so closures over tmp_path work;
marker files let an executor behave differently on its second attempt.
"""

import os
import time

import pytest

from repro.harness import CellSpec, run_specs
from repro.harness.scheduler import _pick_executor, _retry_delay, _worker

SPECS = [CellSpec(name, 64, "atr", 100) for name in ("a", "b", "c")]


def _echo(spec):
    return {"name": spec.benchmark}


class TestSharding:
    def test_parallel_runs_every_spec(self):
        results, failures = run_specs(SPECS, jobs=2, executor=_echo)
        assert not failures
        assert {spec.benchmark for spec, _r in results} == {"a", "b", "c"}
        assert all(result == {"name": spec.benchmark} for spec, result in results)

    def test_serial_runs_in_process(self):
        pids = []

        def executor(spec):
            pids.append(os.getpid())
            return spec.benchmark

        results, failures = run_specs(SPECS, jobs=1, executor=executor)
        assert not failures and len(results) == 3
        assert set(pids) == {os.getpid()}

    def test_parallel_runs_out_of_process(self):
        def executor(spec):
            return os.getpid()

        results, failures = run_specs(SPECS, jobs=2, executor=executor)
        assert not failures
        assert os.getpid() not in {result for _spec, result in results}


class TestFailureIsolation:
    def test_one_bad_cell_does_not_sink_the_sweep(self):
        def executor(spec):
            if spec.benchmark == "b":
                raise ValueError("injected")
            return spec.benchmark

        results, failures = run_specs(SPECS, jobs=2, retries=0, executor=executor)
        assert {spec.benchmark for spec, _r in results} == {"a", "c"}
        assert len(failures) == 1
        assert failures[0].spec.benchmark == "b"
        assert "injected" in failures[0].error

    def test_worker_death_is_an_error_not_a_hang(self):
        def executor(spec):
            os._exit(3)

        results, failures = run_specs(SPECS[:1], jobs=2, retries=0,
                                      executor=executor)
        assert not results
        assert len(failures) == 1
        assert "worker died" in failures[0].error

    def test_exception_retried_then_succeeds(self, tmp_path):
        def executor(spec):
            marker = tmp_path / spec.benchmark
            if not marker.exists():
                marker.write_text("tried")
                raise RuntimeError("transient")
            return "recovered"

        results, failures = run_specs(SPECS[:1], jobs=2, retries=1,
                                      executor=executor)
        assert not failures
        assert results[0][1] == "recovered"

    def test_serial_retry_matches_parallel_semantics(self, tmp_path):
        def executor(spec):
            marker = tmp_path / spec.benchmark
            if not marker.exists():
                marker.write_text("tried")
                raise RuntimeError("transient")
            return "recovered"

        results, failures = run_specs(SPECS[:1], jobs=1, retries=1,
                                      executor=executor)
        assert not failures
        assert results[0][1] == "recovered"


class TestInterruptPropagation:
    def test_keyboard_interrupt_escapes_serial_mode(self):
        def executor(spec):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_specs(SPECS[:1], jobs=1, retries=1, executor=executor)

    def test_worker_does_not_swallow_keyboard_interrupt(self):
        """The worker body isolates cell *errors*; Ctrl-C must escape it
        instead of being reported as a retryable failure."""
        class DummyConn:
            def __init__(self):
                self.sent = []

            def send(self, item):
                self.sent.append(item)

            def close(self):
                pass

        def executor(spec):
            raise KeyboardInterrupt

        conn = DummyConn()
        with pytest.raises(KeyboardInterrupt):
            _worker(executor, SPECS[0], conn)
        assert conn.sent == []

    def test_worker_still_isolates_ordinary_exceptions(self):
        class DummyConn:
            def __init__(self):
                self.sent = []

            def send(self, item):
                self.sent.append(item)

            def close(self):
                pass

        def executor(spec):
            raise ValueError("cell bug")

        conn = DummyConn()
        _worker(executor, SPECS[0], conn)
        assert conn.sent == [("error", "ValueError: cell bug")]


class TestRetryBackoffAndDiagnosis:
    def test_retry_delay_doubles_per_attempt(self):
        assert _retry_delay(0.25, 1) == 0.25
        assert _retry_delay(0.25, 2) == 0.5
        assert _retry_delay(0.25, 3) == 1.0
        assert _retry_delay(0.0, 5) == 0.0

    def test_pick_executor_switches_on_retry(self):
        def plain(spec):
            return "plain"

        def diagnose(spec):
            return "diagnose"

        assert _pick_executor(plain, diagnose, 1) is plain
        assert _pick_executor(plain, diagnose, 2) is diagnose
        assert _pick_executor(plain, None, 2) is plain

    def test_serial_backoff_spaces_attempts(self):
        def executor(spec):
            raise RuntimeError("always")

        started = time.monotonic()
        _results, failures = run_specs(SPECS[:1], jobs=1, retries=1,
                                       backoff=0.2, executor=executor)
        assert time.monotonic() - started >= 0.2
        assert failures[0].attempts == 2

    def test_failed_cell_reruns_under_diagnostic_executor(self):
        def executor(spec):
            raise RuntimeError("always fails")

        def diagnose(spec):
            return "diagnosed"

        results, failures = run_specs(
            SPECS[:1], jobs=1, retries=1, backoff=0.0,
            executor=executor, diagnostic_executor=diagnose)
        assert not failures
        assert results[0][1] == "diagnosed"

    def test_parallel_diagnostic_retry(self, tmp_path):
        def executor(spec):
            raise RuntimeError("always fails")

        def diagnose(spec):
            return "diagnosed"

        results, failures = run_specs(
            SPECS[:1], jobs=2, retries=1, backoff=0.0,
            executor=executor, diagnostic_executor=diagnose)
        assert not failures
        assert results[0][1] == "diagnosed"


class TestTimeout:
    def test_hanging_cell_times_out_then_retry_succeeds(self, tmp_path):
        def executor(spec):
            marker = tmp_path / spec.benchmark
            if not marker.exists():
                marker.write_text("hung")
                time.sleep(60)
            return "after-retry"

        started = time.monotonic()
        results, failures = run_specs(SPECS[:1], jobs=2, timeout=1.0,
                                      retries=1, executor=executor)
        assert time.monotonic() - started < 30  # terminated, not joined
        assert not failures
        assert results[0][1] == "after-retry"

    def test_persistent_hang_exhausts_retries(self):
        def executor(spec):
            time.sleep(60)

        results, failures = run_specs(SPECS[:1], jobs=2, timeout=0.5,
                                      retries=1, executor=executor)
        assert not results
        assert len(failures) == 1
        assert failures[0].attempts == 2
        assert "timeout" in failures[0].error
