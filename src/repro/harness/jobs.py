"""Job execution: turn a spec into a result, in any process.

This module is the *only* place experiment work actually happens; the
scheduler runs :func:`execute_spec` either inline (serial mode) or inside
a worker process.  It deliberately imports from the simulator packages
(`pipeline`, `workloads`, `analysis`) and never from `experiments`, so
``experiments`` can build on the harness without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..analysis import RegionReport, classify_regions
from ..pipeline import Core, CoreConfig, SimStats, golden_cove_config
from ..rename.schemes import SchemeStats
from ..workloads import build_trace, is_fp
from .spec import CellSpec, RegionSpec, Spec


@dataclass
class CellResult:
    """One simulated (benchmark, configuration) cell."""

    benchmark: str
    scheme: str
    rf_size: int
    instructions: int
    stats: SimStats
    scheme_stats: SchemeStats
    event_records: Optional[list] = None
    region_report: Optional[RegionReport] = None
    #: Structured validation failure (invariant violation, golden-model
    #: divergence, …) rendered as text — ``None`` for a clean run.
    error: Optional[str] = None
    #: Window/warmup description of a tiered run (``None`` for detailed
    #: runs); see :func:`repro.tiered.run_tiered`.
    tier_info: Optional[dict] = None

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def is_fp(self) -> bool:
        return is_fp(self.benchmark)


def simulate_cell(spec: CellSpec, config: Optional[CoreConfig] = None,
                  check_invariants: bool = False) -> CellResult:
    """Run one timing simulation (uncached; see the sweep layer for caching)."""
    if config is None:
        config = golden_cove_config(
            rf_size=spec.rf_size,
            scheme=spec.scheme,
            redefine_delay=spec.redefine_delay,
            record_register_events=spec.record_register_events,
        )
        # Value execution is a correctness harness, not a performance
        # model; experiments disable it for speed (tests keep it on).
        config = replace(config, execute_values=False)
    if check_invariants:
        config = replace(config, check_invariants=True)
    trace = build_trace(spec.benchmark, spec.instructions)
    tier = getattr(spec, "tier", None)
    if tier is not None and tier.mode == "tiered":
        if spec.record_register_events:
            raise ValueError(
                "record_register_events requires detailed mode: the event "
                "log is a per-committed-register measurement, not a rate")
        from ..tiered import run_tiered  # lazy: tiered layers on pipeline
        stats, scheme_stats, tier_info = run_tiered(
            config, trace, interval=tier.interval,
            max_windows=tier.max_windows, seed=tier.seed)
        return CellResult(
            benchmark=spec.benchmark,
            scheme=spec.scheme,
            rf_size=spec.rf_size,
            instructions=spec.instructions,
            stats=stats,
            scheme_stats=scheme_stats,
            tier_info=tier_info,
        )
    core = Core(config, trace)
    stats = core.run()
    return CellResult(
        benchmark=spec.benchmark,
        scheme=spec.scheme,
        rf_size=spec.rf_size,
        instructions=spec.instructions,
        stats=stats,
        scheme_stats=core.scheme.stats,
        event_records=(core.event_log.records if core.event_log else None),
    )


def analyze_regions(spec: RegionSpec) -> RegionReport:
    """Trace-level region classification (no simulation needed)."""
    return classify_regions(build_trace(spec.benchmark, spec.instructions))


def execute_spec(spec: Spec):
    """Dispatch a spec to its executor; the scheduler's default worker."""
    if isinstance(spec, CellSpec):
        return simulate_cell(spec)
    if isinstance(spec, RegionSpec):
        return analyze_regions(spec)
    raise TypeError(f"unknown spec type {type(spec).__name__}")


def execute_spec_diagnose(spec: Spec):
    """Like :func:`execute_spec`, but with the invariant sanitizer on.

    The scheduler re-runs a failed cell through this executor so a crash
    that reproduces surfaces as a structured
    :class:`~repro.validate.InvariantViolation` with a pipeline snapshot
    instead of a bare traceback.  Invariant checking is observation-only,
    so a cell that *succeeds* under diagnosis returns statistics
    identical to a plain run.
    """
    if isinstance(spec, CellSpec):
        return simulate_cell(spec, check_invariants=True)
    return execute_spec(spec)
