"""Baseline register release (paper section 4.2.1).

A physical register is freed when the instruction that *redefines* its
architectural register commits.  On a flush, the ptags allocated by
flushed instructions are reclaimed by walking the ROB from the tail to the
flush point.  No consumer counters exist.
"""

from __future__ import annotations

from .base import ReleaseScheme


class BaselineScheme(ReleaseScheme):
    """Conventional commit-time release."""

    name = "baseline"

    # All behaviour is the ReleaseScheme default: free release_prev at
    # commit, free new ptags on flush.
