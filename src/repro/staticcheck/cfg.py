"""Control-flow graph construction over a static :class:`Program`.

Block leaders are program entry, every direct branch/jump/call target,
every instruction after a control-flow instruction, and every labeled
instruction (labels are the only addresses an indirect jump can name,
since ``JR`` targets are loaded from label-patched jump tables).

Edge kinds:

* ``fall``   — sequential fallthrough (including branch not-taken);
* ``branch`` — conditional branch taken;
* ``jump``   — direct unconditional ``JMP``;
* ``call``   — ``CALL`` into its target function;
* ``ret``    — ``RET`` back to the instruction after a matching call
  site (call sites are matched by function membership: an
  intraprocedural walk from each ``CALL`` target, stepping *over*
  nested calls, discovers which ``RET`` instructions belong to which
  entry — the static mirror of the ``LINK_REG`` convention);
* ``indirect`` — ``JR`` to any labeled instruction that is not a call
  entry (conservative: jump tables are built from labels, and function
  entries are reached by ``CALL``, not ``JR``).

Invalid direct targets produce no edge; they are recorded in
``CFG.bad_targets`` and surfaced by the ``cfg-bad-target`` lint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..isa import Instruction, Opcode, Program


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions ``[start, end)``."""

    index: int
    start: int
    end: int  # exclusive
    succs: List[Tuple[int, str]] = field(default_factory=list)  # (block, kind)
    preds: List[int] = field(default_factory=list)

    @property
    def terminator_pc(self) -> int:
        return self.end - 1

    def pcs(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"B{self.index}[{self.start}:{self.end}]"


@dataclass
class CFG:
    """Basic blocks, edges, and the call/return structure of a program."""

    program: Program
    blocks: List[BasicBlock]
    #: Block index containing each pc.
    block_index: List[int]
    #: CALL-target pcs (function entries), in pc order.
    entries: Tuple[int, ...]
    #: Function entry pc -> ret pcs discovered by the intraprocedural walk.
    rets_of: Dict[int, FrozenSet[int]]
    #: pcs of direct control-flow with a missing or out-of-range target.
    bad_targets: List[int]
    #: pcs that can transfer control past the end of the code image.
    falls_off_end: List[int]

    def block_of(self, pc: int) -> BasicBlock:
        return self.blocks[self.block_index[pc]]

    @property
    def entry_block(self) -> BasicBlock:
        return self.blocks[0]

    def reachable(self) -> Set[int]:
        """Block indices reachable from program entry along CFG edges."""
        seen: Set[int] = set()
        work = [0] if self.blocks else []
        while work:
            index = work.pop()
            if index in seen:
                continue
            seen.add(index)
            work.extend(succ for succ, _kind in self.blocks[index].succs
                        if succ not in seen)
        return seen

    def top_level_rets(self) -> List[int]:
        """``RET`` pcs executable without a prior unmatched ``CALL``.

        Walks from program entry treating every ``CALL`` as a summary
        (continue at the return site), so reaching a ``RET`` means the
        link register holds no caller address — the ``cfg-call-ret-
        imbalance`` defect.
        """
        hits = _walk_function(self.program, 0, self._indirect_targets())
        return sorted(hits)

    def _indirect_targets(self) -> Tuple[int, ...]:
        return _indirect_targets(self.program, set(self.entries))


def _direct_target(instr: Instruction, size: int) -> Optional[int]:
    """The validated static target of a direct control instruction."""
    if instr.target is None or not 0 <= instr.target < size:
        return None
    return instr.target


def _indirect_targets(program: Program, entries: Set[int]) -> Tuple[int, ...]:
    """Conservative ``JR`` target set: labeled pcs minus call entries."""
    return tuple(sorted(pc for pc in program.labels.values()
                        if 0 <= pc < len(program) and pc not in entries))


def _walk_function(program: Program, entry: int,
                   indirect: Iterable[int]) -> FrozenSet[int]:
    """Intraprocedural walk from *entry*: the set of ``RET`` pcs reached.

    CALLs are stepped over (callee assumed to balance and return), so the
    walk stays within one call depth — exactly the code a ``RET`` at
    *entry*'s depth can belong to.
    """
    size = len(program)
    rets: Set[int] = set()
    seen: Set[int] = set()
    work = [entry]
    while work:
        pc = work.pop()
        if pc in seen or not 0 <= pc < size:
            continue
        seen.add(pc)
        instr = program.instructions[pc]
        if instr.is_halt:
            continue
        if instr.opcode is Opcode.RET:
            rets.add(pc)
            continue
        if instr.opcode is Opcode.JMP:
            target = _direct_target(instr, size)
            if target is not None:
                work.append(target)
            continue
        if instr.opcode is Opcode.JR:
            work.extend(indirect)
            continue
        if instr.is_conditional_branch:
            target = _direct_target(instr, size)
            if target is not None:
                work.append(target)
            work.append(pc + 1)
            continue
        # CALL steps over to its return site; everything else falls through.
        work.append(pc + 1)
    return frozenset(rets)


def build_cfg(program: Program) -> CFG:
    """Build the CFG of *program* (empty programs yield zero blocks)."""
    size = len(program)
    instrs = program.instructions
    if size == 0:
        return CFG(program, [], [], (), {}, [], [])

    # -- call structure ----------------------------------------------------
    entries_set: Set[int] = set()
    for instr in instrs:
        if instr.opcode is Opcode.CALL:
            target = _direct_target(instr, size)
            if target is not None:
                entries_set.add(target)
    indirect = _indirect_targets(program, entries_set)
    rets_of = {entry: _walk_function(program, entry, indirect)
               for entry in sorted(entries_set)}
    #: RET pc -> return-site pcs it may resume at.
    resume_sites: Dict[int, Set[int]] = {}
    for pc, instr in enumerate(instrs):
        if instr.opcode is Opcode.CALL:
            target = _direct_target(instr, size)
            if target is None or pc + 1 > size:
                continue
            for ret_pc in rets_of.get(target, ()):
                resume_sites.setdefault(ret_pc, set()).add(pc + 1)

    # -- leaders -----------------------------------------------------------
    leaders: Set[int] = {0}
    leaders.update(t for t in indirect)
    leaders.update(e for e in entries_set)
    bad_targets: List[int] = []
    falls_off_end: List[int] = []
    for pc, instr in enumerate(instrs):
        if instr.is_control and not instr.is_indirect and not instr.is_halt:
            target = _direct_target(instr, size)
            if target is None:
                bad_targets.append(pc)
            else:
                leaders.add(target)
        if instr.is_control or instr.is_halt:
            if pc + 1 < size:
                leaders.add(pc + 1)

    # -- blocks ------------------------------------------------------------
    starts = sorted(leaders)
    blocks: List[BasicBlock] = []
    block_index = [0] * size
    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else size
        block = BasicBlock(index=i, start=start, end=end)
        blocks.append(block)
        for pc in range(start, end):
            block_index[pc] = i

    # -- edges -------------------------------------------------------------
    def link(src: BasicBlock, target_pc: int, kind: str) -> None:
        dst = blocks[block_index[target_pc]]
        src.succs.append((dst.index, kind))
        dst.preds.append(src.index)

    for block in blocks:
        pc = block.terminator_pc
        instr = instrs[pc]
        if instr.is_halt:
            continue
        if instr.opcode is Opcode.JMP:
            target = _direct_target(instr, size)
            if target is not None:
                link(block, target, "jump")
            continue
        if instr.opcode is Opcode.JR:
            for target in indirect:
                link(block, target, "indirect")
            continue
        if instr.opcode is Opcode.RET:
            for site in sorted(resume_sites.get(pc, ())):
                if site < size:
                    link(block, site, "ret")
                else:
                    falls_off_end.append(pc)
            continue
        if instr.opcode is Opcode.CALL:
            target = _direct_target(instr, size)
            if target is not None:
                link(block, target, "call")
            continue
        if instr.is_conditional_branch:
            target = _direct_target(instr, size)
            if target is not None:
                link(block, target, "branch")
            if pc + 1 < size:
                link(block, pc + 1, "fall")
            else:
                falls_off_end.append(pc)
            continue
        # Plain instruction at a block boundary: sequential fallthrough.
        if pc + 1 < size:
            link(block, pc + 1, "fall")
        else:
            falls_off_end.append(pc)

    return CFG(
        program=program,
        blocks=blocks,
        block_index=block_index,
        entries=tuple(sorted(entries_set)),
        rets_of=rets_of,
        bad_targets=bad_targets,
        falls_off_end=falls_off_end,
    )
