"""Cache management: scan, LRU/age eviction, gc accounting."""

import os
import time

from repro.harness import CellSpec, ResultStore
from repro.service import cache_report, plan_gc, run_gc, scan_entries


def spec(scheme, rf=64):
    return CellSpec("505.mcf_r", rf, scheme, 500)


def fill(store, schemes=("baseline", "atr", "combined")):
    for scheme in schemes:
        store.put(spec(scheme), {"scheme": scheme})


def set_mtime(path, when):
    os.utime(path, (when, when))


def test_scan_sees_all_generations(tmp_path):
    old = ResultStore(root=tmp_path, fingerprint="a" * 64)
    new = ResultStore(root=tmp_path, fingerprint="b" * 64)
    fill(old)
    fill(new)
    entries = scan_entries(new)
    assert len(entries) == 6
    assert sum(e.current for e in entries) == 3
    assert {e.generation for e in entries} == {"v-" + "a" * 16,
                                               "v-" + "b" * 16}


def test_age_rule_evicts_stale_entries(tmp_path):
    store = ResultStore(root=tmp_path)
    fill(store)
    now = time.time()
    set_mtime(store.path_for(spec("baseline")), now - 1000)

    report = run_gc(store, max_age=500, now=now)
    assert report.removed == 1
    assert store.get(spec("baseline")) is None
    assert store.get(spec("atr")) is not None


def test_size_rule_evicts_lru_stale_generations_first(tmp_path):
    old = ResultStore(root=tmp_path, fingerprint="a" * 64)
    store = ResultStore(root=tmp_path)
    fill(old)
    fill(store)
    now = time.time()
    # Make a current-generation entry the globally oldest: the stale
    # generation must still go first.
    set_mtime(store.path_for(spec("baseline")), now - 9999)

    entries = scan_entries(store)
    current_bytes = sum(e.bytes for e in entries if e.current)
    doomed = plan_gc(entries, max_bytes=current_bytes, now=now)
    assert all(not e.current for e in doomed)
    assert len(doomed) == 3

    report = run_gc(store, max_bytes=current_bytes, now=now)
    assert report.removed == 3
    # The stale generation directory is pruned once emptied.
    assert not (tmp_path / ("v-" + "a" * 16)).exists()
    assert store.get(spec("atr")) is not None


def test_hits_refresh_lru_position(tmp_path):
    """store.get touches mtime, so a hot entry survives size pressure
    that evicts its colder siblings."""
    store = ResultStore(root=tmp_path)
    fill(store)
    now = time.time()
    for scheme in ("baseline", "atr", "combined"):
        set_mtime(store.path_for(spec(scheme)), now - 5000)
    assert store.get(spec("atr")) is not None  # refreshes mtime to ~now

    entries = scan_entries(store)
    keep_bytes = max(e.bytes for e in entries) + 1
    report = run_gc(store, max_bytes=keep_bytes, now=now)
    assert report.removed == 2
    assert store.get(spec("atr")) is not None


def test_gc_to_zero_and_counters(tmp_path):
    store = ResultStore(root=tmp_path)
    fill(store)
    report = run_gc(store, max_bytes=0)
    assert report.removed == 3
    assert report.kept == 0
    assert store.info()["entries"] == 0
    assert store.info()["counters"]["lifetime"]["evictions"] == 3
    # gc over an empty cache is a clean no-op.
    empty = run_gc(store, max_bytes=0, max_age=1)
    assert (empty.scanned, empty.removed) == (0, 0)


def test_cache_report_hit_rate(tmp_path):
    store = ResultStore(root=tmp_path)
    assert cache_report(store)["hit_rate"] is None  # no lookups yet
    fill(store, schemes=("atr",))
    store.get(spec("atr"))
    store.get(spec("baseline"))  # miss
    rate = cache_report(store)["hit_rate"]
    assert abs(rate - 0.5) < 1e-9
