"""Event-timing analysis within atomic regions (paper Figures 5 and 14).

Figure 14 reports, averaged over atomic-region register chains, the cycle
distance from a register's rename to (1) its redefinition, (2) its last
consumption, and (3) the commit of its redefining instruction.  ATR holds
a register only for (max of 1 and 2); the baseline holds it until (3).

Figure 5 is a qualitative table of per-instruction stage timings
(renamed / executed / completed / precommitted) for a code window; the
``timeline_table`` helper renders the same view from a simulated run with
``record_timeline`` enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..frontend import Trace
from ..isa import RegClass
from ..pipeline.stats import RegisterLifetime
from .regions import RegionReport, classify_regions


@dataclass
class EventTiming:
    """Figure 14 bar group for one benchmark."""

    rename_to_redefine: float
    rename_to_consume: float
    rename_to_commit: float
    chains: int

    def as_row(self) -> str:
        return (
            f"redefine +{self.rename_to_redefine:7.1f}   "
            f"consume +{self.rename_to_consume:7.1f}   "
            f"commit +{self.rename_to_commit:7.1f}   ({self.chains} chains)"
        )


def atomic_event_timing(
    records: Iterable[RegisterLifetime],
    region_report: RegionReport,
    file: Optional[RegClass] = None,
) -> EventTiming:
    """Join pipeline timings with the trace-level atomic classification.

    Records and region chains are matched on the allocating instruction's
    trace sequence number plus the register file.
    """
    atomic_keys = {
        (chain.file, chain.alloc_seq, chain.redefine_seq)
        for chain in region_report.atomic_chains(file)
    }
    d_redefine: List[int] = []
    d_consume: List[int] = []
    d_commit: List[int] = []
    for record in records:
        if file is not None and record.file is not file:
            continue
        if not record.complete or record.redefine_cycle is None:
            continue
        if (record.file, record.alloc_seq, record.redefine_seq) not in atomic_keys:
            continue
        d_redefine.append(record.redefine_cycle - record.alloc_cycle)
        consume = record.last_consume_cycle
        d_consume.append((consume if consume is not None else record.alloc_cycle)
                         - record.alloc_cycle)
        d_commit.append(record.redefiner_commit_cycle - record.alloc_cycle)
    count = len(d_redefine)
    if count == 0:
        return EventTiming(0.0, 0.0, 0.0, 0)
    return EventTiming(
        rename_to_redefine=sum(d_redefine) / count,
        rename_to_consume=sum(d_consume) / count,
        rename_to_commit=sum(d_commit) / count,
        chains=count,
    )


def timeline_table(
    timeline: Sequence[tuple],
    trace: Trace,
    start_seq: int,
    count: int = 8,
) -> str:
    """A Figure 5-style stage-timing table for a window of the trace.

    *timeline* rows are the core's ``(trace_seq, pc, rename, issue,
    complete, precommit, commit)`` tuples (``record_timeline=True``).
    """
    rows = {row[0]: row for row in timeline}
    lines = [f"{'seq':>6} {'instruction':32} {'Re':>6} {'Ex':>6} {'Cm':>6} {'Pr':>6}"]
    for seq in range(start_seq, start_seq + count):
        row = rows.get(seq)
        if row is None or seq >= len(trace.entries):
            continue
        instr = trace.entries[seq].instr
        _, _pc, rename, issue, complete, precommit, _commit = row
        lines.append(
            f"{seq:>6} {instr.render():32} {rename:>6} {issue:>6} "
            f"{complete:>6} {precommit:>6}"
        )
    return "\n".join(lines)
