"""Register lifecycle analysis (paper section 3.1 / Figure 4).

Turns the pipeline's :class:`~repro.pipeline.stats.RegisterEventLog` into
the three lifecycle states of Figure 4:

* **in-use** — allocation until the register is both fully consumed and
  redefined (``max(last consume, redefine)``);
* **unused** — until the redefining instruction precommits (knowing this
  boundary requires oracle information, which the committed-path event
  log provides);
* **verified-unused** — from the redefiner's precommit to its commit,
  the only window non-speculative early release can exploit.

The paper reports the *share of total register-allocated cycles* spent in
each state, separately for the scalar (SPECint) and vector (SPECfp)
register files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..isa import RegClass
from ..pipeline.stats import RegisterLifetime


@dataclass
class LifetimeShares:
    """Figure 4 bar: state shares of the register-allocated cycle budget."""

    in_use: float
    unused: float
    verified_unused: float
    total_cycles: int
    records: int

    def as_row(self) -> str:
        return (
            f"in-use {self.in_use:6.2%}   unused {self.unused:6.2%}   "
            f"verified-unused {self.verified_unused:6.2%}   "
            f"({self.records} chains, {self.total_cycles} reg-cycles)"
        )


def lifetime_shares(
    records: Iterable[RegisterLifetime],
    file: Optional[RegClass] = None,
) -> LifetimeShares:
    """Aggregate lifecycle shares over completed chains.

    Only chains with a committed redefiner have a defined total lifetime
    (allocation to conventional free at the redefiner's commit); the event
    log guarantees that for every record it emits.
    """
    in_use = 0
    unused = 0
    verified = 0
    count = 0
    for record in records:
        if file is not None and record.file is not file:
            continue
        if not record.complete:
            continue
        alloc = record.alloc_cycle
        consume = record.last_consume_cycle if record.last_consume_cycle is not None else alloc
        redefine = record.redefine_cycle if record.redefine_cycle is not None else alloc
        precommit = record.redefiner_precommit_cycle
        commit = record.redefiner_commit_cycle
        if precommit is None:
            precommit = commit
        end_in_use = min(max(consume, redefine), commit)
        end_unused = min(max(precommit, end_in_use), commit)
        in_use += end_in_use - alloc
        unused += end_unused - end_in_use
        verified += commit - end_unused
        count += 1
    total = in_use + unused + verified
    if total == 0:
        return LifetimeShares(0.0, 0.0, 0.0, 0, count)
    return LifetimeShares(
        in_use=in_use / total,
        unused=unused / total,
        verified_unused=verified / total,
        total_cycles=total,
        records=count,
    )
