"""Service wire protocol + client: line-delimited JSON over TCP.

One request is one JSON object on one line; the server answers with one
JSON object per line (``watch`` streams several, ending with a
``{"event": "done"}`` line).  Every response carries ``"ok"``; an error
response is ``{"ok": false, "error": "..."}``.

Operations
----------

==============  ======================================  ==============
op              request fields                          reply
==============  ======================================  ==============
ping            —                                       pid, fingerprint
submit          specs=[spec dicts], priority, label     job receipt
status          job? (omit for overview)                job / overview
watch           job, interval?                          event stream
cancel          job                                     cancelled flag
fetch           spec (dict)                             encoded result
stats           —                                       queue + store
claim           owner, host?, max?                      leased cells
complete        owner, digest, result, elapsed?         accepted flag
fail            owner, digest, error                    accepted flag
heartbeat       host, workers?                          —
shutdown        —                                       — (server exits)
==============  ======================================  ==============

``claim``/``complete``/``fail``/``heartbeat`` are the worker side of
the protocol: a worker on *any* machine that can reach the coordinator
socket participates in the sweep — results travel back inside
``complete`` as the same JSON encoding the store uses, so no shared
filesystem is required for multi-host sharding.

Retry discipline: every op except ``watch``/``shutdown`` is
idempotent at the server — ``submit`` coalesces on spec digests,
``claim``/``complete``/``fail`` are keyed on (digest, owner) and a
duplicate ``complete`` settles as a no-op — so the client retries
**transport-level** failures (refused/reset connections, dropped or
garbled replies, timeouts) with exponential backoff and full jitter.
A reply the server actually produced (``ok: false``) is a decision,
not a fault, and is never retried; ``auth`` failures raise the typed
:class:`ServiceAuthError` immediately.
"""

from __future__ import annotations

import json
import os
import random
import socket
import time
from typing import Dict, Iterator, List, Optional, Tuple

ADDR_ENV = "REPRO_SERVICE_ADDR"
TOKEN_ENV = "REPRO_SERVICE_TOKEN"
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7341

#: Seconds a client waits for one reply before giving up.
CLIENT_TIMEOUT = 30.0

#: Transport-failure retries per request (first try + this many more).
DEFAULT_RETRIES = 4
#: Exponential backoff: min(CAP, BASE * 2^(attempt-1)) * uniform(0, 1).
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: Ops safe to retry on a transport failure.  ``watch`` streams (a
#: retry would replay events) and ``shutdown`` (best-effort) are out.
RETRYABLE_OPS = frozenset({
    "ping", "submit", "status", "cancel", "fetch", "stats",
    "claim", "complete", "fail", "heartbeat",
})


class ServiceError(RuntimeError):
    """The service answered ``ok: false`` (or spoke garbage)."""

    def __init__(self, message: str, kind: str = "error"):
        super().__init__(message)
        self.kind = kind


class ServiceUnavailable(ServiceError):
    """No server is reachable at the address."""


class ServiceAuthError(ServiceError):
    """The server rejected our token.  Never retried."""

    def __init__(self, message: str):
        super().__init__(message, kind="auth")


def resolve_token(token: Optional[str] = None) -> Optional[str]:
    """An explicit token, ``$REPRO_SERVICE_TOKEN``, or None."""
    return token if token is not None else os.environ.get(TOKEN_ENV) or None


def resolve_addr(addr: Optional[str] = None) -> Tuple[str, int]:
    """``host:port`` from an explicit string, ``$REPRO_SERVICE_ADDR``,
    or the default ``127.0.0.1:7341``."""
    text = addr or os.environ.get(ADDR_ENV) or f"{DEFAULT_HOST}:{DEFAULT_PORT}"
    if ":" in text:
        host, _, port = text.rpartition(":")
        return host or DEFAULT_HOST, int(port)
    return text, DEFAULT_PORT


def format_addr(addr: Tuple[str, int]) -> str:
    return f"{addr[0]}:{addr[1]}"


def _send_line(sock: socket.socket, payload: Dict) -> None:
    sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")


def _recv_lines(sock: socket.socket) -> Iterator[Dict]:
    """Decode JSON objects line by line from *sock* until EOF."""
    buffer = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        buffer += chunk
        while b"\n" in buffer:
            line, buffer = buffer.split(b"\n", 1)
            if line.strip():
                yield json.loads(line)


class ServiceClient:
    """Talk to a running sweep service.  One connection per request —
    simple, stateless, and robust against server restarts.

    *retries* bounds transport-failure retries per request; *token*
    (or ``$REPRO_SERVICE_TOKEN``) is stamped into every payload."""

    def __init__(self, addr: Optional[str] = None,
                 timeout: float = CLIENT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES,
                 token: Optional[str] = None,
                 sleep=time.sleep, rng: Optional[random.Random] = None):
        self.addr = resolve_addr(addr)
        self.timeout = timeout
        self.retries = retries
        self.token = resolve_token(token)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    # -- plumbing ----------------------------------------------------------------
    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection(self.addr, timeout=self.timeout)
        except OSError as exc:
            raise ServiceUnavailable(
                f"no repro service at {format_addr(self.addr)}: {exc}"
            ) from exc
        return sock

    def _stamp(self, payload: Dict) -> Dict:
        if self.token is not None and "token" not in payload:
            payload = dict(payload, token=self.token)
        return payload

    @staticmethod
    def _raise_error(reply: Dict) -> None:
        message = reply.get("error", "service error")
        kind = reply.get("kind", "error")
        if kind == "auth":
            raise ServiceAuthError(message)
        raise ServiceError(message, kind=kind)

    def _request_once(self, payload: Dict) -> Dict:
        with self._connect() as sock:
            _send_line(sock, payload)
            for reply in _recv_lines(sock):
                if not reply.get("ok", False):
                    self._raise_error(reply)
                return reply
        raise ServiceError("server closed the connection without a reply",
                           kind="transport")

    def request(self, payload: Dict) -> Dict:
        """One request, one reply — retrying transport failures.

        A refused/reset connection, a timed-out or truncated reply, or
        reply garbage gets exponential backoff with full jitter, for
        idempotent ops only.  A well-formed ``ok: false`` reply is the
        server's decision and propagates immediately.
        """
        payload = self._stamp(payload)
        attempts = 1 + (self.retries
                        if payload.get("op") in RETRYABLE_OPS else 0)
        last: Optional[Exception] = None
        for attempt in range(1, attempts + 1):
            try:
                return self._request_once(payload)
            except ServiceAuthError:
                raise  # the server spoke: retrying cannot help
            except ServiceError as exc:
                if exc.kind != "transport" and not isinstance(
                        exc, ServiceUnavailable):
                    raise
                last = exc
            except (OSError, ValueError) as exc:
                # reset mid-reply / timeout / torn JSON line
                last = exc
            if attempt < attempts:
                delay = min(BACKOFF_CAP, BACKOFF_BASE * (2 ** (attempt - 1)))
                self._sleep(delay * self._rng.random())
        if isinstance(last, ServiceError):
            raise last
        raise ServiceUnavailable(
            f"request to {format_addr(self.addr)} failed after "
            f"{attempts} attempts: {last}") from last

    def stream(self, payload: Dict) -> Iterator[Dict]:
        """One request, many reply lines (``watch``).  Not retried."""
        with self._connect() as sock:
            sock.settimeout(None)  # watch streams are long-lived
            _send_line(sock, self._stamp(payload))
            for reply in _recv_lines(sock):
                if not reply.get("ok", True):
                    self._raise_error(reply)
                yield reply

    # -- client operations -------------------------------------------------------
    def ping(self) -> Dict:
        return self.request({"op": "ping"})

    def available(self) -> bool:
        try:
            self.ping()
            return True
        except ServiceError:
            return False

    def submit(self, spec_dicts: List[Dict], priority: int = 0,
               label: str = "") -> Dict:
        return self.request({"op": "submit", "specs": spec_dicts,
                             "priority": priority, "label": label})

    def status(self, job_id: Optional[str] = None) -> Dict:
        payload: Dict = {"op": "status"}
        if job_id is not None:
            payload["job"] = job_id
        return self.request(payload)

    def watch(self, job_id: str, interval: float = 0.2) -> Iterator[Dict]:
        """Progress events until the job reaches a terminal state."""
        yield from self.stream({"op": "watch", "job": job_id,
                                "interval": interval})

    def wait(self, job_id: str, interval: float = 0.2) -> Dict:
        """Block until the job is terminal; returns its final status."""
        last: Dict = {}
        for event in self.watch(job_id, interval=interval):
            last = event
            if event.get("event") == "done":
                break
        return last.get("job", {})

    def cancel(self, job_id: str) -> bool:
        return bool(self.request({"op": "cancel",
                                  "job": job_id}).get("cancelled"))

    def fetch(self, spec_dict: Dict) -> Optional[Dict]:
        """The encoded result payload for a spec, or None on a miss."""
        return self.request({"op": "fetch", "spec": spec_dict}).get("result")

    def stats(self) -> Dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> None:
        try:
            self.request({"op": "shutdown"})
        except (ServiceError, OSError):
            pass  # the socket may drop as the server exits

    # -- worker operations -------------------------------------------------------
    def claim(self, owner: str, host: str, max_cells: int = 1) -> List[Dict]:
        return self.request({"op": "claim", "owner": owner, "host": host,
                             "max": max_cells}).get("cells", [])

    def complete(self, owner: str, digest: str, result: Dict,
                 elapsed: Optional[float] = None,
                 spec: Optional[Dict] = None) -> bool:
        """*spec* (the lease's spec dict) lets the server repair an
        unreadable cell record at settlement time."""
        payload: Dict = {
            "op": "complete", "owner": owner, "digest": digest,
            "result": result, "elapsed": elapsed,
        }
        if spec is not None:
            payload["spec"] = spec
        return bool(self.request(payload).get("accepted"))

    def fail(self, owner: str, digest: str, error: str) -> bool:
        return bool(self.request({
            "op": "fail", "owner": owner, "digest": digest, "error": error,
        }).get("accepted"))

    def heartbeat(self, host: str, workers: int = 1,
                  errors: Optional[Dict] = None) -> None:
        payload: Dict = {"op": "heartbeat", "host": host, "workers": workers}
        if errors:
            payload["errors"] = errors
        self.request(payload)
