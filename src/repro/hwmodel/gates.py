"""Minimal combinational gate-level netlist library.

Used to build the ATR bulk no-early-release circuit exactly as a
synthesis tool would see it (paper section 4.4 reports 42 logic levels
and 2,960 gates from Yosys), evaluate it functionally against a reference
Python implementation, and report gate count / logic depth / FO4 timing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence


class GateKind(enum.Enum):
    INPUT = "input"
    CONST = "const"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"


#: Typical FO4-normalized delays per gate (Logical Effort, Sutherland et
#: al. [30] — the paper assumes a NAND is ~1.4 FO4).
_FO4_DELAY = {
    GateKind.INPUT: 0.0,
    GateKind.CONST: 0.0,
    GateKind.NOT: 1.0,
    GateKind.AND: 1.8,
    GateKind.OR: 2.0,
    GateKind.XOR: 2.2,
    GateKind.NAND: 1.4,
    GateKind.NOR: 1.6,
}


@dataclass
class Gate:
    index: int
    kind: GateKind
    inputs: tuple
    name: Optional[str] = None
    value: bool = False  # for CONST


class Netlist:
    """A DAG of 2-input gates (NOT is 1-input) built bottom-up."""

    def __init__(self, name: str = "netlist"):
        self.name = name
        self.gates: List[Gate] = []
        self.outputs: Dict[str, int] = {}
        self._input_names: List[str] = []

    # -- construction -----------------------------------------------------------
    def _add(self, kind: GateKind, inputs: tuple, name: Optional[str] = None,
             value: bool = False) -> int:
        gate = Gate(len(self.gates), kind, inputs, name, value)
        self.gates.append(gate)
        return gate.index

    def input(self, name: str) -> int:
        self._input_names.append(name)
        return self._add(GateKind.INPUT, (), name=name)

    def const(self, value: bool) -> int:
        return self._add(GateKind.CONST, (), value=value)

    def not_(self, a: int) -> int:
        return self._add(GateKind.NOT, (a,))

    def and_(self, a: int, b: int) -> int:
        return self._add(GateKind.AND, (a, b))

    def or_(self, a: int, b: int) -> int:
        return self._add(GateKind.OR, (a, b))

    def xor(self, a: int, b: int) -> int:
        return self._add(GateKind.XOR, (a, b))

    def nand(self, a: int, b: int) -> int:
        return self._add(GateKind.NAND, (a, b))

    def nor(self, a: int, b: int) -> int:
        return self._add(GateKind.NOR, (a, b))

    def xnor(self, a: int, b: int) -> int:
        return self.not_(self.xor(a, b))

    def reduce_tree(self, op, signals: Sequence[int]) -> int:
        """Balanced reduction tree (minimizes logic depth)."""
        signals = list(signals)
        if not signals:
            raise ValueError("empty reduction")
        while len(signals) > 1:
            next_level = []
            for i in range(0, len(signals) - 1, 2):
                next_level.append(op(signals[i], signals[i + 1]))
            if len(signals) % 2:
                next_level.append(signals[-1])
            signals = next_level
        return signals[0]

    def equals(self, a_bits: Sequence[int], b_bits: Sequence[int]) -> int:
        """N-bit equality comparator."""
        if len(a_bits) != len(b_bits):
            raise ValueError("width mismatch")
        bit_eq = [self.xnor(a, b) for a, b in zip(a_bits, b_bits)]
        return self.reduce_tree(self.and_, bit_eq)

    def output(self, name: str, signal: int) -> None:
        self.outputs[name] = signal

    # -- analysis -----------------------------------------------------------------
    @property
    def gate_count(self) -> int:
        """Logic gates only (inputs/constants excluded)."""
        return sum(
            1 for g in self.gates if g.kind not in (GateKind.INPUT, GateKind.CONST)
        )

    def logic_depth(self) -> int:
        """Longest input->output path in gate levels."""
        depth = [0] * len(self.gates)
        for gate in self.gates:  # construction order is topological
            if gate.kind in (GateKind.INPUT, GateKind.CONST):
                depth[gate.index] = 0
            else:
                depth[gate.index] = 1 + max(depth[i] for i in gate.inputs)
        if not self.outputs:
            return max(depth, default=0)
        return max(depth[s] for s in self.outputs.values())

    def fo4_delay(self) -> float:
        """Critical-path delay in FO4 units (gate delays only)."""
        arrival = [0.0] * len(self.gates)
        for gate in self.gates:
            if gate.kind in (GateKind.INPUT, GateKind.CONST):
                arrival[gate.index] = 0.0
            else:
                arrival[gate.index] = _FO4_DELAY[gate.kind] + max(
                    arrival[i] for i in gate.inputs
                )
        if not self.outputs:
            return max(arrival, default=0.0)
        return max(arrival[s] for s in self.outputs.values())

    def evaluate(self, inputs: Dict[str, bool]) -> Dict[str, bool]:
        """Functional simulation of the netlist."""
        values = [False] * len(self.gates)
        for gate in self.gates:
            kind = gate.kind
            if kind is GateKind.INPUT:
                values[gate.index] = bool(inputs[gate.name])
            elif kind is GateKind.CONST:
                values[gate.index] = gate.value
            elif kind is GateKind.NOT:
                values[gate.index] = not values[gate.inputs[0]]
            else:
                a = values[gate.inputs[0]]
                b = values[gate.inputs[1]]
                values[gate.index] = {
                    GateKind.AND: a and b,
                    GateKind.OR: a or b,
                    GateKind.XOR: a != b,
                    GateKind.NAND: not (a and b),
                    GateKind.NOR: not (a or b),
                }[kind]
        return {name: values[s] for name, s in self.outputs.items()}

    def stats(self) -> Dict[str, float]:
        by_kind: Dict[str, int] = {}
        for gate in self.gates:
            if gate.kind in (GateKind.INPUT, GateKind.CONST):
                continue
            by_kind[gate.kind.value] = by_kind.get(gate.kind.value, 0) + 1
        return {
            "gates": self.gate_count,
            "depth": self.logic_depth(),
            "fo4": self.fo4_delay(),
            **by_kind,
        }
