"""Seeded fault injection: adversarial *timing* perturbation.

ATR's safety argument is that early release changes **when** registers
recycle, never **what** the program computes — under any flush,
interrupt, or wrong-path schedule.  The chaos engine attacks exactly
that claim: it derives, from one integer seed, a deterministic set of
timing-only faults —

* **configuration jitter**: execution/cache latencies, port counts,
  queue sizes, and frontend depth drawn from adversarial ranges;
* **free-list pressure**: the register file shrunk toward the minimum
  that can still make progress, maximizing recycling;
* **forced mispredict overrides**: correctly predicted conditional
  branches randomly flipped into mispredictions, driving wrong-path
  fetch and flush walks through rare interleavings;
* **forced interrupts**: drain- or flush-policy interrupts scheduled at
  random cycles, exercising the precommit-boundary squash;
* **execution jitter**: per-instruction latency noise reordering
  completions;

— then runs the cycle core with the online sanitizer attached and
differentially verifies the committed architectural state against the
functional emulator.  A timing fault that changes architectural results
(or trips the sanitizer, or breaks free-list conservation) is a
correctness bug; the run's :class:`~repro.harness.CellResult` comes back
with ``error`` holding the violation and its pipeline snapshot.

Everything is derived from ``ChaosSpec`` via ``random.Random`` seeded
with a stable string, so a failing cell replays bit-identically from its
spec alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..branch import Prediction
from ..frontend import DynamicInstruction, canonical_state, final_state
from ..harness.jobs import CellResult
from ..harness.spec import register_spec_type
from ..memory import HierarchyConfig
from ..pipeline import Core, CoreConfig, DeadlockError, InterruptController
from ..pipeline.stages import ExecuteUnit, FetchStage
from ..rename.errors import RenameError
from ..workloads import build_trace
from .sanitizer import InvariantViolation

#: Fault magnitudes per campaign intensity.
INTENSITIES = {
    "low": {"flip_prob": 0.005, "exec_jitter": 1, "max_interrupts": 1,
            "rf_pressure": 4},
    "medium": {"flip_prob": 0.02, "exec_jitter": 3, "max_interrupts": 2,
               "rf_pressure": 12},
    "high": {"flip_prob": 0.06, "exec_jitter": 6, "max_interrupts": 4,
             "rf_pressure": 24},
}

#: Smallest register file the jittered fast machine can run with
#: (17 int SRT slots + rename-width reserve + headroom).
_MIN_RF = 24


@dataclass(frozen=True)
class ChaosSpec:
    """One seeded chaos cell: benchmark x scheme x rf_size x seed."""

    benchmark: str
    scheme: str
    rf_size: int
    instructions: int
    seed: int
    intensity: str = "medium"
    redefine_delay: int = 0

    kind = "chaos"

    def describe(self) -> str:
        delay = f" d{self.redefine_delay}" if self.redefine_delay else ""
        return (f"{self.benchmark}/rf{self.rf_size}/{self.scheme}"
                f"/chaos#{self.seed}({self.intensity}){delay}")


register_spec_type(ChaosSpec)


def _chaos_rng(spec: ChaosSpec) -> random.Random:
    """Deterministic RNG: ``random.Random`` seeds strings via SHA-512,
    independent of ``PYTHONHASHSEED`` and the host process."""
    return random.Random(
        f"{spec.benchmark}|{spec.scheme}|rf{spec.rf_size}"
        f"|n{spec.instructions}|s{spec.seed}|{spec.intensity}"
        f"|d{spec.redefine_delay}")


def chaos_config(spec: ChaosSpec, rng: random.Random) -> CoreConfig:
    """A jittered small machine for *spec*; timing knobs only."""
    knobs = INTENSITIES[spec.intensity]
    rf_size = max(_MIN_RF, spec.rf_size - rng.randint(0, knobs["rf_pressure"]))
    memory = HierarchyConfig(
        l1d_latency=rng.randint(2, 5),
        l1i_latency=rng.randint(2, 4),
        l2_latency=rng.randint(8, 20),
        llc_latency=rng.randint(25, 60),
        dram_latency=rng.randint(120, 320),
        mshr_entries=rng.randint(8, 48),
        enable_prefetch=rng.random() < 0.5,
    )
    config = CoreConfig(
        fetch_width=rng.randint(2, 6),
        rename_width=4,
        retire_width=rng.randint(2, 8),
        precommit_width=rng.randint(4, 16),
        rob_size=rng.randint(32, 96),
        rs_size=rng.randint(16, 48),
        lq_size=rng.randint(8, 24),
        sq_size=rng.randint(8, 24),
        alu_ports=rng.randint(1, 4),
        load_ports=rng.randint(1, 3),
        store_ports=rng.randint(1, 2),
        lat_int_mul=rng.randint(2, 6),
        lat_int_div=rng.randint(6, 30),
        lat_vec_alu=rng.randint(1, 4),
        lat_vec_mul=rng.randint(2, 8),
        lat_vec_div=rng.randint(8, 32),
        frontend_depth=rng.randint(2, 6),
        checkpoints=rng.randint(2, 8),
        redirect_penalty=rng.randint(1, 6),
        scheme=spec.scheme,
        redefine_delay=spec.redefine_delay,
        memory=memory,
        execute_values=True,
        conservation_check=True,
        check_invariants=True,
    ).with_rf_size(rf_size)
    config.validate()
    return config


class ChaosExecuteUnit(ExecuteUnit):
    """Execute unit adding seeded per-instruction latency slack."""

    def __init__(self, state, rng: random.Random, exec_jitter: int):
        super().__init__(state)
        self._rng = rng
        self._exec_jitter = exec_jitter

    def dispatch(self, entry, cycle: int) -> int:
        latency = super().dispatch(entry, cycle)
        if self._exec_jitter:
            latency += self._rng.randint(0, self._exec_jitter)
        return latency


class ChaosFetchStage(FetchStage):
    """Fetch stage that randomly overrides correct branch predictions."""

    def __init__(self, state, rng: random.Random, flip_prob: float):
        super().__init__(state)
        self._rng = rng
        self._flip_prob = flip_prob
        self.forced_mispredicts = 0

    def predict(self, dyn: DynamicInstruction):
        prediction, mispredicted, redirect = super().predict(dyn)
        if (
            prediction is not None
            and not mispredicted
            and not dyn.wrong_path
            and dyn.instr.is_conditional_branch
            and dyn.instr.target is not None
            and self._rng.random() < self._flip_prob
        ):
            # Override a correct prediction with the opposite direction:
            # a pure timing fault that forces wrong-path fetch and a
            # flush at resolution.
            flipped = Prediction(
                taken=not prediction.taken,
                target=dyn.instr.target if not prediction.taken else None,
                confident=False,
            )
            self.forced_mispredicts += 1
            return flipped, True, flipped.taken or dyn.taken
        return prediction, mispredicted, redirect


class ChaosCore(Core):
    """A :class:`Core` with seeded timing-fault injection.

    Perturbations are strictly timing-side, injected through the stage
    interface (no monkey-patching): :class:`ChaosExecuteUnit` adds
    random latency slack and :class:`ChaosFetchStage` overrides correctly
    predicted conditional branches into mispredictions.  Architectural
    results must be unaffected — that is the property under test.
    """

    def __init__(self, config: CoreConfig, trace, rng: random.Random,
                 flip_prob: float = 0.0, exec_jitter: int = 0):
        # Stage factories run inside super().__init__; params come first.
        self._rng = rng
        self._flip_prob = flip_prob
        self._exec_jitter = exec_jitter
        super().__init__(config, trace)

    def _make_execute_unit(self, state) -> ExecuteUnit:
        return ChaosExecuteUnit(state, self._rng, self._exec_jitter)

    def _make_fetch_stage(self, state) -> FetchStage:
        return ChaosFetchStage(state, self._rng, self._flip_prob)

    @property
    def forced_mispredicts(self) -> int:
        return self.stages.fetch.forced_mispredicts


def _schedule_interrupts(core: Core, rng: random.Random,
                         max_interrupts: int,
                         horizon: int) -> Optional[Tuple[str, List[int]]]:
    count = rng.randint(0, max_interrupts)
    if count == 0:
        return None
    policy = rng.choice(("drain", "flush"))
    controller = InterruptController(
        core, policy=policy, service_cycles=rng.randint(20, 80))
    cycles = sorted(rng.randint(50, max(51, horizon)) for _ in range(count))
    for cycle in cycles:
        controller.schedule(cycle)
    return policy, cycles


def run_chaos_cell(spec: ChaosSpec) -> CellResult:
    """Run one chaos cell; violations land in ``CellResult.error``."""
    if spec.intensity not in INTENSITIES:
        raise ValueError(f"unknown intensity {spec.intensity!r}; "
                         f"expected one of {sorted(INTENSITIES)}")
    knobs = INTENSITIES[spec.intensity]
    rng = _chaos_rng(spec)
    trace = build_trace(spec.benchmark, spec.instructions)
    golden = final_state(trace.program, max_instructions=len(trace.entries))

    config = chaos_config(spec, rng)
    core = ChaosCore(config, trace, rng,
                     flip_prob=knobs["flip_prob"],
                     exec_jitter=knobs["exec_jitter"])
    injected = _schedule_interrupts(
        core, rng, knobs["max_interrupts"], horizon=spec.instructions * 3)
    perturbation = (
        f"rf={config.int_rf_size} flip={knobs['flip_prob']} "
        f"jitter={knobs['exec_jitter']} interrupts="
        f"{injected if injected else 'none'}")

    # ATR-claiming schemes additionally get the static cross-checks:
    # every out-of-order release must match a statically-proven atomic
    # window, and total ATR activity must stay within the static
    # opportunity bound — under whatever flush/interrupt schedule the
    # chaos faults produce.
    oracle = None
    bound_probe = None
    if spec.scheme in ("atr", "combined"):
        from ..staticcheck import AtrSoundnessProbe, StaticBoundProbe
        oracle = AtrSoundnessProbe(trace.program,
                                   strict_unclaimed=(spec.scheme == "atr"))
        core.add_probe(oracle)
        bound_probe = StaticBoundProbe(trace.program)
        core.add_probe(bound_probe)

    error = None
    try:
        core.run()
        diverged = canonical_state(core.architectural_state()).diff(
            canonical_state(golden))
        if diverged:
            detail = "\n".join(f"  {line}" for line in diverged)
            error = (f"architectural divergence from golden model under "
                     f"timing faults ({perturbation}):\n{detail}")
    except (InvariantViolation, DeadlockError, RenameError,
            AssertionError) as exc:
        error = f"{type(exc).__name__} under {perturbation}:\n{exc}"

    if oracle is not None and oracle.violations:
        detail = "\n".join(f"  {violation}" for violation in oracle.violations)
        report = (f"static atomic-region oracle: {len(oracle.violations)} "
                  f"unsound release(s) under {perturbation}:\n{detail}")
        error = f"{error}\n{report}" if error else report

    if bound_probe is not None and bound_probe.violations:
        detail = "\n".join(f"  {violation}"
                           for violation in bound_probe.violations)
        report = (f"static ATR opportunity bound: {bound_probe.summary()} "
                  f"under {perturbation}:\n{detail}")
        error = f"{error}\n{report}" if error else report

    stats = core.stats
    stats.cycles = core.cycle
    return CellResult(
        benchmark=spec.benchmark,
        scheme=spec.scheme,
        rf_size=spec.rf_size,
        instructions=spec.instructions,
        stats=stats,
        scheme_stats=core.scheme.stats,
        error=error,
    )


def execute_chaos_spec(spec) -> CellResult:
    """Scheduler executor for chaos campaigns."""
    if not isinstance(spec, ChaosSpec):
        raise TypeError(f"expected ChaosSpec, got {type(spec).__name__}")
    return run_chaos_cell(spec)
