"""Trace serialization round trips (binary and JSONL)."""

import pytest

from repro.frontend import (
    read_trace,
    read_trace_jsonl,
    run_program,
    trace_from_bytes,
    trace_to_bytes,
    write_trace,
    write_trace_jsonl,
)
from repro.isa import assemble


def _entries_equal(a, b):
    return (
        len(a) == len(b)
        and all(
            x.pc == y.pc and x.next_pc == y.next_pc and x.taken == y.taken
            and x.mem_addr == y.mem_addr and x.instr == y.instr
            for x, y in zip(a.entries, b.entries)
        )
    )


@pytest.fixture
def trace(memory_program):
    return run_program(memory_program)


def test_bytes_round_trip(trace):
    again = trace_from_bytes(trace_to_bytes(trace))
    assert _entries_equal(trace, again)
    assert again.name == trace.name


def test_file_round_trip(trace, tmp_path):
    path = str(tmp_path / "t.rtrace")
    write_trace(trace, path)
    again = read_trace(path)
    assert _entries_equal(trace, again)


def test_jsonl_round_trip(trace, tmp_path):
    path = str(tmp_path / "t.jsonl")
    write_trace_jsonl(trace, path)
    again = read_trace_jsonl(path)
    assert _entries_equal(trace, again)


def test_data_image_preserved(tmp_path):
    prog = assemble(".word 64 123\nmovi r1, 64\nld r2, r1, 0\nhalt")
    trace = run_program(prog)
    again = trace_from_bytes(trace_to_bytes(trace))
    assert again.program.data[64] == 123


def test_bad_magic_rejected():
    with pytest.raises(ValueError, match="magic"):
        trace_from_bytes(b"NOPE" + b"\x00" * 64)


def test_branchy_round_trip(branchy_program):
    trace = run_program(branchy_program)
    again = trace_from_bytes(trace_to_bytes(trace))
    assert _entries_equal(trace, again)


def test_large_addresses_survive(tmp_path):
    prog = assemble("movi r1, 0x1000000\nst r1, r1, 0\nld r2, r1, 0\nhalt")
    trace = run_program(prog)
    again = trace_from_bytes(trace_to_bytes(trace))
    assert _entries_equal(trace, again)
