"""Static analysis over :class:`repro.isa.Program`.

ATR's correctness argument is *static*: a register renamed and redefined
inside an atomic commit region — no conditional branch, indirect jump,
or exception-causing instruction between its defining and redefining
instructions — can never gain a new consumer after the redefiner renames,
so it may be released out of order.  The dynamic machinery in
``repro.rename.schemes`` discovers those regions at rename time; this
package proves them from the program text alone, giving an independent
oracle for the runtime and a lint layer for the hand-written kernels.

Passes, in pipeline order:

1. :mod:`~repro.staticcheck.cfg` — basic blocks and control-flow edges
   (fallthrough / branch / CALL / RET, conservative indirect handling);
2. :mod:`~repro.staticcheck.dataflow` — reaching definitions, liveness,
   and per-register def→redef window enumeration on that CFG;
3. :mod:`~repro.staticcheck.regions` — the static atomic-region pass,
   mirroring the exact breaker rules of
   :func:`repro.analysis.regions.classify_regions`;
4. :mod:`~repro.staticcheck.memdep` — value-set analysis over addresses:
   must/may-alias verdicts, dependence edges, and the memory-aware
   atomic-region classification (reorderable / forwardable accesses);
5. :mod:`~repro.staticcheck.pressure` — static live-range pressure and
   the sound ATR opportunity upper bound;
6. :mod:`~repro.staticcheck.lints` — findings with stable rule IDs;
7. :mod:`~repro.staticcheck.oracle` — the differential soundness oracle
   cross-checking pipeline releases against statically-proven windows
   (:class:`AtrSoundnessProbe`, and :class:`StaticBoundProbe` for the
   opportunity bound).
"""

from .cfg import CFG, BasicBlock, build_cfg
from .dataflow import DataflowResult, Window, analyze_dataflow
from .lints import META_RULES, RULES, LintReport, lint_benchmark, lint_program
from .memdep import (
    MAY,
    MUST,
    NO,
    MemAccess,
    MemDepResult,
    RegionMemory,
    StridedInterval,
    ValueSet,
    analyze_memdep,
)
from .oracle import (
    AtrSoundnessProbe,
    AtrViolation,
    OracleReport,
    branch_free_counts_match,
    check_benchmark,
    check_trace,
    compare_branch_free,
)
from .pressure import (
    BoundViolation,
    PressureReport,
    StaticBoundProbe,
    analyze_pressure,
)
from .regions import StaticRegionReport, StaticWindow, analyze_regions
from .report import Finding, Severity, render_findings

__all__ = [
    "CFG", "BasicBlock", "build_cfg",
    "DataflowResult", "Window", "analyze_dataflow",
    "StaticRegionReport", "StaticWindow", "analyze_regions",
    "MemDepResult", "MemAccess", "RegionMemory", "StridedInterval",
    "ValueSet", "analyze_memdep", "MUST", "MAY", "NO",
    "PressureReport", "StaticBoundProbe", "BoundViolation",
    "analyze_pressure",
    "RULES", "META_RULES", "LintReport", "lint_program", "lint_benchmark",
    "AtrSoundnessProbe", "AtrViolation", "OracleReport",
    "check_trace", "check_benchmark", "compare_branch_free",
    "branch_free_counts_match",
    "Finding", "Severity", "render_findings",
]
