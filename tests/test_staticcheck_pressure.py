"""Static pressure, the release-weight map, and the sound ATR bound."""

import pytest

from repro.isa import ProgramBuilder, ireg
from repro.pipeline import Core
from repro.pipeline.config import fast_test_config
from repro.staticcheck import StaticBoundProbe, analyze_pressure
from repro.validate.chaos import ChaosSpec, run_chaos_cell
from repro.workloads import build_trace

r = ireg


def _toy():
    b = ProgramBuilder("toy")
    b.movi(r(1), 1)              # pc 0: def r1
    b.movi(r(2), 2)              # pc 1
    b.movi(r(1), 3)              # pc 2: redef r1 — atomic window [0, 2]
    b.halt()
    return b.build()


class TestPressureReport:
    def test_release_weight(self):
        # First writes displace the entry mappings (windows with
        # def_pc=None), so every movi here carries weight 1.
        report = analyze_pressure(_toy())
        assert report.release_weight == {0: 1, 1: 1, 2: 1}

    def test_trace_bound_sums_over_the_stream(self):
        report = analyze_pressure(_toy())
        assert report.trace_bound([0, 1, 2]) == 3
        assert report.trace_bound([2, 2, 2]) == 3
        assert report.trace_bound([3]) == 0  # halt carries no weight

    def test_live_counts_cover_every_pc(self):
        program = _toy()
        report = analyze_pressure(program)
        assert len(report.live_int) == len(program.instructions)
        assert report.max_pressure() >= 1

    def test_counts_keys(self):
        counts = analyze_pressure(_toy()).counts()
        assert counts["atomic_windows"] == 3
        assert counts["static_weight"] == 3
        assert "max_int_pressure" in counts

    def test_kernel_has_opportunity(self):
        program = build_trace("505.mcf_r", 100).program
        report = analyze_pressure(program)
        assert report.release_weight and sum(report.release_weight.values())


class TestStaticBoundProbe:
    @pytest.mark.parametrize("scheme", ("atr", "combined"))
    def test_bound_holds_on_real_run(self, scheme):
        trace = build_trace("505.mcf_r", 800)
        config = fast_test_config(rf_size=48, scheme=scheme)
        core = Core(config, trace)
        probe = core.add_probe(StaticBoundProbe(trace.program))
        core.run()
        assert probe.ok, [str(v) for v in probe.violations]
        assert probe.bound > 0
        assert probe.claims_seen <= probe.bound
        assert probe.claimed_releases <= probe.claims_seen
        assert "static bound" in probe.summary()

    def test_synthetic_violation(self):
        probe = StaticBoundProbe(_toy())
        assert probe.bound == 0
        probe.on_claim("int", 7, cycle=5)
        assert not probe.ok
        violation = probe.violations[0]
        assert violation.kind == "claims"
        assert "static ATR bound violated" in str(violation)
        probe.on_early_release("int", 7, cycle=6)
        assert any(v.kind == "releases" for v in probe.violations)

    def test_unclaimed_release_is_not_counted(self):
        probe = StaticBoundProbe(_toy())
        probe.on_early_release("int", 3, cycle=1)  # never claimed
        assert probe.claimed_releases == 0 and probe.ok

    def test_trace_bound_dominates_committed_releases(self):
        from repro.harness import CellSpec
        from repro.harness.jobs import simulate_cell

        n = 1000
        spec = CellSpec(benchmark="505.mcf_r", rf_size=64, scheme="atr",
                        instructions=n, record_register_events=True)
        cell = simulate_cell(spec)
        trace = build_trace("505.mcf_r", n)
        report = analyze_pressure(trace.program)
        bound = report.trace_bound(e.pc for e in trace.entries)
        realized = sum(1 for record in cell.event_records
                       if record.early_release_cycle is not None)
        assert realized <= bound


class TestChaosIntegration:
    def test_bound_holds_under_chaos(self):
        spec = ChaosSpec(benchmark="505.mcf_r", scheme="atr", rf_size=48,
                         instructions=600, seed=11, intensity="low")
        result = run_chaos_cell(spec)
        assert result.error is None, result.error

    def test_violation_surfaces_in_cell_error(self, monkeypatch):
        """Starve the probe's weight map: every claim then exceeds the
        bound, and the chaos cell must report it."""
        import repro.staticcheck as staticcheck

        class Starved(StaticBoundProbe):
            def __init__(self, program, report=None):
                super().__init__(program, report)
                self._weight = {}

        monkeypatch.setattr(staticcheck, "StaticBoundProbe", Starved)
        spec = ChaosSpec(benchmark="505.mcf_r", scheme="atr", rf_size=48,
                         instructions=400, seed=3, intensity="low")
        result = run_chaos_cell(spec)
        assert result.error is not None
        assert "static ATR opportunity bound" in result.error
