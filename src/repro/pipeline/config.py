"""Core configuration (paper Table 1: an Intel Golden-Cove-like machine).

``golden_cove_config()`` produces the paper's evaluation configuration;
``fast_test_config()`` is a small machine for quick unit tests.  The
physical register file size (the paper's primary independent variable,
Figures 1/10/11/15) is set via ``rf_size``.

Named presets live in the :data:`CORE_CONFIGS` registry (zero-arg
factories returning a validated config): the golden-cove default plus
small/large RF sweep points, addressable from the CLI (``repro run
--config``) and listed by ``repro list configs``; plugin presets join
through the discovery hook (:mod:`repro.registry`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..memory import HierarchyConfig
from ..registry import Registry


@dataclass
class CoreConfig:
    """Every knob of the cycle-level core model."""

    # Widths (Table 1: 6-wide fetch/decode, 8-wide retirement)
    fetch_width: int = 6
    rename_width: int = 6
    retire_width: int = 8
    precommit_width: int = 16

    # Window sizes (Table 1)
    rob_size: int = 512
    rs_size: int = 160
    lq_size: int = 96
    sq_size: int = 64

    # Register files (Figure 1 sweeps 64..280; Table 1 core has 280)
    int_rf_size: int = 280
    vec_rf_size: int = 280
    counter_bits: int = 3

    # Functional units (Table 1: 5 ALU, 3 Load, 2 Store)
    alu_ports: int = 5
    load_ports: int = 3
    store_ports: int = 2

    # Latencies (cycles)
    lat_int_alu: int = 1
    lat_int_mul: int = 3
    lat_int_div: int = 18
    lat_vec_alu: int = 2
    lat_vec_mul: int = 4
    lat_vec_div: int = 24
    lat_branch: int = 1
    lat_store: int = 1
    lat_forward: int = 1

    # Frontend
    frontend_depth: int = 6
    fetch_targets_per_cycle: int = 2
    ft_block_bytes: int = 64
    predictor: str = "tage"  # tage | gshare | bimodal | always_taken | always_not_taken
    model_icache: bool = True

    # Recovery
    redirect_penalty: int = 3
    checkpoints: int = 8
    checkpoint_recovery_cycles: int = 1
    recovery_walk_width: int = 8

    # Release scheme
    scheme: str = "baseline"
    redefine_delay: int = 0
    scheme_debug_checks: bool = True

    # Free-list stall watermark: MAX_DEST x rename width (paper 4.2.1).
    # Our ISA has at most one destination per instruction.
    max_dests_per_instr: int = 1

    # Memory hierarchy
    memory: HierarchyConfig = field(default_factory=HierarchyConfig)

    # Simulation-speed switches (timing-neutral by construction).
    # skip_ahead lets Core.run jump the cycle counter over quiescent
    # windows — cycles in which no stage can make progress because every
    # in-flight op waits on a known-latency completion event.  The jump is
    # provably stats-identical to spinning (see DESIGN.md, "Tiered
    # simulation"); it auto-disables whenever probes or an interrupt
    # controller are attached, so observers always see every cycle.
    skip_ahead: bool = True

    # Modeling switches
    execute_values: bool = True
    record_register_events: bool = False
    record_timeline: bool = False
    conservation_check: bool = True
    # Online invariant sanitizer (repro.validate): per-event use-after-
    # release / conservation / ordering checks.  Off by default — when
    # off the core holds no checker and pays a single `is None` test per
    # hook site.
    check_invariants: bool = False

    @property
    def freelist_reserve(self) -> int:
        return self.max_dests_per_instr * self.rename_width

    def with_rf_size(self, rf_size: int) -> "CoreConfig":
        """A copy with both register files sized to *rf_size*."""
        return replace(self, int_rf_size=rf_size, vec_rf_size=rf_size)

    def with_scheme(self, scheme: str, redefine_delay: Optional[int] = None) -> "CoreConfig":
        delay = self.redefine_delay if redefine_delay is None else redefine_delay
        return replace(self, scheme=scheme, redefine_delay=delay)

    def validate(self) -> None:
        from ..branch import PREDICTORS
        if self.int_rf_size < 17 + self.freelist_reserve + 1:
            raise ValueError(f"int_rf_size {self.int_rf_size} too small to make progress")
        if self.vec_rf_size < 16 + self.freelist_reserve + 1:
            raise ValueError(f"vec_rf_size {self.vec_rf_size} too small to make progress")
        if self.rob_size < self.rename_width:
            raise ValueError("rob smaller than rename width")
        if self.predictor not in PREDICTORS:
            raise ValueError(
                f"unknown predictor {self.predictor!r}; "
                f"valid: {', '.join(sorted(PREDICTORS))}"
            )


def golden_cove_config(
    rf_size: int = 280,
    scheme: str = "baseline",
    redefine_delay: int = 0,
    record_register_events: bool = False,
) -> CoreConfig:
    """The paper's Table 1 machine with a given RF size and scheme."""
    config = CoreConfig(
        scheme=scheme,
        redefine_delay=redefine_delay,
        record_register_events=record_register_events,
    ).with_rf_size(rf_size)
    config.validate()
    return config


#: Named machine presets: name -> zero-arg factory returning a validated
#: CoreConfig.  ``golden_cove`` is the paper's Table 1 machine; the
#: ``rf*`` points are the Figure 1/10 sweep anchors (64 = scarce, 128 =
#: knee, 384 = post-saturation headroom); ``fast_test`` is the small
#: unit-test machine.
CORE_CONFIGS: Registry = Registry(
    "config", doc="named core-configuration presets")

CORE_CONFIGS.register("golden_cove", lambda: golden_cove_config())
CORE_CONFIGS.register("golden_cove_rf64", lambda: golden_cove_config(rf_size=64))
CORE_CONFIGS.register("golden_cove_rf128", lambda: golden_cove_config(rf_size=128))
CORE_CONFIGS.register("golden_cove_rf384", lambda: golden_cove_config(rf_size=384))


def core_config(name: str) -> CoreConfig:
    """Build the named preset from :data:`CORE_CONFIGS` (always a fresh,
    validated instance — presets are factories, never shared state)."""
    config = CORE_CONFIGS.get(name)()
    config.validate()
    return config


def fast_test_config(
    rf_size: int = 64,
    scheme: str = "baseline",
    redefine_delay: int = 0,
    predictor: str = "tage",
) -> CoreConfig:
    """A small, fast machine for unit tests (64-entry ROB, 2 ALUs)."""
    config = CoreConfig(
        fetch_width=4,
        rename_width=4,
        retire_width=4,
        precommit_width=8,
        rob_size=64,
        rs_size=32,
        lq_size=16,
        sq_size=16,
        alu_ports=2,
        load_ports=2,
        store_ports=1,
        frontend_depth=3,
        predictor=predictor,
        scheme=scheme,
        redefine_delay=redefine_delay,
    ).with_rf_size(rf_size)
    config.validate()
    return config


CORE_CONFIGS.register("fast_test", lambda: fast_test_config())
