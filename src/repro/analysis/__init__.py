"""Analysis: region classification, register lifecycle, event timing."""

from .lifetime import LifetimeShares, lifetime_shares
from .regions import RegionChain, RegionReport, atomic_ratio, classify_regions
from .timing import EventTiming, atomic_event_timing, timeline_table

__all__ = [
    "RegionChain", "RegionReport", "classify_regions", "atomic_ratio",
    "LifetimeShares", "lifetime_shares",
    "EventTiming", "atomic_event_timing", "timeline_table",
]
