"""The shared machine state every pipeline stage mutates.

``PipelineState`` is the single source of truth for the simulated
machine: the ROB, rename substrate, release scheme, branch unit, memory
hierarchy, frontend cursor/queue, scheduling structures, and the value
state.  Stages (:mod:`repro.pipeline.stages`) receive it through the
uniform ``Stage.run(state, cycle)`` interface; observers subscribe
through the probe layer (:mod:`repro.pipeline.probes`) instead of
reaching into the core.

Everything here is public by design — diagnostics such as
:func:`repro.validate.snapshot.pipeline_snapshot` read these fields
directly, which is the supported alternative to attribute-poking the
old monolithic ``Core``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..branch import BranchUnit, Prediction
from ..frontend import ArchState, DynamicInstruction, Trace, WrongPathSupplier, canonical_memory
from ..isa import FLAGS, I_BYTES, Opcode, RegClass, ireg, vreg
from ..memory import MemoryHierarchy
from ..rename import CheckpointPool, RenameUnit
from ..rename.schemes import ReleaseScheme
from .config import CoreConfig
from .rob import ROBEntry, ReorderBuffer
from .stats import SimStats

#: Bytes per data word (the unit of store-forwarding bookkeeping).
WORD = 8


class FetchedInstr:
    """One instruction sitting in the frontend pipeline."""

    __slots__ = ("ready_cycle", "dyn", "prediction", "mispredicted", "fetch_cycle")

    def __init__(self, ready_cycle: int, dyn: DynamicInstruction,
                 prediction: Optional[Prediction], mispredicted: bool, fetch_cycle: int):
        self.ready_cycle = ready_cycle
        self.dyn = dyn
        self.prediction = prediction
        self.mispredicted = mispredicted
        self.fetch_cycle = fetch_cycle


class StoreRecord:
    """In-flight store: address/value known at issue, memory written at commit."""

    __slots__ = ("seq", "issued", "words")

    def __init__(self, seq: int):
        self.seq = seq
        self.issued = False
        self.words: List[Tuple[int, int]] = []  # (word-aligned addr, value)


def store_word_addrs(entry: ROBEntry) -> Tuple[int, ...]:
    """Word-aligned addresses written by a store entry."""
    addr = entry.dyn.mem_addr
    if addr is None:
        return ()
    words = 4 if entry.instr.opcode is Opcode.VST else 1
    return tuple(addr + i * WORD for i in range(words))


@dataclass(slots=True)
class PipelineState:
    """Every mutable piece of one simulated core."""

    config: CoreConfig
    trace: Trace
    rename_unit: RenameUnit
    scheme: ReleaseScheme
    branch_unit: BranchUnit
    memory: MemoryHierarchy
    rob: ReorderBuffer
    checkpoints: CheckpointPool

    cycle: int = 0
    done: bool = False
    stats: SimStats = field(default_factory=SimStats)

    # Frontend
    cursor: int = 0  # next correct-path trace index
    wrong_path: bool = False
    wrong_pc: Optional[int] = None
    wp_supplier: WrongPathSupplier = None  # type: ignore[assignment]
    wp_ras_snapshot: Optional[tuple] = None
    fetch_stall_until: int = 0
    stalled_for_resolve: bool = False
    fetch_queue: List[FetchedInstr] = field(default_factory=list)
    fq_head: int = 0
    next_seq: int = 0
    last_fetch_block: int = -1

    # Scheduling
    ready: Dict[str, list] = field(default_factory=dict)
    waiters: Dict[Tuple[RegClass, int], List[ROBEntry]] = field(default_factory=dict)
    ptag_ready: Dict[RegClass, List[bool]] = field(default_factory=dict)
    completions: Dict[int, List[ROBEntry]] = field(default_factory=dict)
    rs_used: int = 0
    lq_used: int = 0
    sq_used: int = 0
    stores: Dict[int, StoreRecord] = field(default_factory=dict)
    store_order: List[int] = field(default_factory=list)
    # Oracle memory disambiguation: word address -> seqs of in-flight
    # stores writing it.  Trace addresses are known at rename, so loads
    # wait only for *conflicting* older stores (perfect memory
    # dependence prediction, as in trace-driven Scarab).
    store_words: Dict[int, List[int]] = field(default_factory=dict)
    results: Dict[int, object] = field(default_factory=dict)

    # Value execution
    values: Dict[RegClass, list] = field(default_factory=dict)
    mem_values: Dict[int, int] = field(default_factory=dict)

    # Observation / control
    probes: Optional[object] = None  # ProbeManager, or None when unprobed
    timeline: List[tuple] = field(default_factory=list)
    interrupt_controller: Optional[object] = None
    interrupt_fetch_stall: bool = False
    last_committed_trace_seq: int = -1

    # -- derived views ----------------------------------------------------------
    @property
    def fetch_queue_depth(self) -> int:
        return len(self.fetch_queue) - self.fq_head

    def frontend_exhausted(self) -> bool:
        """No instruction left anywhere ahead of the ROB."""
        return (self.cursor >= len(self.trace.entries)
                and self.fq_head >= len(self.fetch_queue))

    # -- shared bookkeeping ------------------------------------------------------
    def drop_store_words(self, entry: ROBEntry) -> None:
        for word in store_word_addrs(entry):
            seqs = self.store_words.get(word)
            if seqs is not None:
                try:
                    seqs.remove(entry.seq)
                except ValueError:
                    pass
                if not seqs:
                    del self.store_words[word]

    # -- architectural queries ---------------------------------------------------
    def architectural_state(self) -> ArchState:
        """Committed architectural state (requires value execution)."""
        if not self.config.execute_values:
            raise RuntimeError("architectural_state requires execute_values=True")
        unit = self.rename_unit
        int_rat = unit.files[RegClass.INT].rat
        vec_rat = unit.files[RegClass.VEC].rat
        int_values = self.values[RegClass.INT]
        vec_values = self.values[RegClass.VEC]
        return ArchState(
            int_regs=tuple(int_values[int_rat.read(ireg(i).srt_slot)] for i in range(16)),
            vec_regs=tuple(vec_values[vec_rat.read(vreg(i).srt_slot)] for i in range(16)),
            flags=int_values[int_rat.read(FLAGS.srt_slot)],
            # Canonical form (zero words dropped) — the same helper the
            # golden-model comparisons apply to the emulator's state.
            memory=canonical_memory(self.mem_values),
        )

    def check_conservation(self) -> None:
        """Free-list conservation: with an empty ROB every allocated ptag is
        exactly an SRT mapping."""
        if len(self.rob) != 0:
            raise RuntimeError("conservation check requires an empty ROB")
        for file in self.rename_unit.files.values():
            file.freelist.check_conservation(file.rat.live_ptags())


def build_state(config: CoreConfig, trace: Trace, scheme: ReleaseScheme) -> PipelineState:
    """Construct the machine state for one run (scheme already built)."""
    rename_unit = RenameUnit(
        int_size=config.int_rf_size,
        vec_size=config.vec_rf_size,
        counter_bits=config.counter_bits,
        reserve=config.freelist_reserve,
    )
    scheme.attach(rename_unit)

    from .stages.fetch import make_predictor
    branch_unit = BranchUnit(direction=make_predictor(config.predictor))
    memory = MemoryHierarchy(config.memory)
    # Warm the instruction side with the code image, as the paper's
    # methodology warms each SimPoint before measurement; kernels are
    # loop-dominated, so an icache cold start would just add a fixed
    # DRAM delay to every run.
    if config.model_icache:
        code_bytes = len(trace.program) * I_BYTES
        for addr in range(0, code_bytes, config.memory.line_bytes):
            memory.l1i.fill(addr)
            memory.l2.fill(addr)

    return PipelineState(
        config=config,
        trace=trace,
        rename_unit=rename_unit,
        scheme=scheme,
        branch_unit=branch_unit,
        memory=memory,
        rob=ReorderBuffer(config.rob_size),
        checkpoints=CheckpointPool(config.checkpoints),
        wp_supplier=WrongPathSupplier(trace.program),
        ready={"alu": [], "load": [], "store": []},
        ptag_ready={
            RegClass.INT: [True] * config.int_rf_size,
            RegClass.VEC: [True] * config.vec_rf_size,
        },
        values={
            RegClass.INT: [0] * config.int_rf_size,
            RegClass.VEC: [(0, 0, 0, 0)] * config.vec_rf_size,
        },
        mem_values=dict(trace.program.data),
    )
