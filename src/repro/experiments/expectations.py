"""The paper's reported numbers, in one place.

Every figure module compares its measurements against these values and
EXPERIMENTS.md records the comparison.  We reproduce *shape* (who wins,
rough magnitudes, where trends cross), not absolute numbers — our
substrate is a different simulator running stand-in kernels.
"""

# Figure 1: baseline IPC at 64 registers relative to infinite registers.
FIG01_IPC_FRACTION_AT_64 = 0.377
FIG01_WITHIN_5PCT_REGISTERS = 280

# Section 3.1 / Figure 4: lifecycle shares.
FIG04_INT = {"in_use": 0.5352, "unused": 0.4103, "verified_unused": 0.0505}
FIG04_FP = {"in_use": 0.7827, "unused": 0.1891, "verified_unused": 0.02813}

# Section 3.2 / Figure 6: atomic register ratios.
FIG06_INT_ATOMIC_RATIO = 0.1704
FIG06_FP_ATOMIC_RATIO = 0.1314

# Figure 10: average speedups over baseline (fractions).
FIG10 = {
    (64, "atr", "int"): 0.0570,
    (64, "atr", "fp"): 0.0469,
    (64, "nonspec_er", "int"): 0.1391,
    (64, "nonspec_er", "fp"): 0.1443,
    # combined is reported as gain over nonspec-ER:
    (64, "combined_over_nonspec", "int"): 0.0323,
    (64, "combined_over_nonspec", "fp"): 0.0327,
    (224, "atr", "int"): 0.0148,
    (224, "atr", "fp"): 0.0111,
    (224, "combined_over_nonspec", "int"): 0.0037,
    (224, "combined_over_nonspec", "fp"): 0.0046,
}

# Figure 11: ATR speedup by RF size (int, fp).
FIG11_ATR_AT_64 = {"int": 0.0570, "fp": 0.0469}
FIG11_ATR_AT_280 = {"int": 0.0093, "fp": 0.0053}

# Figure 12: consumers per atomic region ("for most workloads, regions
# only have 1-2 consumers in average"; namd reaches ~5).
FIG12_TYPICAL_MEAN_CONSUMERS = (0.0, 2.5)
FIG12_NAMD_MAX = 5

# Figure 13: pipeline delay of 1-2 cycles has negligible impact.
FIG13_MAX_DEGRADATION = 0.01

# Figure 15: registers needed to stay within 3% of the 280-register
# baseline, and the resulting reductions.
FIG15_REGISTERS = {"baseline": 280, "atr": 204, "nonspec_er": 212, "combined": 196}
FIG15_REDUCTION = {"atr": 0.271, "nonspec_er": 0.243, "combined": 0.300}
FIG15_POWER_SAVING = {"atr": 0.055, "combined": 0.055}
FIG15_AREA_SAVING = {"atr": 0.027, "combined": 0.029}

# Section 4.4: hardware synthesis of the bulk no-early-release logic.
SEC44_GATES = 2960
SEC44_LOGIC_LEVELS = 42
SEC44_FREQ_GHZ = 2.6
SEC44_COUNTER_OVERHEAD_INT = 3 / 64
SEC44_COUNTER_OVERHEAD_VEC = 3 / 256

# Headline claims (abstract / conclusion).
HEADLINE_SPEEDUP_64 = 0.0513
HEADLINE_SPEEDUP_224 = 0.0148
HEADLINE_RF_REDUCTION = 0.271
