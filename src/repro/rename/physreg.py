"""Physical register table (PRT) metadata.

Paper section 4.2.2 extends the PRT with a 3-bit consumer counter per
physical register, reserving the all-ones value as *no-early-release*.
This module models that metadata with two logical pieces:

* ``consumer_count`` — incremented when a consumer renames, decremented
  when a consumer issues.  It saturates into a sticky *overflow* state
  (more consumers than the counter can track), which permanently blocks
  early release of that register.
* ``ner`` (no-early-release) — set by the bulk SRT scan a region-breaking
  instruction triggers at rename.

In the paper's pure-ATR encoding both pieces share the 3-bit field: the
value 7 means "overflowed or bulk-marked", and either condition blocks
early release, so fusing them loses nothing.  When ATR is combined with
non-speculative early release (paper section 4.3) the count must survive
bulk marking — nonspec-ER may still release a bulk-marked register once
its redefiner precommits — so the model keeps ``ner`` as a separate bit
and documents the encoding equivalence here instead of in the scheme code.

``redefined_visible_cycle`` models the pipelined redefinition signal
(paper sections 4.2.2 / 5.5): with an N-stage bulk-marking pipeline the
redefine signal is delayed by N cycles so a ptag never appears redefined
before its no-early-release status is computed.  ``epoch`` is bumped on
every allocation, the software analogue of squashing stale in-flight
signals after a flush reallocates the register.
"""

from __future__ import annotations

from typing import List

_NEVER = -1


class PhysRegEntry:
    """Metadata for one physical register."""

    __slots__ = (
        "consumer_count",
        "lifetime_consumers",
        "ner",
        "value_ready",
        "redefined_visible_cycle",
        "early_released",
        "epoch",
        "allocated_cycle",
        "allocator_seq",
    )

    def __init__(self):
        self.consumer_count = 0
        self.lifetime_consumers = 0
        self.ner = False
        # True once the producing instruction has written the register.
        # Early release must wait for this: freeing a register whose write
        # is still in flight would let the write clobber the next owner.
        # (Initial architectural mappings are born ready.)
        self.value_ready = True
        self.redefined_visible_cycle = _NEVER
        self.early_released = False
        self.epoch = 0
        self.allocated_cycle = _NEVER
        self.allocator_seq = _NEVER


class PhysRegTable:
    """Consumer-count and release metadata for one physical register file.

    Args:
        capacity: Number of physical registers.
        counter_bits: Width of the consumer counter.  The all-ones value
            is the sticky overflow state, so an N-bit counter tracks up to
            ``2**N - 2`` simultaneous consumers (paper: 3 bits track 6).
    """

    def __init__(self, capacity: int, counter_bits: int = 3):
        if counter_bits < 2:
            raise ValueError("counter needs at least 2 bits")
        self.capacity = capacity
        self.counter_bits = counter_bits
        self.overflow = (1 << counter_bits) - 1
        self.entries: List[PhysRegEntry] = [PhysRegEntry() for _ in range(capacity)]
        self.saturation_events = 0

    def on_allocate(self, ptag: int, cycle: int, seq: int) -> None:
        """Reset metadata when *ptag* is handed out by the free list."""
        e = self.entries[ptag]
        e.consumer_count = 0
        e.lifetime_consumers = 0
        e.ner = False
        e.value_ready = False
        e.redefined_visible_cycle = _NEVER
        e.early_released = False
        e.epoch += 1
        e.allocated_cycle = cycle
        e.allocator_seq = seq

    # -- consumer counting ---------------------------------------------------
    def add_consumer(self, ptag: int) -> None:
        """Rename-time increment; saturates into the sticky overflow state."""
        e = self.entries[ptag]
        e.lifetime_consumers += 1
        if e.consumer_count >= self.overflow - 1:
            if e.consumer_count == self.overflow - 1:
                self.saturation_events += 1
            e.consumer_count = self.overflow
        else:
            e.consumer_count += 1

    def remove_consumer(self, ptag: int) -> bool:
        """Issue-time decrement (skipped once overflowed).

        Returns True if the count just reached zero.
        """
        e = self.entries[ptag]
        if e.consumer_count == self.overflow or e.consumer_count == 0:
            return False
        e.consumer_count -= 1
        return e.consumer_count == 0

    def undo_consumer(self, ptag: int) -> None:
        """Flush-time decrement for a consumer that never issued.

        Used by schemes that keep counters accurate across flushes
        (nonspec-ER and the combined scheme; pure ATR does not need it —
        paper: "there is no need to restore consumer counts on a flush").
        Skipped once overflowed, since saturated increments are not
        individually recoverable; the register then simply never
        early-releases, which is safe.
        """
        e = self.entries[ptag]
        if e.consumer_count not in (self.overflow, 0):
            e.consumer_count -= 1

    # -- no-early-release marking ------------------------------------------------
    def mark_ner(self, ptag: int) -> None:
        self.entries[ptag].ner = True

    def bulk_no_early_release(self, ptags) -> int:
        """Bulk-set NER on every ptag in *ptags* (the SRT scan triggered by
        renaming a branch or exception-causing instruction).  Returns how
        many were newly marked."""
        changed = 0
        for ptag in ptags:
            e = self.entries[ptag]
            if not e.ner:
                e.ner = True
                changed += 1
        return changed

    # -- writeback ----------------------------------------------------------------
    def mark_written(self, ptag: int) -> None:
        """The producing instruction wrote the register (completion)."""
        self.entries[ptag].value_ready = True

    def is_written(self, ptag: int) -> bool:
        return self.entries[ptag].value_ready

    # -- queries ---------------------------------------------------------------
    def is_no_early_release(self, ptag: int) -> bool:
        """Blocked from ATR release: bulk-marked or counter overflowed."""
        e = self.entries[ptag]
        return e.ner or e.consumer_count == self.overflow

    def consumers(self, ptag: int) -> int:
        return self.entries[ptag].consumer_count

    def epoch(self, ptag: int) -> int:
        return self.entries[ptag].epoch

    def mark_redefined(self, ptag: int, visible_cycle: int) -> None:
        self.entries[ptag].redefined_visible_cycle = visible_cycle

    def redefined_visible(self, ptag: int, cycle: int) -> bool:
        visible = self.entries[ptag].redefined_visible_cycle
        return visible != _NEVER and visible <= cycle

    def is_redefined(self, ptag: int) -> bool:
        return self.entries[ptag].redefined_visible_cycle != _NEVER

    def clear_redefined(self, ptag: int) -> None:
        self.entries[ptag].redefined_visible_cycle = _NEVER
