"""Figure 12: consumers per atomic region distribution."""

from repro.experiments import fig12

from conftest import emit


def test_fig12_consumers(benchmark, int_suite, fp_suite, instructions):
    result = benchmark.pedantic(
        fig12.run,
        kwargs=dict(benchmarks=int_suite + fp_suite, instructions=instructions),
        rounds=1, iterations=1,
    )
    emit(result)
    # Paper: most workloads average 1-2 consumers per atomic region
    # (enabling the 3-bit counter); namd is the heavy outlier.
    means = {b: m for b, m in result.means.items()}
    typical = [m for b, m in means.items() if "namd" not in b]
    assert max(typical) <= 4.0
    if any("namd" in b for b in means):
        namd = next(m for b, m in means.items() if "namd" in b)
        assert namd >= max(typical) - 0.5
