"""Set-associative cache model.

Timing-directed: the hierarchy asks each level whether a block hits and
installs blocks on fills.  Replacement is true LRU per set; writebacks are
modeled by tracking dirty state (they cost DRAM bandwidth only in the
statistics, not extra latency, matching Scarab's default L1/L2 writeback
treatment).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One cache level.

    Args:
        name: For statistics reporting ("L1D", ...).
        size_bytes: Total capacity.
        ways: Associativity.
        line_bytes: Block size (power of two).
        latency: Hit latency in cycles (access time of this level).
    """

    def __init__(self, name: str, size_bytes: int, ways: int, line_bytes: int, latency: int):
        if line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        sets = size_bytes // (ways * line_bytes)
        if sets <= 0:
            raise ValueError("cache too small for its geometry")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.latency = latency
        self.num_sets = sets
        self._line_shift = line_bytes.bit_length() - 1
        # set index -> OrderedDict {block_addr: state dict}; last = MRU
        self._sets: Dict[int, OrderedDict] = {}
        self.stats = CacheStats()

    def block_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def _set_index(self, block: int) -> int:
        return block % self.num_sets

    def lookup(self, addr: int, is_write: bool = False, update_stats: bool = True) -> bool:
        """Probe for *addr*; on hit, update LRU (and dirty on writes)."""
        block = self.block_of(addr)
        target_set = self._sets.get(self._set_index(block))
        if update_stats:
            self.stats.accesses += 1
        if target_set is not None and block in target_set:
            target_set.move_to_end(block)
            line = target_set[block]
            if is_write:
                line["dirty"] = True
            if update_stats:
                self.stats.hits += 1
                if line.pop("prefetched", False):
                    self.stats.prefetch_hits += 1
            return True
        if update_stats:
            self.stats.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Probe without side effects."""
        block = self.block_of(addr)
        target_set = self._sets.get(self._set_index(block))
        return target_set is not None and block in target_set

    def fill(self, addr: int, dirty: bool = False, prefetched: bool = False) -> Optional[int]:
        """Install the block containing *addr*.

        Returns the evicted block's base address if a dirty block was
        written back, else ``None``.
        """
        block = self.block_of(addr)
        index = self._set_index(block)
        target_set = self._sets.setdefault(index, OrderedDict())
        if block in target_set:
            target_set.move_to_end(block)
            if dirty:
                target_set[block]["dirty"] = True
            return None
        writeback = None
        if len(target_set) >= self.ways:
            victim_block, victim = target_set.popitem(last=False)
            self.stats.evictions += 1
            if victim["dirty"]:
                self.stats.writebacks += 1
                writeback = victim_block << self._line_shift
        target_set[block] = {"dirty": dirty, "prefetched": prefetched}
        if prefetched:
            self.stats.prefetch_fills += 1
        return writeback

    def invalidate(self, addr: int) -> None:
        block = self.block_of(addr)
        target_set = self._sets.get(self._set_index(block))
        if target_set is not None:
            target_set.pop(block, None)

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    @property
    def resident_blocks(self) -> int:
        return sum(len(s) for s in self._sets.values())
