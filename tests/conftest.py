"""Shared fixtures: small programs, traces, and configured cores."""

import pytest

from repro.frontend import run_program
from repro.isa import assemble


@pytest.fixture(scope="session")
def _session_cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("repro-cache")


@pytest.fixture(autouse=True)
def _isolated_result_store(_session_cache_dir, monkeypatch):
    """Keep the harness's persistent store out of ~/.cache during tests.

    One session-scoped directory (not per-test) so overlapping experiment
    tests still share warm results, exactly as production does.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(_session_cache_dir))


LOOP_SRC = """
    movi r1, 30
    movi r2, 0
    movi r3, 1
loop:
    add r2, r2, r3
    sub r1, r1, r3
    cmp r1, r2
    bne loop
    halt
"""

MEMORY_SRC = """
    movi r1, 16
    movi r3, 1
    movi r5, 4096
loop:
    st r1, r5, 0
    ld r2, r5, 0
    add r5, r5, r2
    sub r1, r1, r3
    test r1, r1
    bne loop
    halt
"""

BRANCHY_SRC = """
    movi r1, 60
    movi r2, 12345
    movi r3, 1103515245
    movi r4, 12347
    movi r6, 0
    movi r8, 1
loop:
    mul r2, r2, r3
    add r2, r2, r4
    shr r5, r2, 16
    and r5, r5, r8
    test r5, r8
    bne odd
    add r6, r6, r8
    jmp next
odd:
    sub r6, r6, r8
next:
    sub r1, r1, r8
    test r1, r1
    bne loop
    halt
"""

ATOMIC_SRC = """
    movi r1, 25
    movi r3, 1
    movi r5, 4096
loop:
    ld r2, r5, 0
    add r4, r2, r3
    xor r6, r4, r3
    add r6, r6, r4
    shl r7, r6, 2
    xor r7, r7, r6
    add r6, r7, r4
    add r5, r5, r3
    sub r1, r1, r3
    test r1, r1
    bne loop
    halt
"""

CALL_SRC = """
    movi r1, 10
    movi r3, 1
    movi r6, 0
loop:
    call bump
    sub r1, r1, r3
    test r1, r1
    bne loop
    halt
bump:
    add r6, r6, r3
    ret
"""


@pytest.fixture
def loop_program():
    return assemble(LOOP_SRC, name="loop")


@pytest.fixture
def loop_trace(loop_program):
    return run_program(loop_program)


@pytest.fixture
def memory_program():
    return assemble(MEMORY_SRC, name="memory")


@pytest.fixture
def branchy_program():
    return assemble(BRANCHY_SRC, name="branchy")


@pytest.fixture
def atomic_program():
    return assemble(ATOMIC_SRC, name="atomic")


@pytest.fixture
def call_program():
    return assemble(CALL_SRC, name="call")


ALL_SOURCES = {
    "loop": LOOP_SRC,
    "memory": MEMORY_SRC,
    "branchy": BRANCHY_SRC,
    "atomic": ATOMIC_SRC,
    "call": CALL_SRC,
}
