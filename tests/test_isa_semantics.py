"""Unit and property tests for the pure value semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Instruction, Opcode, ireg, vreg, FLAGS
from repro.isa.semantics import (
    FLAG_SIGN,
    FLAG_ZERO,
    MASK64,
    branch_taken,
    compute,
    flags_for,
    to_signed,
)

u64 = st.integers(min_value=0, max_value=MASK64)
lanes = st.tuples(u64, u64, u64, u64)


def _instr(op, srcs=2, imm=0):
    return Instruction(opcode=op, dests=(ireg(0),), srcs=tuple(ireg(i + 1) for i in range(srcs)), imm=imm)


class TestScalar:
    @given(a=u64, b=u64)
    def test_add_wraps(self, a, b):
        assert compute(_instr(Opcode.ADD), [a, b]) == (a + b) & MASK64

    @given(a=u64, b=u64)
    def test_sub_wraps(self, a, b):
        assert compute(_instr(Opcode.SUB), [a, b]) == (a - b) & MASK64

    @given(a=u64, b=u64)
    def test_mul_wraps(self, a, b):
        assert compute(_instr(Opcode.MUL), [a, b]) == (a * b) & MASK64

    @given(a=u64)
    def test_div_by_zero_is_zero(self, a):
        assert compute(_instr(Opcode.DIV), [a, 0]) == 0
        assert compute(_instr(Opcode.MOD), [a, 0]) == 0

    @given(a=u64, b=st.integers(min_value=1, max_value=MASK64))
    def test_divmod_identity(self, a, b):
        q = compute(_instr(Opcode.DIV), [a, b])
        r = compute(_instr(Opcode.MOD), [a, b])
        assert q * b + r == a

    @given(a=u64)
    def test_not_involution(self, a):
        once = compute(_instr(Opcode.NOT, srcs=1), [a])
        twice = compute(_instr(Opcode.NOT, srcs=1), [once])
        assert twice == a

    @given(a=u64)
    def test_neg_is_sub_from_zero(self, a):
        assert compute(_instr(Opcode.NEG, srcs=1), [a]) == (-a) & MASK64

    @given(a=u64, amount=st.integers(min_value=0, max_value=63))
    def test_shifts(self, a, amount):
        assert compute(_instr(Opcode.SHL, srcs=1, imm=amount), [a]) == (a << amount) & MASK64
        assert compute(_instr(Opcode.SHR, srcs=1, imm=amount), [a]) == a >> amount

    def test_movi_uses_immediate(self):
        assert compute(_instr(Opcode.MOVI, srcs=0, imm=77), []) == 77

    def test_lea_adds_displacement(self):
        assert compute(_instr(Opcode.LEA, srcs=1, imm=-8), [100]) == 92

    @given(a=u64, b=u64)
    def test_logic_ops(self, a, b):
        assert compute(_instr(Opcode.AND), [a, b]) == a & b
        assert compute(_instr(Opcode.OR), [a, b]) == a | b
        assert compute(_instr(Opcode.XOR), [a, b]) == a ^ b


class TestFlagsAndBranches:
    def test_cmp_equal_sets_zero(self):
        flags = compute(_instr(Opcode.CMP), [5, 5])
        assert flags & FLAG_ZERO

    def test_cmp_less_sets_sign(self):
        flags = compute(_instr(Opcode.CMP), [3, 9])
        assert flags & FLAG_SIGN

    def test_cmp_signed_comparison(self):
        """-1 (as u64) must compare less than 1."""
        flags = compute(_instr(Opcode.CMP), [MASK64, 1])
        assert flags & FLAG_SIGN

    @given(a=u64, b=u64)
    def test_branch_taken_matches_comparison(self, a, b):
        flags = compute(_instr(Opcode.CMP), [a, b])
        sa, sb = to_signed(a), to_signed(b)
        assert branch_taken(Opcode.BEQ, flags) == (sa == sb)
        assert branch_taken(Opcode.BNE, flags) == (sa != sb)
        assert branch_taken(Opcode.BLT, flags) == (sa < sb)
        assert branch_taken(Opcode.BGE, flags) == (sa >= sb)

    def test_branch_taken_rejects_non_branch(self):
        with pytest.raises(ValueError):
            branch_taken(Opcode.ADD, 0)

    def test_select_picks_on_zero_flag(self):
        instr = Instruction(Opcode.SELECT, dests=(ireg(0),),
                            srcs=(FLAGS, ireg(1), ireg(2)))
        assert compute(instr, [FLAG_ZERO, 10, 20]) == 10
        assert compute(instr, [0, 10, 20]) == 20

    def test_test_is_and_based(self):
        flags = compute(_instr(Opcode.TEST), [0b1010, 0b0101])
        assert flags & FLAG_ZERO


class TestVector:
    def _vinstr(self, op, srcs):
        return Instruction(op, dests=(vreg(0),), srcs=tuple(vreg(i + 1) for i in range(srcs)))

    @given(a=lanes, b=lanes)
    def test_vadd_lanewise(self, a, b):
        out = compute(self._vinstr(Opcode.VADD, 2), [a, b])
        assert out == tuple((x + y) & MASK64 for x, y in zip(a, b))

    @given(a=lanes, b=lanes, c=lanes)
    def test_vfma_lanewise(self, a, b, c):
        out = compute(self._vinstr(Opcode.VFMA, 3), [a, b, c])
        assert out == tuple((x * y + z) & MASK64 for x, y, z in zip(a, b, c))

    @given(a=lanes)
    def test_vreduce_sums(self, a):
        instr = Instruction(Opcode.VREDUCE, dests=(ireg(0),), srcs=(vreg(1),))
        assert compute(instr, [a]) == sum(a) & MASK64

    def test_vbroadcast(self):
        instr = Instruction(Opcode.VBROADCAST, dests=(vreg(0),), srcs=(ireg(1),))
        assert compute(instr, [9]) == (9, 9, 9, 9)

    @given(a=lanes, b=lanes)
    def test_vdiv_zero_lane_safe(self, a, b):
        out = compute(self._vinstr(Opcode.VDIV, 2), [a, b])
        for x, y, o in zip(a, b, out):
            assert o == ((x // y) & MASK64 if y else 0)


def test_compute_rejects_control_flow():
    with pytest.raises(ValueError):
        compute(Instruction(Opcode.JMP, target=0), [])


@given(a=u64)
def test_to_signed_round_trips(a):
    assert to_signed(a) & MASK64 == a


def test_flags_for_cases():
    assert flags_for(0) == FLAG_ZERO
    assert flags_for(-4) == FLAG_SIGN
    assert flags_for(4) == 0
