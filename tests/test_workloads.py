"""Workloads: suite registry, kernels, synthesis, SimPoint-lite."""

import pytest

from repro.frontend import run_program
from repro.workloads import (
    ALL_BENCHMARKS,
    PROFILES,
    SPEC_FP,
    SPEC_INT,
    WorkloadProfile,
    basic_block_vectors,
    build_trace,
    builder_for,
    is_fp,
    kmeans,
    pick_simpoints,
    resolve,
    slice_trace,
    synthesize,
    weighted_mean,
)

import numpy as np


class TestSuiteRegistry:
    def test_table2_benchmark_counts(self):
        """Paper Table 2: 10 integer + 13 floating-point benchmarks."""
        assert len(SPEC_INT) == 10
        assert len(SPEC_FP) == 13
        assert len(ALL_BENCHMARKS) == 23

    def test_paper_names_present(self):
        for name in ("505.mcf_r", "520.omnetpp_r", "508.namd_r", "549.fotonik3d_r"):
            assert name in ALL_BENCHMARKS

    def test_resolve_short_names(self):
        assert resolve("mcf") == "505.mcf_r"
        assert resolve("548.exchange2_r") == "548.exchange2_r"

    def test_resolve_rejects_unknown(self):
        with pytest.raises(KeyError):
            resolve("doom")

    def test_is_fp(self):
        assert is_fp("508.namd_r")
        assert not is_fp("505.mcf_r")

    def test_builder_for_unknown(self):
        with pytest.raises(KeyError):
            builder_for("nope")

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_every_kernel_builds_and_runs(self, name):
        trace = build_trace(name, 1500)
        assert len(trace) == 1500
        assert trace.name == name

    def test_trace_cache_returns_same_object(self):
        a = build_trace("mcf", 1500)
        b = build_trace("mcf", 1500)
        assert a is b

    def test_traces_are_deterministic(self):
        a = build_trace("xz", 1200, use_cache=False)
        b = build_trace("xz", 1200, use_cache=False)
        assert all(x.pc == y.pc and x.mem_addr == y.mem_addr
                   for x, y in zip(a.entries, b.entries))

    def test_fp_kernels_use_vector_registers(self):
        trace = build_trace("namd", 1500)
        from repro.isa import is_vector
        assert any(is_vector(e.instr.opcode) for e in trace)

    def test_int_kernels_branch_density_plausible(self):
        trace = build_trace("leela", 2000)
        assert 0.05 < trace.summary()["branch_ratio"] < 0.4


class TestVariants:
    """Multi-ref workload variants: ``505.mcf_r/ref2`` style names."""

    def test_at_least_eight_benchmarks_have_a_second_ref(self):
        from repro.workloads import WORKLOADS

        with_refs = [w.name for w in WORKLOADS.values() if w.variants]
        assert len(with_refs) >= 6

    def test_workload_names_include_variants(self):
        from repro.workloads import workload_names

        names = workload_names(variants=True)
        assert "505.mcf_r" in names and "505.mcf_r/ref2" in names
        assert len(names) >= 29
        # base names only when variants are excluded
        assert workload_names(variants=False) == ALL_BENCHMARKS

    def test_split_and_resolve_variant(self):
        from repro.workloads import split_variant

        assert split_variant("505.mcf_r/ref2") == ("505.mcf_r", "ref2")
        assert split_variant("505.mcf_r") == ("505.mcf_r", None)
        assert resolve("mcf/ref2") == "505.mcf_r/ref2"
        assert resolve("505.mcf_r/ref") == "505.mcf_r"

    def test_unknown_variant_rejected(self):
        from repro.workloads import workload_for

        with pytest.raises(KeyError, match="ref9"):
            workload_for("505.mcf_r/ref9")

    def test_is_fp_ignores_variant(self):
        assert is_fp("503.bwaves_r/ref2")
        assert not is_fp("505.mcf_r/ref2")

    def test_variant_changes_data_not_structure(self):
        base = build_trace("505.mcf_r", 1500, use_cache=False)
        ref2 = build_trace("505.mcf_r/ref2", 1500, use_cache=False)
        assert ref2.name == "505.mcf_r/ref2"
        # same static program shape (instruction mix), different dynamic
        # behaviour somewhere in the trace
        assert base.summary()["branch_ratio"] == pytest.approx(
            ref2.summary()["branch_ratio"], abs=0.15)
        assert any(x.mem_addr != y.mem_addr or x.pc != y.pc
                   for x, y in zip(base.entries, ref2.entries))

    def test_variant_traces_deterministic(self):
        a = build_trace("531.deepsjeng_r/ref2", 1200, use_cache=False)
        b = build_trace("531.deepsjeng_r/ref2", 1200, use_cache=False)
        assert all(x.pc == y.pc and x.mem_addr == y.mem_addr
                   for x, y in zip(a.entries, b.entries))

    def test_variant_rejects_iterations_param(self):
        from repro.workloads import WorkloadVariant

        with pytest.raises(ValueError, match="iterations"):
            WorkloadVariant("bad", params={"iterations": 9})


class TestTraceCache:
    def test_cache_keys_include_variant(self):
        from repro.workloads.suite import _trace_cache, clear_trace_cache

        clear_trace_cache()
        base = build_trace("505.mcf_r", 1500)
        ref2 = build_trace("505.mcf_r/ref2", 1500)
        assert base is not ref2
        assert ("505.mcf_r", 1500) in _trace_cache
        assert ("505.mcf_r/ref2", 1500) in _trace_cache
        assert build_trace("mcf/ref2", 1500) is ref2  # short name, same key

    def test_cache_is_bounded_lru(self, monkeypatch):
        from repro.workloads.suite import _trace_cache, clear_trace_cache

        monkeypatch.setenv("REPRO_TRACE_CACHE", "2")
        clear_trace_cache()
        build_trace("mcf", 1000)
        xz = build_trace("xz", 1000)
        build_trace("lbm", 1000)  # evicts mcf (oldest)
        assert len(_trace_cache) == 2
        assert ("505.mcf_r", 1000) not in _trace_cache
        assert build_trace("xz", 1000) is xz  # survivor still cached
        clear_trace_cache()

    def test_lru_touch_on_hit(self, monkeypatch):
        from repro.workloads.suite import _trace_cache, clear_trace_cache

        monkeypatch.setenv("REPRO_TRACE_CACHE", "2")
        clear_trace_cache()
        mcf = build_trace("mcf", 1000)
        build_trace("xz", 1000)
        build_trace("mcf", 1000)  # touch: mcf becomes most-recent
        build_trace("lbm", 1000)  # evicts xz, not mcf
        assert build_trace("mcf", 1000) is mcf
        assert ("557.xz_r", 1000) not in _trace_cache
        clear_trace_cache()


class TestSynthesis:
    def test_profiles_generate_runnable_programs(self):
        for profile in PROFILES.values():
            trace = run_program(synthesize(profile, iterations=2),
                                max_instructions=3000)
            assert len(trace) > 10

    def test_taken_bias_respected(self):
        low = WorkloadProfile(branch_prob=1.0, taken_bias=0.15, blocks=12, seed=3)
        high = WorkloadProfile(branch_prob=1.0, taken_bias=0.85, blocks=12, seed=3)
        t_low = run_program(synthesize(low, iterations=12), max_instructions=8000)
        t_high = run_program(synthesize(high, iterations=12), max_instructions=8000)
        assert t_low.summary()["taken_ratio"] < t_high.summary()["taken_ratio"]

    def test_vector_weight_emits_vectors(self):
        from repro.isa import is_vector
        profile = WorkloadProfile(vec_weight=5, blocks=6, seed=1)
        trace = run_program(synthesize(profile, iterations=2), max_instructions=2000)
        assert any(is_vector(e.instr.opcode) for e in trace)

    def test_same_seed_same_program(self):
        p = WorkloadProfile(seed=42)
        assert synthesize(p, 2).instructions == synthesize(p, 2).instructions


class TestSimPoint:
    def test_bbv_rows_are_distributions(self):
        trace = build_trace("deepsjeng", 4000)
        bbvs, leaders = basic_block_vectors(trace, interval=500)
        assert bbvs.shape[1] == len(leaders)
        assert np.allclose(bbvs.sum(axis=1), 1.0)

    def test_kmeans_assigns_all_rows(self):
        rng = np.random.default_rng(0)
        data = np.vstack([rng.normal(0, 0.1, (10, 4)), rng.normal(5, 0.1, (10, 4))])
        assignment = kmeans(data, k=2, seed=1)
        assert len(assignment) == 20
        # the two blobs separate
        assert len(set(assignment[:10])) == 1
        assert len(set(assignment[10:])) == 1
        assert assignment[0] != assignment[10]

    def test_simpoint_weights_sum_to_one(self):
        trace = build_trace("x264", 6000)
        simpoints = pick_simpoints(trace, interval=1000, max_k=4)
        assert simpoints
        assert sum(sp.weight for sp in simpoints) == pytest.approx(1.0)

    def test_slice_respects_bounds(self):
        trace = build_trace("x264", 6000)
        simpoints = pick_simpoints(trace, interval=1000, max_k=3)
        for sp in simpoints:
            sub = slice_trace(trace, sp)
            assert len(sub) == sp.length
            assert sub.entries[0].seq == 0

    def test_weighted_mean(self):
        trace = build_trace("xz", 4000)
        simpoints = pick_simpoints(trace, interval=1000, max_k=3)
        assert weighted_mean([2.0] * len(simpoints), simpoints) == pytest.approx(2.0)

    def test_weighted_mean_validates_length(self):
        trace = build_trace("xz", 4000)
        simpoints = pick_simpoints(trace, interval=1000, max_k=2)
        with pytest.raises(ValueError):
            weighted_mean([1.0] * (len(simpoints) + 1), simpoints)
