"""The flagship property test: for *randomly synthesized programs* and
random machine configurations, every release scheme must

1. produce exactly the functional emulator's architectural state
   (catching any use-after-free through value corruption),
2. conserve the free lists (no leak, no double free — checked live by
   the FreeList and at the end against the SRT),
3. pass ATR's internal flush-walk oracle cross-check (enabled by
   default in the schemes).
"""

import dataclasses

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend import final_state, run_program
from repro.pipeline import Core, fast_test_config
from repro.workloads import WorkloadProfile, synthesize

profiles = st.builds(
    WorkloadProfile,
    alu_weight=st.floats(min_value=0.5, max_value=10),
    mul_weight=st.floats(min_value=0, max_value=2),
    div_weight=st.floats(min_value=0, max_value=1),
    load_weight=st.floats(min_value=0, max_value=4),
    store_weight=st.floats(min_value=0, max_value=2),
    vec_weight=st.floats(min_value=0, max_value=3),
    block_length=st.floats(min_value=1.5, max_value=12),
    branch_prob=st.floats(min_value=0, max_value=1),
    taken_bias=st.floats(min_value=0.05, max_value=0.95),
    blocks=st.integers(min_value=3, max_value=16),
    seed=st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    profile=profiles,
    scheme=st.sampled_from(["baseline", "nonspec_er", "atr", "combined"]),
    rf_size=st.sampled_from([26, 30, 40, 64]),
    delay=st.sampled_from([0, 1, 2]),
    predictor=st.sampled_from(["tage", "always_taken", "always_not_taken"]),
)
def test_any_program_any_config_matches_golden(profile, scheme, rf_size, delay, predictor):
    program = synthesize(profile, iterations=3)
    limit = 2500
    golden = final_state(program, max_instructions=limit)
    trace = run_program(program, max_instructions=limit)

    config = dataclasses.replace(
        fast_test_config(rf_size=rf_size, scheme=scheme, predictor=predictor),
        redefine_delay=delay,
    )
    core = Core(config, trace)
    core.run()

    state = core.architectural_state()
    assert state.int_regs == golden.int_regs
    assert state.flags == golden.flags
    assert state.vec_regs == golden.vec_regs
    for addr, value in golden.memory.items():
        if value:
            assert state.memory.get(addr, 0) == value
    core.check_conservation()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    profile=profiles,
    rf_size=st.sampled_from([26, 34]),
)
def test_scheme_ipc_ordering(profile, rf_size):
    """Early release never hurts: atr/nonspec/combined IPC >= ~baseline.

    A small tolerance absorbs second-order scheduling noise (different
    rename timing shifts branch resolution by a few cycles).
    """
    program = synthesize(profile, iterations=3)
    trace = run_program(program, max_instructions=2000)

    def ipc(scheme):
        config = dataclasses.replace(
            fast_test_config(rf_size=rf_size, scheme=scheme),
            execute_values=False,
        )
        core = Core(config, trace)
        return core.run().ipc

    base = ipc("baseline")
    assert ipc("atr") >= base * 0.97
    assert ipc("nonspec_er") >= base * 0.97
    assert ipc("combined") >= base * 0.97
