"""Unit tests for the functional emulator (golden model)."""

import pytest

from repro.frontend import EmulationError, Emulator, final_state, run_program
from repro.isa import ProgramBuilder, assemble, ireg, vreg


def _run(src, **kwargs):
    return final_state(assemble(src), **kwargs)


class TestArithmetic:
    def test_basic_loop(self, loop_program):
        state = final_state(loop_program)
        # loop: r2 counts up, r1 counts down until equal (30 -> 15/15)
        assert state.int_regs[1] == 15
        assert state.int_regs[2] == 15

    def test_wraparound(self):
        state = _run("movi r1, -1\nmovi r2, 2\nadd r3, r1, r2\nhalt")
        assert state.int_regs[3] == 1

    def test_division_by_zero_yields_zero(self):
        state = _run("movi r1, 10\nmovi r2, 0\ndiv r3, r1, r2\nhalt")
        assert state.int_regs[3] == 0


class TestMemory:
    def test_store_then_load(self):
        state = _run("""
            movi r1, 4096
            movi r2, 99
            st r2, r1, 8
            ld r3, r1, 8
            halt
        """)
        assert state.int_regs[3] == 99
        assert state.memory[4104] == 99

    def test_uninitialized_load_is_zero(self):
        state = _run("movi r1, 9000\nld r2, r1, 0\nhalt")
        assert state.int_regs[2] == 0

    def test_initial_data_image(self):
        state = _run(".word 512 77\nmovi r1, 512\nld r2, r1, 0\nhalt")
        assert state.int_regs[2] == 77

    def test_vector_memory_round_trip(self):
        b = ProgramBuilder()
        b.words(1024, [1, 2, 3, 4])
        b.movi(ireg(1), 1024)
        b.vld(vreg(0), ireg(1), 0)
        b.vadd(vreg(1), vreg(0), vreg(0))
        b.vst(vreg(1), ireg(1), 64)
        b.vld(vreg(2), ireg(1), 64)
        state = final_state(b.build())
        assert state.vec_regs[2] == (2, 4, 6, 8)


class TestControlFlow:
    def test_taken_branch_records_target(self, loop_program):
        trace = run_program(loop_program)
        takens = [e for e in trace if e.instr.is_conditional_branch and e.taken]
        assert takens
        assert all(e.next_pc == e.instr.target for e in takens)

    def test_not_taken_falls_through(self, loop_program):
        trace = run_program(loop_program)
        not_taken = [e for e in trace if e.instr.is_conditional_branch and not e.taken]
        assert all(e.next_pc == e.pc + 1 for e in not_taken)

    def test_call_and_ret(self, call_program):
        state = final_state(call_program)
        assert state.int_regs[6] == 10  # bump called 10 times

    def test_indirect_jump(self):
        state = _run("""
            movi r1, 4
            jr r1
            movi r2, 1
            movi r2, 2
            movi r3, 7
            halt
        """)
        assert state.int_regs[2] == 0  # both movi r2 skipped
        assert state.int_regs[3] == 7

    def test_halt_stops(self):
        trace = run_program(assemble("halt\nnop"))
        assert len(trace) == 1

    def test_max_instructions_truncates(self, loop_program):
        trace = run_program(loop_program, max_instructions=10)
        assert len(trace) == 10

    def test_pc_escape_raises(self):
        b = ProgramBuilder()
        b.movi(ireg(1), 999)
        b.jr(ireg(1))
        emulator = Emulator(b.build())
        with pytest.raises(EmulationError):
            emulator.run()


class TestTraceRecords:
    def test_sequence_numbers_monotonic(self, loop_trace):
        assert [e.seq for e in loop_trace] == list(range(len(loop_trace)))

    def test_memory_ops_carry_addresses(self, memory_program):
        trace = run_program(memory_program)
        for e in trace:
            if e.instr.is_memory:
                assert e.mem_addr is not None
            else:
                assert e.mem_addr is None

    def test_trace_seq_defaults_to_seq(self, loop_trace):
        assert all(e.trace_seq == e.seq for e in loop_trace)

    def test_step_after_halt_returns_none(self):
        emulator = Emulator(assemble("halt"))
        assert emulator.step() is not None
        assert emulator.step() is None

    def test_snapshot_is_isolated(self):
        emulator = Emulator(assemble("movi r1, 5\nhalt"))
        snap = emulator.snapshot()
        emulator.run()
        assert snap.int_regs[1] == 0
        assert emulator.snapshot().int_regs[1] == 5

    def test_summary_fields(self, branchy_program):
        trace = run_program(branchy_program)
        summary = trace.summary()
        assert summary["instructions"] == len(trace)
        assert 0 < summary["branch_ratio"] < 1
        assert 0 <= summary["taken_ratio"] <= 1
