"""Reorder buffer and its entries.

The ROB is the age-ordered spine of the machine: commit pops from the
head, the precommit pointer advances through the middle, and a flush cuts
the tail.  Implemented as a Python list with an explicit head index and
periodic compaction (O(1) amortized for every operation the core
performs per cycle).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..branch import Prediction
from ..frontend import DynamicInstruction
from ..rename import DestRecord

_NO_CYCLE = -1


class ROBEntry:
    """One in-flight instruction."""

    __slots__ = (
        "seq",
        "dyn",
        "wrong_path",
        "dests",
        "src_ptags",
        "prediction",
        "mispredicted",
        "issued",
        "completed",
        "resolved",
        "precommitted",
        "committed",
        "squashed",
        "unready_sources",
        "cycle_fetch",
        "cycle_rename",
        "cycle_issue",
        "cycle_complete",
        "cycle_precommit",
        "cycle_commit",
        "has_checkpoint",
        "pending_lifetimes",
    )

    def __init__(self, seq: int, dyn: DynamicInstruction, cycle_fetch: int,
                 prediction: Optional[Prediction] = None, mispredicted: bool = False):
        self.seq = seq
        self.dyn = dyn
        self.wrong_path = dyn.wrong_path
        self.dests: List[DestRecord] = []
        self.src_ptags: list = []  # (file_cls, srt_slot, ptag) triples
        self.prediction = prediction
        self.mispredicted = mispredicted
        self.issued = False
        self.completed = False
        self.resolved = not dyn.instr.is_control
        self.precommitted = False
        self.committed = False
        self.squashed = False
        self.unready_sources = 0
        self.cycle_fetch = cycle_fetch
        self.cycle_rename = _NO_CYCLE
        self.cycle_issue = _NO_CYCLE
        self.cycle_complete = _NO_CYCLE
        self.cycle_precommit = _NO_CYCLE
        self.cycle_commit = _NO_CYCLE
        self.has_checkpoint = False
        self.pending_lifetimes: list = []  # register-event log bookkeeping

    @property
    def instr(self):
        return self.dyn.instr

    def __repr__(self) -> str:  # pragma: no cover
        flags = "".join(
            c for c, on in (
                ("W", self.wrong_path), ("I", self.issued), ("C", self.completed),
                ("P", self.precommitted), ("X", self.squashed),
            ) if on
        )
        return f"<ROB#{self.seq} {self.dyn.instr.render()} [{flags}]>"


class ReorderBuffer:
    """Age-ordered window of in-flight instructions."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: List[ROBEntry] = []
        self._head = 0
        #: Index (relative to head) of the next entry to precommit.
        self.precommit_offset = 0

    def __len__(self) -> int:
        return len(self._entries) - self._head

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self)

    @property
    def is_full(self) -> bool:
        return len(self) >= self.capacity

    def head(self) -> Optional[ROBEntry]:
        if self._head < len(self._entries):
            return self._entries[self._head]
        return None

    def at_offset(self, offset: int) -> Optional[ROBEntry]:
        """Entry at *offset* from the head (0 = oldest)."""
        index = self._head + offset
        if index < len(self._entries):
            return self._entries[index]
        return None

    def append(self, entry: ROBEntry) -> None:
        if self.is_full:
            raise RuntimeError("ROB overflow; caller must check free_slots")
        self._entries.append(entry)

    def pop_head(self) -> ROBEntry:
        """Commit the oldest entry."""
        entry = self._entries[self._head]
        self._head += 1
        if self.precommit_offset > 0:
            self.precommit_offset -= 1
        if self._head >= 4096:
            del self._entries[: self._head]
            self._head = 0
        return entry

    def flush_younger(self, seq: int) -> List[ROBEntry]:
        """Remove every entry younger than *seq*; returns them youngest
        first (the order the tail walk reclaims them in)."""
        flushed: List[ROBEntry] = []
        while len(self._entries) > self._head and self._entries[-1].seq > seq:
            entry = self._entries.pop()
            entry.squashed = True
            flushed.append(entry)
        self.precommit_offset = min(self.precommit_offset, len(self))
        return flushed

    def in_flight(self) -> Iterator[ROBEntry]:
        """Oldest -> youngest iteration."""
        for i in range(self._head, len(self._entries)):
            yield self._entries[i]
