"""Service wire protocol + client: line-delimited JSON over TCP.

One request is one JSON object on one line; the server answers with one
JSON object per line (``watch`` streams several, ending with a
``{"event": "done"}`` line).  Every response carries ``"ok"``; an error
response is ``{"ok": false, "error": "..."}``.

Operations
----------

==============  ======================================  ==============
op              request fields                          reply
==============  ======================================  ==============
ping            —                                       pid, fingerprint
submit          specs=[spec dicts], priority, label     job receipt
status          job? (omit for overview)                job / overview
watch           job, interval?                          event stream
cancel          job                                     cancelled flag
fetch           spec (dict)                             encoded result
stats           —                                       queue + store
claim           owner, host?, max?                      leased cells
complete        owner, digest, result, elapsed?         accepted flag
fail            owner, digest, error                    accepted flag
heartbeat       host, workers?                          —
shutdown        —                                       — (server exits)
==============  ======================================  ==============

``claim``/``complete``/``fail``/``heartbeat`` are the worker side of
the protocol: a worker on *any* machine that can reach the coordinator
socket participates in the sweep — results travel back inside
``complete`` as the same JSON encoding the store uses, so no shared
filesystem is required for multi-host sharding.
"""

from __future__ import annotations

import json
import os
import socket
from typing import Dict, Iterator, List, Optional, Tuple

ADDR_ENV = "REPRO_SERVICE_ADDR"
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7341

#: Seconds a client waits for one reply before giving up.
CLIENT_TIMEOUT = 30.0


class ServiceError(RuntimeError):
    """The service answered ``ok: false`` (or spoke garbage)."""


class ServiceUnavailable(ServiceError):
    """No server is reachable at the address."""


def resolve_addr(addr: Optional[str] = None) -> Tuple[str, int]:
    """``host:port`` from an explicit string, ``$REPRO_SERVICE_ADDR``,
    or the default ``127.0.0.1:7341``."""
    text = addr or os.environ.get(ADDR_ENV) or f"{DEFAULT_HOST}:{DEFAULT_PORT}"
    if ":" in text:
        host, _, port = text.rpartition(":")
        return host or DEFAULT_HOST, int(port)
    return text, DEFAULT_PORT


def format_addr(addr: Tuple[str, int]) -> str:
    return f"{addr[0]}:{addr[1]}"


def _send_line(sock: socket.socket, payload: Dict) -> None:
    sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")


def _recv_lines(sock: socket.socket) -> Iterator[Dict]:
    """Decode JSON objects line by line from *sock* until EOF."""
    buffer = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        buffer += chunk
        while b"\n" in buffer:
            line, buffer = buffer.split(b"\n", 1)
            if line.strip():
                yield json.loads(line)


class ServiceClient:
    """Talk to a running sweep service.  One connection per request —
    simple, stateless, and robust against server restarts."""

    def __init__(self, addr: Optional[str] = None,
                 timeout: float = CLIENT_TIMEOUT):
        self.addr = resolve_addr(addr)
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------------
    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection(self.addr, timeout=self.timeout)
        except OSError as exc:
            raise ServiceUnavailable(
                f"no repro service at {format_addr(self.addr)}: {exc}"
            ) from exc
        return sock

    def request(self, payload: Dict) -> Dict:
        """One request, one reply."""
        with self._connect() as sock:
            _send_line(sock, payload)
            for reply in _recv_lines(sock):
                if not reply.get("ok", False):
                    raise ServiceError(reply.get("error", "service error"))
                return reply
        raise ServiceError("server closed the connection without a reply")

    def stream(self, payload: Dict) -> Iterator[Dict]:
        """One request, many reply lines (``watch``)."""
        with self._connect() as sock:
            sock.settimeout(None)  # watch streams are long-lived
            _send_line(sock, payload)
            for reply in _recv_lines(sock):
                if not reply.get("ok", True):
                    raise ServiceError(reply.get("error", "service error"))
                yield reply

    # -- client operations -------------------------------------------------------
    def ping(self) -> Dict:
        return self.request({"op": "ping"})

    def available(self) -> bool:
        try:
            self.ping()
            return True
        except ServiceError:
            return False

    def submit(self, spec_dicts: List[Dict], priority: int = 0,
               label: str = "") -> Dict:
        return self.request({"op": "submit", "specs": spec_dicts,
                             "priority": priority, "label": label})

    def status(self, job_id: Optional[str] = None) -> Dict:
        payload: Dict = {"op": "status"}
        if job_id is not None:
            payload["job"] = job_id
        return self.request(payload)

    def watch(self, job_id: str, interval: float = 0.2) -> Iterator[Dict]:
        """Progress events until the job reaches a terminal state."""
        yield from self.stream({"op": "watch", "job": job_id,
                                "interval": interval})

    def wait(self, job_id: str, interval: float = 0.2) -> Dict:
        """Block until the job is terminal; returns its final status."""
        last: Dict = {}
        for event in self.watch(job_id, interval=interval):
            last = event
            if event.get("event") == "done":
                break
        return last.get("job", {})

    def cancel(self, job_id: str) -> bool:
        return bool(self.request({"op": "cancel",
                                  "job": job_id}).get("cancelled"))

    def fetch(self, spec_dict: Dict) -> Optional[Dict]:
        """The encoded result payload for a spec, or None on a miss."""
        return self.request({"op": "fetch", "spec": spec_dict}).get("result")

    def stats(self) -> Dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> None:
        try:
            self.request({"op": "shutdown"})
        except (ServiceError, OSError):
            pass  # the socket may drop as the server exits

    # -- worker operations -------------------------------------------------------
    def claim(self, owner: str, host: str, max_cells: int = 1) -> List[Dict]:
        return self.request({"op": "claim", "owner": owner, "host": host,
                             "max": max_cells}).get("cells", [])

    def complete(self, owner: str, digest: str, result: Dict,
                 elapsed: Optional[float] = None) -> bool:
        return bool(self.request({
            "op": "complete", "owner": owner, "digest": digest,
            "result": result, "elapsed": elapsed,
        }).get("accepted"))

    def fail(self, owner: str, digest: str, error: str) -> bool:
        return bool(self.request({
            "op": "fail", "owner": owner, "digest": digest, "error": error,
        }).get("accepted"))

    def heartbeat(self, host: str, workers: int = 1) -> None:
        self.request({"op": "heartbeat", "host": host, "workers": workers})
