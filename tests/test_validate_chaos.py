"""Seeded fault injection: deterministic chaos, clean on correct schemes.

Chaos cells perturb timing only, so every release scheme must come back
with ``error is None`` and bit-identical results for the same spec — the
replay guarantee a failing campaign cell depends on.
"""

import pytest

from repro.harness import decode_cell_result, encode_cell_result
from repro.rename.schemes import SCHEME_NAMES
from repro.validate import (
    ChaosSpec,
    CampaignReport,
    campaign_specs,
    run_campaign,
    run_chaos_cell,
)


class TestChaosCells:
    @pytest.mark.parametrize("scheme", list(SCHEME_NAMES))
    def test_clean_on_all_schemes(self, scheme):
        spec = ChaosSpec(benchmark="mcf", scheme=scheme, rf_size=28,
                         instructions=500, seed=3, intensity="high")
        result = run_chaos_cell(spec)
        assert result.error is None, result.error
        assert result.stats.cycles > 0

    def test_same_spec_is_bit_identical(self):
        spec = ChaosSpec(benchmark="bwaves", scheme="atr", rf_size=30,
                         instructions=500, seed=7, intensity="high")
        first = run_chaos_cell(spec)
        second = run_chaos_cell(spec)
        assert encode_cell_result(first) == encode_cell_result(second)

    def test_different_seeds_perturb_differently(self):
        results = [
            run_chaos_cell(ChaosSpec(benchmark="mcf", scheme="atr", rf_size=28,
                                     instructions=500, seed=seed))
            for seed in range(4)
        ]
        assert all(r.error is None for r in results)
        # Seeds draw different configurations/faults, so cycle counts vary.
        assert len({r.stats.cycles for r in results}) > 1

    def test_unknown_intensity_rejected(self):
        spec = ChaosSpec(benchmark="mcf", scheme="atr", rf_size=28,
                         instructions=100, seed=0, intensity="apocalyptic")
        with pytest.raises(ValueError, match="intensity"):
            run_chaos_cell(spec)
        with pytest.raises(ValueError, match="intensity"):
            campaign_specs(["mcf"], ["atr"], [28], [0], 100,
                           intensity="apocalyptic")


class TestErrorField:
    def test_error_round_trips_through_serialization(self):
        spec = ChaosSpec(benchmark="mcf", scheme="baseline", rf_size=28,
                         instructions=300, seed=1)
        result = run_chaos_cell(spec)
        result.error = "synthetic violation text"
        decoded = decode_cell_result(encode_cell_result(result))
        assert decoded.error == "synthetic violation text"

    def test_pre_error_payloads_still_decode(self):
        """Store entries persisted before the error field existed."""
        spec = ChaosSpec(benchmark="mcf", scheme="baseline", rf_size=28,
                         instructions=300, seed=1)
        payload = encode_cell_result(run_chaos_cell(spec))
        del payload["error"]
        assert decode_cell_result(payload).error is None


class TestCampaign:
    def test_small_campaign_is_clean_and_renders(self):
        specs = campaign_specs(
            benchmarks=["mcf"],
            schemes=["baseline", "atr"],
            rf_sizes=[28],
            seeds=[0, 1],
            instructions=400,
            intensity="low",
        )
        assert len(specs) == 4
        report = run_campaign(specs, jobs=1)
        assert isinstance(report, CampaignReport)
        assert report.ok
        assert report.clean == 4
        assert not report.violations
        rendered = report.render()
        assert "campaign: 4 cells, 4 clean" in rendered
        assert "atr" in rendered

    def test_report_separates_violations(self):
        specs = campaign_specs(["mcf"], ["atr"], [28], [0], 300)
        report = run_campaign(specs, jobs=1)
        # Forge a violation to exercise the reporting path.
        spec, result = next(iter(report.results.items()))
        result.error = "forged use-after-release"
        assert not report.ok
        assert report.violations == [(spec, "forged use-after-release")]
        assert "VIOLATION" in report.render()
