"""Spec-digest stability: the registry refactor must not move the cache.

``tests/data/golden_digests.json`` holds digests captured before the
registry layer existed.  If any of them drift, every cached result in
every user's store silently invalidates — so this is a byte-identity
check, not a smoke test.  Variant-qualified benchmarks
(``505.mcf_r/ref2``) ride in ``CellSpec.benchmark`` as plain strings and
therefore hash to their own cells.
"""

import json
import pathlib

from repro.harness.spec import CellSpec, RegionSpec, TierPolicy, spec_digest

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_digests.json"


def _spec_for(key: str) -> CellSpec:
    """Rebuild the spec a golden key was captured from.

    Keys are ``benchmark|scheme[|flavor]`` over the
    ``CellSpec(rf_size=64, instructions=5000)`` grid; flavors mirror the
    capture script exactly.
    """
    parts = key.split("|")
    benchmark, scheme = parts[0], parts[1]
    flavor = parts[2] if len(parts) > 2 else None
    kwargs = dict(benchmark=benchmark, rf_size=64, scheme=scheme,
                  instructions=5000)
    if flavor == "d2":
        kwargs["redefine_delay"] = 2
    elif flavor == "events":
        kwargs["record_register_events"] = True
    elif flavor == "tiered":
        kwargs["tier"] = TierPolicy(mode="tiered")
    if scheme == "regions":
        kwargs.pop("scheme")
        return RegionSpec(benchmark=benchmark, instructions=5000)
    return CellSpec(**kwargs)


def test_golden_digests_unchanged():
    golden = json.loads(GOLDEN.read_text())
    assert len(golden) == 118
    mismatched = {key: (expected, spec_digest(_spec_for(key)))
                  for key, expected in golden.items()
                  if spec_digest(_spec_for(key)) != expected}
    assert not mismatched, (
        f"{len(mismatched)} spec digests drifted (cache would invalidate): "
        f"{sorted(mismatched)[:5]}")


def test_variant_digest_is_distinct():
    base = CellSpec(benchmark="505.mcf_r", rf_size=64, scheme="atr",
                    instructions=5000)
    ref2 = CellSpec(benchmark="505.mcf_r/ref2", rf_size=64, scheme="atr",
                    instructions=5000)
    assert spec_digest(base) != spec_digest(ref2)
    # and the base digest is the golden one — variants don't perturb it
    golden = json.loads(GOLDEN.read_text())
    assert spec_digest(base) == golden["505.mcf_r|atr"]


def test_every_variant_name_hashes_uniquely():
    from repro.workloads import workload_names

    digests = {spec_digest(CellSpec(benchmark=name, rf_size=64,
                                    scheme="baseline", instructions=5000))
               for name in workload_names(variants=True)}
    assert len(digests) == len(workload_names(variants=True))
