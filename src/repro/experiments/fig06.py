"""Figure 6: atomic register ratio.

Fraction of all allocated registers whose allocation chain lies in a
non-branch / non-except / atomic region, per benchmark.  Pure trace
analysis — no timing simulation involved (the paper likewise analyzes
regions at rename, independent of execution timing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from . import expectations
from .report import compare_line, format_table, shorten
from .runner import (
    RegionSpec,
    default_fp_suite,
    default_instructions,
    default_int_suite,
    mean,
    prime_regions,
    region_report,
)


@dataclass
class Fig06Result:
    #: benchmark -> {"non_branch": x, "non_except": y, "atomic": z}
    ratios: Dict[str, Dict[str, float]]
    int_benchmarks: Sequence[str]
    fp_benchmarks: Sequence[str]

    def average(self, which: str, kind: str = "atomic") -> float:
        suite = self.int_benchmarks if which == "int" else self.fp_benchmarks
        return mean(self.ratios[b][kind] for b in suite)

    def render(self) -> str:
        rows = [
            [shorten(b), r["non_branch"], r["non_except"], r["atomic"]]
            for b, r in self.ratios.items()
        ]
        table = format_table(
            ["benchmark", "non-branch", "non-except", "atomic"], rows,
            title="Figure 6: atomic register ratio")
        lines = [
            table, "",
            compare_line("SPECint average atomic ratio",
                         self.average("int"), expectations.FIG06_INT_ATOMIC_RATIO),
            compare_line("SPECfp average atomic ratio",
                         self.average("fp"), expectations.FIG06_FP_ATOMIC_RATIO),
        ]
        return "\n".join(lines)


def run(
    int_benchmarks: Optional[Sequence[str]] = None,
    fp_benchmarks: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    jobs: Optional[int] = None,
) -> Fig06Result:
    int_benchmarks = list(default_int_suite() if int_benchmarks is None else int_benchmarks)
    fp_benchmarks = list(default_fp_suite() if fp_benchmarks is None else fp_benchmarks)
    instructions = instructions or default_instructions()
    if jobs is not None:
        prime_regions(
            [RegionSpec(b, instructions) for b in int_benchmarks + fp_benchmarks],
            jobs=jobs,
        )
    ratios: Dict[str, Dict[str, float]] = {}
    for benchmark in int_benchmarks + fp_benchmarks:
        report = region_report(benchmark, instructions)
        ratios[benchmark] = {
            kind: report.ratio(kind)
            for kind in ("non_branch", "non_except", "atomic")
        }
    return Fig06Result(
        ratios=ratios, int_benchmarks=int_benchmarks, fp_benchmarks=fp_benchmarks
    )
