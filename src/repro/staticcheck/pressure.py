"""Static register pressure and a sound ATR opportunity upper bound.

ATR's benefit is bounded by how many def→redef windows are provably
atomic: the scheme claims a displaced mapping at the redefiner's rename
and may free it early only inside such a window.  Both facts are static
properties of the program text (see :mod:`repro.staticcheck.regions`),
so the text also bounds the *dynamic* opportunity:

    For each rename allocation at pc ``p``, at most ``weight(p)``
    new claims can be opened, where ``weight(p)`` is the number of
    distinct destination registers of ``p`` that own a statically
    atomic window ending (redefining) at ``p``.

Every runtime claim names a displaced mapping of one destination
register of the renaming instruction, and the scheme claims only
windows that are atomic along the renamed stream — which, breakers
being exactly the stream-forking instructions, is the deterministic
static chain.  Summing ``weight`` over the allocation events of a run
therefore yields a hard upper bound on claims, and a fortiori on
claimed early releases.  :class:`StaticBoundProbe` accumulates that sum
live and flags any excess: a violated bound is a simulator bug, exactly
like :class:`repro.staticcheck.oracle.AtrSoundnessProbe`'s contract —
the two probes ride the same chaos cells.

:func:`analyze_pressure` also reports classic static live-range
pressure (per-pc live counts against each physical file) — the other
half of "how much can early release help": windows only matter when the
file is actually under pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..isa import Program, RegClass
from ..pipeline.probes import Probe
from .dataflow import DataflowResult, analyze_dataflow
from .regions import StaticRegionReport, StaticWindow, analyze_regions


@dataclass(frozen=True)
class BoundViolation:
    """Dynamic ATR activity exceeding the static opportunity bound."""

    kind: str  # "claims" | "releases"
    observed: int
    bound: int
    cycle: int

    def __str__(self) -> str:
        return (f"static ATR bound violated at cycle {self.cycle}: "
                f"{self.observed} {self.kind} > bound {self.bound}")


@dataclass
class PressureReport:
    """Static pressure + early-release opportunity of one program."""

    program: Program
    dataflow: DataflowResult
    regions: StaticRegionReport
    #: Live register count after each pc, per physical file.
    live_int: List[int] = field(default_factory=list)
    live_vec: List[int] = field(default_factory=list)
    #: pc -> number of distinct dest registers with a statically atomic
    #: window redefined at that pc (the per-allocation claim bound).
    release_weight: Dict[int, int] = field(default_factory=dict)

    @property
    def atomic_windows(self) -> List[StaticWindow]:
        """The statically-provable early-release windows."""
        return self.regions.atomic_windows()

    def max_pressure(self, file_cls: RegClass = RegClass.INT) -> int:
        live = self.live_vec if file_cls is RegClass.VEC else self.live_int
        return max(live, default=0)

    def mean_pressure(self, file_cls: RegClass = RegClass.INT) -> float:
        live = self.live_vec if file_cls is RegClass.VEC else self.live_int
        return sum(live) / len(live) if live else 0.0

    def trace_bound(self, pcs: Iterable[int]) -> int:
        """Static claim bound for one concrete pc stream (e.g. the
        functional trace): the sum of ``release_weight`` over it."""
        weight = self.release_weight
        return sum(weight.get(pc, 0) for pc in pcs)

    def counts(self) -> Dict[str, object]:
        return {
            "atomic_windows": len(self.atomic_windows),
            "weighted_pcs": len(self.release_weight),
            "static_weight": sum(self.release_weight.values()),
            "max_int_pressure": self.max_pressure(RegClass.INT),
            "max_vec_pressure": self.max_pressure(RegClass.VEC),
            "mean_int_pressure": round(self.mean_pressure(RegClass.INT), 2),
        }


def analyze_pressure(program: Program,
                     dataflow: Optional[DataflowResult] = None,
                     regions: Optional[StaticRegionReport] = None
                     ) -> PressureReport:
    """Compute live-range pressure and the static release-weight map."""
    if dataflow is None:
        dataflow = analyze_dataflow(program)
    if regions is None:
        regions = analyze_regions(program)
    live_int: List[int] = []
    live_vec: List[int] = []
    for pc in range(len(program.instructions)):
        live = dataflow.live_after(pc)
        live_int.append(sum(1 for reg in live if reg.cls.file is RegClass.INT))
        live_vec.append(sum(1 for reg in live if reg.cls.file is RegClass.VEC))
    by_pc: Dict[int, set] = {}
    for window in regions.atomic_windows():
        by_pc.setdefault(window.redef_pc, set()).add(window.reg)
    weight = {pc: len(regs) for pc, regs in by_pc.items()}
    return PressureReport(program=program, dataflow=dataflow,
                          regions=regions, live_int=live_int,
                          live_vec=live_vec, release_weight=weight)


class StaticBoundProbe(Probe):
    """Probe asserting dynamic ATR activity never exceeds the static
    opportunity bound.

    The bound accumulates ``release_weight`` over the *actual* rename
    allocation events of the run (re-renamed instructions after a flush
    contribute again, so the bound is valid for whatever stream the
    pipeline really renamed).  Claims fire in ``post_rename`` of the
    same entry, strictly after its allocate event, so the running
    comparison is exact at every instant.  A pure event-layer observer:
    attach with ``core.add_probe``.
    """

    def __init__(self, program: Program,
                 report: Optional[PressureReport] = None):
        self.program = program
        self.report = report if report is not None else analyze_pressure(program)
        self._weight = self.report.release_weight
        self.bound = 0
        self.claims_seen = 0
        self.claimed_releases = 0
        self.violations: List[BoundViolation] = []
        # ptags with an outstanding claim (claimed at rename, not yet
        # released/reallocated) so unclaimed (nonspec-ER) releases are
        # not counted against the ATR bound.
        self._claimed: set = set()

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- event handlers ----------------------------------------------------
    def on_allocate(self, entry, cycle: int) -> None:
        self.bound += self._weight.get(entry.dyn.pc, 0)
        for record in entry.dests:
            # A recycled ptag starts a fresh lifetime.
            self._claimed.discard((record.file, record.new_ptag))

    def on_claim(self, file_cls, ptag: int, cycle: int) -> None:
        self.claims_seen += 1
        self._claimed.add((file_cls, ptag))
        if self.claims_seen > self.bound:
            self.violations.append(BoundViolation(
                "claims", self.claims_seen, self.bound, cycle))

    def on_early_release(self, file_cls, ptag: int, cycle: int) -> None:
        key = (file_cls, ptag)
        if key not in self._claimed:
            return
        self._claimed.discard(key)
        self.claimed_releases += 1
        if self.claimed_releases > self.bound:
            self.violations.append(BoundViolation(
                "releases", self.claimed_releases, self.bound, cycle))

    def summary(self) -> str:
        return (f"{self.claimed_releases} claimed early releases, "
                f"{self.claims_seen} claims, static bound {self.bound}, "
                f"{len(self.violations)} violations")
