"""SPEC CPU 2017 integer-suite stand-in kernels (paper Table 2).

Each kernel is a hand-written program in the reproduction ISA that mimics
the *register-lifetime-relevant* character of its namesake benchmark: the
mix of conditional branches, loads/stores, and the ALU chains between
them that determine how many registers live inside atomic commit regions,
plus a realistic memory footprint so register pressure actually builds
behind cache misses (the effect the paper's RF-size sweeps measure).
They are not functional ports of SPEC; they are workload generators with
the right rename-stage and memory-system statistics.

Every builder takes ``iterations`` (outer loop trip count) and a ``seed``
for its embedded data, so traces are deterministic but non-trivial.
"""

from __future__ import annotations

import random

from ..isa import LINK_REG, Program, ProgramBuilder, ireg

#: Base addresses for the kernels' data regions.
_HEAP = 0x100000
_TABLE = 0x400000
_STACK = 0x800000


def _lcg_words(seed: int, count: int, bound: int = 1 << 30):
    rng = random.Random(seed)
    return [rng.randrange(bound) for _ in range(count)]


def perlbench(iterations: int = 64, seed: int = 1) -> Program:
    """String hashing + hash-table probes: data-dependent branches on
    hash bits, short ALU runs with temp reuse, frequent calls (perl's
    opcode dispatch), and a hash table too big for the L1."""
    b = ProgramBuilder("500.perlbench_r")
    words = 512                      # 4 KiB string buffer
    table_words = 262144             # 2 MiB hash table
    b.words(_HEAP, _lcg_words(seed, words, bound=1 << 16))
    r = ireg
    b.movi(r(1), iterations)
    b.movi(r(2), _HEAP)
    b.movi(r(3), 0)                  # hash
    b.movi(r(4), 1)
    b.movi(r(9), _TABLE)
    b.movi(r(10), 33)
    b.label("outer")
    b.movi(r(5), 64)                 # chars per string
    b.label("hash_loop")
    b.ld(r(7), r(2), 0)
    b.mul(r(3), r(3), r(10))         # hash = hash*33 + c
    b.add(r(3), r(3), r(7))
    b.shr(r(7), r(3), 7)             # temp reuse: r7 redefined (atomic)
    b.xor(r(3), r(3), r(7))
    b.lea(r(2), r(2), 8)
    b.sub(r(5), r(5), r(4))
    b.test(r(5), r(5))
    b.bne("hash_loop")
    # probe: bucket = hash % table, branch on tag parity
    b.movi(r(8), (table_words - 1) * 8)
    b.shl(r(11), r(3), 3)
    b.and_(r(11), r(11), r(8))       # r11 reused below (atomic material)
    b.add(r(11), r(11), r(9))
    b.ld(r(12), r(11), 0)
    b.test(r(12), r(4))
    b.bne("miss")
    b.call("insert")
    b.jmp("next")
    b.label("miss")
    b.xor(r(3), r(3), r(12))
    b.add(r(3), r(3), r(4))
    b.label("next")
    b.movi(r(5), words * 8 - 512)
    b.and_(r(6), r(3), r(5))         # new string offset from hash
    b.movi(r(2), _HEAP)
    b.add(r(2), r(2), r(6))
    b.lint_ignore("df-dead-store")   # the redefinition below is the point
    b.movi(r(2), _HEAP)              # immediate redefinition (atomic)
    b.sub(r(1), r(1), r(4))
    b.test(r(1), r(1))
    b.bne("outer")
    b.halt()
    b.label("insert")
    b.st(r(3), r(11), 0)
    b.ld(r(13), r(11), 8)
    b.add(r(3), r(3), r(13))
    b.ret()
    return b.build()


def gcc(iterations: int = 48, seed: int = 2) -> Program:
    """Indirect dispatch (a switch over IR opcodes via an in-memory jump
    table) with per-case short ALU bursts — gcc's insn pattern matching
    over a multi-hundred-KiB IR array."""
    b = ProgramBuilder("502.gcc_r")
    r = ireg
    cases = 4
    ir_words = 262144                # 2 MiB of "IR"
    table_base = _TABLE
    b.words(_HEAP, _lcg_words(seed, ir_words, bound=cases))
    b.movi(r(1), iterations)
    b.movi(r(2), _HEAP)
    b.movi(r(4), 1)
    b.movi(r(6), 0)
    b.movi(r(9), table_base)
    b.movi(r(10), (ir_words - 1) * 8)
    b.label("loop")
    b.ld(r(3), r(2), 0)
    b.shl(r(5), r(3), 3)
    b.add(r(5), r(5), r(9))
    b.ld(r(5), r(5), 0)              # target pc from the jump table
    b.jr(r(5))
    b.label("case0")
    b.add(r(7), r(6), r(4))          # temps reused across cases
    b.shl(r(7), r(7), 1)
    b.add(r(6), r(7), r(4))
    b.jmp("join")
    b.label("case1")
    b.xor(r(7), r(6), r(3))
    b.or_(r(7), r(7), r(4))
    b.add(r(6), r(6), r(7))
    b.jmp("join")
    b.label("case2")
    b.shl(r(7), r(6), 1)
    b.add(r(6), r(7), r(4))
    b.jmp("join")
    b.label("case3")
    b.sub(r(6), r(6), r(4))
    b.label("join")
    b.lea(r(2), r(2), 8)
    b.lint_ignore("df-dead-store")   # IR cursor reset below redefines r2
    b.shl(r(8), r(6), 3)
    b.and_(r(8), r(8), r(10))
    b.movi(r(2), _HEAP)
    b.add(r(2), r(2), r(8))          # data-dependent next IR position
    b.sub(r(1), r(1), r(4))
    b.test(r(1), r(1))
    b.bne("loop")
    b.halt()
    program = b.build()
    for i in range(cases):
        program.data[table_base + 8 * i] = program.labels[f"case{i}"]
    return program


def mcf(iterations: int = 96, seed: int = 3) -> Program:
    """Network-simplex arc scans: four independent pointer chases over a
    2 MiB node pool, interleaved — mcf is cache-hostile but has
    memory-level parallelism across arcs, so a deeper register window
    exposes more outstanding misses (the effect the RF sweeps measure)."""
    b = ProgramBuilder("505.mcf_r")
    r = ireg
    nodes = 32768                    # 32768 x 64 B = 2 MiB
    rng = random.Random(seed)
    order = list(range(1, nodes)) + [0]
    rng.shuffle(order)
    for i in range(nodes):
        b.word(_HEAP + 64 * i, _HEAP + 64 * order[i])
        b.word(_HEAP + 64 * i + 8, rng.randrange(1 << 20))
    b.movi(r(1), iterations)
    b.movi(r(4), 1)
    b.movi(r(6), 1 << 21)            # best cost
    b.movi(r(7), 0)                  # improvements
    # four chase cursors starting at spread-out nodes
    for lane, reg in enumerate((2, 9, 10, 11)):
        b.movi(r(reg), _HEAP + 64 * ((lane * nodes) // 4))
    b.label("chase")
    for reg in (2, 9, 10, 11):       # independent lanes: MLP of 4
        b.ld(r(3), r(reg), 8)        # cost
        b.ld(r(reg), r(reg), 0)      # next pointer
        # reduced-cost computation in the load shadow (atomic material):
        # enough independent work that four lanes outgrow a small RF
        b.shl(r(5), r(3), 1)
        b.sub(r(5), r(5), r(3))
        b.add(r(5), r(5), r(7))
        b.shl(r(8), r(5), 2)
        b.xor(r(8), r(8), r(5))
        b.add(r(8), r(8), r(4))
        b.shr(r(12), r(8), 1)
        b.xor(r(12), r(12), r(8))
        b.add(r(13), r(12), r(5))
        b.sub(r(13), r(13), r(4))
        b.cmp(r(13), r(6))
        b.bge(f"no_improve{reg}")
        b.add(r(7), r(7), r(4))
        b.label(f"no_improve{reg}")
    b.sub(r(1), r(1), r(4))
    b.test(r(1), r(1))
    b.bne("chase")
    b.halt()
    return b.build()


def omnetpp(iterations: int = 48, seed: int = 4) -> Program:
    """Discrete-event heap over a 128 KiB event array: sift-down with
    load-compare-swap, plus the paper's Figure 5 motif (a load feeding a
    fused test+branch, followed by LEA/LEA/SHR chains whose registers ATR
    frees early)."""
    b = ProgramBuilder("520.omnetpp_r")
    r = ireg
    heap_n = 262144                  # 2 MiB
    b.words(_HEAP, _lcg_words(seed, heap_n, bound=1 << 24))
    b.movi(r(1), iterations)
    b.movi(r(2), _HEAP)
    b.movi(r(4), 1)
    b.movi(r(13), 1)
    b.movi(r(15 - 1), (heap_n - 1) * 8)  # r14: index mask
    b.label("events")
    b.movi(r(5), 0)                  # index
    b.movi(r(6), 6)                  # levels
    b.label("sift")
    b.shl(r(7), r(5), 1)
    b.add(r(7), r(7), r(4))          # left child index
    b.shl(r(8), r(7), 3)
    b.and_(r(8), r(8), r(14))
    b.add(r(8), r(8), r(2))
    b.ld(r(9), r(8), 0)              # child key (long latency, feeds branch)
    b.test(r(9), r(4))
    b.bne("right")
    # Figure 5 motif: dependent address-generation chain after the load
    b.lea(r(10), r(9), 24)           # I3 LEA RAX <- RDI
    b.lea(r(11), r(10), 8)           # I4 LEA RBX <- RAX   (atomic region)
    b.shr(r(11), r(11), 2)           # I5 SHR RBX          (redefines RBX)
    b.add(r(13), r(13), r(11))
    b.mov(r(5), r(7))
    b.jmp("sift_next")
    b.label("right")
    b.add(r(5), r(7), r(4))
    b.xor(r(13), r(13), r(9))
    b.label("sift_next")
    b.sub(r(6), r(6), r(4))
    b.test(r(6), r(6))
    b.bne("sift")
    # schedule: store new event at a hash-derived slot
    b.shl(r(12), r(13), 3)
    b.and_(r(12), r(12), r(14))
    b.add(r(12), r(12), r(2))
    b.st(r(13), r(12), 0)
    b.sub(r(1), r(1), r(4))
    b.test(r(1), r(1))
    b.bne("events")
    b.halt()
    return b.build()


def x264(iterations: int = 24, seed: int = 5) -> Program:
    """SAD over pixel rows streamed from two 64 KiB frames: loads feeding
    dense ALU chains with heavy temp reuse — long atomic regions, and the
    streams exceed the L1 so the prefetcher and L2 matter."""
    b = ProgramBuilder("525.x264_r")
    r = ireg
    pixels = 65536                   # 512 KiB per frame
    b.words(_HEAP, _lcg_words(seed, pixels, bound=256))
    b.words(_TABLE, _lcg_words(seed + 1, pixels, bound=256))
    b.movi(r(1), iterations)
    b.movi(r(4), 1)
    b.movi(r(12), 0)                 # SAD total
    b.label("frame")
    b.movi(r(2), _HEAP)
    b.movi(r(3), _TABLE)
    b.movi(r(5), pixels // 4)
    b.label("row")
    b.ld(r(6), r(2), 0)
    b.ld(r(7), r(3), 0)
    b.sub(r(8), r(6), r(7))          # r8..r10 are block-local temps,
    b.mul(r(8), r(8), r(8))          # redefined within the block
    b.shr(r(8), r(8), 4)
    b.add(r(12), r(12), r(8))
    b.ld(r(6), r(2), 8)
    b.ld(r(7), r(3), 8)
    b.sub(r(9), r(6), r(7))
    b.mul(r(9), r(9), r(9))
    b.shr(r(9), r(9), 4)
    b.add(r(12), r(12), r(9))
    b.lea(r(2), r(2), 16)
    b.lea(r(3), r(3), 16)
    b.sub(r(5), r(5), r(4))
    b.test(r(5), r(5))
    b.bne("row")
    b.sub(r(1), r(1), r(4))
    b.test(r(1), r(1))
    b.bne("frame")
    b.halt()
    return b.build()


def deepsjeng(iterations: int = 64, seed: int = 6) -> Program:
    """Bitboard move generation: long logical chains (and/or/xor/shift)
    with heavy temp redefinition and occasional emptiness branches —
    the deepest atomic regions in the int suite, nearly memory-free."""
    b = ProgramBuilder("531.deepsjeng_r")
    r = ireg
    rng = random.Random(seed)
    tt_words = 131072                # 1 MiB transposition table
    b.words(_HEAP, _lcg_words(seed + 1, 64))
    b.movi(r(1), iterations)
    b.movi(r(2), rng.randrange(1 << 62) | 1)   # occupancy
    b.movi(r(3), rng.randrange(1 << 62) | 2)   # own pieces
    b.movi(r(4), 1)
    b.movi(r(10), 0)                           # move count
    b.movi(r(14), 0)                           # TT score accumulator
    b.movi(r(11), _HEAP)
    b.movi(r(13), (tt_words - 1) * 8)
    b.label("gen")
    # slide attacks: shift/mask chains with temps redefined in-block
    b.shl(r(5), r(2), 1)
    b.or_(r(5), r(5), r(2))
    b.shl(r(6), r(5), 2)
    b.or_(r(6), r(6), r(5))
    b.shl(r(7), r(6), 4)
    b.or_(r(7), r(7), r(6))
    b.not_(r(8), r(3))
    b.and_(r(7), r(7), r(8))
    b.xor(r(5), r(7), r(2))          # r5 redefined (atomic)
    b.and_(r(6), r(5), r(7))         # r6 redefined (atomic)
    b.shr(r(8), r(6), 3)             # r8 redefined (atomic)
    b.xor(r(8), r(8), r(5))
    b.test(r(6), r(6))
    b.beq("no_moves")
    b.add(r(10), r(10), r(4))
    # transposition-table probe at hash(r8): a cold load that blocks
    # commit while the bitboard ALU chains behind it complete
    b.shl(r(9), r(8), 3)
    b.and_(r(9), r(9), r(13))
    b.add(r(9), r(9), r(11))
    b.ld(r(12), r(9), 0)
    b.add(r(14), r(14), r(12))      # score accumulator (off the hot path:
    b.st(r(6), r(9), 8)             # board state below must not depend on
    b.label("no_moves")             # the TT data, or iterations serialize)
    b.mul(r(2), r(2), r(7))
    b.add(r(2), r(2), r(10))
    b.xor(r(3), r(3), r(6))
    b.or_(r(3), r(3), r(4))
    b.sub(r(1), r(1), r(4))
    b.test(r(1), r(1))
    b.bne("gen")
    b.halt()
    return b.build()


def leela(iterations: int = 48, seed: int = 7) -> Program:
    """Board scans with conditional accumulation and a small UCT-like
    divide — leela's playout scoring over a 32 KiB board history."""
    b = ProgramBuilder("541.leela_r")
    r = ireg
    board = 131072                   # 1 MiB
    b.words(_HEAP, _lcg_words(seed, board, bound=3))
    b.movi(r(1), iterations)
    b.movi(r(4), 1)
    b.movi(r(8), 0)                  # score
    b.movi(r(9), 2)
    b.label("playout")
    b.movi(r(2), _HEAP)
    b.movi(r(5), 48)
    b.label("scan")
    b.ld(r(6), r(2), 0)
    b.cmp(r(6), r(4))
    b.beq("mine")
    b.cmp(r(6), r(9))
    b.beq("theirs")
    b.jmp("empty")
    b.label("mine")
    b.add(r(8), r(8), r(4))
    b.jmp("empty")
    b.label("theirs")
    b.sub(r(8), r(8), r(4))
    b.label("empty")
    b.lea(r(2), r(2), 64)            # stride one cache line
    b.sub(r(5), r(5), r(4))
    b.test(r(5), r(5))
    b.bne("scan")
    # uct = score / visits (division: exception-causing region breaker)
    b.add(r(10), r(8), r(9))
    b.div(r(11), r(10), r(9))
    b.add(r(8), r(8), r(11))
    b.sub(r(1), r(1), r(4))
    b.test(r(1), r(1))
    b.bne("playout")
    b.halt()
    return b.build()


def exchange2(iterations: int = 8, seed: int = 8) -> Program:
    """Recursive permutation search (sudoku-ish): call/ret with manual
    stack spills, heavy integer ALU with temp reuse — exchange2 has
    almost no data memory traffic."""
    b = ProgramBuilder("548.exchange2_r")
    r = ireg
    b.movi(r(1), iterations)
    b.movi(r(4), 1)
    b.movi(r(14), _STACK)
    b.movi(r(8), 0)
    b.label("outer")
    b.movi(r(2), 6)                  # depth
    b.movi(r(3), 0)                  # state
    b.call("recurse")
    b.sub(r(1), r(1), r(4))
    b.test(r(1), r(1))
    b.bne("outer")
    b.halt()
    b.label("recurse")
    b.st(LINK_REG, r(14), 0)
    b.st(r(2), r(14), 8)
    b.lea(r(14), r(14), 16)
    # permute step: ALU-only region with temps redefined in-block
    b.shl(r(5), r(3), 1)
    b.xor(r(5), r(5), r(2))
    b.add(r(5), r(5), r(4))
    b.and_(r(6), r(5), r(3))
    b.or_(r(6), r(6), r(5))
    b.shr(r(7), r(6), 2)
    b.xor(r(7), r(7), r(6))
    b.add(r(3), r(7), r(5))
    b.test(r(2), r(2))
    b.beq("base")
    b.sub(r(2), r(2), r(4))
    b.call("recurse")
    b.add(r(2), r(2), r(4))
    b.lint_ignore("df-dead-store")   # epilogue reloads r2 from the spill
    b.label("base")
    b.add(r(8), r(8), r(4))
    b.lea(r(14), r(14), -16)
    b.ld(r(2), r(14), 8)
    b.ld(LINK_REG, r(14), 0)
    b.ret()
    return b.build()


def xz(iterations: int = 32, seed: int = 9) -> Program:
    """LZ77 match finding over a 128 KiB window: byte compares with
    early-exit branches and match-length accumulation."""
    b = ProgramBuilder("557.xz_r")
    r = ireg
    data = 131072                    # 1 MiB
    rng = random.Random(seed)
    b.words(_HEAP, [rng.randrange(4) for _ in range(data)])
    b.movi(r(1), iterations)
    b.movi(r(4), 1)
    b.movi(r(10), 0)                 # total match length
    b.movi(r(12), (data - 1) * 8)
    b.label("search")
    # window and lookahead positions derived from the running hash
    b.shl(r(2), r(10), 3)
    b.and_(r(2), r(2), r(12))
    b.movi(r(11), _HEAP)
    b.add(r(2), r(2), r(11))
    b.lea(r(3), r(2), 1024)
    b.movi(r(5), 12)                 # max compares
    b.movi(r(6), 0)                  # match length
    b.label("compare")
    b.ld(r(7), r(2), 0)
    b.ld(r(8), r(3), 0)
    b.cmp(r(7), r(8))
    b.bne("mismatch")
    b.add(r(6), r(6), r(4))
    b.lea(r(2), r(2), 8)
    b.lea(r(3), r(3), 8)
    b.sub(r(5), r(5), r(4))
    b.test(r(5), r(5))
    b.bne("compare")
    b.label("mismatch")
    b.add(r(10), r(10), r(6))
    # slide window by hash of match length (ALU region, temps reused)
    b.mul(r(9), r(6), r(10))
    b.shr(r(9), r(9), 2)
    b.add(r(9), r(9), r(4))
    b.xor(r(10), r(10), r(9))
    b.sub(r(1), r(1), r(4))
    b.test(r(1), r(1))
    b.bne("search")
    b.halt()
    return b.build()


def xalancbmk(iterations: int = 40, seed: int = 10) -> Program:
    """DOM-tree walk over a 128 KiB node pool: child-pointer loads with
    tag-dispatch branches — xalancbmk's template matching."""
    b = ProgramBuilder("523.xalancbmk_r")
    r = ireg
    nodes = 16384                    # 16384 x 64 B = 1 MiB
    rng = random.Random(seed)
    for i in range(nodes):
        child = _HEAP + 64 * rng.randrange(nodes)
        b.word(_HEAP + 64 * i, child)
        b.word(_HEAP + 64 * i + 8, rng.randrange(3))
    b.movi(r(1), iterations)
    b.movi(r(4), 1)
    b.movi(r(8), 0)                  # matches
    b.movi(r(9), 2)
    b.label("walk")
    b.movi(r(2), _HEAP)
    b.movi(r(5), 12)                 # depth
    b.label("descend")
    b.ld(r(6), r(2), 8)              # tag
    b.ld(r(2), r(2), 0)              # child
    b.cmp(r(6), r(4))
    b.beq("text")
    b.cmp(r(6), r(9))
    b.beq("element")
    b.jmp("next_node")
    b.label("text")
    b.add(r(8), r(8), r(4))
    b.jmp("next_node")
    b.label("element")
    b.shl(r(7), r(8), 1)
    b.xor(r(7), r(7), r(6))          # r7 redefined (atomic)
    b.add(r(8), r(8), r(7))
    b.label("next_node")
    b.sub(r(5), r(5), r(4))
    b.test(r(5), r(5))
    b.bne("descend")
    b.sub(r(1), r(1), r(4))
    b.test(r(1), r(1))
    b.bne("walk")
    b.halt()
    return b.build()
