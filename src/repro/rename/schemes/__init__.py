"""Register release schemes: baseline, nonspec-ER, ATR, combined."""

from typing import Optional

from .atr import AtrScheme
from .base import ReleaseScheme, SchemeStats
from .baseline import BaselineScheme
from .combined import CombinedScheme
from .nonspec import NonSpecEarlyReleaseScheme
from .tracking import ConsumerTrackingScheme

SCHEME_NAMES = ("baseline", "nonspec_er", "atr", "combined")


def make_scheme(name: str, redefine_delay: int = 0, debug_checks: bool = True) -> ReleaseScheme:
    """Factory for the four schemes the paper evaluates (Figure 10).

    Args:
        name: One of :data:`SCHEME_NAMES`.
        redefine_delay: Pipeline delay of the ATR redefinition signal
            (paper Figure 13 evaluates 0, 1, 2).
        debug_checks: Cross-check ATR's flush walk against the oracle.
    """
    if name == "baseline":
        return BaselineScheme()
    if name == "nonspec_er":
        return NonSpecEarlyReleaseScheme()
    if name == "atr":
        return AtrScheme(redefine_delay=redefine_delay, debug_checks=debug_checks)
    if name == "combined":
        return CombinedScheme(redefine_delay=redefine_delay, debug_checks=debug_checks)
    raise ValueError(f"unknown scheme {name!r}; expected one of {SCHEME_NAMES}")


__all__ = [
    "ReleaseScheme", "SchemeStats", "ConsumerTrackingScheme",
    "BaselineScheme", "NonSpecEarlyReleaseScheme", "AtrScheme", "CombinedScheme",
    "make_scheme", "SCHEME_NAMES",
]
