"""Experiment harness: one module per paper figure, plus the runner.

Each ``figNN`` module exposes ``run(...) -> result`` where the result has
a ``render()`` producing the same rows/series the paper reports, with
measured-vs-paper comparison lines.
"""

from . import expectations, fig01, fig04, fig06, fig10, fig11, fig12, fig13, fig14, fig15, sec44
from .report import compare_line, format_table, pct, shorten
from .runner import (
    DETAILED,
    CellResult,
    CellSpec,
    RegionSpec,
    TierPolicy,
    cell_spec,
    clear_result_cache,
    default_fp_suite,
    default_instructions,
    default_int_suite,
    geomean,
    mean,
    prime_cells,
    prime_regions,
    region_report,
    run_cell,
    speedup,
    suite_speedup,
)

ALL_FIGURES = {
    "fig01": fig01, "fig04": fig04, "fig06": fig06, "fig10": fig10,
    "fig11": fig11, "fig12": fig12, "fig13": fig13, "fig14": fig14,
    "fig15": fig15, "sec44": sec44,
}

__all__ = [
    "run_cell", "CellResult", "CellSpec", "RegionSpec", "cell_spec",
    "TierPolicy", "DETAILED",
    "region_report", "clear_result_cache", "prime_cells", "prime_regions",
    "geomean", "mean", "speedup", "suite_speedup",
    "default_instructions", "default_int_suite", "default_fp_suite",
    "format_table", "compare_line", "pct", "shorten",
    "expectations", "ALL_FIGURES",
    "fig01", "fig04", "fig06", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "sec44",
]
