"""Persistent store: hit/miss, fingerprint invalidation, management."""

import json
import multiprocessing
from pathlib import Path

import pytest

from repro.harness import (
    CellSpec,
    ResultStore,
    code_fingerprint,
    default_store,
    fingerprint_sources,
    simulate_cell,
)

SPEC = CellSpec("505.mcf_r", 64, "atr", 1000)


@pytest.fixture(scope="module")
def cell():
    return simulate_cell(SPEC)


def test_miss_then_hit(tmp_path, cell):
    store = ResultStore(root=tmp_path)
    assert store.get(SPEC) is None
    store.put(SPEC, cell)
    cached = store.get(SPEC)
    assert cached is not None
    assert cached.ipc == cell.ipc
    assert cached.stats == cell.stats
    assert (store.hits, store.misses) == (1, 1)


def test_fingerprint_change_invalidates(tmp_path, cell):
    old = ResultStore(root=tmp_path, fingerprint="a" * 64)
    old.put(SPEC, cell)
    assert old.get(SPEC) is not None

    # Same root, new code version: must be a miss, old entry untouched.
    new = ResultStore(root=tmp_path, fingerprint="b" * 64)
    assert new.get(SPEC) is None
    new.put(SPEC, cell)
    info = new.info()
    assert len(info["generations"]) == 2
    assert info["entries"] == 2
    assert sum(g["current"] for g in info["generations"]) == 1


def test_corrupt_entry_reads_as_miss_and_is_removed(tmp_path, cell):
    store = ResultStore(root=tmp_path)
    path = store.put(SPEC, cell)
    path.write_text("{not json")
    with pytest.warns(UserWarning, match="corrupt entry"):
        assert store.get(SPEC) is None
    assert not path.exists()
    # Recomputed and re-stored: hits again.
    store.put(SPEC, cell)
    assert store.get(SPEC) is not None


def test_truncated_entry_reads_as_miss(tmp_path, cell):
    store = ResultStore(root=tmp_path)
    path = store.put(SPEC, cell)
    path.write_text(path.read_text()[: path.stat().st_size // 2])
    with pytest.warns(UserWarning, match="corrupt entry"):
        assert store.get(SPEC) is None
    assert not path.exists()


def test_counters_in_info_and_persisted(tmp_path, cell):
    store = ResultStore(root=tmp_path)
    store.get(SPEC)  # miss
    store.put(SPEC, cell)
    store.get(SPEC)  # hit
    counters = store.info()["counters"]
    assert counters["session"] == {"hits": 1, "misses": 1, "puts": 1}
    assert counters["lifetime"]["hits"] == 1
    assert counters["lifetime"]["misses"] == 1
    assert counters["lifetime"]["puts"] == 1
    # Lifetime counters are shared across instances (and processes).
    other = ResultStore(root=tmp_path)
    other.get(SPEC)
    assert other.info()["counters"]["lifetime"]["hits"] == 2
    assert other.info()["counters"]["session"]["hits"] == 1


def test_clear_removes_all_generations(tmp_path, cell):
    ResultStore(root=tmp_path, fingerprint="a" * 64).put(SPEC, cell)
    ResultStore(root=tmp_path, fingerprint="b" * 64).put(SPEC, cell)
    store = ResultStore(root=tmp_path)
    assert store.clear() == 2
    assert store.info()["entries"] == 0
    assert store.clear() == 0  # idempotent, even with no directory content


def test_default_store_honors_cache_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    store = default_store()
    assert store is not None
    assert store.root == tmp_path / "elsewhere"


def test_default_store_disabled_by_no_cache_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert default_store() is None


def _put_many(root: str, worker: int, repeats: int) -> None:
    store = ResultStore(root=Path(root), fingerprint="c" * 64)
    for _ in range(repeats):
        store.put(SPEC, {"worker": worker})  # raw payload round-trips


def test_concurrent_puts_same_digest_no_corruption(tmp_path):
    """Two processes hammering one digest: the entry stays valid JSON
    and the lifetime put counter loses no increments (flock'd)."""
    context = multiprocessing.get_context("fork")
    repeats = 20
    workers = [context.Process(target=_put_many,
                               args=(str(tmp_path), i, repeats))
               for i in range(2)]
    for process in workers:
        process.start()
    for process in workers:
        process.join(30)
        assert process.exitcode == 0
    store = ResultStore(root=tmp_path, fingerprint="c" * 64)
    result = store.get(SPEC)
    assert result in ({"worker": 0}, {"worker": 1})
    # The entry file is intact JSON with the full envelope.
    payload = json.loads(store.path_for(SPEC).read_text())
    assert payload["result"]["kind"] == "raw"
    assert store.info()["counters"]["lifetime"]["puts"] == 2 * repeats
    # No orphaned temp files from the atomic-write dance.
    assert not list(store.generation_dir.glob("*.tmp"))


def test_code_fingerprint_stable_in_process():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


def test_fingerprint_covers_every_subpackage():
    """Regression guard for stale fingerprints: every subpackage of
    ``repro`` (including ones added after the store was written, like
    ``repro.service``) must contribute sources to the fingerprint."""
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    covered = {path.parent for path in fingerprint_sources()}
    subpackages = [directory for directory in package_dir.iterdir()
                   if directory.is_dir() and (directory / "__init__.py").is_file()]
    assert subpackages, "repro has subpackages"
    missing = [str(d) for d in subpackages if d not in covered]
    assert not missing, f"subpackages missing from code fingerprint: {missing}"
    # The service package specifically (the one this guard was born for).
    assert any(d.name == "service" for d in subpackages)


def test_fingerprint_tracks_new_subpackage_files(tmp_path):
    """Adding a file anywhere under the package tree changes the
    fingerprint — no hard-coded module list to forget to update."""
    package = tmp_path / "pkg"
    (package / "sub").mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "sub" / "__init__.py").write_text("x = 1\n")
    first = code_fingerprint(package)
    (package / "sub" / "new_module.py").write_text("y = 2\n")
    # Bypass the per-process memo by hashing a copy at a new path.
    import shutil

    clone = tmp_path / "pkg2"
    shutil.copytree(package, clone)
    assert code_fingerprint(clone) != first
