"""CFG builder: blocks, edge kinds, call/return structure, reachability."""

import pytest

from repro.isa import Instruction, Opcode, Program, ProgramBuilder, ireg
from repro.staticcheck import build_cfg

r = ireg


def _block_starts(cfg):
    return [b.start for b in cfg.blocks]


def _edges(cfg):
    out = set()
    for block in cfg.blocks:
        for succ, kind in block.succs:
            out.add((block.start, cfg.blocks[succ].start, kind))
    return out


class TestBlocks:
    def test_straight_line_is_one_block(self):
        b = ProgramBuilder()
        b.movi(r(1), 1)
        b.add(r(2), r(1), r(1))
        b.halt()
        cfg = build_cfg(b.build())
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].pcs() == range(0, 3)

    def test_branch_splits_blocks(self):
        b = ProgramBuilder()
        b.movi(r(1), 4)              # 0
        b.label("loop")
        b.sub(r(1), r(1), r(1))      # 1
        b.test(r(1), r(1))           # 2
        b.bne("loop")                # 3
        b.halt()                     # 4
        cfg = build_cfg(b.build())
        assert _block_starts(cfg) == [0, 1, 4]
        assert _edges(cfg) == {(0, 1, "fall"), (1, 1, "branch"),
                               (1, 4, "fall")}

    def test_every_pc_maps_to_its_block(self):
        b = ProgramBuilder()
        b.movi(r(1), 2)
        b.label("top")
        b.sub(r(1), r(1), r(1))
        b.test(r(1), r(1))
        b.bne("top")
        b.halt()
        cfg = build_cfg(b.build())
        for block in cfg.blocks:
            for pc in block.pcs():
                assert cfg.block_of(pc) is block


class TestLoops:
    def test_loop_with_multiple_back_edges(self):
        """Two conditional branches both target the same loop head."""
        b = ProgramBuilder()
        b.movi(r(1), 8)              # 0
        b.label("head")
        b.sub(r(1), r(1), r(1))      # 1
        b.test(r(1), r(1))           # 2
        b.beq("head")                # 3  back edge 1
        b.test(r(1), r(1))           # 4
        b.bne("head")                # 5  back edge 2
        b.halt()                     # 6
        cfg = build_cfg(b.build())
        head = cfg.block_of(1)
        back = [(src, kind) for src, kind in
                ((cfg.blocks[p].terminator_pc, kind)
                 for p in range(len(cfg.blocks))
                 for s, kind in cfg.blocks[p].succs if s == head.index)]
        assert (3, "branch") in back and (5, "branch") in back
        # The head has three predecessors: entry fall plus two back edges.
        assert len(head.preds) == 3


class TestCallRet:
    def test_ret_returns_to_every_call_site(self):
        b = ProgramBuilder()
        b.call("fn")                 # 0
        b.movi(r(1), 1)              # 1  return site A
        b.call("fn")                 # 2
        b.movi(r(2), 2)              # 3  return site B
        b.halt()                     # 4
        b.label("fn")
        b.add(r(3), r(3), r(3))      # 5
        b.ret()                      # 6
        cfg = build_cfg(b.build())
        assert cfg.entries == (5,)
        assert cfg.rets_of[5] == frozenset({6})
        ret_block = cfg.block_of(6)
        sites = {cfg.blocks[s].start for s, kind in ret_block.succs
                 if kind == "ret"}
        assert sites == {1, 3}

    def test_nested_call_is_stepped_over(self):
        b = ProgramBuilder()
        b.call("outer")              # 0
        b.halt()                     # 1
        b.label("outer")
        b.call("inner")              # 2
        b.ret()                      # 3   outer's ret, after inner returns
        b.label("inner")
        b.movi(r(1), 7)              # 4
        b.ret()                      # 5
        cfg = build_cfg(b.build())
        assert cfg.rets_of[2] == frozenset({3})
        assert cfg.rets_of[4] == frozenset({5})

    def test_recursion_is_handled(self):
        b = ProgramBuilder()
        b.call("rec")                # 0
        b.halt()                     # 1
        b.label("rec")
        b.test(r(1), r(1))           # 2
        b.beq("out")                 # 3
        b.call("rec")                # 4
        b.label("out")
        b.ret()                      # 5
        cfg = build_cfg(b.build())
        assert cfg.rets_of[2] == frozenset({5})
        ret_block = cfg.block_of(5)
        sites = {cfg.blocks[s].start for s, kind in ret_block.succs
                 if kind == "ret"}
        assert sites == {1, 5}

    def test_top_level_ret_detected(self):
        b = ProgramBuilder()
        b.movi(r(1), 1)              # 0
        b.ret()                      # 1: no call on any path
        cfg = build_cfg(b.build())
        assert cfg.top_level_rets() == [1]

    def test_balanced_ret_is_not_top_level(self):
        b = ProgramBuilder()
        b.call("fn")
        b.halt()
        b.label("fn")
        b.ret()
        cfg = build_cfg(b.build())
        assert cfg.top_level_rets() == []


class TestIndirect:
    def test_jr_targets_labels_but_not_call_entries(self):
        b = ProgramBuilder()
        b.jr(r(2))                   # 0
        b.label("case0")
        b.movi(r(1), 0)              # 1
        b.halt()                     # 2
        b.label("case1")
        b.movi(r(1), 1)              # 3
        b.halt()                     # 4
        b.label("fn")
        b.ret()                      # 5 (reached by call below, not jr)
        b.label("main2")
        b.call("fn")                 # 6
        b.halt()                     # 7
        cfg = build_cfg(b.build())
        jr_block = cfg.block_of(0)
        targets = {cfg.blocks[s].start for s, kind in jr_block.succs
                   if kind == "indirect"}
        assert 1 in targets and 3 in targets and 6 in targets
        assert 5 not in targets  # call entries are not jump-table targets


class TestDefects:
    def test_bad_target_recorded(self):
        prog = Program(instructions=(
            Instruction(Opcode.JMP, target=99),
            Instruction(Opcode.HALT),
        ))
        cfg = build_cfg(prog)
        assert cfg.bad_targets == [0]

    def test_fallthrough_off_end_recorded(self):
        prog = Program(instructions=(
            Instruction(Opcode.MOVI, dests=(r(1),), imm=3),
        ))
        cfg = build_cfg(prog)
        assert cfg.falls_off_end == [0]

    def test_unreachable_block(self):
        b = ProgramBuilder()
        b.jmp("end")                 # 0
        b.movi(r(1), 1)              # 1: unreachable
        b.label("end")
        b.halt()                     # 2
        cfg = build_cfg(b.build())
        reachable = cfg.reachable()
        assert cfg.block_of(1).index not in reachable
        assert cfg.block_of(0).index in reachable
        assert cfg.block_of(2).index in reachable


class TestKernels:
    @pytest.mark.parametrize("name", ["505.mcf_r", "502.gcc_r",
                                      "548.exchange2_r", "503.bwaves_r"])
    def test_kernel_cfgs_build(self, name):
        from repro.workloads import builder_for
        program = builder_for(name)(3)
        cfg = build_cfg(program)
        assert cfg.blocks
        # Every non-final block pc belongs to exactly one block.
        assert len(cfg.block_index) == len(program)
        # Edges are symmetric: succ lists match pred lists.
        for block in cfg.blocks:
            for succ, _kind in block.succs:
                assert block.index in cfg.blocks[succ].preds
