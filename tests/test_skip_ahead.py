"""Skip-ahead soundness: jumping the clock must be invisible in the stats.

``Core.run`` with ``skip_ahead`` enabled may advance the cycle counter
over provably quiescent windows instead of spinning through them.  The
contract is *bit-identity*: every ``SimStats`` field (cycles included),
the scheme's accounting, the rename unit's stall counter, and the final
architectural state must equal the spin loop's, on every workload shape
— including chaos-jittered machines whose latencies and flush patterns
are nothing like the golden-cove default.
"""

from dataclasses import replace

import pytest

from repro.frontend.emulator import canonical_state
from repro.pipeline import Core, DeadlockError, fast_test_config
from repro.validate.chaos import ChaosCore, ChaosSpec, _chaos_rng, chaos_config
from repro.workloads import ALL_BENCHMARKS, build_trace


def _run(config, trace, skip: bool):
    core = Core(replace(config, skip_ahead=skip), trace)
    stats = core.run()
    return core, stats


def _fingerprint(core, stats):
    return (
        stats.to_dict(),
        core.scheme.stats.to_dict(),
        core.state.rename_unit.stall_cycles,
        canonical_state(core.architectural_state()),
    )


def assert_skip_identical(config, trace):
    spin_core, spin_stats = _run(config, trace, skip=False)
    skip_core, skip_stats = _run(config, trace, skip=True)
    assert _fingerprint(skip_core, skip_stats) == \
        _fingerprint(spin_core, spin_stats)


@pytest.mark.parametrize("kernel", sorted(ALL_BENCHMARKS))
def test_skip_matches_spin_kernel_suite(kernel):
    trace = build_trace(kernel, 1500)
    assert_skip_identical(fast_test_config(rf_size=40, scheme="atr"), trace)


@pytest.mark.parametrize("scheme", ["baseline", "nonspec_er", "combined"])
def test_skip_matches_spin_schemes(scheme):
    trace = build_trace("505.mcf_r", 2000)
    assert_skip_identical(fast_test_config(rf_size=32, scheme=scheme), trace)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("kernel", ["505.mcf_r", "503.bwaves_r"])
def test_skip_matches_spin_chaos_machines(kernel, seed):
    """Jittered machine shapes *and* jittered timing faults.

    Chaos faults draw from the seeded RNG per instruction event, not per
    cycle, so the event sequence is clock-jump-invariant and identity
    must still hold.  (The sanitizer is detached: probes force the spin
    loop by design, which would make this test vacuous.)
    """
    spec = ChaosSpec(benchmark=kernel, scheme="atr", rf_size=40,
                     instructions=1500, seed=seed)
    config = replace(chaos_config(spec, _chaos_rng(spec)),
                     check_invariants=False)
    trace = build_trace(kernel, 1500)

    results = []
    for skip in (False, True):
        core = ChaosCore(replace(config, skip_ahead=skip), trace,
                         rng=_chaos_rng(spec), flip_prob=0.02, exec_jitter=3)
        stats = core.run()
        results.append(_fingerprint(core, stats))
    assert results[0] == results[1]


def test_probes_force_spin_loop():
    """An attached probe disables skip-ahead (observers see every cycle),
    and the probed run still matches the unprobed spin loop."""
    from repro.pipeline import RecordingProbe

    trace = build_trace("505.mcf_r", 1200)
    config = fast_test_config(rf_size=40, scheme="atr")

    _, spin_stats = _run(config, trace, skip=False)

    core = Core(replace(config, skip_ahead=True), trace)
    probe = core.add_probe(RecordingProbe())
    probed_stats = core.run()
    assert probed_stats.to_dict() == spin_stats.to_dict()
    assert probe.events  # the observer actually saw the run


def test_deadlock_raises_at_the_same_cycle():
    """The skip bound is clamped so max-cycle exhaustion fires at exactly
    the cycle the spin loop would report."""
    trace = build_trace("505.mcf_r", 1500)
    config = fast_test_config(rf_size=40, scheme="atr")
    cycles = []
    for skip in (False, True):
        core = Core(replace(config, skip_ahead=skip), trace)
        with pytest.raises(DeadlockError):
            core.run(max_cycles=60)
        cycles.append(core.state.cycle)
    assert cycles[0] == cycles[1]
