"""Precommit stage: advance the guaranteed-to-commit pointer.

An exception-causing instruction blocks precommit until it is
*guaranteed not to fault*: for loads/stores that is address translation
(at issue), for divides operand inspection (also at issue) — NOT data
return.  Precommit therefore runs far ahead of commit during a cache
miss (paper section 2.3).
"""

from __future__ import annotations

from . import Stage


class PrecommitStage(Stage):
    """Advance the precommit pointer, up to precommit width."""

    name = "precommit"

    def __init__(self, state):
        super().__init__(state)
        self.width = self.config.precommit_width
        self.rob = state.rob
        self.scheme = state.scheme

    def run(self, state, cycle: int) -> None:
        rob = self.rob
        scheme = self.scheme
        probes = state.probes
        controller = state.interrupt_controller
        advanced = 0
        while advanced < self.width:
            entry = rob.at_offset(rob.precommit_offset)
            if entry is None:
                break
            if entry.instr.may_except and not entry.issued:
                break
            if not entry.resolved:
                break
            entry.precommitted = True
            entry.cycle_precommit = cycle
            scheme.on_precommit(entry, cycle)
            if controller is not None:
                controller.on_precommit(entry)
            if probes is not None:
                for fn in probes.precommit:
                    fn(entry, cycle)
            rob.precommit_offset += 1
            advanced += 1
