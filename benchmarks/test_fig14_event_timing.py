"""Figure 14: rename -> redefine/consume/commit distances in atomic regions."""

from repro.experiments import fig14

from conftest import emit


def test_fig14_event_timing(benchmark, int_suite, fp_suite, instructions):
    result = benchmark.pedantic(
        fig14.run,
        kwargs=dict(benchmarks=int_suite + fp_suite, instructions=instructions),
        rounds=1, iterations=1,
    )
    emit(result)
    populated = [t for t in result.timings.values() if t.chains]
    assert populated
    # Paper: redefinition (at rename) happens well before the last
    # consumption (data-dependent), which precedes the redefiner's commit.
    for timing in populated:
        assert timing.rename_to_redefine <= timing.rename_to_consume + 1e-9
        assert timing.rename_to_consume <= timing.rename_to_commit + 1e-9
