"""Functional frontend: golden-model emulator, trace capture, wrong path."""

from .emulator import (
    ArchState,
    EmulationError,
    Emulator,
    canonical_memory,
    canonical_state,
    final_state,
    run_program,
)
from .trace import (
    DynamicInstruction,
    Trace,
    read_trace,
    read_trace_jsonl,
    trace_from_bytes,
    trace_to_bytes,
    write_trace,
    write_trace_jsonl,
)
from .wrongpath import WrongPathSupplier

__all__ = [
    "Emulator", "ArchState", "EmulationError", "run_program", "final_state",
    "canonical_memory", "canonical_state",
    "DynamicInstruction", "Trace", "read_trace", "write_trace",
    "read_trace_jsonl", "write_trace_jsonl", "trace_to_bytes", "trace_from_bytes",
    "WrongPathSupplier",
]
