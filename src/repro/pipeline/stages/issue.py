"""Issue stage: oldest-ready selection per port group.

The port-group dispatch plan — ``(group heap, port width, is-load)``
triples — is precomputed at construction, so the per-cycle loop touches
no dicts and allocates nothing but the deferred-loads scratch list.
"""

from __future__ import annotations

import heapq

from ...isa import OpClass, Opcode
from ..rob import ROBEntry
from ..state import WORD
from . import Stage

#: Op class -> issue port group (static ISA property).
PORT_GROUPS = {
    OpClass.INT_ALU: "alu", OpClass.INT_MUL: "alu", OpClass.INT_DIV: "alu",
    OpClass.BRANCH: "alu", OpClass.JUMP: "alu", OpClass.JUMP_INDIRECT: "alu",
    OpClass.CALL: "alu", OpClass.RETURN: "alu",
    OpClass.VEC_ALU: "alu", OpClass.VEC_MUL: "alu", OpClass.VEC_DIV: "alu",
    OpClass.NOP: "alu", OpClass.HALT: "alu",
    OpClass.LOAD: "load", OpClass.VEC_LOAD: "load",
    OpClass.STORE: "store", OpClass.VEC_STORE: "store",
}


def enqueue_ready(state, entry: ROBEntry) -> None:
    """Push a fully source-ready entry onto its port group's ready heap."""
    heapq.heappush(state.ready[PORT_GROUPS[entry.instr.op_class]],
                   (entry.seq, entry))


class IssueStage(Stage):
    """Select and launch oldest-ready instructions, one heap per group."""

    name = "issue"

    def __init__(self, state, execute_unit):
        super().__init__(state)
        self.unit = execute_unit
        config = self.config
        ready = state.ready
        # Precomputed dispatch plan; heaps are identity-stable on state.
        self.port_plan = (
            (ready["alu"], config.alu_ports, False),
            (ready["load"], config.load_ports, True),
            (ready["store"], config.store_ports, False),
        )
        self.scheme = state.scheme
        self.completions = state.completions
        self.stores = state.stores
        self.store_words = state.store_words

    def run(self, state, cycle: int) -> None:
        pop = heapq.heappop
        push = heapq.heappush
        for heap, width, is_load in self.port_plan:
            deferred = []
            issued = 0
            while heap and issued < width:
                seq, entry = pop(heap)
                if entry.squashed or entry.issued:
                    continue
                if is_load and self._load_blocked_by_store(entry):
                    deferred.append((seq, entry))
                    continue
                self._launch(state, entry, cycle)
                issued += 1
            for item in deferred:
                push(heap, item)

    def _load_blocked_by_store(self, entry: ROBEntry) -> bool:
        """True if an older, not-yet-issued store writes a word this load
        reads (the only ordering a perfectly-predicted machine enforces)."""
        addr = entry.dyn.mem_addr
        if addr is None:
            return False
        words = 4 if entry.instr.opcode is Opcode.VLD else 1
        store_words = self.store_words
        stores = self.stores
        seq = entry.seq
        for i in range(words):
            for store_seq in store_words.get(addr + i * WORD, ()):
                if store_seq < seq and not stores[store_seq].issued:
                    return True
        return False

    def _launch(self, state, entry: ROBEntry, cycle: int) -> None:
        entry.issued = True
        entry.cycle_issue = cycle
        state.rs_used -= 1
        # Probes first: the sanitizer's use-after-release / underflow
        # checks must observe the consumer counts before the scheme's
        # issue hook decrements them.
        probes = state.probes
        if probes is not None:
            for fn in probes.issue:
                fn(entry, cycle)
        self.scheme.on_issue(entry, cycle)
        done = cycle + self.unit.dispatch(entry, cycle)
        pending = self.completions.get(done)
        if pending is None:
            self.completions[done] = [entry]
        else:
            pending.append(entry)
