"""Direction predictors: bimodal, gshare, TAGE, loop predictor."""

import pytest

from repro.branch import (
    AlwaysNotTaken,
    AlwaysTaken,
    Bimodal,
    GShare,
    LoopPredictor,
    Tage,
)


class TestStatic:
    def test_always_taken(self):
        p = AlwaysTaken()
        assert p.predict(0x40) is True
        p.update(0x40, False)
        assert p.predict(0x40) is True

    def test_always_not_taken(self):
        p = AlwaysNotTaken()
        assert p.predict(0x40) is False


class TestBimodal:
    def test_learns_biased_branch(self):
        p = Bimodal(entries=64)
        for _ in range(4):
            p.update(5, True)
        assert p.predict(5) is True

    def test_learns_not_taken(self):
        p = Bimodal(entries=64)
        for _ in range(4):
            p.update(5, False)
        assert p.predict(5) is False

    def test_hysteresis(self):
        """One stray outcome must not flip a saturated counter."""
        p = Bimodal(entries=64)
        for _ in range(4):
            p.update(7, True)
        p.update(7, False)
        assert p.predict(7) is True

    def test_confidence_saturated(self):
        p = Bimodal(entries=64)
        for _ in range(4):
            p.update(9, True)
        assert p.confidence(9)

    def test_confidence_weak(self):
        p = Bimodal(entries=64)
        assert not p.confidence(9)  # counters start weak

    def test_aliasing_by_design(self):
        p = Bimodal(entries=16)
        for _ in range(4):
            p.update(0, True)
        assert p.predict(16) is True  # same slot

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Bimodal(entries=100)


class TestGShare:
    def test_learns_alternating_with_history(self):
        """T/NT alternation is unlearnable by bimodal but trivial for a
        history-indexed predictor."""
        p = GShare(entries=1024, history_bits=8)
        outcome = True
        for _ in range(200):
            p.update(0x33, outcome)
            outcome = not outcome
        hits = 0
        for _ in range(50):
            if p.predict(0x33) == outcome:
                hits += 1
            p.update(0x33, outcome)
            outcome = not outcome
        assert hits >= 45

    def test_history_advances(self):
        p = GShare()
        before = p.history
        p.update(0, True)
        assert p.history != before


class TestTage:
    def _train(self, p, pattern, pc=0x100, reps=60):
        for _ in range(reps):
            for outcome in pattern:
                p.predict(pc)
                p.update(pc, outcome)

    def test_learns_bias(self):
        p = Tage()
        self._train(p, [True], reps=30)
        assert p.predict(0x100) is True

    def test_learns_short_pattern(self):
        p = Tage()
        pattern = [True, True, False]
        self._train(p, pattern, reps=80)
        hits = 0
        for i in range(30):
            outcome = pattern[i % 3]
            if p.predict(0x100) == outcome:
                hits += 1
            p.update(0x100, outcome)
        assert hits >= 26

    def test_update_without_predict_is_safe(self):
        p = Tage()
        p.update(0x500, True)  # must not raise

    def test_distinct_pcs_independent(self):
        p = Tage(with_loop_predictor=False)
        self._train(p, [True], pc=0x10, reps=30)
        self._train(p, [False], pc=0x20, reps=30)
        assert p.predict(0x10) is True
        assert p.predict(0x20) is False


class TestLoopPredictor:
    def test_learns_fixed_trip_count(self):
        p = LoopPredictor()
        # 5 taken + 1 not-taken, repeatedly
        for _ in range(6):
            for i in range(6):
                p.update(0x40, i < 5)
        # mid-loop: predict taken; at the 6th: predict exit
        for i in range(6):
            prediction = p.predict(0x40)
            assert prediction == (i < 5)
            p.update(0x40, i < 5)

    def test_unconfident_returns_none(self):
        p = LoopPredictor()
        p.update(0x40, True)
        assert p.predict(0x40) is None

    def test_changing_trip_count_resets(self):
        p = LoopPredictor()
        for trip in (3, 5, 4):
            for i in range(trip + 1):
                p.update(0x40, i < trip)
        assert p.predict(0x40) is None
