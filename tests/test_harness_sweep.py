"""Sweep layer + CLI: dedup, store integration, parallel determinism."""

import pytest

from repro.cli import main
from repro.experiments import fig06, fig10
from repro.experiments.runner import clear_result_cache
from repro.harness import (
    CellFailure,
    CellSpec,
    ResultStore,
    SweepError,
    sweep,
)

INT2 = ["505.mcf_r", "531.deepsjeng_r"]
FP2 = ["503.bwaves_r", "508.namd_r"]


class TestSweep:
    def test_deduplicates_specs(self):
        calls = []

        def executor(spec):
            calls.append(spec)
            return spec.benchmark

        spec = CellSpec("a", 64, "atr", 100)
        report = sweep([spec, spec, spec], jobs=1, store=None, executor=executor)
        assert len(calls) == 1
        assert report.results[spec] == "a"
        assert report.progress.total == 1

    def test_warm_cells_skip_execution(self, tmp_path):
        store = ResultStore(root=tmp_path)
        specs = [CellSpec(name, 64, "atr", 100) for name in ("a", "b")]
        executed = []

        def executor(spec):
            executed.append(spec.benchmark)
            return {"benchmark": spec.benchmark}

        first = sweep(specs, jobs=1, store=store, executor=executor)
        assert sorted(executed) == ["a", "b"] and first.hits == 0

        executed.clear()
        second = sweep(specs, jobs=1, store=store, executor=executor)
        assert executed == []
        assert second.hits == 2
        assert second.results[specs[0]] == {"benchmark": "a"}

    def test_require_complete_raises_sweep_error(self):
        def executor(spec):
            raise RuntimeError("boom")

        report = sweep([CellSpec("a", 64, "atr", 100)], jobs=1, store=None,
                       retries=0, executor=executor)
        with pytest.raises(SweepError, match="boom"):
            report.require_complete()


class TestDeterminism:
    def test_parallel_and_serial_figures_agree_exactly(self, tmp_path, monkeypatch):
        """The acceptance property: worker processes change wall time,
        never figure numbers — compared against fresh, separate stores."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        clear_result_cache()
        parallel = fig10.run(int_benchmarks=INT2, fp_benchmarks=FP2,
                             sizes=(64,), instructions=800, jobs=2)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        clear_result_cache()
        serial = fig10.run(int_benchmarks=INT2, fp_benchmarks=FP2,
                           sizes=(64,), instructions=800, jobs=1)

        assert parallel.speedups == serial.speedups  # bit-exact, not approx
        assert parallel.render() == serial.render()
        clear_result_cache()

    def test_region_figures_agree_exactly(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        clear_result_cache()
        parallel = fig06.run(int_benchmarks=INT2, fp_benchmarks=FP2,
                             instructions=800, jobs=2)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        clear_result_cache()
        serial = fig06.run(int_benchmarks=INT2, fp_benchmarks=FP2,
                           instructions=800, jobs=1)

        assert parallel.ratios == serial.ratios
        clear_result_cache()


class TestCli:
    def test_figure_with_jobs(self, capsys):
        assert main(["figure", "fig06", "--quick", "-n", "800",
                     "--jobs", "2"]) == 0
        assert "atomic" in capsys.readouterr().out

    def test_figure_all_reports_failures(self, capsys, monkeypatch):
        import repro.experiments as experiments

        class _Ok:
            @staticmethod
            def run(jobs=None, instructions=None):
                class Result:
                    def render(self):
                        return "ok-figure"
                return Result()

        class _Failing:
            @staticmethod
            def run(jobs=None, instructions=None):
                raise SweepError([CellFailure(
                    CellSpec("x", 64, "atr", 100), "injected", 2)])

        monkeypatch.setattr(experiments, "ALL_FIGURES",
                            {"figok": _Ok, "figbad": _Failing})
        assert main(["figure", "all"]) == 1
        captured = capsys.readouterr()
        assert "ok-figure" in captured.out
        assert "FAILED figures: figbad" in captured.err

    def test_figure_all_success_exit_zero(self, capsys, monkeypatch):
        import repro.experiments as experiments

        class _Ok:
            @staticmethod
            def run(jobs=None, instructions=None):
                class Result:
                    def render(self):
                        return "ok-figure"
                return Result()

        monkeypatch.setattr(experiments, "ALL_FIGURES", {"figok": _Ok})
        assert main(["figure", "all"]) == 0

    def test_sweep_command(self, capsys):
        assert main(["sweep", "-b", "mcf", "-r", "64", "-s", "baseline,atr",
                     "-n", "800", "-j", "2"]) == 0
        out = capsys.readouterr().out
        assert "505.mcf_r" in out and "baseline" in out

    def test_cache_info_and_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "-b", "mcf", "-r", "64", "-s", "baseline",
                     "-n", "800", "-j", "1"]) == 0
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        assert "entries:          1" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "info"]) == 0
        assert "entries:          0" in capsys.readouterr().out
