"""Figure 4: cycle-count distribution across the register lifecycle.

Shares of register-allocated cycles spent in-use / unused /
verified-unused, on the baseline machine: the gap between *unused* (what
oracle speculative release could reclaim) and *verified-unused* (what
precommit-ordered release reclaims) is ATR's opportunity.  The paper
reports the scalar file for SPECint and the vector file for SPECfp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..analysis import LifetimeShares, lifetime_shares
from ..isa import RegClass
from . import expectations
from .report import compare_line, format_table, shorten
from .runner import (
    cell_spec,
    default_fp_suite,
    default_instructions,
    default_int_suite,
    prime_cells,
    run_cell,
)


@dataclass
class Fig04Result:
    per_benchmark: Dict[str, LifetimeShares]
    int_total: LifetimeShares
    fp_total: LifetimeShares

    def render(self) -> str:
        rows = [
            [shorten(b), s.in_use, s.unused, s.verified_unused]
            for b, s in self.per_benchmark.items()
        ]
        rows.append(["INT (scalar file)", self.int_total.in_use,
                     self.int_total.unused, self.int_total.verified_unused])
        rows.append(["FP (vector file)", self.fp_total.in_use,
                     self.fp_total.unused, self.fp_total.verified_unused])
        table = format_table(
            ["benchmark", "in-use", "unused", "verified-unused"], rows,
            title="Figure 4: register lifecycle shares (baseline)")
        paper_int = expectations.FIG04_INT
        paper_fp = expectations.FIG04_FP
        lines = [
            table, "",
            compare_line("int in-use share", self.int_total.in_use, paper_int["in_use"]),
            compare_line("int unused share", self.int_total.unused, paper_int["unused"]),
            compare_line("int verified-unused share",
                         self.int_total.verified_unused, paper_int["verified_unused"]),
            compare_line("fp (vector) in-use share", self.fp_total.in_use, paper_fp["in_use"]),
            compare_line("fp (vector) unused share", self.fp_total.unused, paper_fp["unused"]),
            compare_line("fp (vector) verified-unused share",
                         self.fp_total.verified_unused, paper_fp["verified_unused"]),
        ]
        return "\n".join(lines)


def run(
    int_benchmarks: Optional[Sequence[str]] = None,
    fp_benchmarks: Optional[Sequence[str]] = None,
    rf_size: int = 280,
    instructions: Optional[int] = None,
    jobs: Optional[int] = None,
) -> Fig04Result:
    int_benchmarks = list(default_int_suite() if int_benchmarks is None else int_benchmarks)
    fp_benchmarks = list(default_fp_suite() if fp_benchmarks is None else fp_benchmarks)
    instructions = instructions or default_instructions()
    if jobs is not None:
        prime_cells(
            [cell_spec(b, rf_size, "baseline", instructions,
                       record_register_events=True)
             for b in int_benchmarks + fp_benchmarks],
            jobs=jobs,
        )
    per_benchmark: Dict[str, LifetimeShares] = {}
    int_records = []
    fp_records = []
    for benchmark in int_benchmarks:
        cell = run_cell(benchmark, rf_size, "baseline", instructions,
                        record_register_events=True)
        per_benchmark[benchmark] = lifetime_shares(cell.event_records, RegClass.INT)
        int_records.extend(cell.event_records)
    for benchmark in fp_benchmarks:
        cell = run_cell(benchmark, rf_size, "baseline", instructions,
                        record_register_events=True)
        per_benchmark[benchmark] = lifetime_shares(cell.event_records, RegClass.VEC)
        fp_records.extend(cell.event_records)
    return Fig04Result(
        per_benchmark=per_benchmark,
        int_total=lifetime_shares(int_records, RegClass.INT),
        fp_total=lifetime_shares(fp_records, RegClass.VEC),
    )
