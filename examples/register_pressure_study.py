#!/usr/bin/env python
"""Register-pressure study (the paper's Figures 1 and 11 in miniature).

Sweeps the physical register file from 64 to 280 entries for a few
benchmarks and shows (a) how baseline IPC recovers with more registers
and (b) how much of the gap ATR closes at each size.

Run:  python examples/register_pressure_study.py [benchmark ...]
"""

import sys

from repro.experiments import run_cell, speedup
from repro.workloads import resolve

SIZES = (64, 96, 128, 192, 280)
INSTRUCTIONS = 6_000


def study(benchmark: str) -> None:
    benchmark = resolve(benchmark)
    print(f"\n=== {benchmark} ===")
    print(f"{'RF size':>8} {'baseline IPC':>13} {'ATR IPC':>9} {'ATR gain':>9}")
    for size in SIZES:
        base = run_cell(benchmark, size, "baseline", INSTRUCTIONS)
        atr = run_cell(benchmark, size, "atr", INSTRUCTIONS)
        gain = speedup(atr.ipc, base.ipc)
        print(f"{size:>8} {base.ipc:>13.3f} {atr.ipc:>9.3f} {gain:>+8.2%}")


def main() -> None:
    benchmarks = sys.argv[1:] or ["deepsjeng", "bwaves", "namd"]
    for benchmark in benchmarks:
        study(benchmark)
    print("\nExpected shape (paper Fig. 11): the ATR gain is largest at 64")
    print("registers and fades as the register file stops being the")
    print("bottleneck.")


if __name__ == "__main__":
    main()
