"""Figure 12: consumer count distribution per atomic region.

Most workloads' atomic regions have 1-2 consumers on average (namd is the
outlier with up to ~5), which is why the 3-bit consumer counter loses
essentially nothing against an infinite counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from . import expectations
from .report import format_table, shorten
from .runner import (
    RegionSpec,
    default_fp_suite,
    default_instructions,
    default_int_suite,
    prime_regions,
    region_report,
)


@dataclass
class Fig12Result:
    #: benchmark -> consumer-count histogram over atomic regions
    histograms: Dict[str, Dict[int, int]]
    means: Dict[str, float]

    def render(self) -> str:
        max_bucket = 6
        headers = ["benchmark"] + [str(i) for i in range(max_bucket)] + ["6+", "mean"]
        rows = []
        for benchmark, histogram in self.histograms.items():
            total = sum(histogram.values()) or 1
            buckets = [histogram.get(i, 0) / total for i in range(max_bucket)]
            overflow = sum(v for k, v in histogram.items() if k >= max_bucket) / total
            rows.append([shorten(benchmark)] + [f"{b:.2f}" for b in buckets]
                        + [f"{overflow:.2f}", f"{self.means[benchmark]:.2f}"])
        table = format_table(headers, rows,
                             title="Figure 12: consumers per atomic region "
                                   "(fraction of regions)")
        lo, hi = expectations.FIG12_TYPICAL_MEAN_CONSUMERS
        typical = [m for b, m in self.means.items() if "namd" not in b]
        lines = [
            table, "",
            f"typical mean consumers: {min(typical):.2f}..{max(typical):.2f} "
            f"(paper: most workloads average 1-2, within {lo}..{hi})",
        ]
        if any("namd" in b for b in self.means):
            namd = next(m for b, m in self.means.items() if "namd" in b)
            lines.append(f"namd mean consumers: {namd:.2f} "
                         f"(paper: the outlier, regions with up to "
                         f"{expectations.FIG12_NAMD_MAX} consumers)")
        return "\n".join(lines)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    jobs: Optional[int] = None,
) -> Fig12Result:
    if benchmarks is None:
        benchmarks = list(default_int_suite()) + list(default_fp_suite())
    instructions = instructions or default_instructions()
    if jobs is not None:
        prime_regions([RegionSpec(b, instructions) for b in benchmarks],
                      jobs=jobs)
    histograms: Dict[str, Dict[int, int]] = {}
    means: Dict[str, float] = {}
    for benchmark in benchmarks:
        report = region_report(benchmark, instructions)
        histograms[benchmark] = report.consumer_histogram()
        means[benchmark] = report.mean_consumers()
    return Fig12Result(histograms=histograms, means=means)
