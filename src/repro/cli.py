"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate one benchmark under one configuration and print the
  stats (IPC, stalls, release breakdown).
* ``compare`` — all four schemes side by side on one benchmark.
* ``figure`` — regenerate one of the paper's figures (fig01..fig15,
  sec44), or ``all`` of them; ``--jobs N`` shards the sweep over worker
  processes and the persistent result store makes re-runs warm.
* ``sweep`` — run an explicit benchmark x rf-size x scheme grid through
  the parallel harness and print the IPC table.
* ``validate`` — seeded fault-injection campaign: every cell runs with
  the online invariant sanitizer attached and is differentially verified
  against the golden emulator; exits non-zero on any violation.
* ``cache`` — inspect (``info``), empty (``clear``), or garbage-collect
  (``gc --max-bytes|--max-age``) the persistent result store
  (``~/.cache/repro`` or ``$REPRO_CACHE_DIR``).
* ``serve`` — run the sweep service: durable job queue + socket API +
  local worker pool; clients and remote workers connect to it.
* ``submit`` / ``status`` / ``watch`` / ``cancel`` — async sweep-job
  clients against a running service (``--addr`` or
  ``$REPRO_SERVICE_ADDR``).
* ``work`` — join this host's cores to a remote coordinator
  (multi-host sharding; results travel back over the socket).
* ``analyze`` — trace-level atomic-region analysis of a benchmark;
  ``analyze static [BENCH...]`` prints the static memory-dependence /
  ATR-opportunity table (regions, alias verdicts, forwardable loads,
  static release bound vs. dynamically realized early releases) in
  text or ``--format json``.
* ``lint`` — static analysis of kernel programs: CFG/dataflow/memory
  findings with stable rule IDs, plus (``--oracle``) the
  dynamic-vs-static ATR soundness cross-check; exits non-zero on any
  unsuppressed finding.  ``--format json`` emits machine-readable
  findings; ``--no-warn-unused-ignore`` silences the stale-suppression
  meta-finding.
* ``list`` — introspect the registries: ``repro list
  [workloads|schemes|predictors|configs|figures|lints|all]`` (plugin
  entries included; workloads list every addressable input variant).
* ``disasm`` — disassemble a benchmark's kernel program.

Every ``choices=`` list below is derived from the corresponding registry
(``SCHEMES``, ``CORE_CONFIGS``, …) — never hand-written — so registering
a new entry (in-tree or via ``REPRO_PLUGINS``) can't silently miss the
CLI layer; ``tests/test_registry.py`` asserts the derivation.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

#: ``repro list`` categories (the registry kinds it can introspect).
LIST_CATEGORIES = ("workloads", "schemes", "predictors", "configs",
                   "figures", "lints", "all")


def _scheme_names() -> tuple:
    from .registry import load_plugins
    from .rename.schemes import SCHEMES

    load_plugins()  # plugin schemes become valid ``choices=`` too
    return SCHEMES.names()


def _config_names() -> tuple:
    from .pipeline.config import CORE_CONFIGS
    from .registry import load_plugins

    load_plugins()
    return CORE_CONFIGS.names()


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("benchmark", help="suite name, e.g. mcf or 505.mcf_r")
    parser.add_argument("-n", "--instructions", type=int, default=10_000,
                        help="dynamic trace length (default 10000)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ATR (MICRO 2025) reproduction: simulate, analyze, "
                    "and regenerate the paper's figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scheme_names = list(_scheme_names())
    all_schemes_csv = ",".join(scheme_names)

    run = sub.add_parser("run", help="simulate one benchmark")
    _add_common(run)
    run.add_argument("-s", "--scheme", default="atr", choices=scheme_names)
    run.add_argument("-r", "--rf-size", type=int, default=None,
                     help="register file size (default 64, or the "
                          "--config preset's size)")
    run.add_argument("-c", "--config", default=None,
                     choices=list(_config_names()),
                     help="named machine preset (repro list configs); "
                          "-s/-r/-d still override on top of it")
    run.add_argument("-d", "--redefine-delay", type=int, default=0)
    run.add_argument("--tier", default="detailed",
                     choices=["detailed", "tiered"],
                     help="simulation tier: full-trace detailed (default) "
                          "or fast-forward + SimPoint-weighted windows")
    run.add_argument("--interval", type=_positive_int, default=2_000,
                     help="SimPoint interval for --tier tiered "
                          "(default 2000)")
    run.add_argument("--windows", type=_positive_int, default=6,
                     help="max detailed windows for --tier tiered "
                          "(default 6)")

    compare = sub.add_parser("compare", help="all four schemes side by side")
    _add_common(compare)
    compare.add_argument("-r", "--rf-size", type=int, default=64)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", help="fig01|fig04|fig06|fig10|fig11|fig12|"
                                     "fig13|fig14|fig15|sec44|all")
    figure.add_argument("-n", "--instructions", type=int, default=None)
    figure.add_argument("--quick", action="store_true",
                        help="2 int + 2 fp benchmarks only")
    figure.add_argument("-j", "--jobs", type=_positive_int, default=None,
                        help="worker processes for the sweep "
                             "(default: all cores)")
    figure.add_argument("-v", "--verbose", action="store_true",
                        help="per-cell progress lines on stderr")
    figure.add_argument("--remote", nargs="?", const="", default=None,
                        metavar="HOST:PORT",
                        help="resolve cold cells through a running "
                             "`repro serve` (default $REPRO_SERVICE_ADDR "
                             "or 127.0.0.1:7341); falls back to local "
                             "execution when no service answers")

    swp = sub.add_parser("sweep", help="run a benchmark x rf x scheme grid "
                                       "through the parallel harness")
    swp.add_argument("-b", "--benchmarks", default="mcf,deepsjeng,bwaves,namd",
                     help="comma-separated suite names")
    swp.add_argument("-r", "--rf-sizes", default="64",
                     help="comma-separated register file sizes")
    swp.add_argument("-s", "--schemes", default=all_schemes_csv,
                     help="comma-separated release schemes "
                          "(default: every registered scheme)")
    swp.add_argument("-n", "--instructions", type=int, default=None)
    swp.add_argument("-d", "--redefine-delay", type=int, default=0)
    swp.add_argument("-j", "--jobs", type=_positive_int, default=None,
                     help="worker processes (default: all cores)")
    swp.add_argument("-v", "--verbose", action="store_true",
                     help="per-cell progress lines on stderr")

    val = sub.add_parser(
        "validate",
        help="seeded fault-injection campaign with the invariant sanitizer")
    val.add_argument("-b", "--benchmarks", default="mcf,deepsjeng,bwaves,namd",
                     help="comma-separated suite names")
    val.add_argument("-s", "--schemes", default=all_schemes_csv,
                     help="comma-separated release schemes "
                          "(default: every registered scheme)")
    val.add_argument("-r", "--rf-sizes", default="28,40",
                     help="comma-separated register file sizes")
    val.add_argument("--seeds", type=_positive_int, default=4,
                     help="chaos seeds per cell (default 4)")
    val.add_argument("-n", "--instructions", type=int, default=3000,
                     help="dynamic trace length per cell (default 3000)")
    val.add_argument("-i", "--intensity", default="medium",
                     choices=["low", "medium", "high"],
                     help="fault-injection intensity (default medium)")
    val.add_argument("-d", "--redefine-delay", type=int, default=0)
    val.add_argument("--quick", action="store_true",
                     help="small smoke campaign: 2 benchmarks, 1 rf size, "
                          "2 seeds, 1500 instructions (with --service: "
                          "6 seeded fault schedules)")
    val.add_argument("-j", "--jobs", type=_positive_int, default=None,
                     help="worker processes (default: all cores)")
    val.add_argument("-v", "--verbose", action="store_true",
                     help="per-cell progress lines on stderr")
    val.add_argument("--service", action="store_true",
                     help="service-chaos campaign instead: seeded fault "
                          "schedules (transport/queue-fs/worker-crash/"
                          "coordinator-restart) against a live sweep "
                          "service, asserting exactly-once execution")
    val.add_argument("--schedules", type=_positive_int, default=50,
                     help="--service: seeded fault schedules (default 50)")
    val.add_argument("--fault-seed", type=int, default=0,
                     help="--service: base seed for the schedule grid "
                          "(default 0)")

    bench = sub.add_parser(
        "bench", help="benchmark the simulator's own throughput")
    bench.add_argument("target", choices=["core"],
                       help="what to benchmark (core: the cycle pipeline)")
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke: short traces, single repeat")
    bench.add_argument("-n", "--instructions", type=int, default=None)
    bench.add_argument("-r", "--rf-size", type=int, default=128)
    bench.add_argument("--repeats", type=_positive_int, default=None,
                       help="timed repeats per cell, best taken (default 3)")
    bench.add_argument("-o", "--output", default="BENCH_core.json",
                       help="result JSON path ('' to skip writing)")
    bench.add_argument("--history", default="BENCH_history.json",
                       help="trajectory JSON appended to on each run "
                            "('' to skip)")
    bench.add_argument("--profile", action="store_true",
                       help="re-run each cell under cProfile and print the "
                            "top-25 cumulative hotspots")
    bench.add_argument("--ab", action="store_true",
                       help="interleaved A/B regression gate: spin-loop vs "
                            "skip-ahead vs tiered; non-zero exit on "
                            "regression")
    bench.add_argument("-v", "--verbose", action="store_true")

    cache = sub.add_parser("cache", help="manage the persistent result store")
    cache.add_argument("action", choices=["info", "clear", "gc"])
    cache.add_argument("--max-bytes", type=int, default=None,
                       help="gc: evict least-recently-used entries (stale "
                            "generations first) until the cache fits")
    cache.add_argument("--max-age", type=float, default=None,
                       help="gc: evict entries not read/written for this "
                            "many seconds")

    serve = sub.add_parser(
        "serve", help="run the sweep service (job queue + worker pool)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1; 0.0.0.0 to "
                            "accept remote workers/clients)")
    serve.add_argument("-p", "--port", type=int, default=7341,
                       help="TCP port (default 7341; 0 picks a free port)")
    serve.add_argument("-w", "--workers", type=int, default=None,
                       help="local worker processes (default: all cores; "
                            "0 = coordinator only)")
    serve.add_argument("--lease", type=float, default=None,
                       help="cell lease seconds before crash-requeue "
                            "(default 600, or $REPRO_CELL_TIMEOUT)")
    serve.add_argument("--token", default=None,
                       help="shared-secret auth token required on every "
                            "op (default $REPRO_SERVICE_TOKEN; strongly "
                            "recommended for non-loopback binds)")

    submit = sub.add_parser(
        "submit", help="submit an async sweep job to a running service")
    submit.add_argument("-b", "--benchmarks",
                        default="mcf,deepsjeng,bwaves,namd",
                        help="comma-separated suite names")
    submit.add_argument("-r", "--rf-sizes", default="64",
                        help="comma-separated register file sizes")
    submit.add_argument("-s", "--schemes", default=all_schemes_csv,
                        help="comma-separated release schemes "
                             "(default: every registered scheme)")
    submit.add_argument("-n", "--instructions", type=int, default=None)
    submit.add_argument("-d", "--redefine-delay", type=int, default=0)
    submit.add_argument("--quick", action="store_true",
                        help="2 int + 2 fp benchmarks, 1 rf size")
    submit.add_argument("--priority", type=int, default=0,
                        help="queue priority (higher runs first)")
    submit.add_argument("--label", default="cli",
                        help="job label shown in status listings")
    submit.add_argument("--watch", action="store_true",
                        help="stream progress until the job finishes")
    submit.add_argument("--addr", default=None, metavar="HOST:PORT",
                        help="service address (default $REPRO_SERVICE_ADDR "
                             "or 127.0.0.1:7341)")
    submit.add_argument("--token", default=None,
                    help="service auth token "
                         "(default $REPRO_SERVICE_TOKEN)")

    status = sub.add_parser("status", help="job/queue status of a service")
    status.add_argument("job", nargs="?", default=None,
                        help="job id (omit for the queue overview)")
    status.add_argument("--addr", default=None, metavar="HOST:PORT")
    status.add_argument("--token", default=None,
                    help="service auth token "
                         "(default $REPRO_SERVICE_TOKEN)")

    watch = sub.add_parser("watch", help="stream a job's progress")
    watch.add_argument("job", help="job id (from `repro submit`)")
    watch.add_argument("--addr", default=None, metavar="HOST:PORT")
    watch.add_argument("--token", default=None,
                     help="service auth token "
                          "(default $REPRO_SERVICE_TOKEN)")

    cancel = sub.add_parser("cancel", help="cancel a queued job")
    cancel.add_argument("job", help="job id")
    cancel.add_argument("--addr", default=None, metavar="HOST:PORT")
    cancel.add_argument("--token", default=None,
                    help="service auth token "
                         "(default $REPRO_SERVICE_TOKEN)")

    work = sub.add_parser(
        "work", help="run worker processes against a remote coordinator")
    work.add_argument("--addr", default=None, metavar="HOST:PORT",
                      help="coordinator address (default "
                           "$REPRO_SERVICE_ADDR or 127.0.0.1:7341)")
    work.add_argument("-w", "--workers", type=int, default=None,
                      help="worker processes (default: all cores)")
    work.add_argument("--token", default=None,
                  help="service auth token "
                       "(default $REPRO_SERVICE_TOKEN)")

    analyze = sub.add_parser(
        "analyze",
        help="atomic-region analysis; `analyze static [BENCH...]` prints "
             "the static memory-dependence / ATR-opportunity table")
    analyze.add_argument(
        "benchmark", nargs="+",
        help="suite name (e.g. mcf), or `static` followed by benchmark "
             "names (none = the whole suite)")
    analyze.add_argument("-n", "--instructions", type=int, default=10_000,
                         help="dynamic trace length (default 10000)")
    analyze.add_argument("--format", choices=("text", "json"),
                         default="text", dest="fmt",
                         help="output format of the static table "
                              "(default text)")

    lint = sub.add_parser(
        "lint",
        help="static analysis of kernel programs (CFG/dataflow/memory "
             "lints, optional dynamic-vs-static ATR soundness oracle)")
    lint.add_argument("benchmarks", nargs="*",
                      help="suite names to lint (e.g. mcf 505.mcf_r)")
    lint.add_argument("--all", action="store_true",
                      help="lint every benchmark in the suite")
    lint.add_argument("--oracle", action="store_true",
                      help="also run each kernel through the pipeline and "
                           "cross-check every ATR release against the "
                           "static atomic-region proof")
    lint.add_argument("-n", "--instructions", type=int, default=1200,
                      help="oracle trace length (default 1200)")
    lint.add_argument("-v", "--verbose", action="store_true",
                      help="show suppressed findings and per-kernel stats")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text", dest="fmt",
                      help="findings output format (default text)")
    lint.add_argument("--no-warn-unused-ignore", action="store_true",
                      help="do not flag lint: ignore[...] markers that "
                           "suppress nothing")

    lst = sub.add_parser(
        "list", help="introspect a registry (workloads include variants)")
    lst.add_argument("what", nargs="?", default="workloads",
                     choices=list(LIST_CATEGORIES),
                     help="which registry to list (default workloads)")

    disasm = sub.add_parser("disasm", help="disassemble a kernel")
    disasm.add_argument("benchmark")
    return parser


def _cmd_run(args) -> int:
    from .pipeline import Core, core_config, golden_cove_config
    from .workloads import build_trace, resolve

    name = resolve(args.benchmark)
    trace = build_trace(name, args.instructions)
    if args.config is not None:
        config = core_config(args.config)
        config = config.with_scheme(args.scheme, args.redefine_delay)
        if args.rf_size is not None:
            config = config.with_rf_size(args.rf_size)
        config.validate()
    else:
        config = golden_cove_config(
            rf_size=args.rf_size if args.rf_size is not None else 64,
            scheme=args.scheme, redefine_delay=args.redefine_delay)
    args.rf_size = config.int_rf_size  # for the summary lines below
    if args.tier == "tiered":
        from .tiered import run_tiered

        stats, s, tier_info = run_tiered(config, trace,
                                         interval=args.interval,
                                         max_windows=args.windows)
        windows = tier_info["windows"]
        print(f"{name}: ~{stats.committed} instructions in ~{stats.cycles} "
              f"cycles (IPC {stats.ipc:.3f}, tiered estimate)")
        print(f"  tiered: {len(windows)} windows, "
              f"{tier_info['detailed_instructions']} detailed instructions "
              f"of {tier_info['represented_instructions']} represented, "
              f"warmup to {tier_info['warmup_instructions']}")
        for w in windows:
            print(f"    window @{w['start']:>7} len {w['length']:>6} "
                  f"weight {w['weight']:.3f}  IPC {w['ipc']:.3f}")
    else:
        core = Core(config, trace)
        stats = core.run()
        s = core.scheme.stats
        print(f"{name}: {stats.committed} instructions in {stats.cycles} "
              f"cycles (IPC {stats.ipc:.3f})")
    print(f"  scheme {args.scheme} @ {args.rf_size} regs, "
          f"redefine delay {args.redefine_delay}")
    print(f"  releases: commit {s.commit_frees}, atr {s.atr_frees}, "
          f"nonspec {s.nonspec_frees}, flush {s.flush_frees}")
    print(f"  flushes {stats.flushes} ({stats.flushed_instructions} squashed, "
          f"{stats.wrong_path_renamed} wrong-path renamed)")
    print(f"  rename stalls: freelist {stats.stall_freelist}, "
          f"rob {stats.stall_rob}, rs {stats.stall_rs}")
    return 0


def _cmd_compare(args) -> int:
    from .pipeline import Core, golden_cove_config
    from .workloads import build_trace, resolve

    name = resolve(args.benchmark)
    trace = build_trace(name, args.instructions)
    print(f"{name} @ {args.rf_size} registers, {len(trace)} instructions")
    print(f"{'scheme':12} {'IPC':>7} {'vs base':>8} {'early frees':>12}")
    base_ipc = None
    for scheme in _scheme_names():
        config = golden_cove_config(rf_size=args.rf_size, scheme=scheme)
        core = Core(config, trace)
        stats = core.run()
        if base_ipc is None:
            base_ipc = stats.ipc
        gain = stats.ipc / base_ipc - 1
        print(f"{scheme:12} {stats.ipc:7.3f} {gain:+7.2%} "
              f"{core.scheme.stats.early_frees:12}")
    return 0


def _figure_kwargs(module, args) -> dict:
    """Per-figure ``run()`` kwargs from CLI flags, matched to its signature.

    The instruction count is threaded through as a parameter — never via
    ``REPRO_BENCH_INSTRUCTIONS`` — so one command cannot leak scale into
    the next (or poison cache keys) through process-global state.
    """
    import inspect

    params = inspect.signature(module.run).parameters
    kwargs = {}
    if args.instructions and "instructions" in params:
        kwargs["instructions"] = args.instructions
    if "jobs" in params:
        kwargs["jobs"] = args.jobs if args.jobs is not None else _default_jobs()
    if args.quick:
        int2 = ["505.mcf_r", "531.deepsjeng_r"]
        fp2 = ["503.bwaves_r", "508.namd_r"]
        if "int_benchmarks" in params:
            kwargs["int_benchmarks"] = int2
            kwargs["fp_benchmarks"] = fp2
        elif "benchmarks" in params:
            kwargs["benchmarks"] = int2 + fp2
    return kwargs


def _default_jobs() -> int:
    import os

    return os.cpu_count() or 1


def _sweep_progress(verbose: bool):
    from .harness import SweepProgress

    return SweepProgress(stream=sys.stderr, verbose=verbose)


def _cmd_figure(args) -> int:
    from .experiments import ALL_FIGURES
    from .harness import SweepError, set_default_progress

    remote_client = None
    if args.remote is not None:
        from .service import use_remote

        remote_client = use_remote(args.remote or None, label="figure")
        if remote_client is None:
            print("figure: no repro service reachable; running locally",
                  file=sys.stderr)

    if args.name == "all":
        names = list(ALL_FIGURES)
    elif args.name in ALL_FIGURES:
        names = [args.name]
    else:
        print(f"unknown figure {args.name!r}; known: "
              f"{', '.join(ALL_FIGURES)}, all", file=sys.stderr)
        return 2

    progress = _sweep_progress(args.verbose)
    set_default_progress(progress)
    failed = []
    try:
        for name in names:
            module = ALL_FIGURES[name]
            if len(names) > 1:
                print(f"=== {name} ===")
            try:
                result = module.run(**_figure_kwargs(module, args))
            except SweepError as error:
                failed.append(name)
                print(f"{name}: {error}", file=sys.stderr)
                continue
            print(result.render())
            if len(names) > 1:
                print()
    finally:
        set_default_progress(None)
        if remote_client is not None:
            from .service import clear_remote

            clear_remote()
    progress.emit_summary()
    if failed:
        print(f"FAILED figures: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args) -> int:
    from .experiments.report import format_table
    from .experiments.runner import cell_spec
    from .harness import sweep
    from .workloads import resolve

    benchmarks = [resolve(b.strip()) for b in args.benchmarks.split(",") if b.strip()]
    rf_sizes = [int(r) for r in args.rf_sizes.split(",") if r.strip()]
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    specs = [
        cell_spec(benchmark, rf_size, scheme, args.instructions,
                  redefine_delay=args.redefine_delay)
        for benchmark in benchmarks
        for rf_size in rf_sizes
        for scheme in schemes
    ]
    progress = _sweep_progress(args.verbose)
    report = sweep(specs, jobs=args.jobs if args.jobs is not None
                   else _default_jobs(), progress=progress)
    rows = []
    for benchmark in benchmarks:
        for rf_size in rf_sizes:
            row = [benchmark, rf_size]
            for scheme in schemes:
                spec = cell_spec(benchmark, rf_size, scheme, args.instructions,
                                 redefine_delay=args.redefine_delay)
                cell = report.results.get(spec)
                row.append(f"{cell.ipc:.3f}" if cell is not None else "FAIL")
            rows.append(row)
    print(format_table(["benchmark", "rf"] + schemes, rows,
                       title="sweep: IPC per cell"))
    progress.emit_summary()
    if report.failures:
        for failure in report.failures:
            print(f"failed: {failure.describe()}", file=sys.stderr)
        return 1
    return 0


def _cmd_validate(args) -> int:
    from .validate import campaign_specs, run_campaign
    from .workloads import resolve

    if args.service:
        return _cmd_validate_service(args)
    if args.quick:
        benchmarks = ["505.mcf_r", "503.bwaves_r"]
        rf_sizes = [28]
        seeds = range(2)
        instructions = 1500
    else:
        benchmarks = [resolve(b.strip())
                      for b in args.benchmarks.split(",") if b.strip()]
        rf_sizes = [int(r) for r in args.rf_sizes.split(",") if r.strip()]
        seeds = range(args.seeds)
        instructions = args.instructions
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]

    specs = campaign_specs(
        benchmarks=benchmarks,
        schemes=schemes,
        rf_sizes=rf_sizes,
        seeds=list(seeds),
        instructions=instructions,
        intensity=args.intensity,
        redefine_delay=args.redefine_delay,
    )
    print(f"validate: {len(specs)} chaos cells "
          f"({args.intensity} intensity, {instructions} instructions/cell)")
    progress = _sweep_progress(args.verbose)
    report = run_campaign(
        specs,
        jobs=args.jobs if args.jobs is not None else _default_jobs(),
        progress=progress,
    )
    print(report.render())
    progress.emit_summary()
    return 0 if report.ok else 1


def _cmd_validate_service(args) -> int:
    """``repro validate --service``: seeded fault schedules against a
    live serve/work topology, asserting exactly-once execution."""
    from .validate import run_service_campaign

    schedules = 6 if args.quick else args.schedules
    print(f"validate --service: {schedules} seeded fault schedule(s), "
          f"base seed {args.fault_seed}")
    report = run_service_campaign(
        schedules=schedules,
        base_seed=args.fault_seed,
        progress=lambda line: print(line, flush=True),
    )
    # Per-schedule lines already streamed via progress; print the tail
    # (totals, class coverage, replay verdict, failure detail) only.
    print("\n".join(report.render().splitlines()[len(report.schedules):]))
    return 0 if report.ok else 1


def _cmd_cache(args) -> int:
    from .harness import ResultStore

    store = ResultStore()
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}")
        return 0
    if args.action == "gc":
        from .service import run_gc

        if args.max_bytes is None and args.max_age is None:
            print("cache gc: pass --max-bytes and/or --max-age",
                  file=sys.stderr)
            return 2
        report = run_gc(store, max_bytes=args.max_bytes,
                        max_age=args.max_age)
        print(report.render())
        return 0
    from .service import cache_report

    info = cache_report(store)
    print(f"cache root:       {info['root']}")
    print(f"code fingerprint: {info['fingerprint'][:16]}")
    print(f"entries:          {info['entries']} ({info['bytes']} bytes)")
    for generation in info["generations"]:
        marker = "  <- current" if generation["current"] else ""
        print(f"  {generation['name']}: {generation['entries']} entries, "
              f"{generation['bytes']} bytes{marker}")
    if not info["generations"]:
        print("  (empty)")
    lifetime = info["counters"]["lifetime"]
    rate = (f", hit rate {info['hit_rate']:.1%}"
            if info["hit_rate"] is not None else "")
    print(f"lifetime:         {lifetime['hits']} hits, "
          f"{lifetime['misses']} misses, {lifetime['puts']} puts, "
          f"{lifetime['evictions']} evictions{rate}")
    session = info["counters"]["session"]
    print(f"this process:     {session['hits']} hits, "
          f"{session['misses']} misses, {session['puts']} puts")
    return 0


def _submit_specs(args):
    """The spec grid of a ``repro submit`` invocation."""
    from .experiments.runner import cell_spec
    from .workloads import resolve

    if args.quick:
        benchmarks = ["505.mcf_r", "531.deepsjeng_r",
                      "503.bwaves_r", "508.namd_r"]
        rf_sizes = [64]
    else:
        benchmarks = [resolve(b.strip())
                      for b in args.benchmarks.split(",") if b.strip()]
        rf_sizes = [int(r) for r in args.rf_sizes.split(",") if r.strip()]
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    return [
        cell_spec(benchmark, rf_size, scheme, args.instructions,
                  redefine_delay=args.redefine_delay)
        for benchmark in benchmarks
        for rf_size in rf_sizes
        for scheme in schemes
    ]


def _render_job(job: dict) -> str:
    label = f" [{job['label']}]" if job.get("label") else ""
    eta = ""
    if job.get("eta") is not None and job["state"] in ("pending", "running"):
        eta = f", ~{job['eta']:.0f}s left"
    return (f"{job['id']}{label}: {job['state']}  "
            f"{job['done']}/{job['total']} done, "
            f"{job['leased']} running, {job['pending']} pending"
            + (f", {job['dead']} FAILED" if job["dead"] else "") + eta)


def _watch_to_completion(client, job_id: str) -> int:
    last_done = -1
    final = {}
    for event in client.watch(job_id):
        job = event.get("job", {})
        if job.get("done") != last_done or event.get("event") == "done":
            print(_render_job(job), flush=True)
            last_done = job.get("done")
        if event.get("event") == "done":
            final = job
            break
    for cell in final.get("failed_cells", []):
        print(f"  failed: {cell.get('digest', '?')[:16]} "
              f"{cell.get('error')}", file=sys.stderr)
    return 0 if final.get("state") == "done" else 1


def _cmd_serve(args) -> int:
    from .harness import default_timeout
    from .service import resolve_token, run_service

    lease = args.lease if args.lease is not None else default_timeout()
    workers = args.workers if args.workers is not None else _default_jobs()
    return run_service(host=args.host, port=args.port, workers=workers,
                       lease=lease, token=resolve_token(args.token))


def _cmd_submit(args) -> int:
    import time

    from .harness import spec_to_dict
    from .service import ServiceClient, ServiceError

    specs = _submit_specs(args)
    client = ServiceClient(args.addr, token=args.token)
    started = time.monotonic()
    try:
        receipt = client.submit([spec_to_dict(s) for s in specs],
                                priority=args.priority, label=args.label)
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    print(f"job {receipt['job']}: {receipt['total']} cells "
          f"({receipt['new']} new, {receipt['coalesced']} coalesced, "
          f"{receipt['warm']} warm)")
    if not args.watch:
        return 0
    code = _watch_to_completion(client, receipt["job"])
    print(f"elapsed {time.monotonic() - started:.2f}s")
    return code


def _cmd_status(args) -> int:
    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.addr, token=args.token)
    try:
        reply = client.status(args.job)
        degraded = client.ping().get("degraded")
    except ServiceError as exc:
        print(f"status: {exc}", file=sys.stderr)
        return 1
    if degraded:
        print(f"SERVICE DEGRADED (read-only): {degraded}", file=sys.stderr)
    if args.job is not None:
        print(_render_job(reply["job"]))
        for cell in reply["job"].get("failed_cells", []):
            print(f"  failed: {cell.get('digest', '?')[:16]} "
                  f"{cell.get('error')}")
        return 0
    stats = reply["stats"]
    cells = stats["cells"]
    print(f"queue {stats['root']}: {cells['pending']} pending, "
          f"{cells['leased']} leased, {cells['done']} done, "
          f"{cells['dead']} dead")
    counters = stats["counters"]
    if counters:
        print("counters: " + ", ".join(
            f"{key} {value}" for key, value in sorted(counters.items())))
    for host in stats["hosts"]:
        liveness = "alive" if host["alive"] else "gone"
        errors = (host.get("meta") or {}).get("errors") or {}
        error_text = ""
        if errors:
            error_text = ", errors: " + ", ".join(
                f"{key} {value}" for key, value in sorted(errors.items()))
        print(f"host {host['host']}: {host.get('workers', '?')} worker(s), "
              f"{liveness}{error_text}")
    for job in reply["jobs"][:20]:
        print(_render_job(job))
    return 0


def _cmd_watch(args) -> int:
    from .service import ServiceClient, ServiceError

    try:
        return _watch_to_completion(
            ServiceClient(args.addr, token=args.token), args.job)
    except ServiceError as exc:
        print(f"watch: {exc}", file=sys.stderr)
        return 1


def _cmd_cancel(args) -> int:
    from .service import ServiceClient, ServiceError

    try:
        cancelled = ServiceClient(args.addr, token=args.token).cancel(args.job)
    except ServiceError as exc:
        print(f"cancel: {exc}", file=sys.stderr)
        return 1
    print(f"{args.job}: {'cancelled' if cancelled else 'not cancellable'}")
    return 0 if cancelled else 1


def _cmd_work(args) -> int:
    from .service import ServiceClient, ServiceError, ServiceUnavailable, \
        format_addr, resolve_addr, resolve_token, spawn_workers

    addr = format_addr(resolve_addr(args.addr))
    token = resolve_token(args.token)
    try:
        ServiceClient(addr, token=token).ping()
    except (ServiceUnavailable, ServiceError) as exc:
        print(f"work: {exc}", file=sys.stderr)
        return 1
    count = args.workers if args.workers is not None else _default_jobs()
    print(f"work: {count} worker(s) pulling from {addr}")

    # `kill <pid>` must take the pool down with it, not orphan workers
    # that keep claiming leases (same contract as `repro serve`).
    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    processes = spawn_workers(addr, count, token=token)
    try:
        for process in processes:
            process.join()
    except KeyboardInterrupt:
        pass
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            process.join(2.0)
        signal.signal(signal.SIGTERM, previous_sigterm)
    return 0


def _cmd_analyze(args) -> int:
    if args.benchmark[0] == "static":
        return _cmd_analyze_static(args)
    if len(args.benchmark) != 1:
        print("analyze: exactly one benchmark (or `analyze static "
              "[BENCH...]`)", file=sys.stderr)
        return 2

    from .analysis import classify_regions
    from .workloads import build_trace, resolve

    name = resolve(args.benchmark[0])
    trace = build_trace(name, args.instructions)
    report = classify_regions(trace)
    print(f"{name}: {len(trace)} instructions, "
          f"{report.total_allocations} register allocations")
    for kind in ("non_branch", "non_except", "atomic"):
        print(f"  {kind:>11}: {report.ratio(kind):6.2%}")
    print(f"  mean consumers per atomic region: {report.mean_consumers():.2f}")
    return 0


def _static_analysis_row(name: str, instructions: int) -> dict:
    """One benchmark's static memory/opportunity summary + the dynamic
    committed-path realized releases the static bound must dominate."""
    from .harness import CellSpec, sweep
    from .staticcheck import (
        analyze_memdep,
        analyze_pressure,
        analyze_regions,
    )
    from .workloads import build_trace, builder_for

    program = builder_for(name)(4)
    memdep = analyze_memdep(program)
    regions = analyze_regions(program)
    pressure = analyze_pressure(program, regions=regions)
    mem_regions = memdep.classify_regions(regions)
    alias = memdep.alias_counts()
    counts = regions.counts()

    trace = build_trace(name, instructions)
    static_bound = pressure.trace_bound(e.pc for e in trace.entries)

    spec = CellSpec(benchmark=name, rf_size=64, scheme="atr",
                    instructions=instructions, record_register_events=True)
    cell = sweep([spec])[spec]
    realized = sum(1 for record in (cell.event_records or [])
                   if record.early_release_cycle is not None)
    return {
        "benchmark": name,
        "instructions": instructions,
        "regions": {"closed": counts["closed"], "atomic": counts["atomic"],
                    "memory_classified": len(mem_regions)},
        "alias_pairs": alias,
        "forwardable_loads": sum(len(r.forwardable) for r in mem_regions),
        "safe_reorder": sum(len(r.safe_reorder) for r in mem_regions),
        "blocked_pairs": sum(len(r.blocked_pairs) for r in mem_regions),
        "dependence_edges": len(memdep.dependence_edges()),
        "static_bound": static_bound,
        "dynamic_realized": realized,
        "bound_ok": realized <= static_bound,
    }


def _cmd_analyze_static(args) -> int:
    import json

    from .workloads import resolve, workload_names

    requested = args.benchmark[1:]
    if requested:
        try:
            names = [resolve(b) for b in requested]
        except KeyError as exc:
            print(f"analyze: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        names = list(workload_names(variants=True))

    rows = [_static_analysis_row(name, args.instructions) for name in names]
    violations = [row for row in rows if not row["bound_ok"]]

    if args.fmt == "json":
        print(json.dumps({"instructions": args.instructions,
                          "benchmarks": rows,
                          "bound_violations": len(violations)}, indent=2))
    else:
        header = (f"{'benchmark':<24} {'regions':>7} {'atomic':>6} "
                  f"{'must':>5} {'may':>5} {'no':>5} {'fwd':>4} "
                  f"{'bound':>7} {'dynamic':>8}")
        print(header)
        print("-" * len(header))
        for row in rows:
            alias = row["alias_pairs"]
            mark = "" if row["bound_ok"] else "  VIOLATION"
            print(f"{row['benchmark']:<24} "
                  f"{row['regions']['closed']:>7} "
                  f"{row['regions']['atomic']:>6} "
                  f"{alias['must']:>5} {alias['may']:>5} {alias['no']:>5} "
                  f"{row['forwardable_loads']:>4} "
                  f"{row['static_bound']:>7} "
                  f"{row['dynamic_realized']:>8}{mark}")
        print(f"\nstatic ATR bound vs. committed-path realized releases "
              f"(atr, rf=64, n={args.instructions}); "
              f"{len(violations)} violation(s)")
    if violations:
        print(f"analyze: static bound violated on "
              f"{len(violations)} benchmark(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args) -> int:
    import json

    from .staticcheck import analyze_regions, check_trace, lint_program
    from .workloads import build_trace, builder_for, resolve

    if args.all:
        from .workloads import workload_names

        names = list(workload_names(variants=True))
    elif args.benchmarks:
        try:
            names = [resolve(b) for b in args.benchmarks]
        except KeyError as exc:
            print(f"lint: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        print("lint: name benchmarks or pass --all", file=sys.stderr)
        return 2

    warn_unused = not args.no_warn_unused_ignore
    failed = 0
    json_out = []
    for name in names:
        program = builder_for(name)(4)
        report = lint_program(program, warn_unused_ignore=warn_unused)
        static = analyze_regions(program)
        counts = static.counts()
        if args.fmt == "json":
            json_out.append({
                "benchmark": name,
                "ok": report.ok,
                "atomic_windows": counts["atomic"],
                "closed_windows": counts["closed"],
                "findings": [
                    {"rule": f.rule, "severity": f.severity.value,
                     "pc": f.pc, "label": program.label_of(f.pc),
                     "message": f.message, "suppressed": f.suppressed}
                    for f in report.findings
                ],
            })
        else:
            status = ("clean" if report.ok
                      else f"{len(report.active)} finding(s)")
            if report.suppressed:
                status += f" (+{len(report.suppressed)} suppressed)"
            print(f"{name}: {status}; {counts['atomic']}/{counts['closed']} "
                  f"closed windows statically atomic")
            shown = report.findings if args.verbose else report.active
            for finding in shown:
                print(finding.render(program))
        if not report.ok:
            failed += 1
        if args.oracle:
            trace = build_trace(name, args.instructions)
            for scheme in ("atr", "combined"):
                oracle = check_trace(trace, scheme=scheme, report=static)
                if args.fmt != "json":
                    print(f"  oracle {oracle.render()}")
                if not oracle.ok:
                    failed += 1
    if args.fmt == "json":
        print(json.dumps({"benchmarks": json_out,
                          "failed": failed}, indent=2))
    if failed:
        print(f"lint: {failed} benchmark/oracle failure(s)", file=sys.stderr)
    return 1 if failed else 0


def _list_workloads() -> None:
    from .registry import load_plugins
    from .workloads import WORKLOADS, workload_names

    load_plugins()
    names = workload_names(variants=True)
    bases = WORKLOADS.names()
    print(f"workloads ({len(bases)} benchmarks, "
          f"{len(names)} addressable refs):")
    for base in bases:
        entry = WORKLOADS.get(base)
        print(f"  {base:<24} {entry.cls}")
        for variant in getattr(entry, "variants", ()):
            qualified = f"{base}/{variant.name}"
            note = f"  -- {variant.note}" if variant.note else ""
            print(f"  {qualified:<24} {entry.cls}{note}")


def _list_registry(title: str, registry) -> None:
    from .registry import load_plugins

    load_plugins()
    print(f"{title} ({len(registry)}):")
    aliases = registry.aliases()
    for name in registry.names():
        alias_text = ", ".join(a for a, t in aliases.items() if t == name)
        print(f"  {name}" + (f"  (aka {alias_text})" if alias_text else ""))


def _cmd_list(args) -> int:
    what = getattr(args, "what", "workloads")
    if what in ("workloads", "all"):
        _list_workloads()
    if what in ("schemes", "all"):
        from .rename.schemes import SCHEMES

        _list_registry("schemes", SCHEMES)
    if what in ("predictors", "all"):
        from .branch import PREDICTORS

        _list_registry("predictors", PREDICTORS)
    if what in ("configs", "all"):
        from .pipeline.config import CORE_CONFIGS

        _list_registry("configs", CORE_CONFIGS)
    if what in ("figures", "all"):
        from .experiments import FIGURES

        _list_registry("figures", FIGURES)
    if what in ("lints", "all"):
        from .staticcheck import META_RULES, RULES

        print(f"lints ({len(RULES)} rules, {len(META_RULES)} meta):")
        for rule, (severity, description) in RULES.items():
            print(f"  {rule:<26} {severity.value:<8} {description}")
        for rule, (severity, description) in META_RULES.items():
            print(f"  {rule:<26} {severity.value:<8} {description} (meta)")
    return 0


def _cmd_disasm(args) -> int:
    from .isa import disassemble
    from .workloads import builder_for, resolve

    name = resolve(args.benchmark)
    program = builder_for(name)(iterations=2)
    print(disassemble(program))
    return 0


def _cmd_bench(args) -> int:
    from .bench import run_bench_cli
    return run_bench_cli(
        quick=args.quick,
        output=args.output or None,
        instructions=args.instructions,
        rf_size=args.rf_size,
        repeats=args.repeats,
        verbose=args.verbose,
        profile=args.profile,
        ab=args.ab,
        history=args.history or None,
    )


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "sweep": _cmd_sweep,
    "validate": _cmd_validate,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "watch": _cmd_watch,
    "cancel": _cmd_cancel,
    "work": _cmd_work,
    "analyze": _cmd_analyze,
    "lint": _cmd_lint,
    "list": _cmd_list,
    "disasm": _cmd_disasm,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
