"""Workload suite registry (paper Table 2).

Maps every SPEC CPU 2017 benchmark name the paper evaluates to its
stand-in kernel and builds traces of a requested dynamic length by
scaling the kernel's outer iteration count.  Traces are cached per
(name, length) within a process so experiment sweeps that re-simulate
the same workload under many configurations only emulate it once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..frontend import Emulator, Trace
from ..isa import Program
from . import kernels_fp, kernels_int

#: name -> (program builder taking ``iterations``, probe iterations)
_INT_BUILDERS: Dict[str, Callable[..., Program]] = {
    "500.perlbench_r": kernels_int.perlbench,
    "502.gcc_r": kernels_int.gcc,
    "505.mcf_r": kernels_int.mcf,
    "520.omnetpp_r": kernels_int.omnetpp,
    "523.xalancbmk_r": kernels_int.xalancbmk,
    "525.x264_r": kernels_int.x264,
    "531.deepsjeng_r": kernels_int.deepsjeng,
    "541.leela_r": kernels_int.leela,
    "548.exchange2_r": kernels_int.exchange2,
    "557.xz_r": kernels_int.xz,
}

_FP_BUILDERS: Dict[str, Callable[..., Program]] = {
    "503.bwaves_r": kernels_fp.bwaves,
    "507.cactuBSSN_r": kernels_fp.cactubssn,
    "508.namd_r": kernels_fp.namd,
    "510.parest_r": kernels_fp.parest,
    "511.povray_r": kernels_fp.povray,
    "519.lbm_r": kernels_fp.lbm,
    "521.wrf_r": kernels_fp.wrf,
    "526.blender_r": kernels_fp.blender,
    "527.cam4_r": kernels_fp.cam4,
    "538.imagick_r": kernels_fp.imagick,
    "544.nab_r": kernels_fp.nab,
    "549.fotonik3d_r": kernels_fp.fotonik3d,
    "554.roms_r": kernels_fp.roms,
}

SPEC_INT: Tuple[str, ...] = tuple(_INT_BUILDERS)
SPEC_FP: Tuple[str, ...] = tuple(_FP_BUILDERS)
ALL_BENCHMARKS: Tuple[str, ...] = SPEC_INT + SPEC_FP

_trace_cache: Dict[Tuple[str, int], Trace] = {}


def is_fp(name: str) -> bool:
    return name in _FP_BUILDERS


def builder_for(name: str) -> Callable[..., Program]:
    if name in _INT_BUILDERS:
        return _INT_BUILDERS[name]
    if name in _FP_BUILDERS:
        return _FP_BUILDERS[name]
    raise KeyError(
        f"unknown benchmark {name!r}; known: {', '.join(ALL_BENCHMARKS)}"
    )


def resolve(name: str) -> str:
    """Accept short names ('mcf', 'x264') as well as full SPEC ids."""
    if name in _INT_BUILDERS or name in _FP_BUILDERS:
        return name
    matches = [full for full in ALL_BENCHMARKS if name in full]
    if len(matches) == 1:
        return matches[0]
    raise KeyError(f"ambiguous or unknown benchmark {name!r}: {matches}")


def build_trace(name: str, instructions: int = 20_000, use_cache: bool = True) -> Trace:
    """A dynamic trace of roughly *instructions* instructions.

    The kernel's outer iteration count is scaled from a small probe run;
    the trace is truncated at exactly *instructions* if the scaled run
    overshoots (the simulator does not require a trailing HALT).
    """
    name = resolve(name)
    key = (name, instructions)
    if use_cache and key in _trace_cache:
        return _trace_cache[key]
    builder = builder_for(name)

    probe_iters = 4
    probe = Emulator(builder(iterations=probe_iters)).run(max_instructions=instructions)
    per_iter = max(1, len(probe) // probe_iters)
    need_iters = max(probe_iters, (instructions // per_iter) + 2)
    # Some kernels terminate on data-dependent conditions rather than the
    # iteration count alone; keep doubling until the trace is long enough.
    trace = None
    for _ in range(8):
        program = builder(iterations=need_iters)
        trace = Emulator(program).run(max_instructions=instructions)
        if len(trace) >= instructions or not trace.entries[-1].instr.is_halt:
            break
        need_iters *= 2
    trace.entries = trace.entries[:instructions]
    trace.name = name
    if use_cache:
        _trace_cache[key] = trace
    return trace


def build_suite(names, instructions: int = 20_000) -> List[Trace]:
    return [build_trace(name, instructions) for name in names]


def clear_trace_cache() -> None:
    _trace_cache.clear()
