"""The cache/memory hierarchy: L1I, L1D, L2, LLC, DRAM, MSHRs, prefetch.

Timing interface: :meth:`MemoryHierarchy.load` / :meth:`store` /
:meth:`fetch` take the current cycle and return the cycle at which the
data is available.  Outstanding misses to the same block merge in the
MSHR (the second requester inherits the first fill's completion time), and
a full MSHR file applies back-pressure by serializing behind the oldest
outstanding miss — the dominant first-order effects of a real MSHR design.

Latencies follow the paper's Table 1 (3/3/14/40-cycle L1I/L1D/L2/LLC and
DDR4-3200-class DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .cache import Cache
from .prefetch import CompositePrefetcher


@dataclass
class DramModel:
    """Flat-latency DRAM with a simple bank-conflict adder.

    ``latency`` approximates loaded DDR4-3200 round-trip from the LLC; a
    small deterministic extra penalty models row-buffer misses by hashing
    the block address (keeps runs reproducible without a full DRAM sim).
    """

    latency: int = 200
    banks: int = 16
    row_bytes: int = 4096
    bank_conflict_penalty: int = 40

    _open_rows: Dict[int, int] = field(default_factory=dict)
    accesses: int = 0
    row_misses: int = 0

    def access(self, addr: int) -> int:
        """Latency of one DRAM access."""
        self.accesses += 1
        bank = (addr // self.row_bytes) % self.banks
        row = addr // (self.row_bytes * self.banks)
        penalty = 0
        if self._open_rows.get(bank) != row:
            self.row_misses += 1
            penalty = self.bank_conflict_penalty
            self._open_rows[bank] = row
        return self.latency + penalty


@dataclass
class HierarchyConfig:
    """Geometry and latency of every level (paper Table 1 defaults)."""

    line_bytes: int = 64
    l1i_size: int = 32 * 1024
    l1i_ways: int = 8
    l1i_latency: int = 3
    l1d_size: int = 48 * 1024
    l1d_ways: int = 12
    l1d_latency: int = 3
    l2_size: int = 1280 * 1024
    l2_ways: int = 10
    l2_latency: int = 14
    llc_size: int = 3 * 1024 * 1024
    llc_ways: int = 12
    llc_latency: int = 40
    dram_latency: int = 200
    mshr_entries: int = 48
    enable_prefetch: bool = True


class MemoryHierarchy:
    """Three-level hierarchy with MSHR merging and data prefetching."""

    def __init__(self, config: Optional[HierarchyConfig] = None):
        self.config = config or HierarchyConfig()
        c = self.config
        self.l1i = Cache("L1I", c.l1i_size, c.l1i_ways, c.line_bytes, c.l1i_latency)
        self.l1d = Cache("L1D", c.l1d_size, c.l1d_ways, c.line_bytes, c.l1d_latency)
        self.l2 = Cache("L2", c.l2_size, c.l2_ways, c.line_bytes, c.l2_latency)
        self.llc = Cache("LLC", c.llc_size, c.llc_ways, c.line_bytes, c.llc_latency)
        self.dram = DramModel(latency=c.dram_latency)
        self.prefetcher = CompositePrefetcher(line_bytes=c.line_bytes) if c.enable_prefetch else None
        # MSHR: block -> completion cycle of the outstanding fill
        self._mshr: Dict[int, int] = {}
        self.mshr_merges = 0
        self.mshr_stalls = 0

    # -- internals -------------------------------------------------------------
    def _block(self, addr: int) -> int:
        return addr // self.config.line_bytes

    def _reap_mshr(self, cycle: int) -> None:
        done = [b for b, when in self._mshr.items() if when <= cycle]
        for b in done:
            del self._mshr[b]

    def _miss_path(self, cycle: int, addr: int, l1: Cache, is_write: bool) -> int:
        """Latency (beyond L1 access) of filling *addr* from L2/LLC/DRAM."""
        if self.l2.lookup(addr, is_write=False):
            latency = self.l2.latency
        elif self.llc.lookup(addr, is_write=False):
            latency = self.llc.latency
            self.l2.fill(addr)
        else:
            self.llc.stats.accesses += 1
            self.llc.stats.misses += 1
            latency = self.llc.latency + self.dram.access(addr)
            self.llc.fill(addr)
            self.l2.fill(addr)
        l1.fill(addr, dirty=is_write)
        return latency

    def _access(self, cycle: int, addr: int, l1: Cache, is_write: bool, pc: int) -> int:
        self._reap_mshr(cycle)
        block = self._block(addr)
        if l1.lookup(addr, is_write=is_write):
            # Fill-at-access installs lines immediately; an MSHR entry for
            # the block means the data is still in flight, so a "hit" on
            # it cannot complete before the fill arrives.
            pending = self._mshr.get(block, 0)
            if pending > cycle + l1.latency:
                self.mshr_merges += 1
            completion = max(cycle + l1.latency, pending)
        else:
            if block in self._mshr:
                self.mshr_merges += 1
                completion = max(self._mshr[block], cycle + l1.latency)
            else:
                extra = 0
                if len(self._mshr) >= self.config.mshr_entries:
                    # MSHR full: serialize behind the oldest outstanding miss.
                    self.mshr_stalls += 1
                    oldest = min(self._mshr.values())
                    extra = max(0, oldest - cycle)
                latency = self._miss_path(cycle, addr, l1, is_write)
                completion = cycle + l1.latency + latency + extra
                self._mshr[block] = completion
        if self.prefetcher is not None and l1 is self.l1d:
            for pf_addr in self.prefetcher.observe(addr, pc):
                self._prefetch(pf_addr, cycle)
        return completion

    def _prefetch(self, addr: int, cycle: int) -> None:
        """Issue a prefetch of *addr* into L2.

        The fill takes real time: the block is installed in the caches,
        but an MSHR entry carries its availability cycle, so a demand
        access arriving before the data does merges and pays the
        remaining latency instead of hitting instantly.
        """
        block = self._block(addr)
        if self.l2.contains(addr) or block in self._mshr:
            return
        if self.llc.lookup(addr, is_write=False, update_stats=False):
            latency = self.llc.latency
        else:
            latency = self.llc.latency + self.dram.access(addr)
            self.llc.fill(addr, prefetched=True)
        self.l2.fill(addr, prefetched=True)
        if len(self._mshr) < self.config.mshr_entries:
            self._mshr[block] = cycle + latency

    # -- public API ----------------------------------------------------------
    def load(self, cycle: int, addr: int, pc: int = 0) -> int:
        """Data-available cycle for a load issued at *cycle*."""
        return self._access(cycle, addr, self.l1d, is_write=False, pc=pc)

    def store(self, cycle: int, addr: int, pc: int = 0) -> int:
        """Completion cycle for a store issued (from the store buffer)."""
        return self._access(cycle, addr, self.l1d, is_write=True, pc=pc)

    def fetch(self, cycle: int, addr: int) -> int:
        """Instruction-available cycle for a fetch of *addr*."""
        return self._access(cycle, addr, self.l1i, is_write=False, pc=addr)

    def stats_table(self) -> Dict[str, Dict[str, float]]:
        out = {}
        for cache in (self.l1i, self.l1d, self.l2, self.llc):
            out[cache.name] = {
                "accesses": cache.stats.accesses,
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "hit_rate": cache.stats.hit_rate,
            }
        out["DRAM"] = {
            "accesses": self.dram.accesses,
            "row_misses": self.dram.row_misses,
        }
        return out
