"""Figure 11: ATR speedup over baseline across register file sizes."""

from repro.experiments import fig11

from conftest import emit


def test_fig11_rf_sensitivity(benchmark, int_suite, fp_suite, instructions):
    result = benchmark.pedantic(
        fig11.run,
        kwargs=dict(int_benchmarks=int_suite, fp_benchmarks=fp_suite,
                    sizes=(64, 96, 128, 160, 192, 224, 256, 280),
                    instructions=instructions),
        rounds=1, iterations=1,
    )
    emit(result)
    # Shape: the gain at the smallest RF exceeds the gain at the largest
    # (paper: 5.7% at 64 vs 0.9% at 280 for int).
    for which in ("int", "fp"):
        assert result.average(which, 64) >= result.average(which, 280) - 0.005
