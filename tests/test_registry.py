"""The registry layer: generic core, drift guards, plugin discovery.

Three concerns:

* **Core semantics** — ``Registry`` registration/decorator/alias/lazy
  behaviour and its error messages.
* **Drift guards** — every CLI ``choices=`` list, grid default, and
  ``CoreConfig.validate`` error message is *derived from* the
  corresponding registry, so registering a new entry can never silently
  miss a layer.
* **Plugin end-to-end** — an out-of-tree module registering a toy
  workload and a toy scheme through the ``REPRO_PLUGINS`` discovery hook
  runs through ``run_cell`` and appears in ``repro list``.
"""

import sys
import textwrap

import pytest

from repro.registry import Registry, RegistryError, load_plugins, \
    registries, reset_plugins


@pytest.fixture
def reg():
    registry = Registry("thing")
    yield registry
    Registry._instances.pop("thing", None)


class TestRegistryCore:
    def test_register_and_get(self, reg):
        reg.register("a", 1)
        assert reg.get("a") == 1
        assert reg["a"] == 1
        assert "a" in reg
        assert len(reg) == 1

    def test_decorator_form_returns_object(self, reg):
        @reg.register("fn")
        def fn():
            return 42

        assert fn() == 42  # decorated object unchanged
        assert reg.get("fn") is fn

    def test_registration_order_preserved(self, reg):
        for name in ("zeta", "alpha", "mid"):
            reg.register(name, name)
        assert reg.names() == ("zeta", "alpha", "mid")
        assert list(reg) == ["zeta", "alpha", "mid"]
        assert sorted(reg) == ["alpha", "mid", "zeta"]

    def test_duplicate_rejected_replace_allowed(self, reg):
        reg.register("a", 1)
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("a", 2)
        reg.register("a", 2, replace=True)
        assert reg.get("a") == 2

    def test_unknown_name_lists_choices(self, reg):
        reg.register("alpha", 1)
        reg.register("beta", 2)
        with pytest.raises(RegistryError) as exc:
            reg.get("gamma")
        assert "alpha" in str(exc.value) and "beta" in str(exc.value)
        # RegistryError is a KeyError so dict-era call sites still catch it
        assert isinstance(exc.value, KeyError)

    def test_alias_resolves(self, reg):
        reg.register("canonical", 7, aliases=("short", "alt"))
        assert reg.get("short") == 7
        assert reg.canonical("alt") == "canonical"
        assert "short" in reg
        # aliases are not canonical names
        assert reg.names() == ("canonical",)

    def test_alias_collision_rejected(self, reg):
        reg.register("a", 1)
        reg.register("b", 2)
        with pytest.raises(RegistryError, match="collides"):
            reg.alias("a", "b")

    def test_lazy_resolved_once(self, reg):
        calls = []

        def thunk():
            calls.append(1)
            return "built"

        reg.register_lazy("lazy", thunk)
        assert "lazy" in reg.names()  # listing does not build
        assert not calls
        assert reg.get("lazy") == "built"
        assert reg.get("lazy") == "built"
        assert len(calls) == 1

    def test_unregister_drops_entry_and_aliases(self, reg):
        reg.register("a", 1, aliases=("aa",))
        reg.unregister("a")
        assert "a" not in reg and "aa" not in reg


class TestRegistries:
    def test_all_standard_kinds_present(self):
        kinds = registries()
        for kind in ("workload", "scheme", "predictor", "config", "figure"):
            assert kind in kinds, f"missing standard registry {kind!r}"


class TestDriftGuards:
    """A registration can never silently miss a CLI/config layer."""

    def _parser_actions(self, command):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(a for a in parser._actions if a.dest == "command")
        return sub.choices[command]._actions

    def test_run_scheme_choices_track_registry(self):
        from repro.rename.schemes import SCHEMES

        actions = self._parser_actions("run")
        scheme = next(a for a in actions if a.dest == "scheme")
        assert tuple(scheme.choices) == SCHEMES.names()

    def test_run_config_choices_track_registry(self):
        from repro.pipeline.config import CORE_CONFIGS

        actions = self._parser_actions("run")
        config = next(a for a in actions if a.dest == "config")
        assert tuple(config.choices) == CORE_CONFIGS.names()

    @pytest.mark.parametrize("command", ["sweep", "validate", "submit"])
    def test_grid_scheme_defaults_track_registry(self, command):
        from repro.rename.schemes import SCHEMES

        actions = self._parser_actions(command)
        schemes = next(a for a in actions if a.dest == "schemes")
        assert schemes.default == ",".join(SCHEMES.names())

    def test_list_categories_cover_every_registry(self):
        from repro.cli import LIST_CATEGORIES

        actions = self._parser_actions("list")
        what = next(a for a in actions if a.dest == "what")
        assert tuple(what.choices) == LIST_CATEGORIES
        # every standard registry kind has a list category
        covered = {"workload": "workloads", "scheme": "schemes",
                   "predictor": "predictors", "config": "configs",
                   "figure": "figures"}
        for kind, category in covered.items():
            assert category in LIST_CATEGORIES, kind

    def test_config_validate_error_derives_from_predictors(self):
        from repro.branch import PREDICTORS
        from repro.pipeline.config import CoreConfig

        config = CoreConfig(predictor="martingale")
        with pytest.raises(ValueError) as exc:
            config.validate()
        for name in PREDICTORS.names():
            assert name in str(exc.value)

    def test_make_scheme_error_derives_from_registry(self):
        from repro.rename.schemes import SCHEMES, make_scheme

        with pytest.raises(ValueError) as exc:
            make_scheme("magic")
        for name in SCHEMES.names():
            assert name in str(exc.value)

    def test_scheme_names_constant_matches_registry(self):
        from repro.rename.schemes import SCHEME_NAMES, SCHEMES

        assert SCHEME_NAMES == SCHEMES.names() == (
            "baseline", "nonspec_er", "atr", "combined")

    def test_figure_registry_has_every_fig_module(self):
        import pkgutil
        import re

        import repro.experiments as experiments

        on_disk = {info.name
                   for info in pkgutil.iter_modules(experiments.__path__)
                   if re.fullmatch(r"(fig|sec)\d+", info.name)}
        assert on_disk == set(experiments.FIGURES.names())
        assert len(on_disk) == 10

    def test_figure_registry_resolves_modules_lazily(self):
        from repro.experiments import FIGURES

        module = FIGURES.get("fig06")
        assert callable(module.run)


PLUGIN_SOURCE = textwrap.dedent('''
    """A toy out-of-tree plugin: one workload, one scheme."""
    from repro.isa import ProgramBuilder, ireg
    from repro.rename.schemes import SCHEMES
    from repro.rename.schemes.baseline import BaselineScheme
    from repro.workloads.suite import WORKLOADS, Workload, WorkloadVariant


    def toy_kernel(iterations=8, seed=1):
        b = ProgramBuilder("999.toy_r")
        r = ireg
        b.movi(r(1), iterations)
        b.movi(r(2), seed)
        b.movi(r(4), 1)
        b.label("top")
        b.add(r(2), r(2), r(4))
        b.xor(r(3), r(2), r(1))
        b.sub(r(1), r(1), r(4))
        b.test(r(1), r(1))
        b.bne("top")
        b.halt()
        return b.build()


    WORKLOADS.register("999.toy_r", Workload(
        "999.toy_r", toy_kernel, "int",
        variants=(WorkloadVariant("ref2", params={"seed": 5}),)))


    class ToyScheme(BaselineScheme):
        name = "toy_baseline"


    @SCHEMES.register("toy_baseline")
    def _make_toy(redefine_delay=0, debug_checks=True):
        return ToyScheme()
''')


@pytest.fixture
def toy_plugin(tmp_path, monkeypatch):
    """An importable plugin module wired through REPRO_PLUGINS."""
    (tmp_path / "repro_toy_plugin.py").write_text(PLUGIN_SOURCE)
    monkeypatch.syspath_prepend(str(tmp_path))
    monkeypatch.setenv("REPRO_PLUGINS", "repro_toy_plugin")
    reset_plugins()
    yield "repro_toy_plugin"
    from repro.rename.schemes import SCHEMES
    from repro.workloads.suite import WORKLOADS

    WORKLOADS.unregister("999.toy_r")
    SCHEMES.unregister("toy_baseline")
    sys.modules.pop("repro_toy_plugin", None)
    reset_plugins()


class TestPluginEndToEnd:
    def test_lookup_miss_triggers_discovery(self, toy_plugin):
        from repro.workloads import builder_for

        program = builder_for("999.toy_r")(4)
        assert program.name == "999.toy_r"

    def test_load_plugins_idempotent(self, toy_plugin):
        assert load_plugins() == ("repro_toy_plugin",)
        assert load_plugins() == ()

    def test_plugin_workload_and_scheme_run_cell(self, toy_plugin):
        from repro.experiments import run_cell

        result = run_cell("999.toy_r", 64, "toy_baseline",
                          instructions=400, use_cache=False)
        assert result.stats.committed == 400
        assert result.scheme == "toy_baseline"
        # the plugin's variant is addressable too
        variant = run_cell("999.toy_r/ref2", 64, "baseline",
                           instructions=400, use_cache=False)
        assert variant.benchmark == "999.toy_r/ref2"

    def test_plugin_appears_in_repro_list(self, toy_plugin, capsys):
        from repro.cli import main

        assert main(["list", "all"]) == 0
        out = capsys.readouterr().out
        assert "999.toy_r" in out
        assert "999.toy_r/ref2" in out
        assert "toy_baseline" in out

    def test_plugin_scheme_in_cli_choices(self, toy_plugin):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "999.toy_r", "-s", "toy_baseline", "-n", "100"])
        assert args.scheme == "toy_baseline"

    def test_repro_register_hook_called(self, tmp_path, monkeypatch):
        (tmp_path / "repro_hook_plugin.py").write_text(textwrap.dedent('''
            SEEN = {}
            def repro_register(registries):
                SEEN.update(registries)
        '''))
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_PLUGINS", "repro_hook_plugin")
        reset_plugins()
        try:
            load_plugins()
            module = sys.modules["repro_hook_plugin"]
            assert "scheme" in module.SEEN and "workload" in module.SEEN
        finally:
            sys.modules.pop("repro_hook_plugin", None)
            reset_plugins()

    def test_broken_plugin_fails_loudly(self, tmp_path, monkeypatch):
        (tmp_path / "repro_broken_plugin.py").write_text("raise RuntimeError('boom')\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_PLUGINS", "repro_broken_plugin")
        reset_plugins()
        try:
            with pytest.raises(RuntimeError, match="boom"):
                load_plugins()
        finally:
            sys.modules.pop("repro_broken_plugin", None)
            reset_plugins()
