"""Interrupt handling (paper section 4.1, "Interrupts").

Two service policies:

* ``drain`` — stop fetching and let the ROB empty, then service.  Works
  unchanged with ATR (the paper's option (a)).
* ``flush`` — squash the uncommitted window and service immediately, for
  lower interrupt latency (the paper's option (b)).  With ATR this is
  only safe once no *cross-boundary claim* is outstanding: a register
  whose allocator already committed but whose ATR-claiming redefiner is
  still in flight was (or may be) early released; flushing the redefiner
  would un-redefine the register while its ptag is already on the free
  list.  The paper's fix is a commit-stage counter of such open atomic
  regions: keep committing until the counter reaches zero, then flush.
  In the unlikely worst case this drains the whole ROB, which is still
  correct — no ISA bounds interrupt service time.

The counter here follows the paper's description: it is incremented when
an instruction commits whose destination register is still
early-release-eligible (consumer count below no-early-release — a future
redefiner may claim it), and decremented when the instruction that
redefines such a register commits (its *previous ptag* closes the
region, whether it was claimed — invalid prev — or conventionally
freed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..isa import RegClass
from ..rename.schemes import AtrScheme


@dataclass
class InterruptStats:
    """Per-run interrupt accounting."""

    serviced: int = 0
    drained_instructions: int = 0
    flushed_instructions: int = 0
    wait_cycles: int = 0  # pending -> service start
    service_cycles_total: int = 0


class InterruptController:
    """Injects and services interrupts for a :class:`~repro.pipeline.Core`.

    Usage::

        core = Core(config, trace)
        controller = InterruptController(core, policy="flush")
        controller.schedule(at_cycle=1000)
        core.run()

    The controller hooks the core's per-cycle step; the core exposes the
    commit and flush primitives it needs.
    """

    def __init__(self, core, policy: str = "drain", service_cycles: int = 60):
        if policy not in ("drain", "flush"):
            raise ValueError(f"unknown interrupt policy {policy!r}")
        self.core = core
        self.policy = policy
        self.service_cycles = service_cycles
        self.stats = InterruptStats()
        self._pending_at: List[int] = []
        self._pending = False
        self._pending_since = 0
        self._servicing_until: Optional[int] = None
        self._flush_done = False
        # ATR open-region counter state (flush policy).  Only ATR-style
        # schemes (atr / combined) can create the dangerous cross-boundary
        # claims; other schemes may flush immediately.
        self._atr_like = isinstance(core.scheme, AtrScheme)
        self.open_region_counter = 0
        self._counted: Set[Tuple[RegClass, int]] = set()
        core.attach_interrupt_controller(self)

    # -- injection ----------------------------------------------------------
    def schedule(self, at_cycle: int) -> None:
        """Raise an interrupt at *at_cycle* (may schedule several)."""
        self._pending_at.append(at_cycle)
        self._pending_at.sort()

    # -- open-region counter (paper section 4.1) -------------------------------
    def on_precommit(self, entry) -> None:
        """Maintain the open-atomic-region counter.

        Counted at *precommit* — the guaranteed-to-commit boundary that
        interrupt flushes respect — rather than commit: a counted
        register's allocator can then never be part of the squashed tail,
        which is exactly the property the counter must witness.
        """
        if not self._atr_like:
            return
        for record in entry.dests:
            file = self.core.rename_unit.files[record.file]
            # Closing: this commit redefines a counted register.
            key_prev = (record.file, record.prev_ptag)
            if key_prev in self._counted:
                self._counted.remove(key_prev)
                self.open_region_counter -= 1
            # Opening: the committed destination is still claimable
            # (eligible for a future ATR release by its redefiner).
            if not file.prt.is_no_early_release(record.new_ptag):
                self._counted.add((record.file, record.new_ptag))
                self.open_region_counter += 1

    # -- per-cycle hook -----------------------------------------------------------
    def tick(self, cycle: int) -> bool:
        """Advance interrupt state; returns True while fetch must stall."""
        if self._servicing_until is not None:
            if cycle < self._servicing_until:
                return True
            self._servicing_until = None
            return False

        if not self._pending and self._pending_at and cycle >= self._pending_at[0]:
            self._pending_at.pop(0)
            self._pending = True
            self._pending_since = cycle

        if not self._pending:
            return False

        # An interrupt is pending: fetch stops under both policies.
        if self.policy == "drain":
            if len(self.core.rob) == 0:
                self._service(cycle)
            return True

        # flush policy: wait for the open-region counter to clear, then
        # squash the uncommitted window.  The counter is conservative
        # (a counted register may later be bulk-marked and never close),
        # so the paper's worst case applies: if the ROB drains naturally
        # while we wait, service anyway — equivalent to the drain policy.
        if not self._flush_done and (
            self.open_region_counter == 0 or len(self.core.rob) == 0
        ):
            self.stats.flushed_instructions += self.core.interrupt_flush(cycle)
            self._flush_done = True
        if self._flush_done and len(self.core.rob) == 0:
            # the precommitted prefix has drained; service now
            self._flush_done = False
            self._service(cycle)
        return True

    def _service(self, cycle: int) -> None:
        self._pending = False
        self.stats.serviced += 1
        self.stats.wait_cycles += cycle - self._pending_since
        self.stats.service_cycles_total += self.service_cycles
        self._servicing_until = cycle + self.service_cycles
