"""Pure value semantics of the ISA, shared by the functional emulator and
the cycle simulator's value-execution mode.

Keeping these as pure functions of (instruction, source values) lets the
out-of-order pipeline compute results through *physical* registers: if a
release scheme ever frees a register too early and it gets reallocated
while still live, the corrupted value propagates to the final
architectural state and the golden-model comparison fails — the strongest
possible end-to-end check on early-release correctness.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from .instruction import Instruction
from .opcodes import Opcode
from .registers import VEC_LANES

MASK64 = (1 << 64) - 1
FLAG_ZERO = 1
FLAG_SIGN = 2

Value = Union[int, Tuple[int, ...]]


def to_signed(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value >> 63 else value


def flags_for(value: int) -> int:
    """FLAGS encoding of a signed comparison/test result."""
    flags = 0
    if value == 0:
        flags |= FLAG_ZERO
    if value < 0:
        flags |= FLAG_SIGN
    return flags


def branch_taken(opcode: Opcode, flags: int) -> bool:
    """Direction of a conditional branch given the FLAGS source value."""
    if opcode is Opcode.BEQ:
        return bool(flags & FLAG_ZERO)
    if opcode is Opcode.BNE:
        return not flags & FLAG_ZERO
    if opcode is Opcode.BLT:
        return bool(flags & FLAG_SIGN)
    if opcode is Opcode.BGE:
        return not flags & FLAG_SIGN
    raise ValueError(f"not a conditional branch: {opcode}")


def compute(instr: Instruction, srcs: Sequence[Value]) -> Value:
    """Result value of a non-memory, value-producing instruction.

    *srcs* are the source operand values in operand order (FLAGS included
    where it is an operand).  Memory operations and control flow are the
    caller's responsibility; CALL's link value is ``pc + 1`` and also
    handled by the caller.
    """
    op = instr.opcode
    if op is Opcode.MOVI:
        return instr.imm & MASK64
    if op is Opcode.MOV:
        return srcs[0]
    if op is Opcode.ADD:
        return (srcs[0] + srcs[1]) & MASK64
    if op is Opcode.SUB:
        return (srcs[0] - srcs[1]) & MASK64
    if op is Opcode.AND:
        return srcs[0] & srcs[1]
    if op is Opcode.OR:
        return srcs[0] | srcs[1]
    if op is Opcode.XOR:
        return srcs[0] ^ srcs[1]
    if op is Opcode.MUL:
        return (srcs[0] * srcs[1]) & MASK64
    if op is Opcode.DIV:
        return (srcs[0] // srcs[1]) & MASK64 if srcs[1] else 0
    if op is Opcode.MOD:
        return (srcs[0] % srcs[1]) & MASK64 if srcs[1] else 0
    if op is Opcode.SHL:
        return (srcs[0] << (instr.imm & 63)) & MASK64
    if op is Opcode.SHR:
        return (srcs[0] & MASK64) >> (instr.imm & 63)
    if op is Opcode.NOT:
        return ~srcs[0] & MASK64
    if op is Opcode.NEG:
        return -srcs[0] & MASK64
    if op is Opcode.LEA:
        return (srcs[0] + instr.imm) & MASK64
    if op is Opcode.CMP:
        return flags_for(to_signed(srcs[0]) - to_signed(srcs[1]))
    if op is Opcode.TEST:
        return flags_for(to_signed(srcs[0] & srcs[1]))
    if op is Opcode.SELECT:
        return srcs[1] if srcs[0] & FLAG_ZERO else srcs[2]
    if op is Opcode.VADD:
        return tuple((x + y) & MASK64 for x, y in zip(srcs[0], srcs[1]))
    if op is Opcode.VSUB:
        return tuple((x - y) & MASK64 for x, y in zip(srcs[0], srcs[1]))
    if op is Opcode.VMUL:
        return tuple((x * y) & MASK64 for x, y in zip(srcs[0], srcs[1]))
    if op is Opcode.VDIV:
        return tuple((x // y) & MASK64 if y else 0 for x, y in zip(srcs[0], srcs[1]))
    if op is Opcode.VFMA:
        return tuple((x * y + z) & MASK64 for x, y, z in zip(srcs[0], srcs[1], srcs[2]))
    if op is Opcode.VBROADCAST:
        return (srcs[0] & MASK64,) * VEC_LANES
    if op is Opcode.VREDUCE:
        return sum(srcs[0]) & MASK64
    raise ValueError(f"compute() does not handle {op}")
