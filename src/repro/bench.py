"""Host-side performance benchmark of the cycle core (``repro bench``).

Measures *simulator* throughput on a fixed two-tier protocol, so hot-loop
regressions show up as numbers rather than vibes:

* **detailed cells** — 505.mcf_r and 503.bwaves_r (one int
  pointer-chaser, one fp/vector kernel), baseline and atr schemes,
  rf=128, n=20000, full-trace cycle simulation.  This is the seed
  protocol, unchanged, so BENCH_history.json entries stay comparable
  across PRs.
* **tiered cells** — the same four cells at n=100000 under the tiered
  protocol (fast-forward warmup + SimPoint-weighted detailed windows;
  see ``repro.tiered``).  Throughput counts *represented* instructions:
  the point of the tier is that most of them never enter the cycle core.

Timing is best-of-N wall time per cell (per-process best, not mean, to
shave scheduler noise); probes stay off — the zero-cost-when-off path is
the one that matters.  Aggregates are reported two ways, because the
per-cell rates differ by ~6x and a plain mean lets one fast cell mask a
regression in a slow one:

* ``instr_per_sec`` — total instructions / total wall (work-weighted);
* ``instr_per_sec_geomean`` — geometric mean of per-cell rates
  (cell-weighted, scale-free).

``--quick`` shrinks the protocol to a CI smoke whose job is to crash
loudly if either hot path breaks.  ``--profile`` re-runs each cell under
cProfile and prints the top-25 cumulative hotspots.  ``--ab`` runs an
interleaved A/B/C comparison (spin-loop detailed / skip-ahead detailed /
tiered) and exits non-zero if tiered throughput is below 3x the
spin-loop arm or if skip-ahead makes pure-detailed simulation >5%
slower — the CI regression gate.

Results are printed and written to ``BENCH_core.json`` (latest) and
appended, timestamped, to ``BENCH_history.json`` (trajectory);
EXPERIMENTS.md records the accepted baseline numbers for the current
machine class.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import replace
from datetime import datetime, timezone
from typing import Dict, List, Optional

#: The fixed measurement protocol.
BENCH_BENCHMARKS = ("505.mcf_r", "503.bwaves_r")
BENCH_SCHEMES = ("baseline", "atr")
DEFAULT_INSTRUCTIONS = 20_000
DEFAULT_TIERED_INSTRUCTIONS = 100_000
DEFAULT_RF_SIZE = 128
DEFAULT_REPEATS = 3
TIER_INTERVAL = 2_000
TIER_WINDOWS = 6

HISTORY_LIMIT = 200  #: BENCH_history.json keeps at most this many entries


def _geomean(values: List[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _profile_cell(fn, label: str) -> None:
    """Re-run *fn* under cProfile and print the top-25 cumulative hotspots."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    fn()
    profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative") \
        .print_stats(25)
    print(f"--- profile: {label} (top 25 by cumulative time) ---")
    print(stream.getvalue().rstrip())


def bench_core(instructions: int = DEFAULT_INSTRUCTIONS,
               tiered_instructions: int = DEFAULT_TIERED_INSTRUCTIONS,
               rf_size: int = DEFAULT_RF_SIZE,
               repeats: int = DEFAULT_REPEATS,
               verbose: bool = False,
               profile: bool = False) -> Dict:
    """Run the two-tier core-throughput protocol; returns the result dict."""
    from .pipeline import Core, golden_cove_config
    from .tiered import run_tiered
    from .workloads import build_trace

    cells: List[Dict] = []
    tiered_cells: List[Dict] = []
    for benchmark in BENCH_BENCHMARKS:
        trace = build_trace(benchmark, instructions)
        tiered_trace = build_trace(benchmark, tiered_instructions)
        for scheme in BENCH_SCHEMES:
            config = golden_cove_config(rf_size=rf_size, scheme=scheme)

            best = None
            cycles = committed = 0
            for _ in range(repeats):
                core = Core(config, trace)
                start = time.perf_counter()
                stats = core.run()
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
                cycles, committed = stats.cycles, stats.committed
            cell = {
                "benchmark": benchmark,
                "scheme": scheme,
                "instructions": committed,
                "sim_cycles": cycles,
                "best_seconds": round(best, 6),
                "kcycles_per_sec": round(cycles / best / 1e3, 1),
                "instr_per_sec": round(committed / best, 1),
            }
            cells.append(cell)
            if verbose:
                print(f"  {benchmark}/{scheme}: "
                      f"{cell['kcycles_per_sec']:.1f} kcycles/s")
            if profile:
                _profile_cell(lambda: Core(config, trace).run(),
                              f"{benchmark}/{scheme} detailed n={instructions}")

            best_t = None
            tier_info = est_cycles = None
            for _ in range(repeats):
                start = time.perf_counter()
                stats, _scheme_stats, tier_info = run_tiered(
                    config, tiered_trace,
                    interval=TIER_INTERVAL, max_windows=TIER_WINDOWS)
                elapsed = time.perf_counter() - start
                if best_t is None or elapsed < best_t:
                    best_t = elapsed
                est_cycles = stats.cycles
            represented = tier_info["represented_instructions"]
            tiered_cell = {
                "benchmark": benchmark,
                "scheme": scheme,
                "instructions": represented,
                "detailed_instructions": tier_info["detailed_instructions"],
                "windows": len(tier_info["windows"]),
                "est_cycles": est_cycles,
                "best_seconds": round(best_t, 6),
                "instr_per_sec": round(represented / best_t, 1),
            }
            tiered_cells.append(tiered_cell)
            if verbose:
                print(f"  {benchmark}/{scheme} tiered: "
                      f"{tiered_cell['instr_per_sec']:.1f} instr/s")
            if profile:
                _profile_cell(
                    lambda: run_tiered(config, tiered_trace,
                                       interval=TIER_INTERVAL,
                                       max_windows=TIER_WINDOWS),
                    f"{benchmark}/{scheme} tiered n={tiered_instructions}")

    def _aggregate(section: List[Dict]) -> Dict:
        total_instr = sum(c["instructions"] for c in section)
        total_time = sum(c["best_seconds"] for c in section)
        return {
            "instr_per_sec": round(total_instr / total_time, 1),
            "instr_per_sec_geomean": round(
                _geomean([c["instr_per_sec"] for c in section]), 1),
            "wall_seconds": round(total_time, 3),
        }

    aggregate = _aggregate(cells)
    total_cycles = sum(c["sim_cycles"] for c in cells)
    detailed_wall = sum(c["best_seconds"] for c in cells)
    aggregate["kcycles_per_sec"] = round(total_cycles / detailed_wall / 1e3, 1)
    return {
        "protocol": {
            "instructions": instructions,
            "tiered_instructions": tiered_instructions,
            "tier_interval": TIER_INTERVAL,
            "tier_windows": TIER_WINDOWS,
            "rf_size": rf_size,
            "repeats": repeats,
            "benchmarks": list(BENCH_BENCHMARKS),
            "schemes": list(BENCH_SCHEMES),
        },
        "cells": cells,
        "tiered_cells": tiered_cells,
        "aggregate": aggregate,
        "tiered_aggregate": _aggregate(tiered_cells),
    }


def format_bench(result: Dict) -> str:
    proto = result["protocol"]
    lines = [
        f"core throughput (n={proto['instructions']}, rf={proto['rf_size']}, "
        f"best of {proto['repeats']}):",
        f"  {'cell':<24} {'kcycles/s':>10} {'instr/s':>12}",
    ]
    for cell in result["cells"]:
        name = f"{cell['benchmark']}/{cell['scheme']}"
        lines.append(f"  {name:<24} {cell['kcycles_per_sec']:>10.1f} "
                     f"{cell['instr_per_sec']:>12.1f}")
    agg = result["aggregate"]
    lines.append(f"  {'aggregate':<24} {agg['kcycles_per_sec']:>10.1f} "
                 f"{agg['instr_per_sec']:>12.1f}   "
                 f"(geomean {agg['instr_per_sec_geomean']:.1f}, "
                 f"{agg['wall_seconds']:.2f}s wall)")
    if result.get("tiered_cells"):
        lines.append(
            f"tiered protocol (n={proto['tiered_instructions']}, "
            f"interval={proto['tier_interval']}, "
            f"windows<={proto['tier_windows']}):")
        lines.append(f"  {'cell':<24} {'detailed':>10} {'instr/s':>12}")
        for cell in result["tiered_cells"]:
            name = f"{cell['benchmark']}/{cell['scheme']}"
            lines.append(f"  {name:<24} {cell['detailed_instructions']:>10} "
                         f"{cell['instr_per_sec']:>12.1f}")
        tagg = result["tiered_aggregate"]
        ratio = tagg["instr_per_sec"] / agg["instr_per_sec"]
        lines.append(f"  {'aggregate':<24} {'':>10} "
                     f"{tagg['instr_per_sec']:>12.1f}   "
                     f"(geomean {tagg['instr_per_sec_geomean']:.1f}, "
                     f"{tagg['wall_seconds']:.2f}s wall, "
                     f"{ratio:.1f}x detailed)")
    return "\n".join(lines)


def append_history(result: Dict, path: str) -> None:
    """Append a timestamped summary of *result* to the trajectory file.

    The history entry keeps only the aggregates and protocol (the full
    per-cell detail lives in the latest-results file), so the trajectory
    stays small enough to eyeball across dozens of PRs.
    """
    history: List[Dict] = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                history = json.load(fh)
        except (json.JSONDecodeError, OSError):
            history = []  # corrupt trajectory: restart rather than crash
        if not isinstance(history, list):
            history = []
    history.append({
        "timestamp": datetime.now(timezone.utc)
        .isoformat(timespec="seconds"),
        "protocol": result["protocol"],
        "aggregate": result["aggregate"],
        "tiered_aggregate": result.get("tiered_aggregate"),
    })
    with open(path, "w") as fh:
        json.dump(history[-HISTORY_LIMIT:], fh, indent=1, sort_keys=True)


def bench_ab(instructions: int, tiered_instructions: int,
             rf_size: int = DEFAULT_RF_SIZE, rounds: int = 3,
             verbose: bool = False) -> Dict:
    """Interleaved A/B/C throughput comparison; the CI regression gate.

    Three arms measured round-robin (A, B, C, A, B, C, ...) so drift in
    machine load hits all arms equally:

    * **A (spin)** — the seed protocol: full-trace detailed simulation
      with ``skip_ahead`` disabled, i.e. the per-cycle spin loop.
    * **B (skip)** — the same cells with skip-ahead enabled: the
      production pure-detailed path.
    * **C (tiered)** — the tiered protocol at *tiered_instructions*.

    Gates: C aggregate must be >=3x A (the tiered win is real on this
    machine), and B must not fall below 0.95x A (skip-ahead must never
    make pure-detailed slower).  Per-arm time is best-of-*rounds*.
    """
    from .pipeline import Core, golden_cove_config
    from .tiered import run_tiered
    from .workloads import build_trace

    arms = {"spin": {}, "skip": {}, "tiered": {}}
    traces = {b: build_trace(b, instructions) for b in BENCH_BENCHMARKS}
    tiered_traces = {b: build_trace(b, tiered_instructions)
                     for b in BENCH_BENCHMARKS}
    for rnd in range(rounds):
        for benchmark in BENCH_BENCHMARKS:
            for scheme in BENCH_SCHEMES:
                key = (benchmark, scheme)
                config = golden_cove_config(rf_size=rf_size, scheme=scheme)

                spin_config = replace(config, skip_ahead=False)
                start = time.perf_counter()
                Core(spin_config, traces[benchmark]).run()
                spin = time.perf_counter() - start

                start = time.perf_counter()
                Core(config, traces[benchmark]).run()
                skip = time.perf_counter() - start

                start = time.perf_counter()
                run_tiered(config, tiered_traces[benchmark],
                           interval=TIER_INTERVAL, max_windows=TIER_WINDOWS)
                tiered = time.perf_counter() - start

                for arm, elapsed in (("spin", spin), ("skip", skip),
                                     ("tiered", tiered)):
                    prev = arms[arm].get(key)
                    if prev is None or elapsed < prev:
                        arms[arm][key] = elapsed
                if verbose:
                    print(f"  round {rnd + 1} {benchmark}/{scheme}: "
                          f"spin {spin:.2f}s skip {skip:.2f}s "
                          f"tiered {tiered:.2f}s")

    n_cells = len(BENCH_BENCHMARKS) * len(BENCH_SCHEMES)
    spin_rate = n_cells * instructions / sum(arms["spin"].values())
    skip_rate = n_cells * instructions / sum(arms["skip"].values())
    tiered_rate = (n_cells * tiered_instructions
                   / sum(arms["tiered"].values()))
    return {
        "protocol": {
            "instructions": instructions,
            "tiered_instructions": tiered_instructions,
            "rf_size": rf_size,
            "rounds": rounds,
        },
        "spin_instr_per_sec": round(spin_rate, 1),
        "skip_instr_per_sec": round(skip_rate, 1),
        "tiered_instr_per_sec": round(tiered_rate, 1),
        "tiered_speedup": round(tiered_rate / spin_rate, 2),
        "skip_ratio": round(skip_rate / spin_rate, 3),
    }


def run_bench_cli(quick: bool = False, output: Optional[str] = "BENCH_core.json",
                  instructions: Optional[int] = None,
                  rf_size: int = DEFAULT_RF_SIZE,
                  repeats: Optional[int] = None,
                  verbose: bool = False,
                  profile: bool = False,
                  ab: bool = False,
                  history: Optional[str] = "BENCH_history.json") -> int:
    """CLI entry: run, print, persist (latest + trajectory)."""
    if quick:
        n = instructions or 4_000
        tiered_n = 30_000
        reps = repeats or 1
    else:
        n = instructions or DEFAULT_INSTRUCTIONS
        tiered_n = DEFAULT_TIERED_INSTRUCTIONS
        reps = repeats or DEFAULT_REPEATS

    if ab:
        # The tiered arm always runs at protocol scale: the 3x gate is a
        # statement about the real protocol, and a shrunken tiered trace
        # under-amortizes the fixed detailed-window cost.
        result = bench_ab(instructions=n,
                          tiered_instructions=DEFAULT_TIERED_INSTRUCTIONS,
                          rf_size=rf_size, rounds=reps if not quick else 2,
                          verbose=verbose)
        print(f"A/B (best of interleaved rounds): "
              f"spin {result['spin_instr_per_sec']:.1f} instr/s, "
              f"skip {result['skip_instr_per_sec']:.1f} instr/s "
              f"({result['skip_ratio']:.3f}x), "
              f"tiered {result['tiered_instr_per_sec']:.1f} instr/s "
              f"({result['tiered_speedup']:.2f}x)")
        failed = False
        if result["tiered_speedup"] < 3.0:
            print(f"FAIL: tiered speedup {result['tiered_speedup']:.2f}x "
                  f"< 3x over the spin-loop protocol")
            failed = True
        if result["skip_ratio"] < 0.95:
            print(f"FAIL: skip-ahead detailed throughput is "
                  f"{result['skip_ratio']:.3f}x of the spin loop "
                  f"(regression > 5%)")
            failed = True
        if output:
            with open(output, "w") as fh:
                json.dump(result, fh, indent=1, sort_keys=True)
            print(f"wrote {output}")
        return 1 if failed else 0

    result = bench_core(instructions=n, tiered_instructions=tiered_n,
                        rf_size=rf_size, repeats=reps, verbose=verbose,
                        profile=profile)
    print(format_bench(result))
    if output:
        with open(output, "w") as fh:
            json.dump(result, fh, indent=1, sort_keys=True)
        print(f"wrote {output}")
        if history:
            append_history(result, history)
            print(f"appended to {history}")
    return 0
