"""Unit tests for the text assembler and its round trip with render()."""

import pytest

from repro.isa import (
    FLAGS,
    AssemblyError,
    Opcode,
    assemble,
    disassemble,
    ireg,
    vreg,
)


class TestParsing:
    def test_three_reg(self):
        prog = assemble("add r1, r2, r3")
        instr = prog.instructions[0]
        assert instr.opcode is Opcode.ADD
        assert instr.dests == (ireg(1),)
        assert instr.srcs == (ireg(2), ireg(3))

    def test_movi_with_hex(self):
        prog = assemble("movi r1, 0x10")
        assert prog.instructions[0].imm == 16

    def test_movi_negative(self):
        prog = assemble("movi r1, -5")
        assert prog.instructions[0].imm == -5

    def test_load_with_displacement(self):
        prog = assemble("ld r1, r2, 8")
        instr = prog.instructions[0]
        assert instr.dests == (ireg(1),)
        assert instr.srcs == (ireg(2),)
        assert instr.imm == 8

    def test_load_without_displacement(self):
        prog = assemble("ld r1, r2")
        assert prog.instructions[0].imm == 0

    def test_store_operand_order(self):
        prog = assemble("st r1, r2, 16")
        instr = prog.instructions[0]
        assert instr.srcs == (ireg(1), ireg(2))  # value, base
        assert not instr.dests

    def test_cmp_writes_flags(self):
        prog = assemble("cmp r1, r2")
        assert prog.instructions[0].dests == (FLAGS,)

    def test_branch_reads_flags(self):
        prog = assemble("x:\nbne x")
        assert prog.instructions[0].srcs == (FLAGS,)

    def test_select_inserts_flags_source(self):
        prog = assemble("select r1, r2, r3")
        assert prog.instructions[0].srcs == (FLAGS, ireg(2), ireg(3))

    def test_absolute_target(self):
        prog = assemble("nop\njmp @0")
        assert prog.instructions[1].target == 0

    def test_vfma(self):
        prog = assemble("vfma v1, v2, v3, v4")
        assert prog.instructions[0].srcs == (vreg(2), vreg(3), vreg(4))

    def test_comments_stripped(self):
        prog = assemble("nop ; trailing\n# whole line\nnop")
        assert len(prog) == 3  # 2 nops + halt

    def test_word_directive(self):
        prog = assemble(".word 0x100 42")
        assert prog.data[256] == 42

    def test_shift_immediate(self):
        prog = assemble("shl r1, r2, 5")
        assert prog.instructions[0].imm == 5


class TestErrors:
    @pytest.mark.parametrize("src,fragment", [
        ("bogus r1", "unknown mnemonic"),
        ("add r1, r2", "3 registers"),
        ("movi r1", "immediate"),
        ("ld r1", "base"),
        ("jr r1, r2", "register"),
        ("jmp", "target"),
        ("add r1, r2, r99", "out of range"),
        (".word 5", "takes"),
        ("nop r1", "operands"),
    ])
    def test_malformed(self, src, fragment):
        with pytest.raises(AssemblyError, match=fragment):
            assemble(src)

    def test_error_carries_line_number(self):
        try:
            assemble("nop\nnop\nbroken_op r1")
        except AssemblyError as exc:
            assert exc.lineno == 3
        else:
            pytest.fail("expected AssemblyError")


class TestRoundTrip:
    FULL = """
start:
    movi r1, 100
    lea r2, r1, -8
    add r3, r1, r2
    sub r3, r3, r1
    mul r4, r3, r3
    div r5, r4, r1
    mod r6, r4, r1
    and r7, r5, r6
    or r7, r7, r1
    xor r7, r7, r2
    shl r8, r7, 3
    shr r8, r8, 2
    not r9, r8
    neg r9, r9
    mov r10, r9
    cmp r10, r1
    beq skip
    test r10, r1
    bne skip
    blt skip
    bge skip
skip:
    select r11, r1, r2
    st r11, r1, 0
    ld r12, r1, 0
    call func
    jmp end
func:
    jr r15
end:
    vbroadcast v0, r1
    vadd v1, v0, v0
    vsub v2, v1, v0
    vmul v3, v2, v1
    vdiv v4, v3, v1
    vfma v5, v1, v2, v3
    vld v6, r1, 32
    vst v6, r1, 64
    vreduce r13, v6
    nop
    halt
"""

    def test_full_isa_round_trip(self):
        prog = assemble(self.FULL, name="full")
        again = assemble(disassemble(prog), name="full")
        assert prog.instructions == again.instructions

    def test_round_trip_twice_is_stable(self):
        prog = assemble(self.FULL)
        text1 = disassemble(prog)
        text2 = disassemble(assemble(text1))
        assert text1 == text2
