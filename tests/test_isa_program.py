"""Unit tests for Program / ProgramBuilder."""

import pytest

from repro.isa import LINK_REG, Opcode, Program, ProgramBuilder, ireg, vreg


class TestBuilder:
    def test_emit_returns_pc(self):
        b = ProgramBuilder()
        assert b.movi(ireg(1), 5) == 0
        assert b.add(ireg(2), ireg(1), ireg(1)) == 1

    def test_forward_label_resolution(self):
        b = ProgramBuilder()
        b.movi(ireg(1), 0)
        b.cmp(ireg(1), ireg(1))
        b.beq("end")          # forward reference
        b.movi(ireg(2), 1)
        b.label("end")
        b.halt()
        prog = b.build()
        assert prog.instructions[2].target == prog.labels["end"]

    def test_backward_label_resolution(self):
        b = ProgramBuilder()
        b.label("top")
        b.cmp(ireg(1), ireg(2))
        b.bne("top")
        prog = b.build()
        assert prog.instructions[1].target == 0

    def test_undefined_label_raises(self):
        b = ProgramBuilder()
        b.jmp("nowhere")
        with pytest.raises(ValueError, match="nowhere"):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("x")
        b.nop()
        with pytest.raises(ValueError, match="duplicate"):
            b.label("x")

    def test_implicit_halt_appended(self):
        b = ProgramBuilder()
        b.nop()
        prog = b.build()
        assert prog.instructions[-1].opcode is Opcode.HALT

    def test_no_double_halt(self):
        b = ProgramBuilder()
        b.halt()
        prog = b.build()
        assert len(prog) == 1

    def test_call_writes_link_register(self):
        b = ProgramBuilder()
        b.label("f")
        b.call("f")
        prog = b.build()
        assert prog.instructions[0].dests == (LINK_REG,)

    def test_ret_reads_link_register(self):
        b = ProgramBuilder()
        b.ret()
        prog = b.build()
        assert prog.instructions[0].srcs == (LINK_REG,)

    def test_numeric_target(self):
        b = ProgramBuilder()
        b.nop()
        b.jmp(0)
        prog = b.build()
        assert prog.instructions[1].target == 0

    def test_data_words(self):
        b = ProgramBuilder()
        b.words(0x100, [7, 8, 9])
        b.word(0x200, 42)
        prog = b.build()
        assert prog.data[0x100] == 7
        assert prog.data[0x110] == 9
        assert prog.data[0x200] == 42

    def test_label_attaches_to_next_instruction(self):
        b = ProgramBuilder()
        b.nop()
        b.label("here")
        b.nop()
        prog = b.build()
        assert prog.instructions[1].label == "here"
        assert prog.labels["here"] == 1


class TestProgram:
    def test_at_in_range(self):
        b = ProgramBuilder()
        b.movi(ireg(1), 7)
        prog = b.build()
        assert prog.at(0).opcode is Opcode.MOVI

    def test_at_out_of_range_returns_none(self):
        prog = ProgramBuilder().build()
        assert prog.at(100) is None
        assert prog.at(-1) is None

    def test_len_and_iter(self):
        b = ProgramBuilder()
        b.nop()
        b.nop()
        prog = b.build()
        assert len(prog) == 3  # 2 nops + implicit halt
        assert len(list(prog)) == 3

    def test_disassemble_contains_labels(self):
        b = ProgramBuilder()
        b.label("entry")
        b.nop()
        prog = b.build()
        assert "entry:" in prog.disassemble()

    def test_vector_builder_ops(self):
        b = ProgramBuilder()
        b.vfma(vreg(0), vreg(1), vreg(2), vreg(3))
        prog = b.build()
        assert prog.instructions[0].srcs == (vreg(1), vreg(2), vreg(3))
