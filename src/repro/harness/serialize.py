"""Result serialization: everything a worker returns crosses this layer.

One encoding serves two transports — the pipe between a worker process
and the scheduler, and the JSON files of the persistent store — so a
result decoded from a warm cache is indistinguishable from one computed
in-process.  Floats survive exactly (JSON round-trips Python floats via
``repr``), so warm-cache figure numbers are bit-identical to cold runs.
"""

from __future__ import annotations

from typing import Dict

from ..analysis import RegionReport
from ..pipeline import SimStats
from ..pipeline.stats import RegisterLifetime
from ..rename.schemes import SchemeStats
from .jobs import CellResult


def encode_cell_result(result: CellResult) -> Dict:
    return {
        "benchmark": result.benchmark,
        "scheme": result.scheme,
        "rf_size": result.rf_size,
        "instructions": result.instructions,
        "stats": result.stats.to_dict(),
        "scheme_stats": result.scheme_stats.to_dict(),
        "event_records": (
            None if result.event_records is None
            else [record.to_dict() for record in result.event_records]
        ),
        "region_report": (
            None if result.region_report is None
            else result.region_report.to_dict()
        ),
        "error": result.error,
        "tier_info": result.tier_info,
    }


def decode_cell_result(data: Dict) -> CellResult:
    return CellResult(
        benchmark=data["benchmark"],
        scheme=data["scheme"],
        rf_size=data["rf_size"],
        instructions=data["instructions"],
        stats=SimStats.from_dict(data["stats"]),
        scheme_stats=SchemeStats.from_dict(data["scheme_stats"]),
        event_records=(
            None if data["event_records"] is None
            else [RegisterLifetime.from_dict(r) for r in data["event_records"]]
        ),
        region_report=(
            None if data["region_report"] is None
            else RegionReport.from_dict(data["region_report"])
        ),
        # .get(): results persisted before the error/tier_info fields
        # existed.
        error=data.get("error"),
        tier_info=data.get("tier_info"),
    )


def encode_result(result) -> Dict:
    """Wrap any executor result in a typed envelope.

    Unknown types pass through as-is (``kind: raw``) so tests can inject
    custom executors; they must then be JSON-serializable themselves to
    reach the persistent store.
    """
    if isinstance(result, CellResult):
        return {"kind": "cell", "data": encode_cell_result(result)}
    if isinstance(result, RegionReport):
        return {"kind": "regions", "data": result.to_dict()}
    return {"kind": "raw", "data": result}


def decode_result(payload: Dict):
    kind = payload["kind"]
    if kind == "cell":
        return decode_cell_result(payload["data"])
    if kind == "regions":
        return RegionReport.from_dict(payload["data"])
    if kind == "raw":
        return payload["data"]
    raise ValueError(f"unknown result kind {kind!r}")
