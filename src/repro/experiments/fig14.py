"""Figure 14: average cycles between rename, redefine, consume, and
commit within atomic commit regions.

Redefinition happens at rename (no data dependences involved), so it
arrives much earlier than the last consumption; the redefining
instruction's commit is later still.  ATR holds a register only until
max(redefine, consume) — far shorter than the baseline's hold-to-commit —
and the consume >> redefine gap is why delaying the redefinition signal
by 1-2 cycles (Figure 13) costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..analysis import EventTiming, atomic_event_timing
from .report import format_table, shorten
from .runner import (
    RegionSpec,
    cell_spec,
    default_fp_suite,
    default_instructions,
    default_int_suite,
    mean,
    prime_cells,
    prime_regions,
    region_report,
    run_cell,
)


@dataclass
class Fig14Result:
    timings: Dict[str, EventTiming]

    def render(self) -> str:
        rows = []
        for benchmark, timing in self.timings.items():
            rows.append([
                shorten(benchmark),
                f"{timing.rename_to_redefine:.1f}",
                f"{timing.rename_to_consume:.1f}",
                f"{timing.rename_to_commit:.1f}",
                timing.chains,
            ])
        populated = [t for t in self.timings.values() if t.chains]
        if populated:
            rows.append([
                "AVERAGE",
                f"{mean(t.rename_to_redefine for t in populated):.1f}",
                f"{mean(t.rename_to_consume for t in populated):.1f}",
                f"{mean(t.rename_to_commit for t in populated):.1f}",
                sum(t.chains for t in populated),
            ])
        table = format_table(
            ["benchmark", "to-redefine", "to-consume", "to-commit", "chains"],
            rows,
            title="Figure 14: avg cycles from rename, within atomic regions")
        ok = all(
            t.rename_to_redefine <= t.rename_to_consume + 1e-9
            and t.rename_to_consume <= t.rename_to_commit + 1e-9
            for t in populated
        )
        return (
            f"{table}\n\n"
            f"ordering redefine <= consume <= commit holds for all "
            f"benchmarks: {ok} (paper: consumption happens significantly "
            f"later than redefinition)"
        )


def run(
    benchmarks: Optional[Sequence[str]] = None,
    rf_size: int = 280,
    instructions: Optional[int] = None,
    jobs: Optional[int] = None,
) -> Fig14Result:
    if benchmarks is None:
        benchmarks = list(default_int_suite()) + list(default_fp_suite())
    instructions = instructions or default_instructions()
    if jobs is not None:
        prime_cells(
            [cell_spec(b, rf_size, "baseline", instructions,
                       record_register_events=True) for b in benchmarks],
            jobs=jobs,
        )
        prime_regions([RegionSpec(b, instructions) for b in benchmarks],
                      jobs=jobs)
    timings: Dict[str, EventTiming] = {}
    for benchmark in benchmarks:
        cell = run_cell(benchmark, rf_size, "baseline", instructions,
                        record_register_events=True)
        report = region_report(benchmark, instructions)
        timings[benchmark] = atomic_event_timing(cell.event_records, report)
    return Fig14Result(timings=timings)
