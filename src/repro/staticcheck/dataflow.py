"""Classic dataflow over the CFG: reaching definitions and liveness.

Both analyses treat program entry as a *virtual definition* of every
architectural register (the machine starts with a valid SRT mapping per
register — the zero-initialized state), and treat every exit — ``HALT``,
or any block with no successors — as using every register (the final
architectural state is the program's observable output, compared against
the golden model by the validation harness).  A "dead store" is
therefore a definition that is re-defined on every path before any use
*including* the final-state read-out, and an "undefined read" is a use
that the entry definition may still reach — suspicious, not fatal, since
registers are zero-initialized.

Def sites are numbered densely (virtual entry defs first) and the sets
are plain integer bitsets, so fixpoints are a few dozen ``int`` ops per
block even for the largest kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa import ArchReg, Program, all_arch_regs
from .cfg import CFG, build_cfg


@dataclass(frozen=True)
class DefSite:
    """One static definition of one register.

    ``pc is None`` is the virtual entry definition (initial SRT mapping).
    """

    id: int
    pc: Optional[int]
    reg: ArchReg


@dataclass(frozen=True)
class Window:
    """A def→redef window: *def_pc* (``None`` = entry) reaches *redef_pc*,
    which redefines the same register, along at least one path."""

    reg: ArchReg
    def_pc: Optional[int]
    redef_pc: int


class DataflowResult:
    """Reaching definitions + liveness of one program."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.program: Program = cfg.program
        self._regs: Tuple[ArchReg, ...] = all_arch_regs()
        self._reg_bit: Dict[ArchReg, int] = {
            reg: i for i, reg in enumerate(self._regs)}
        self._all_regs_mask = (1 << len(self._regs)) - 1

        # -- def-site numbering: entry defs first, then program order ------
        self.def_sites: List[DefSite] = [
            DefSite(i, None, reg) for i, reg in enumerate(self._regs)]
        self._defs_of_reg: Dict[ArchReg, int] = {
            reg: 1 << site.id for site in self.def_sites
            for reg in (site.reg,)}
        self._site_at: Dict[Tuple[int, ArchReg], DefSite] = {}
        for pc, instr in enumerate(self.program.instructions):
            for reg in instr.dests:
                site = DefSite(len(self.def_sites), pc, reg)
                self.def_sites.append(site)
                self._defs_of_reg[reg] |= 1 << site.id
                self._site_at[(pc, reg)] = site

        self._reach_in: List[int] = []
        self._live_out: List[int] = []
        if cfg.blocks:
            self._solve_reaching()
            self._solve_liveness()

    # -- fixpoints --------------------------------------------------------
    def _block_gen_kill(self, block) -> Tuple[int, int]:
        gen = 0
        kill = 0
        for pc in block.pcs():
            for reg in self.program.instructions[pc].dests:
                mask = self._defs_of_reg[reg]
                gen = (gen & ~mask) | (1 << self._site_at[(pc, reg)].id)
                kill |= mask
        return gen, kill

    def _solve_reaching(self) -> None:
        blocks = self.cfg.blocks
        gen_kill = [self._block_gen_kill(b) for b in blocks]
        entry_bits = sum(1 << site.id for site in self.def_sites
                         if site.pc is None)
        self._reach_in = [0] * len(blocks)
        self._reach_in[0] = entry_bits
        out = [gen | (self._reach_in[i] & ~kill)
               for i, (gen, kill) in enumerate(gen_kill)]
        work = list(range(len(blocks)))
        while work:
            index = work.pop()
            block = blocks[index]
            new_in = entry_bits if index == 0 else 0
            for pred in block.preds:
                new_in |= out[pred]
            self._reach_in[index] = new_in
            gen, kill = gen_kill[index]
            new_out = gen | (new_in & ~kill)
            if new_out != out[index]:
                out[index] = new_out
                for succ, _kind in block.succs:
                    if succ not in work:
                        work.append(succ)

    def _solve_liveness(self) -> None:
        blocks = self.cfg.blocks
        use = [0] * len(blocks)
        defs = [0] * len(blocks)
        for i, block in enumerate(blocks):
            u = 0
            d = 0
            for pc in reversed(block.pcs()):
                instr = self.program.instructions[pc]
                dmask = 0
                for reg in instr.dests:
                    dmask |= 1 << self._reg_bit[reg]
                u &= ~dmask
                d |= dmask
                for reg in instr.srcs:
                    u |= 1 << self._reg_bit[reg]
            use[i], defs[i] = u, d
        live_in = [0] * len(blocks)
        self._live_out = [0] * len(blocks)
        work = list(range(len(blocks)))
        while work:
            index = work.pop()
            block = blocks[index]
            if block.succs:
                out = 0
                for succ, _kind in block.succs:
                    out |= live_in[succ]
            else:
                # Exit block: the final architectural state is observable.
                out = self._all_regs_mask
            self._live_out[index] = out
            new_in = use[index] | (out & ~defs[index])
            if new_in != live_in[index]:
                live_in[index] = new_in
                for pred in block.preds:
                    if pred not in work:
                        work.append(pred)

    # -- queries ----------------------------------------------------------
    def _reach_at(self, pc: int) -> int:
        """Def-site bitset reaching *pc* (before the instruction executes)."""
        block = self.cfg.block_of(pc)
        bits = self._reach_in[block.index]
        for q in range(block.start, pc):
            for reg in self.program.instructions[q].dests:
                bits = (bits & ~self._defs_of_reg[reg]) \
                    | (1 << self._site_at[(q, reg)].id)
        return bits

    def defs_reaching(self, pc: int, reg: Optional[ArchReg] = None
                      ) -> List[DefSite]:
        bits = self._reach_at(pc)
        return [site for site in self.def_sites
                if bits >> site.id & 1 and (reg is None or site.reg == reg)]

    def live_after(self, pc: int) -> frozenset:
        """Registers live immediately after the instruction at *pc*."""
        block = self.cfg.block_of(pc)
        live = self._live_out[block.index]
        for q in range(block.end - 1, pc, -1):
            instr = self.program.instructions[q]
            for reg in instr.dests:
                live &= ~(1 << self._reg_bit[reg])
            for reg in instr.srcs:
                live |= 1 << self._reg_bit[reg]
        return frozenset(reg for reg, bit in self._reg_bit.items()
                         if live >> bit & 1)

    def maybe_undefined_reads(self, pc: int) -> List[ArchReg]:
        """Source registers at *pc* the entry definition may still reach."""
        bits = self._reach_at(pc)
        out = []
        for reg in self.program.instructions[pc].srcs:
            entry_id = self._reg_bit[reg]  # entry defs are numbered 0..n_regs
            if bits >> entry_id & 1 and reg not in out:
                out.append(reg)
        return out

    def dead_stores(self) -> List[Tuple[int, ArchReg]]:
        """Definitions whose register is not live after the instruction."""
        out = []
        reachable = self.cfg.reachable()
        for pc, instr in enumerate(self.program.instructions):
            if self.cfg.block_index[pc] not in reachable:
                continue  # unreachable code gets its own finding
            if not instr.dests:
                continue
            live = self.live_after(pc)
            for reg in instr.dests:
                if reg not in live:
                    out.append((pc, reg))
        return out

    def windows(self, reg: Optional[ArchReg] = None) -> List[Window]:
        """Every def→redef window, over all paths (may-reach)."""
        out = []
        for pc, instr in enumerate(self.program.instructions):
            for dest in instr.dests:
                if reg is not None and dest != reg:
                    continue
                for site in self.defs_reaching(pc, dest):
                    out.append(Window(dest, site.pc, pc))
        return out


def analyze_dataflow(program_or_cfg) -> DataflowResult:
    """Run reaching definitions + liveness; accepts a Program or a CFG."""
    cfg = (program_or_cfg if isinstance(program_or_cfg, CFG)
           else build_cfg(program_or_cfg))
    return DataflowResult(cfg)
