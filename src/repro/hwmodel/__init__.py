"""Hardware cost models: gate-level bulk-NER logic, McPAT-lite power/area."""

from .bulklogic import (
    BulkLogicSpec,
    TimingReport,
    build_bulk_ner_circuit,
    evaluate_circuit,
    reference_bulk_ner,
    timing_report,
)
from .gates import Gate, GateKind, Netlist
from .mcpat import (
    CorePowerModel,
    StructureModel,
    area_delta,
    consumer_counter_overhead,
    power_delta,
)

__all__ = [
    "Netlist", "Gate", "GateKind",
    "BulkLogicSpec", "build_bulk_ner_circuit", "reference_bulk_ner",
    "evaluate_circuit", "timing_report", "TimingReport",
    "CorePowerModel", "StructureModel", "area_delta", "power_delta",
    "consumer_counter_overhead",
]
