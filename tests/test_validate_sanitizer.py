"""Online invariant sanitizer: silent on correct schemes, loud on broken ones.

The acceptance case is the buggy-scheme fixture: an ATR variant that skips
the consumer-count and value-ready release guards must be caught by the
sanitizer with a structured use-after-release violation naming the
offending physical register and cycle — not by a downstream crash or a
corrupted final state.
"""

import dataclasses

import pytest

from repro.frontend import final_state, run_program
from repro.isa import assemble
from repro.pipeline import (
    Core,
    DeadlockError,
    InterruptController,
    fast_test_config,
)
from repro.rename.schemes import SCHEME_NAMES, AtrScheme
from repro.validate import InvariantViolation, format_snapshot, pipeline_snapshot

from tests.conftest import ALL_SOURCES

SCHEMES = list(SCHEME_NAMES)


def _sanitized(scheme, rf_size=28, **kwargs):
    config = fast_test_config(rf_size=rf_size, scheme=scheme, **kwargs)
    return dataclasses.replace(config, check_invariants=True)


def _run_checked(program, config, max_instructions=6000):
    golden = final_state(program, max_instructions=max_instructions)
    trace = run_program(program, max_instructions=max_instructions)
    core = Core(config, trace)
    core.run()
    assert not core.architectural_state().diff(golden)
    return core


class TestCleanRuns:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("source", ["branchy", "atomic"])
    def test_all_schemes_run_clean_under_sanitizer(self, scheme, source):
        program = assemble(ALL_SOURCES[source], name=source)
        core = _run_checked(program, _sanitized(scheme, rf_size=26))
        assert core.checker is not None
        assert core.checker.checked_events > 0

    def test_checker_absent_when_disabled(self, loop_trace):
        core = Core(fast_test_config(), loop_trace)
        assert core.checker is None

    def test_sanitizer_is_pure_observation(self, branchy_program):
        """Checking must not perturb timing: identical stats either way."""
        trace = run_program(branchy_program)
        plain = Core(fast_test_config(rf_size=26, scheme="atr"), trace)
        checked = Core(_sanitized("atr", rf_size=26), trace)
        assert plain.run().to_dict() == checked.run().to_dict()


# A register redefined while a long-latency mul still gates its consumer:
# correct ATR must wait for the consumer to issue; the buggy scheme below
# frees the register immediately at redefinition.
BUGGY_SRC = """
    movi r6, 7
    movi r7, 9
    movi r1, 5
    mul r5, r6, r7
    add r2, r5, r1
    movi r1, 9
    halt
"""


class BuggyAtr(AtrScheme):
    """ATR with the safety guards removed: claims and frees the previous
    mapping at rename, ignoring outstanding consumers and value readiness."""

    name = "buggy_atr"

    def post_rename(self, entry, cycle):
        for record in entry.dests:
            ptag = record.release_prev
            if ptag is None:
                continue
            file = self.unit.files[record.file]
            if file.prt.is_no_early_release(ptag):
                continue
            record.release_prev = None
            self.stats.atr_claims += 1
            file.prt.mark_redefined(ptag, cycle)
            self._atr_release(record.file, ptag)  # guards skipped


class TestBrokenSchemeCaught:
    def test_use_after_release_fires_with_diagnostics(self):
        program = assemble(BUGGY_SRC, name="buggy")
        trace = run_program(program)
        config = dataclasses.replace(_sanitized("atr"), lat_int_mul=20,
                                     scheme_debug_checks=False)
        core = Core(config, trace, scheme=BuggyAtr(debug_checks=False))
        with pytest.raises(InvariantViolation) as excinfo:
            core.run()
        violation = excinfo.value
        assert violation.kind == "use-after-release"
        assert violation.ptag is not None
        assert violation.cycle > 0
        assert violation.seq >= 0
        assert violation.snapshot is not None
        text = str(violation)
        assert "use-after-release" in text
        assert f"p{violation.ptag}" in text
        assert f"cycle {violation.cycle}" in text
        assert "pipeline snapshot" in text  # embedded diagnostics

    def test_without_sanitizer_the_bug_reaches_final_state(self):
        """Baseline for the test above: the only other way this bug shows
        up is as silent corruption (or a scheme-internal assertion), which
        is exactly what the online checker preempts."""
        program = assemble(BUGGY_SRC, name="buggy")
        trace = run_program(program)
        config = dataclasses.replace(
            fast_test_config(rf_size=28, scheme="atr"),
            lat_int_mul=20, scheme_debug_checks=False)
        core = Core(config, trace, scheme=BuggyAtr(debug_checks=False))
        core.run()  # no online check -> no InvariantViolation


class TestDeadlockDiagnostics:
    def test_deadlock_error_carries_context(self, branchy_program):
        trace = run_program(branchy_program)
        # A 500-cycle multiply pins the ROB head mid-flight, so the error
        # must name the stuck instruction.
        config = dataclasses.replace(
            fast_test_config(rf_size=26, scheme="atr"), lat_int_mul=500)
        core = Core(config, trace)
        with pytest.raises(DeadlockError) as excinfo:
            core.run(max_cycles=100)
        err = excinfo.value
        assert err.cycle == 100
        assert err.committed >= 0
        assert err.total == len(trace)
        assert err.head_seq is not None
        assert err.head_opcode == "MUL"
        message = str(err)
        assert "at cycle 100" in message
        assert f"{err.committed}/{err.total} committed" in message
        assert f"#{err.head_seq} MUL" in message
        assert "pipeline snapshot" in message  # embedded snapshot
        assert err.snapshot is not None

    def test_snapshot_formats_without_checker(self, loop_trace):
        """pipeline_snapshot works on any core, sanitizer attached or not."""
        core = Core(fast_test_config(), loop_trace)
        core.run()
        snap = pipeline_snapshot(core)
        assert "recent_events" not in snap
        rendered = format_snapshot(snap)
        assert "pipeline snapshot" in rendered
        assert "freelist" in rendered


class TestInterruptConservation:
    @pytest.mark.parametrize("scheme", ["atr", "combined"])
    def test_conservation_after_interrupt_flush_then_drain(
            self, scheme, branchy_program):
        """An interrupt_flush squashes the speculative tail; a later drain
        empties the ROB.  The sanitizer's ROB-empty conservation check
        runs at both points and the final state must still be golden."""
        golden = final_state(branchy_program)
        trace = run_program(branchy_program)
        core = Core(_sanitized(scheme, rf_size=26), trace)
        flush_ctl = InterruptController(core, policy="flush", service_cycles=25)
        flush_ctl.schedule(at_cycle=60)
        flush_ctl.schedule(at_cycle=220)
        core.run()
        assert flush_ctl.stats.serviced == 2
        assert not core.architectural_state().diff(golden)
        core.check_conservation()

    def test_conservation_after_drain_policy(self, branchy_program):
        golden = final_state(branchy_program)
        trace = run_program(branchy_program)
        core = Core(_sanitized("atr", rf_size=26), trace)
        ctl = InterruptController(core, policy="drain", service_cycles=25)
        ctl.schedule(at_cycle=80)
        core.run()
        assert ctl.stats.serviced == 1
        assert not core.architectural_state().diff(golden)
        core.check_conservation()
