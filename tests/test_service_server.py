"""End-to-end service tests: socket API, workers, dedup, crash recovery.

These run a real :class:`SweepService` on a loopback socket with the
real wire protocol; workers use a fake executor (raw payloads) so the
scenarios — coalescing, lease-expiry requeue, warm resubmission — are
exercised in milliseconds instead of simulation-minutes.  One smoke
test at the bottom drives a genuine simulation cell through the full
stack.
"""

import threading
import time

import pytest

from repro.harness import CellSpec, ResultStore, spec_to_dict, sweep
from repro.harness.sweep import set_remote_resolver
from repro.service import (
    JobQueue,
    RemoteBackend,
    ServiceClient,
    ServiceError,
    SweepService,
    remote_resolver,
    use_remote,
    worker_loop,
)

BENCH = "505.mcf_r"


def spec(scheme="atr", rf=64, n=500):
    return CellSpec(BENCH, rf, scheme, n)


def sixteen_cells():
    return [CellSpec(BENCH, rf, scheme, 500)
            for rf in (40, 52, 64, 128)
            for scheme in ("baseline", "nonspec_er", "atr", "combined")]


def fake_executor(cell_spec):
    return {"benchmark": cell_spec.benchmark, "scheme": cell_spec.scheme,
            "rf": cell_spec.rf_size}


class ServiceFixture:
    def __init__(self, tmp_path, lease=0.6):
        self.store = ResultStore(root=tmp_path / "store")
        self.queue = JobQueue(root=tmp_path / "queue", lease=lease)
        self.service = SweepService(queue=self.queue, store=self.store,
                                    port=0)
        self.service.start(reaper_interval=0.1)
        self.client = ServiceClient(self.service.address)
        self._stop = threading.Event()
        self._threads = []

    def start_worker(self, executor=fake_executor, host="w"):
        backend = RemoteBackend(ServiceClient(self.service.address),
                                host=host)
        thread = threading.Thread(
            target=worker_loop,
            kwargs=dict(backend=backend, executor=executor, poll=0.05,
                        stop=self._stop.is_set),
            daemon=True)
        thread.start()
        self._threads.append(thread)
        return thread

    def close(self):
        self._stop.set()
        self.service.stop()
        for thread in self._threads:
            thread.join(5)


@pytest.fixture
def svc(tmp_path):
    fixture = ServiceFixture(tmp_path)
    yield fixture
    fixture.close()


def submit(svc, specs, **kwargs):
    return svc.client.submit([spec_to_dict(s) for s in specs], **kwargs)


def test_ping_reports_fingerprint(svc):
    reply = svc.client.ping()
    assert reply["service"] == "repro"
    assert reply["fingerprint"] == svc.store.fingerprint[:16]


def test_submit_execute_watch_done(svc):
    svc.start_worker()
    receipt = submit(svc, [spec("atr"), spec("baseline")], label="e2e")
    assert receipt["new"] == 2
    final = svc.client.wait(receipt["job"])
    assert final["state"] == "done"
    assert final["done"] == 2
    # Results were written through the shared store by the coordinator.
    assert svc.store.get(spec("atr")) == {
        "benchmark": BENCH, "scheme": "atr", "rf": 64}


def test_watch_streams_progress_then_done(svc):
    svc.start_worker()
    receipt = submit(svc, sixteen_cells())
    events = list(svc.client.watch(receipt["job"], interval=0.05))
    assert events[-1]["event"] == "done"
    assert events[-1]["job"]["done"] == 16
    assert all(e["event"] in ("progress", "done") for e in events)


def test_concurrent_identical_submissions_execute_each_cell_once(svc):
    """The acceptance demo: two concurrent submissions of the same
    16-cell sweep perform each cell exactly once — proven through the
    store's lifetime put counter."""
    cells = sixteen_cells()
    receipts = [None, None]

    def submit_one(slot):
        receipts[slot] = submit(svc, cells, label=f"client{slot}")

    threads = [threading.Thread(target=submit_one, args=(slot,))
               for slot in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(10)

    svc.start_worker()
    for receipt in receipts:
        final = svc.client.wait(receipt["job"])
        assert final["state"] == "done"
        assert final["done"] == 16

    # Exactly one execution per unique cell, no matter how the two
    # submissions interleaved (16 puts, not 32).
    assert svc.store.info()["counters"]["lifetime"]["puts"] == 16
    overlap = (receipts[0]["new"] + receipts[1]["new"],
               receipts[0]["coalesced"] + receipts[1]["coalesced"])
    assert overlap == (16, 16)


def test_warm_resubmission_completes_without_workers(svc):
    svc.start_worker()
    first = submit(svc, sixteen_cells())
    assert svc.client.wait(first["job"])["state"] == "done"
    svc._stop.set()  # no workers from here on
    for thread in svc._threads:
        thread.join(5)

    started = time.monotonic()
    again = submit(svc, sixteen_cells())
    final = svc.client.wait(again["job"])
    elapsed = time.monotonic() - started
    assert again["warm"] == 16
    assert final["state"] == "done"
    assert elapsed < 1.0  # served entirely from the store
    assert svc.store.info()["counters"]["lifetime"]["puts"] == 16


def test_killed_worker_loses_no_cells(svc):
    """Kill a worker process mid-job: lease expiry requeues its cells
    and the job still completes with every cell accounted for."""
    import multiprocessing

    cells = sixteen_cells()
    receipt = submit(svc, cells)

    context = multiprocessing.get_context("fork")
    doomed = context.Process(
        target=_doomed_worker_main, args=(svc.service.address,), daemon=True)
    doomed.start()

    # Wait until the doomed worker holds leases, then kill it cold.
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        status = svc.client.status(receipt["job"])["job"]
        if status["leased"] >= 1:
            break
        time.sleep(0.05)
    else:
        pytest.fail("doomed worker never claimed a cell")
    doomed.kill()
    doomed.join(5)

    svc.start_worker()  # a healthy worker finishes the job
    final = svc.client.wait(receipt["job"])
    assert final["state"] == "done"
    assert final["done"] == len(cells)
    assert final["dead"] == 0
    # Everything the dead worker had leased was requeued and re-run.
    assert svc.queue.stats()["counters"].get("requeued", 0) >= 1
    for cell in cells:
        assert svc.store.get(cell) is not None


def _doomed_worker_main(address):
    backend = RemoteBackend(ServiceClient(address), host="doomed")
    worker_loop(backend, executor=_sleepy_executor, poll=0.02, batch=4)


def _sleepy_executor(cell_spec):
    time.sleep(120)
    return {}


def test_failing_cells_surface_in_job_status(svc):
    def flaky(cell_spec):
        if cell_spec.scheme == "combined":
            raise RuntimeError("synthetic failure")
        return fake_executor(cell_spec)

    svc.start_worker(executor=flaky)
    receipt = submit(svc, [spec("atr"), spec("combined")])
    final = svc.client.wait(receipt["job"])
    assert final["state"] == "failed"
    assert final["done"] == 1
    assert final["dead"] == 1
    assert "synthetic failure" in final["failed_cells"][0]["error"]


def test_cancel_over_the_wire(svc):
    receipt = submit(svc, [spec("atr")])
    assert svc.client.cancel(receipt["job"]) is True
    assert svc.client.status(receipt["job"])["job"]["state"] == "cancelled"
    assert svc.client.cancel("j-nonexistent") is False


def test_protocol_errors_are_structured(svc):
    with pytest.raises(ServiceError, match="unknown op"):
        svc.client.request({"op": "frobnicate"})
    with pytest.raises(ServiceError, match="no specs"):
        svc.client.submit([])
    with pytest.raises(ServiceError, match="unknown job"):
        svc.client.status("j-missing")


def test_fetch_returns_encoded_result_or_none(svc):
    svc.start_worker()
    receipt = submit(svc, [spec("atr")])
    svc.client.wait(receipt["job"])
    payload = svc.client.fetch(spec_to_dict(spec("atr")))
    assert payload == {"kind": "raw",
                       "data": fake_executor(spec("atr"))}
    assert svc.client.fetch(spec_to_dict(spec("baseline", rf=52))) is None


def test_stats_reports_queue_store_and_hosts(svc):
    svc.start_worker(host="bob")
    receipt = submit(svc, [spec()])
    svc.client.wait(receipt["job"])
    stats = svc.client.stats()
    assert stats["queue"]["cells"]["done"] == 1
    assert stats["store"]["counters"]["lifetime"]["puts"] == 1
    assert any(h["host"] == "bob" for h in stats["queue"]["hosts"])


def test_remote_resolver_routes_sweep_through_service(svc, tmp_path):
    """A client-side sweep() resolves its cold cells via the service —
    including over `fetch` when the client has no shared store."""
    svc.start_worker()
    client_store = ResultStore(root=tmp_path / "client-store")
    set_remote_resolver(remote_resolver(svc.client, store=client_store))
    try:
        cells = [spec("atr"), spec("baseline")]
        report = sweep(cells, store=client_store).require_complete()
        assert report.results[spec("atr")] == fake_executor(spec("atr"))
        # Fetched payloads are cached locally: a second sweep is warm.
        report = sweep(cells, store=client_store)
        assert report.hits == 2
    finally:
        set_remote_resolver(None)
    # No local simulation happened: every execution was service-side.
    assert svc.store.info()["counters"]["lifetime"]["puts"] == 2


def test_remote_resolver_reports_remote_failures(svc):
    def broken(cell_spec):
        raise RuntimeError("kaput")

    svc.start_worker(executor=broken)
    set_remote_resolver(remote_resolver(svc.client))
    try:
        report = sweep([spec("atr")], store=None)
        assert len(report.failures) == 1
        assert "remote:" in report.failures[0].error
    finally:
        set_remote_resolver(None)


def test_use_remote_requires_reachable_service(svc):
    assert use_remote("127.0.0.1:1") is None  # nothing listens there
    client = use_remote(svc.service.address)
    try:
        assert client is not None
    finally:
        set_remote_resolver(None)


def test_real_simulation_cell_through_full_stack(svc):
    """One genuine (small) simulation rides the whole service path and
    decodes to the same CellResult a local run produces."""
    from repro.harness import execute_spec, simulate_cell

    svc.start_worker(executor=execute_spec)
    cell = CellSpec(BENCH, 64, "atr", 400)
    receipt = submit(svc, [cell])
    final = svc.client.wait(receipt["job"])
    assert final["state"] == "done"
    remote = svc.store.get(cell)
    local = simulate_cell(cell)
    assert remote.stats == local.stats
    assert remote.ipc == local.ipc
