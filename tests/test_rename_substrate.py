"""Free list, RAT, checkpoint pool, and PRT unit tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rename import (
    CheckpointPool,
    DoubleFreeError,
    FreeList,
    FreeListEmptyError,
    PhysRegTable,
    RegisterAliasTable,
)


class TestFreeList:
    def test_allocates_all_then_empty(self):
        fl = FreeList(4)
        ptags = [fl.allocate() for _ in range(4)]
        assert sorted(ptags) == [0, 1, 2, 3]
        with pytest.raises(FreeListEmptyError):
            fl.allocate()

    def test_free_returns_for_reuse(self):
        fl = FreeList(2)
        a = fl.allocate()
        fl.allocate()
        fl.free(a)
        assert fl.allocate() == a

    def test_fifo_order(self):
        fl = FreeList(3)
        a, b, _c = fl.allocate(), fl.allocate(), fl.allocate()
        fl.free(b)
        fl.free(a)
        assert fl.allocate() == b
        assert fl.allocate() == a

    def test_double_free_detected(self):
        fl = FreeList(2)
        a = fl.allocate()
        fl.free(a)
        with pytest.raises(DoubleFreeError):
            fl.free(a)

    def test_free_of_never_allocated_detected(self):
        fl = FreeList(2)
        with pytest.raises(DoubleFreeError):
            fl.free(0)

    def test_out_of_range_rejected(self):
        fl = FreeList(2)
        with pytest.raises(ValueError):
            fl.free(5)

    def test_watermark_tracks_minimum(self):
        fl = FreeList(4)
        fl.allocate()
        fl.allocate()
        a = fl.allocate()
        fl.free(a)
        assert fl.min_free_watermark == 1

    def test_conservation_check_passes(self):
        fl = FreeList(4)
        live = [fl.allocate(), fl.allocate()]
        fl.check_conservation(live)

    def test_conservation_detects_leak(self):
        fl = FreeList(4)
        fl.allocate()
        with pytest.raises(AssertionError, match="leaked"):
            fl.check_conservation([])

    def test_conservation_detects_overlap(self):
        fl = FreeList(4)
        a = fl.allocate()
        fl.free(a)
        with pytest.raises(AssertionError, match="both"):
            fl.check_conservation([a])

    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(st.booleans(), max_size=200))
    def test_conservation_invariant_under_random_ops(self, ops):
        """Property: alloc/free in any order preserves the partition."""
        fl = FreeList(8)
        live = []
        for do_alloc in ops:
            if do_alloc and fl.free_count:
                live.append(fl.allocate())
            elif live:
                fl.free(live.pop(0))
            fl.check_conservation(live)
            assert fl.free_count + len(live) == 8


class TestRAT:
    def test_initial_identity(self):
        rat = RegisterAliasTable(4)
        assert rat.live_ptags() == (0, 1, 2, 3)

    def test_write_returns_previous(self):
        rat = RegisterAliasTable(4)
        assert rat.write(2, 9) == 2
        assert rat.read(2) == 9

    def test_snapshot_restore(self):
        rat = RegisterAliasTable(4)
        rat.write(0, 8)
        snap = rat.snapshot()
        rat.write(0, 9)
        rat.restore(snap)
        assert rat.read(0) == 8

    def test_snapshot_isolated_from_mutation(self):
        rat = RegisterAliasTable(2)
        snap = rat.snapshot()
        rat.write(0, 5)
        assert snap == (0, 1)

    def test_size_mismatch_rejected(self):
        rat = RegisterAliasTable(2)
        with pytest.raises(ValueError):
            rat.restore((1, 2, 3))


class TestCheckpointPool:
    def test_take_until_full(self):
        pool = CheckpointPool(capacity=2)
        assert pool.take(1, ("a",))
        assert pool.take(2, ("b",))
        assert not pool.take(3, ("c",))
        assert pool.overflowed == 1

    def test_exact_lookup(self):
        pool = CheckpointPool()
        pool.take(5, ("x",))
        assert pool.has_exact(5)
        assert not pool.has_exact(6)

    def test_nearest_older(self):
        pool = CheckpointPool()
        pool.take(2, ("a",))
        pool.take(6, ("b",))
        assert pool.nearest_older(7) == (6, ("b",))
        assert pool.nearest_older(5) == (2, ("a",))
        assert pool.nearest_older(1) is None

    def test_release_older_equal(self):
        pool = CheckpointPool()
        pool.take(2, ("a",))
        pool.take(6, ("b",))
        assert pool.release_older_equal(2) == 1
        assert not pool.has_exact(2)
        assert pool.has_exact(6)

    def test_squash_younger(self):
        pool = CheckpointPool()
        pool.take(2, ("a",))
        pool.take(6, ("b",))
        assert pool.squash_younger(2) == 1
        assert pool.has_exact(2)
        assert not pool.has_exact(6)


class TestPhysRegTable:
    def test_counter_tracks_consumers(self):
        prt = PhysRegTable(8)
        prt.on_allocate(3, cycle=0, seq=0)
        prt.add_consumer(3)
        prt.add_consumer(3)
        assert prt.consumers(3) == 2
        assert not prt.remove_consumer(3)
        assert prt.remove_consumer(3)  # reached zero

    def test_counter_saturates_sticky(self):
        prt = PhysRegTable(8, counter_bits=3)
        prt.on_allocate(0, 0, 0)
        for _ in range(10):
            prt.add_consumer(0)
        assert prt.consumers(0) == prt.overflow
        assert not prt.remove_consumer(0)  # sticky, never reaches zero
        assert prt.consumers(0) == prt.overflow
        assert prt.is_no_early_release(0)
        assert prt.saturation_events == 1

    def test_three_bit_counter_tracks_six(self):
        prt = PhysRegTable(8, counter_bits=3)
        prt.on_allocate(0, 0, 0)
        for _ in range(6):
            prt.add_consumer(0)
        assert prt.consumers(0) == 6
        assert not prt.is_no_early_release(0)

    def test_ner_separate_from_count(self):
        prt = PhysRegTable(8)
        prt.on_allocate(0, 0, 0)
        prt.add_consumer(0)
        prt.mark_ner(0)
        assert prt.is_no_early_release(0)
        assert prt.consumers(0) == 1  # count survives NER marking

    def test_bulk_marking(self):
        prt = PhysRegTable(8)
        for p in range(4):
            prt.on_allocate(p, 0, 0)
        assert prt.bulk_no_early_release([0, 1, 2]) == 3
        assert prt.bulk_no_early_release([0, 1, 2]) == 0  # idempotent
        assert not prt.is_no_early_release(3)

    def test_allocation_resets_state(self):
        prt = PhysRegTable(8)
        prt.on_allocate(0, 0, 0)
        prt.add_consumer(0)
        prt.mark_ner(0)
        prt.mark_redefined(0, 5)
        prt.on_allocate(0, 10, 1)
        assert prt.consumers(0) == 0
        assert not prt.is_no_early_release(0)
        assert not prt.is_redefined(0)
        assert not prt.is_written(0)

    def test_epoch_bumps_per_allocation(self):
        prt = PhysRegTable(8)
        prt.on_allocate(0, 0, 0)
        e1 = prt.epoch(0)
        prt.on_allocate(0, 1, 1)
        assert prt.epoch(0) == e1 + 1

    def test_redefined_visibility_delay(self):
        prt = PhysRegTable(8)
        prt.on_allocate(0, 0, 0)
        prt.mark_redefined(0, visible_cycle=10)
        assert prt.is_redefined(0)
        assert not prt.redefined_visible(0, 9)
        assert prt.redefined_visible(0, 10)

    def test_written_gate(self):
        prt = PhysRegTable(8)
        prt.on_allocate(0, 0, 0)
        assert not prt.is_written(0)
        prt.mark_written(0)
        assert prt.is_written(0)

    def test_initial_entries_born_ready(self):
        prt = PhysRegTable(8)
        assert prt.is_written(0)  # never allocated: architectural state

    def test_undo_consumer_skips_overflow_and_zero(self):
        prt = PhysRegTable(8, counter_bits=2)
        prt.on_allocate(0, 0, 0)
        prt.undo_consumer(0)  # at zero: no-op
        assert prt.consumers(0) == 0
        for _ in range(5):
            prt.add_consumer(0)
        prt.undo_consumer(0)  # at overflow: no-op
        assert prt.consumers(0) == prt.overflow

    def test_minimum_counter_width(self):
        with pytest.raises(ValueError):
            PhysRegTable(8, counter_bits=1)
