"""Worker pools: claim leased cells, execute, write through the store.

A worker is a loop around the queue's lease protocol: claim a batch,
execute each spec through the harness's :func:`execute_spec` (the same
code path the local scheduler forks), report the encoded result back,
repeat.  Two transports implement the same small backend interface:

* :class:`LocalBackend` — direct :class:`~repro.service.queue.JobQueue`
  + :class:`~repro.harness.store.ResultStore` access for workers on the
  coordinator host (and for tests);
* :class:`RemoteBackend` — the socket protocol of
  :class:`~repro.service.api.ServiceClient`, for workers on *other*
  hosts (``repro work --addr coordinator:port``).  Results ride inside
  ``complete``, so remote hosts need no shared filesystem.

Worker death is survived by construction: a killed worker's leases
expire and the queue requeues its cells; a worker whose lease expired
mid-run gets its late ``complete`` rejected (the cell already moved
on) and simply claims fresh work.

Swallowed errors are swallowed *loudly*: every exception the loop
survives (missed heartbeat, failed claim, rejected complete) lands in
an :class:`ErrorTally` — counted per category, rate-limit-logged to
stderr, and shipped to the coordinator inside heartbeats so
``repro status`` surfaces per-host error counters.
"""

from __future__ import annotations

import os
import socket
import sys
import time
import uuid
from typing import Callable, Dict, List, Optional

from ..harness.jobs import execute_spec
from ..harness.serialize import decode_result, encode_result
from ..harness.spec import spec_to_dict
from ..harness.store import ResultStore
from .queue import JobQueue, Lease

#: Seconds an idle worker sleeps between empty claims.
DEFAULT_POLL = 0.25
#: Cells leased per claim round; >1 amortizes queue-lock traffic.
DEFAULT_BATCH = 2
#: Seconds between host heartbeats.
HEARTBEAT_EVERY = 5.0
#: Seconds between repeated log lines for one error category.
ERROR_LOG_EVERY = 5.0


def default_host_id() -> str:
    return socket.gethostname() or "localhost"


def make_owner(host: Optional[str] = None) -> str:
    """A lease-owner identity unique per worker process incarnation."""
    return (f"{host or default_host_id()}/pid{os.getpid()}/"
            f"{uuid.uuid4().hex[:6]}")


def _log_stderr(message: str) -> None:
    print(message, file=sys.stderr)


class ErrorTally:
    """Per-category counters for errors the worker loop survives.

    Replaces the loop's old ``except Exception: pass`` blindspots:
    each swallowed exception is counted, logged at most once per
    *min_interval* seconds per category, and the snapshot rides back
    to the coordinator in heartbeats.
    """

    def __init__(self, log: Callable[[str], None] = _log_stderr,
                 min_interval: float = ERROR_LOG_EVERY,
                 clock: Callable[[], float] = time.monotonic):
        self.counts: Dict[str, int] = {}
        self.log = log
        self.min_interval = min_interval
        self.clock = clock
        self._last_logged: Dict[str, float] = {}

    def record(self, category: str, exc: Exception) -> None:
        self.counts[category] = self.counts.get(category, 0) + 1
        now = self.clock()
        last = self._last_logged.get(category)
        if last is None or now - last >= self.min_interval:
            self._last_logged[category] = now
            self.log(f"repro worker: {category} error "
                     f"#{self.counts[category]}: "
                     f"{type(exc).__name__}: {exc}")

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counts)

    @property
    def total(self) -> int:
        return sum(self.counts.values())


class LocalBackend:
    """Direct queue + store access (coordinator-host workers, tests)."""

    def __init__(self, queue: JobQueue, store: ResultStore,
                 host: Optional[str] = None, workers: int = 1):
        self.queue = queue
        self.store = store
        self.host = host or default_host_id()
        self.workers = workers

    def claim(self, owner: str, max_cells: int) -> List[Lease]:
        return self.queue.claim(owner, max_cells=max_cells)

    def complete(self, owner: str, lease: Lease, payload: Dict,
                 elapsed: float) -> bool:
        # Publish + settle atomically: the store put runs inside the
        # queue's critical section iff this owner still holds the
        # lease, so an expired or duplicate complete never double-puts.
        result = decode_result(payload)
        outcome = self.queue.complete_with(
            lease.digest, owner,
            publish=lambda spec: self.store.put(spec, result, elapsed),
            elapsed=elapsed,
            spec_fallback=spec_to_dict(lease.spec))
        return outcome in ("accepted", "duplicate")

    def fail(self, owner: str, lease: Lease, error: str) -> bool:
        return self.queue.fail(lease.digest, owner, error)

    def heartbeat(self, errors: Optional[Dict] = None) -> None:
        self.queue.heartbeat(self.host, workers=self.workers,
                             meta={"errors": errors} if errors else None)


class RemoteBackend:
    """Socket-protocol access for workers on other hosts."""

    def __init__(self, client, host: Optional[str] = None, workers: int = 1):
        self.client = client
        self.host = host or default_host_id()
        self.workers = workers

    def claim(self, owner: str, max_cells: int) -> List[Lease]:
        return [Lease.from_dict(cell)
                for cell in self.client.claim(owner, self.host, max_cells)]

    def complete(self, owner: str, lease: Lease, payload: Dict,
                 elapsed: float) -> bool:
        return self.client.complete(owner, lease.digest, payload, elapsed,
                                    spec=spec_to_dict(lease.spec))

    def fail(self, owner: str, lease: Lease, error: str) -> bool:
        return self.client.fail(owner, lease.digest, error)

    def heartbeat(self, errors: Optional[Dict] = None) -> None:
        self.client.heartbeat(self.host, workers=self.workers,
                              errors=errors)


def run_one(lease: Lease, executor: Callable = execute_spec) -> Dict:
    """Execute one leased cell; returns the encoded result payload."""
    return encode_result(executor(lease.spec))


def worker_loop(backend, owner: Optional[str] = None,
                executor: Callable = execute_spec,
                poll: float = DEFAULT_POLL,
                batch: int = DEFAULT_BATCH,
                stop: Optional[Callable[[], bool]] = None,
                max_cells: Optional[int] = None,
                errors: Optional[ErrorTally] = None,
                hooks=None) -> int:
    """Pull-execute-report until *stop* says so; returns cells executed.

    *stop* is polled between cells (a worker never abandons a cell it
    started); *max_cells* bounds the loop for tests and drain runs.
    *errors* collects the exceptions the loop survives; *hooks*
    (:class:`~repro.service.faults.WorkerFaultHooks`) plants injected
    crashes at the ``mid-lease``/``mid-complete`` crashpoints — those
    raise :class:`~repro.service.faults.InjectedWorkerCrash` and
    propagate, simulating a worker dying with work in flight.
    """
    owner = owner or make_owner(getattr(backend, "host", None))
    tally = errors if errors is not None else ErrorTally()
    executed = 0
    last_beat = 0.0
    while not (stop and stop()):
        now = time.monotonic()
        if now - last_beat >= HEARTBEAT_EVERY or last_beat == 0.0:
            try:
                backend.heartbeat(errors=tally.snapshot() or None)
            except Exception as exc:
                # A missed heartbeat must not kill the worker.
                tally.record("heartbeat", exc)
            last_beat = now
        try:
            leases = backend.claim(owner, batch)
        except Exception as exc:
            # Coordinator briefly unreachable: back off, try again.
            tally.record("claim", exc)
            time.sleep(poll)
            continue
        if not leases:
            if max_cells is not None and executed >= max_cells:
                break
            time.sleep(poll)
            continue
        if hooks is not None:
            hooks.crashpoint("mid-lease")  # die holding fresh leases
        for lease in leases:
            started = time.monotonic()
            try:
                payload = run_one(lease, executor)
            except Exception as exc:
                try:
                    backend.fail(owner, lease,
                                 f"{type(exc).__name__}: {exc}")
                except Exception as fail_exc:
                    tally.record("fail", fail_exc)
                continue
            elapsed = time.monotonic() - started
            if hooks is not None:
                hooks.crashpoint("mid-complete")  # die result-in-hand
            try:
                backend.complete(owner, lease, payload, elapsed)
            except Exception as exc:
                # The lease may have expired mid-run; the requeued cell
                # will be re-executed by someone holding a live lease.
                tally.record("complete", exc)
            executed += 1
            if max_cells is not None and executed >= max_cells:
                return executed
        if stop and stop():
            break
    return executed


def remote_worker_main(addr: str, host: Optional[str] = None,
                       workers: int = 1,
                       token: Optional[str] = None) -> int:
    """Entry point for one remote worker process (``repro work``)."""
    import signal

    from .api import ServiceClient

    # Forked pool workers inherit the coordinator's SIGTERM handler
    # (which raises KeyboardInterrupt); exit quietly on terminate
    # instead of unwinding with a traceback.
    signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(0))
    backend = RemoteBackend(ServiceClient(addr, token=token),
                            host=host, workers=workers)
    return worker_loop(backend)


def spawn_workers(addr: str, count: int, host: Optional[str] = None,
                  token: Optional[str] = None):
    """Fork *count* worker processes against *addr*; returns them."""
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - exotic platforms
        context = multiprocessing.get_context()
    processes = []
    for _ in range(count):
        process = context.Process(
            target=remote_worker_main, args=(addr, host, count, token),
            daemon=True)
        process.start()
        processes.append(process)
    return processes
