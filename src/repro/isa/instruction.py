"""Static instruction representation.

An :class:`Instruction` is one slot of a :class:`~repro.isa.program.Program`.
Program counters are instruction indices (the machine is word-addressed for
code); ``I_BYTES`` converts a PC into a byte address for the instruction
cache and fetch-target logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import (
    Opcode,
    OpClass,
    breaks_atomic_region,
    breaks_region_control,
    is_conditional_branch,
    is_control,
    is_indirect,
    is_load,
    is_memory,
    is_store,
    may_except,
    op_class,
)
from .registers import ArchReg

#: Nominal instruction size in bytes (for icache / fetch-target addressing).
I_BYTES = 4


@dataclass(frozen=True)
class Instruction:
    """A static instruction.

    Attributes:
        opcode: The operation.
        dests: Architectural destination registers (0..2 entries; CMP/TEST
            write FLAGS, CALL writes the link register).
        srcs: Architectural source registers in operand order.
        imm: Immediate operand (also the displacement of memory operands).
        target: Static branch/jump/call target PC, if direct control flow.
        label: Optional label naming this instruction's address.
    """

    opcode: Opcode
    dests: Tuple[ArchReg, ...] = ()
    srcs: Tuple[ArchReg, ...] = ()
    imm: int = 0
    target: Optional[int] = None
    label: Optional[str] = None
    comment: str = field(default="", compare=False)

    # -- classification ----------------------------------------------------
    # Classification is a pure function of the opcode, but the pipeline
    # reads these flags millions of times per simulated run; precomputing
    # them as plain instance attributes (instead of properties doing a
    # dict lookup per read) keeps the fetch/rename/issue hot paths free of
    # classification work.  They are intentionally NOT dataclass fields —
    # equality, hashing, repr, ``fields()``/``asdict()`` and
    # ``dataclasses.replace`` see only the declared fields above
    # (``replace`` re-runs ``__post_init__``, so the cache never goes
    # stale).  Cached: op_class, is_control, is_conditional_branch,
    # is_indirect, is_memory, is_load, is_store, may_except,
    # breaks_region_control, breaks_atomic_region (paper section 4.2.2),
    # is_halt.

    def __post_init__(self) -> None:
        op = self.opcode
        set_attr = object.__setattr__  # frozen dataclass
        set_attr(self, "op_class", op_class(op))
        set_attr(self, "is_control", is_control(op))
        set_attr(self, "is_conditional_branch", is_conditional_branch(op))
        set_attr(self, "is_indirect", is_indirect(op))
        set_attr(self, "is_memory", is_memory(op))
        set_attr(self, "is_load", is_load(op))
        set_attr(self, "is_store", is_store(op))
        set_attr(self, "may_except", may_except(op))
        set_attr(self, "breaks_region_control", breaks_region_control(op))
        set_attr(self, "breaks_atomic_region", breaks_atomic_region(op))
        set_attr(self, "is_halt", op is Opcode.HALT)

    # -- display -----------------------------------------------------------
    def render(self) -> str:
        """Assembly text for this instruction.

        Implicit operands (the FLAGS destination of CMP/TEST, the FLAGS
        source of branches and SELECT, the link register of CALL/RET) are
        omitted so the text round-trips through the assembler.
        """
        op = self.opcode
        if op in (Opcode.CMP, Opcode.TEST):
            operands = [s.name for s in self.srcs]
        elif op is Opcode.SELECT:
            operands = [self.dests[0].name] + [s.name for s in self.srcs[1:]]
        elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
                    Opcode.JMP, Opcode.CALL):
            operands = [f"@{self.target}"]
        elif op is Opcode.RET:
            operands = []
        elif op is Opcode.JR:
            operands = [self.srcs[0].name]
        else:
            operands = [d.name for d in self.dests] + [s.name for s in self.srcs]
            if op in (Opcode.MOVI, Opcode.LEA, Opcode.SHL, Opcode.SHR) or self.is_memory:
                operands.append(str(self.imm))
        if operands:
            return f"{op.value} {', '.join(operands)}"
        return op.value

    def __str__(self) -> str:
        return self.render()


def validate_instruction(instr: Instruction) -> None:
    """Check basic operand-shape invariants; raise ValueError on violation.

    The builder and assembler construct well-formed instructions, but traces
    may be deserialized from external files, so this is exposed publicly.
    """
    opcode = instr.opcode
    if instr.is_control and not instr.is_indirect and opcode is not Opcode.HALT:
        if instr.target is None:
            raise ValueError(f"direct control-flow without target: {instr}")
    if instr.is_indirect and not instr.srcs:
        raise ValueError(f"indirect control-flow without source register: {instr}")
    if instr.is_load and not instr.dests:
        raise ValueError(f"load without destination: {instr}")
    if instr.is_store and instr.dests:
        raise ValueError(f"store with destination: {instr}")
    if opcode in (Opcode.NOP, Opcode.HALT) and (instr.dests or instr.srcs):
        raise ValueError(f"{opcode.value} takes no operands")
