"""Dataflow queries and the static atomic-region pass.

The property test at the bottom is the branch-free exactness leg of the
soundness oracle: on straight-line programs the static chain walk must
reproduce the dynamic ``classify_regions`` verdict window for window.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import FLAGS, ProgramBuilder, ireg
from repro.staticcheck import (
    analyze_dataflow,
    analyze_regions,
    branch_free_counts_match,
    compare_branch_free,
)

r = ireg


def _window(report, reg, def_pc):
    hits = [w for w in report.windows if w.reg == reg and w.def_pc == def_pc]
    assert len(hits) == 1, hits
    return hits[0]


class TestDataflow:
    def test_straight_line_def_use(self):
        b = ProgramBuilder()
        b.movi(r(1), 5)              # 0
        b.add(r(2), r(1), r(1))      # 1
        b.movi(r(1), 9)              # 2
        b.halt()
        df = analyze_dataflow(b.build())
        sites = df.defs_reaching(2, r(1))
        assert [s.pc for s in sites] == [0]
        assert df.maybe_undefined_reads(1) == []

    def test_undefined_read_on_one_path(self):
        b = ProgramBuilder()
        b.test(r(4), r(4))           # 0 (r4 undef read here too)
        b.beq("skip")                # 1
        b.movi(r(3), 1)              # 2
        b.label("skip")
        b.add(r(5), r(3), r(3))      # 3: r3 undefined when branch taken
        b.halt()
        df = analyze_dataflow(b.build())
        assert r(3) in df.maybe_undefined_reads(3)
        # Both the entry def and pc 2 reach the join.
        assert {s.pc for s in df.defs_reaching(3, r(3))} == {None, 2}

    def test_dead_store_requires_redef_on_every_path(self):
        b = ProgramBuilder()
        b.movi(r(1), 1)              # 0: dead — both paths redefine r1
        b.test(r(2), r(2))           # 1
        b.beq("other")               # 2
        b.movi(r(1), 2)              # 3
        b.jmp("end")                 # 4
        b.label("other")
        b.movi(r(1), 3)              # 5
        b.label("end")
        b.add(r(4), r(1), r(1))      # 6
        b.halt()
        df = analyze_dataflow(b.build())
        dead = df.dead_stores()
        assert (0, r(1)) in dead
        assert (3, r(1)) not in dead and (5, r(1)) not in dead

    def test_final_state_counts_as_use(self):
        b = ProgramBuilder()
        b.movi(r(1), 7)              # never read, but observable at halt
        b.halt()
        df = analyze_dataflow(b.build())
        assert df.dead_stores() == []
        assert r(1) in df.live_after(0)

    def test_loop_carried_window(self):
        b = ProgramBuilder()
        b.movi(r(1), 4)              # 0
        b.label("head")
        b.sub(r(1), r(1), r(1))      # 1: redefines r1; def 1 reaches itself
        b.test(r(1), r(1))           # 2
        b.bne("head")                # 3
        b.halt()
        df = analyze_dataflow(b.build())
        windows = df.windows(r(1))
        # The virtual entry def reaches the first write, def 0 reaches the
        # loop body, and the body's def reaches itself via the back edge.
        assert {(w.def_pc, w.redef_pc) for w in windows} == {
            (None, 0), (0, 1), (1, 1)}


class TestStaticRegions:
    def test_straight_line_atomic(self):
        b = ProgramBuilder()
        b.movi(r(1), 5)              # 0
        b.add(r(2), r(1), r(1))      # 1: consumer x2
        b.movi(r(1), 9)              # 2: redefines -> window closes
        b.halt()
        w = _window(analyze_regions(b.build()), r(1), 0)
        assert w.redef_pc == 2 and w.consumers == 2
        assert w.atomic

    def test_branch_breaks_region(self):
        b = ProgramBuilder()
        b.movi(r(1), 5)              # 0
        b.test(r(2), r(2))           # 1
        b.beq(3)                     # 2: breaker between def and redef
        b.movi(r(1), 9)              # 3
        b.halt()
        w = _window(analyze_regions(b.build()), r(1), 0)
        assert not w.closed and not w.atomic
        assert w.breaker == "beq@2"

    def test_excepting_instruction_declassifies(self):
        b = ProgramBuilder()
        b.movi(r(2), 64)             # 0
        b.movi(r(1), 5)              # 1
        b.ld(r(3), r(2))             # 2: may fault
        b.movi(r(1), 9)              # 3
        b.halt()
        w = _window(analyze_regions(b.build()), r(1), 1)
        assert w.closed and w.non_branch and not w.non_except
        assert not w.atomic

    def test_excepting_redefiner_declassifies_itself(self):
        """A faulting redefiner would be flushed, un-redefining the
        register — the dynamic classifier clears non_except before the
        dest closes the chain, and the static walk must match."""
        b = ProgramBuilder()
        b.movi(r(2), 64)             # 0
        b.movi(r(1), 5)              # 1
        b.ld(r(1), r(2))             # 2: redefiner is itself excepting
        b.halt()
        w = _window(analyze_regions(b.build()), r(1), 1)
        assert w.closed and not w.non_except and not w.atomic

    def test_jmp_does_not_break(self):
        b = ProgramBuilder()
        b.movi(r(1), 5)              # 0
        b.jmp("next")                # 1: never mispredicts -> no breaker
        b.halt()                     # 2 (dead)
        b.label("next")
        b.movi(r(1), 9)              # 3
        b.halt()
        w = _window(analyze_regions(b.build()), r(1), 0)
        assert w.redef_pc == 3 and w.atomic

    def test_redef_in_callee_is_atomic(self):
        """CALL follows the decode-provided target without forking the
        stream, so a window closed inside the callee stays atomic."""
        b = ProgramBuilder()
        b.movi(r(1), 5)              # 0
        b.call("fn")                 # 1
        b.halt()                     # 2
        b.label("fn")
        b.movi(r(1), 9)              # 3: redefines inside the callee
        b.ret()                      # 4
        w = _window(analyze_regions(b.build()), r(1), 0)
        assert w.redef_pc == 3 and w.atomic

    def test_region_spanning_call_and_ret_is_non_atomic(self):
        """Def before CALL, redef after the callee returns: the RET is a
        region breaker, so the window must not be provable atomic."""
        b = ProgramBuilder()
        b.movi(r(1), 5)              # 0
        b.call("fn")                 # 1
        b.movi(r(1), 9)              # 2: redef back in the caller
        b.halt()                     # 3
        b.label("fn")
        b.add(r(2), r(2), r(2))      # 4
        b.ret()                      # 5
        w = _window(analyze_regions(b.build()), r(1), 0)
        assert not w.closed and not w.atomic
        assert w.breaker == "ret@5"

    def test_entry_window_from_virtual_def(self):
        b = ProgramBuilder()
        b.add(r(2), r(1), r(1))      # 0: reads the initial mapping of r1
        b.movi(r(1), 9)              # 1
        b.halt()
        w = _window(analyze_regions(b.build()), r(1), None)
        assert w.redef_pc == 1 and w.consumers == 2 and w.atomic

    def test_jmp_loop_without_redef_never_closes(self):
        b = ProgramBuilder()
        b.movi(r(1), 5)              # 0
        b.label("spin")
        b.add(r(2), r(2), r(2))      # 1
        b.jmp("spin")                # 2: revisit -> chain cannot close
        w = _window(analyze_regions(b.build()), r(1), 0)
        assert not w.closed and w.breaker == "revisit"

    def test_flags_windows_are_tracked(self):
        b = ProgramBuilder()
        b.test(r(1), r(1))           # 0: defines FLAGS
        b.cmp(r(1), r(2))            # 1: redefines FLAGS
        b.halt()
        w = _window(analyze_regions(b.build()), FLAGS, 0)
        assert w.redef_pc == 1 and w.atomic


class TestBranchFreeExactness:
    def test_hand_built_program_matches(self):
        b = ProgramBuilder()
        b.movi(r(1), 12)             # addresses
        b.movi(r(2), 7)
        b.st(r(2), r(1))
        b.ld(r(3), r(1))
        b.div(r(4), r(3), r(2))
        b.add(r(2), r(3), r(4))
        b.jmp("tail")
        b.movi(r(5), 99)             # dead code: static-only window, dropped
        b.label("tail")
        b.mov(r(3), r(2))
        b.halt()
        program = b.build()
        sides = compare_branch_free(program)
        assert sides["static"] == sides["dynamic"]
        assert sides["dynamic"]  # non-vacuous: some windows closed

    def test_rejects_branches(self):
        b = ProgramBuilder()
        b.test(r(1), r(1))
        b.beq(2)
        b.halt()
        try:
            compare_branch_free(b.build())
        except ValueError as exc:
            assert "region-breaking" in str(exc)
        else:
            raise AssertionError("expected ValueError")


# -- property test: static never disagrees with dynamic on straight-line --

_DEST = st.integers(min_value=1, max_value=6)
_SRC = st.integers(min_value=1, max_value=6)

_OP = st.one_of(
    st.tuples(st.just("add"), _DEST, _SRC, _SRC),
    st.tuples(st.just("sub"), _DEST, _SRC, _SRC),
    st.tuples(st.just("mul"), _DEST, _SRC, _SRC),
    st.tuples(st.just("mov"), _DEST, _SRC, _SRC),
    st.tuples(st.just("movi"), _DEST, st.integers(0, 100), _SRC),
    st.tuples(st.just("div"), _DEST, _SRC, _SRC),   # divisor pinned to r7
    st.tuples(st.just("ld"), _DEST, _SRC, _SRC),    # base pinned to r8
    st.tuples(st.just("st"), _DEST, _SRC, _SRC),
)


def _build_straight_line(ops):
    b = ProgramBuilder("prop")
    for i in range(1, 7):
        b.movi(r(i), i)
    b.movi(r(7), 3)      # nonzero divisor, never redefined
    b.movi(r(8), 64)     # valid memory base, never redefined
    for kind, dest, a, c in ops:
        if kind == "add":
            b.add(r(dest), r(a), r(c))
        elif kind == "sub":
            b.sub(r(dest), r(a), r(c))
        elif kind == "mul":
            b.mul(r(dest), r(a), r(c))
        elif kind == "mov":
            b.mov(r(dest), r(a))
        elif kind == "movi":
            b.movi(r(dest), a)
        elif kind == "div":
            b.div(r(dest), r(a), r(7))
        elif kind == "ld":
            b.ld(r(dest), r(8), disp=8 * a)
        elif kind == "st":
            b.st(r(a), r(8), disp=8 * dest)
    b.halt()
    return b.build()


class TestStraightLineProperty:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_OP, min_size=1, max_size=40))
    def test_static_matches_dynamic_exactly(self, ops):
        """On any straight-line program the static pass is exact: same
        windows, same consumer counts, same classification — so a static
        ``atomic`` verdict is never weaker (or stronger) than what
        ``classify_regions`` observes on the trace."""
        program = _build_straight_line(ops)
        sides = compare_branch_free(program)
        assert sides["static"] == sides["dynamic"]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(_OP, min_size=1, max_size=25))
    def test_counts_helper_agrees(self, ops):
        assert branch_free_counts_match(_build_straight_line(ops))
