"""Flush: misprediction recovery and interrupt-window squash.

Event-driven rather than per-cycle: the execute stage invokes
:meth:`FlushStage.flush_from` when a mispredicted branch resolves, and
the interrupt controller invokes :meth:`FlushStage.interrupt_flush`
(via ``Core.interrupt_flush``) to squash the speculative tail at the
precommit boundary (paper section 4.1, option (b)).
"""

from __future__ import annotations

from . import Stage


class FlushStage(Stage):
    """Squash, SRT restore, scheme reclamation, frontend restart."""

    name = "flush"

    def __init__(self, state):
        super().__init__(state)
        config = self.config
        self.rob = state.rob
        self.scheme = state.scheme
        self.rename_unit = state.rename_unit
        self.checkpoints = state.checkpoints
        self.branch_unit = state.branch_unit
        self.stats = state.stats
        self.redirect_penalty = config.redirect_penalty
        self.checkpoint_recovery_cycles = config.checkpoint_recovery_cycles
        self.recovery_walk_width = config.recovery_walk_width

    def run(self, state, cycle: int) -> None:
        """Flush has no unconditional per-cycle work."""

    # -- branch misprediction ----------------------------------------------------
    def flush_from(self, state, branch_entry, cycle: int) -> None:
        """Misprediction recovery at branch resolution."""
        seq = branch_entry.seq
        flushed = self.rob.flush_younger(seq)
        self.stats.flushes += 1
        self.stats.flushed_instructions += len(flushed)

        self._restore_srt(flushed)
        probes = state.probes
        if probes is not None:
            for fn in probes.flush:
                fn(flushed, "branch", cycle)
        # Scheme reclamation (ATR's two-bit walk lives here).
        self.scheme.on_flush(flushed, cycle)
        self._release_flushed_resources(state, flushed)
        self._restart_frontend(state)
        if state.wp_ras_snapshot is not None:
            self.branch_unit.ras.restore(state.wp_ras_snapshot)
            state.wp_ras_snapshot = None

        # Recovery timing: exact checkpoint vs walk.
        if self.checkpoints.has_exact(seq):
            recovery = self.checkpoint_recovery_cycles
        else:
            recovery = max(
                self.checkpoint_recovery_cycles,
                (len(flushed) + self.recovery_walk_width - 1)
                // self.recovery_walk_width,
            )
        self.checkpoints.squash_younger(seq)
        state.fetch_stall_until = cycle + self.redirect_penalty + recovery

    # -- interrupt squash --------------------------------------------------------
    def interrupt_flush(self, state, cycle: int) -> int:
        """Squash the *speculative* tail of the window for interrupt
        service (paper section 4.1, option (b)) and rewind fetch.

        The flush boundary is the precommit pointer: precommitted
        instructions are guaranteed to commit — an early-release scheme
        may already have freed their previous registers — so they drain
        normally while everything younger is squashed.  The caller (the
        interrupt controller) has established via the open-region counter
        that no ATR claim crosses that boundary; ATR's flush-walk
        assertions enforce it in debug mode.

        Returns the number of squashed instructions.
        """
        rob = self.rob
        boundary_offset = rob.precommit_offset
        if len(rob) > boundary_offset:
            if boundary_offset > 0:
                boundary_seq = rob.at_offset(boundary_offset - 1).seq
            else:
                boundary_seq = rob.head().seq - 1
            flushed = rob.flush_younger(boundary_seq)
            self.stats.flushes += 1
            self.stats.flushed_instructions += len(flushed)
            self._restore_srt(flushed)
            probes = state.probes
            if probes is not None:
                for fn in probes.flush:
                    fn(flushed, "interrupt", cycle)
            self.scheme.on_flush(flushed, cycle)
            self._release_flushed_resources(state, flushed)
            flushed_count = len(flushed)
        else:
            flushed_count = 0

        # Restart fetch after the youngest surviving correct-path
        # instruction (committed or still draining).
        resume = state.last_committed_trace_seq
        for entry in rob.in_flight():
            if entry.dyn.trace_seq > resume:
                resume = entry.dyn.trace_seq
        self._restart_frontend(state)
        state.wp_ras_snapshot = None
        state.cursor = resume + 1
        self.checkpoints.squash_younger(-1)
        return flushed_count

    # -- shared plumbing ---------------------------------------------------------
    def _restore_srt(self, flushed) -> None:
        """Restore the SRT by the backward walk over previous ptags."""
        files = self.rename_unit.files
        for entry in flushed:
            for record in entry.dests:
                files[record.file].rat.write(record.slot, record.prev_ptag)

    def _restart_frontend(self, state) -> None:
        state.fetch_queue.clear()
        state.fq_head = 0
        state.wrong_path = False
        state.wrong_pc = None
        state.stalled_for_resolve = False
        state.last_fetch_block = -1

    def _release_flushed_resources(self, state, flushed) -> None:
        ptag_ready = state.ptag_ready
        for entry in flushed:
            if not entry.issued:
                state.rs_used -= 1
            instr = entry.instr
            if instr.is_load:
                state.lq_used -= 1
            if instr.is_store:
                state.sq_used -= 1
                state.stores.pop(entry.seq, None)
                state.drop_store_words(entry)
            for record in entry.dests:
                ptag_ready[record.file][record.new_ptag] = True
            state.results.pop(entry.seq, None)
        if flushed:
            flushed_seqs = {e.seq for e in flushed}
            state.store_order[:] = [
                s for s in state.store_order if s not in flushed_seqs
            ]
