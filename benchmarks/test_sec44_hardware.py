"""Section 4.4: synthesis of the bulk no-early-release logic and the
consumer-counter storage overheads."""

import pytest

from repro.experiments import expectations, sec44

from conftest import emit


def test_sec44_hardware(benchmark):
    result = benchmark.pedantic(sec44.run, rounds=1, iterations=1)
    emit(result)
    # Paper: 2,960 gates; ours lands within 25%.
    assert abs(result.timing.gates - expectations.SEC44_GATES) / expectations.SEC44_GATES < 0.25
    # Un-pipelined frequency in the GHz regime; 2 extra stages clear 4 GHz.
    assert result.timing.max_frequency_ghz > 1.5
    assert result.timing.frequency_with_pipelining(3) > 4.0
    assert result.counter_overhead_int == pytest.approx(3 / 64)
    assert result.counter_overhead_vec == pytest.approx(3 / 256)
