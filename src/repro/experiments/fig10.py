"""Figure 10: IPC speedup over the baseline at 64 and 224 registers.

Four schemes per benchmark: baseline, nonspec-ER, ATR ("atomic"), and the
combined scheme.  The paper's headline comparison: at 64 registers ATR
gains 5.70% (int) / 4.69% (fp), nonspec-ER gains 13.91% / 14.43%, and
combined adds 3.23% / 3.27% on top of nonspec-ER.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from . import expectations
from .report import compare_line, format_table, pct, shorten
from .runner import (
    cell_spec,
    default_fp_suite,
    default_instructions,
    default_int_suite,
    mean,
    prime_cells,
    run_cell,
    speedup,
)

SCHEMES = ("nonspec_er", "atr", "combined")
DEFAULT_SIZES = (64, 224)


@dataclass
class Fig10Result:
    sizes: Sequence[int]
    int_benchmarks: Sequence[str]
    fp_benchmarks: Sequence[str]
    #: (benchmark, rf_size, scheme) -> speedup over baseline
    speedups: Dict[Tuple[str, int, str], float]

    def average(self, which: str, rf_size: int, scheme: str) -> float:
        suite = self.int_benchmarks if which == "int" else self.fp_benchmarks
        return mean(self.speedups[(b, rf_size, scheme)] for b in suite)

    def combined_over_nonspec(self, which: str, rf_size: int) -> float:
        suite = self.int_benchmarks if which == "int" else self.fp_benchmarks
        gains = []
        for benchmark in suite:
            combined = 1 + self.speedups[(benchmark, rf_size, "combined")]
            nonspec = 1 + self.speedups[(benchmark, rf_size, "nonspec_er")]
            gains.append(combined / nonspec - 1)
        return mean(gains)

    def render(self) -> str:
        blocks = []
        for rf_size in self.sizes:
            rows = []
            for benchmark in list(self.int_benchmarks) + list(self.fp_benchmarks):
                rows.append(
                    [shorten(benchmark)]
                    + [pct(self.speedups[(benchmark, rf_size, s)]) for s in SCHEMES]
                )
            rows.append(["INT AVERAGE"] + [pct(self.average("int", rf_size, s)) for s in SCHEMES])
            rows.append(["FP AVERAGE"] + [pct(self.average("fp", rf_size, s)) for s in SCHEMES])
            blocks.append(format_table(
                ["benchmark", "nonspec_er", "atr", "combined"], rows,
                title=f"Figure 10: speedup over baseline, {rf_size} registers"))
        e = expectations.FIG10
        lines = blocks + [
            "",
            compare_line("atr int @64", self.average("int", 64, "atr"), e[(64, "atr", "int")]),
            compare_line("atr fp  @64", self.average("fp", 64, "atr"), e[(64, "atr", "fp")]),
            compare_line("nonspec int @64", self.average("int", 64, "nonspec_er"),
                         e[(64, "nonspec_er", "int")]),
            compare_line("nonspec fp  @64", self.average("fp", 64, "nonspec_er"),
                         e[(64, "nonspec_er", "fp")]),
            compare_line("combined-over-nonspec int @64",
                         self.combined_over_nonspec("int", 64),
                         e[(64, "combined_over_nonspec", "int")]),
            compare_line("combined-over-nonspec fp  @64",
                         self.combined_over_nonspec("fp", 64),
                         e[(64, "combined_over_nonspec", "fp")]),
        ]
        if 224 in self.sizes:
            lines += [
                compare_line("atr int @224", self.average("int", 224, "atr"),
                             e[(224, "atr", "int")]),
                compare_line("atr fp  @224", self.average("fp", 224, "atr"),
                             e[(224, "atr", "fp")]),
            ]
        return "\n".join(lines)


def run(
    int_benchmarks: Optional[Sequence[str]] = None,
    fp_benchmarks: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    instructions: Optional[int] = None,
    jobs: Optional[int] = None,
) -> Fig10Result:
    int_benchmarks = list(default_int_suite() if int_benchmarks is None else int_benchmarks)
    fp_benchmarks = list(default_fp_suite() if fp_benchmarks is None else fp_benchmarks)
    instructions = instructions or default_instructions()
    if jobs is not None:
        prime_cells(
            [cell_spec(b, rf_size, scheme, instructions)
             for b in int_benchmarks + fp_benchmarks
             for rf_size in sizes
             for scheme in ("baseline",) + SCHEMES],
            jobs=jobs,
        )
    speedups: Dict[Tuple[str, int, str], float] = {}
    for benchmark in int_benchmarks + fp_benchmarks:
        for rf_size in sizes:
            base = run_cell(benchmark, rf_size, "baseline", instructions)
            for scheme in SCHEMES:
                cell = run_cell(benchmark, rf_size, scheme, instructions)
                speedups[(benchmark, rf_size, scheme)] = speedup(cell.ipc, base.ipc)
    return Fig10Result(
        sizes=sizes,
        int_benchmarks=int_benchmarks,
        fp_benchmarks=fp_benchmarks,
        speedups=speedups,
    )
