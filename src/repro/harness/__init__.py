"""repro.harness — parallel sweep engine with a persistent result store.

The experiment layer used to simulate one cell at a time in-process,
with a cache that died with the interpreter.  This package makes sweep
execution a first-class subsystem:

* **job model** (:mod:`.spec`, :mod:`.jobs`): hashable `CellSpec` /
  `RegionSpec` identify one unit of work; `execute_spec` produces the
  result in any process.
* **serialization** (:mod:`.serialize`): one JSON encoding for both the
  worker pipe and the on-disk store.
* **store** (:mod:`.store`): content-addressed cache under
  ``~/.cache/repro`` (``$REPRO_CACHE_DIR``), keyed by spec digest and a
  code-version fingerprint — warm across invocations, auto-invalidated
  on simulator edits.
* **scheduler** (:mod:`.scheduler`): shards cold specs over forked
  workers (``--jobs N``), per-cell timeout + one retry, serial fallback.
* **progress** (:mod:`.progress`): live narration + end-of-sweep summary.
* **sweep** (:mod:`.sweep`): the one call sites use — dedup, warm-cache
  lookup, schedule, persist.
"""

from .jobs import (
    CellResult,
    analyze_regions,
    execute_spec,
    execute_spec_diagnose,
    simulate_cell,
)
from .progress import SweepProgress
from .scheduler import CellFailure, default_timeout, resolve_jobs, run_specs
from .serialize import (
    decode_cell_result,
    decode_result,
    encode_cell_result,
    encode_result,
)
from .spec import (
    DETAILED,
    CellSpec,
    RegionSpec,
    Spec,
    TierPolicy,
    register_spec_type,
    spec_digest,
    spec_from_dict,
    spec_to_dict,
)
from .store import (
    ResultStore,
    cache_root,
    code_fingerprint,
    default_store,
    fingerprint_sources,
)
from .sweep import (
    SweepError,
    SweepReport,
    get_default_progress,
    get_remote_resolver,
    set_default_progress,
    set_remote_resolver,
    sweep,
)

__all__ = [
    "CellSpec", "RegionSpec", "Spec", "TierPolicy", "DETAILED",
    "spec_digest", "spec_to_dict", "spec_from_dict", "register_spec_type",
    "CellResult", "execute_spec", "execute_spec_diagnose", "simulate_cell",
    "analyze_regions",
    "encode_result", "decode_result", "encode_cell_result", "decode_cell_result",
    "ResultStore", "default_store", "cache_root", "code_fingerprint",
    "fingerprint_sources",
    "CellFailure", "run_specs", "resolve_jobs", "default_timeout",
    "SweepProgress",
    "sweep", "SweepReport", "SweepError",
    "set_default_progress", "get_default_progress",
    "set_remote_resolver", "get_remote_resolver",
]
