"""Scheduler: sharding, failure isolation, per-cell timeout with retry.

Custom executors run in forked workers, so closures over tmp_path work;
marker files let an executor behave differently on its second attempt.
"""

import os
import time

from repro.harness import CellSpec, run_specs

SPECS = [CellSpec(name, 64, "atr", 100) for name in ("a", "b", "c")]


def _echo(spec):
    return {"name": spec.benchmark}


class TestSharding:
    def test_parallel_runs_every_spec(self):
        results, failures = run_specs(SPECS, jobs=2, executor=_echo)
        assert not failures
        assert {spec.benchmark for spec, _r in results} == {"a", "b", "c"}
        assert all(result == {"name": spec.benchmark} for spec, result in results)

    def test_serial_runs_in_process(self):
        pids = []

        def executor(spec):
            pids.append(os.getpid())
            return spec.benchmark

        results, failures = run_specs(SPECS, jobs=1, executor=executor)
        assert not failures and len(results) == 3
        assert set(pids) == {os.getpid()}

    def test_parallel_runs_out_of_process(self):
        def executor(spec):
            return os.getpid()

        results, failures = run_specs(SPECS, jobs=2, executor=executor)
        assert not failures
        assert os.getpid() not in {result for _spec, result in results}


class TestFailureIsolation:
    def test_one_bad_cell_does_not_sink_the_sweep(self):
        def executor(spec):
            if spec.benchmark == "b":
                raise ValueError("injected")
            return spec.benchmark

        results, failures = run_specs(SPECS, jobs=2, retries=0, executor=executor)
        assert {spec.benchmark for spec, _r in results} == {"a", "c"}
        assert len(failures) == 1
        assert failures[0].spec.benchmark == "b"
        assert "injected" in failures[0].error

    def test_worker_death_is_an_error_not_a_hang(self):
        def executor(spec):
            os._exit(3)

        results, failures = run_specs(SPECS[:1], jobs=2, retries=0,
                                      executor=executor)
        assert not results
        assert len(failures) == 1
        assert "worker died" in failures[0].error

    def test_exception_retried_then_succeeds(self, tmp_path):
        def executor(spec):
            marker = tmp_path / spec.benchmark
            if not marker.exists():
                marker.write_text("tried")
                raise RuntimeError("transient")
            return "recovered"

        results, failures = run_specs(SPECS[:1], jobs=2, retries=1,
                                      executor=executor)
        assert not failures
        assert results[0][1] == "recovered"

    def test_serial_retry_matches_parallel_semantics(self, tmp_path):
        def executor(spec):
            marker = tmp_path / spec.benchmark
            if not marker.exists():
                marker.write_text("tried")
                raise RuntimeError("transient")
            return "recovered"

        results, failures = run_specs(SPECS[:1], jobs=1, retries=1,
                                      executor=executor)
        assert not failures
        assert results[0][1] == "recovered"


class TestTimeout:
    def test_hanging_cell_times_out_then_retry_succeeds(self, tmp_path):
        def executor(spec):
            marker = tmp_path / spec.benchmark
            if not marker.exists():
                marker.write_text("hung")
                time.sleep(60)
            return "after-retry"

        started = time.monotonic()
        results, failures = run_specs(SPECS[:1], jobs=2, timeout=1.0,
                                      retries=1, executor=executor)
        assert time.monotonic() - started < 30  # terminated, not joined
        assert not failures
        assert results[0][1] == "after-retry"

    def test_persistent_hang_exhausts_retries(self):
        def executor(spec):
            time.sleep(60)

        results, failures = run_specs(SPECS[:1], jobs=2, timeout=0.5,
                                      retries=1, executor=executor)
        assert not results
        assert len(failures) == 1
        assert failures[0].attempts == 2
        assert "timeout" in failures[0].error
