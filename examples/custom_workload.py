#!/usr/bin/env python
"""Bring your own workload: assembly text or a statistical profile.

Shows the two ways to feed the simulator something that is not a SPEC
stand-in kernel: (a) write a kernel in the text assembly language, (b)
describe a workload statistically and synthesize it.  Both are validated
against the functional emulator before timing simulation.

Run:  python examples/custom_workload.py
"""

from repro.frontend import final_state, run_program
from repro.isa import assemble
from repro.pipeline import Core, golden_cove_config
from repro.workloads import WorkloadProfile, synthesize

_DATA_WORDS = "\n".join(
    f"    .word {0x10000 + 8 * i} {i % 17}\n    .word {0x20000 + 8 * i} {i % 13}"
    for i in range(512)
)

DOT_PRODUCT = f"""
; dot product with a blocked accumulator (atomic-region friendly)
{_DATA_WORDS}
    movi r1, 512        ; elements
    movi r2, 0x10000    ; a[]
    movi r3, 0x20000    ; b[]
    movi r4, 1
    movi r6, 0          ; sum
loop:
    ld r7, r2, 0
    ld r8, r3, 0
    mul r9, r7, r8      ; r9 is a block-local temp ...
    shr r9, r9, 4       ; ... redefined immediately (atomic region)
    add r6, r6, r9
    lea r2, r2, 8
    lea r3, r3, 8
    sub r1, r1, r4
    test r1, r1
    bne loop
    halt
"""


def run_trace(trace, label: str) -> None:
    for scheme in ("baseline", "combined"):
        core = Core(golden_cove_config(rf_size=64, scheme=scheme), trace)
        stats = core.run()
        print(f"  {label:24} {scheme:10} IPC {stats.ipc:.3f}  "
              f"early frees {core.scheme.stats.early_frees}")


def main() -> None:
    # (a) hand-written assembly
    program = assemble(DOT_PRODUCT, name="dot")
    golden = final_state(program)
    print(f"dot product: architectural sum = {golden.int_regs[6]}")
    run_trace(run_program(program), "hand-written asm")

    # (b) statistical synthesis
    profile = WorkloadProfile(
        name="my_workload",
        alu_weight=6, load_weight=2, store_weight=1,
        branch_prob=0.5, taken_bias=0.6, block_length=8,
        working_set=4096, seed=2024,
    )
    trace = run_program(synthesize(profile, iterations=20),
                        max_instructions=8000)
    print(f"\nsynthesized profile: {trace.summary()}")
    run_trace(trace, "synthesized profile")


if __name__ == "__main__":
    main()
