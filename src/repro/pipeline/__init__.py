"""Cycle-level out-of-order core (Golden-Cove-like, paper Table 1).

The package is organised as a staged pipeline: ``state`` holds every
mutable field (:class:`PipelineState`), ``stages`` holds one module per
per-cycle phase, ``probes`` is the zero-cost-when-off observer layer,
and ``core`` is the thin orchestrator tying them together.
"""

from .config import CORE_CONFIGS, CoreConfig, core_config, fast_test_config, golden_cove_config
from .core import Core, DeadlockError, simulate
from .interrupts import InterruptController, InterruptStats
from .probes import (
    PHASE_ORDER,
    PROBE_EVENTS,
    Probe,
    ProbeManager,
    RecordingProbe,
    RegisterEventProbe,
)
from .rob import ROBEntry, ReorderBuffer
from .state import FetchedInstr, PipelineState, StoreRecord, build_state
from .stats import RegisterEventLog, RegisterLifetime, SimStats
from .warmup import WarmupState, apply_warmup, fast_forward

__all__ = [
    "CoreConfig", "golden_cove_config", "fast_test_config",
    "CORE_CONFIGS", "core_config",
    "Core", "simulate", "DeadlockError",
    "InterruptController", "InterruptStats",
    "ReorderBuffer", "ROBEntry",
    "SimStats", "RegisterEventLog", "RegisterLifetime",
    "PipelineState", "FetchedInstr", "StoreRecord", "build_state",
    "Probe", "ProbeManager", "RecordingProbe", "RegisterEventProbe",
    "PROBE_EVENTS", "PHASE_ORDER",
    "WarmupState", "fast_forward", "apply_warmup",
]
