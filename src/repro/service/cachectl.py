"""Cache management: eviction policy + ``repro cache gc``.

The store itself only ever grows (every new code fingerprint opens a
fresh generation; old ones linger).  This module implements the
reclamation side:

* **age rule** (``--max-age SECS``): entries not read or written for
  longer than the limit are evicted (the store touches an entry's mtime
  on every hit, so mtime is a last-use clock);
* **size rule** (``--max-bytes N``): evict least-recently-used entries
  until the cache fits, preferring entries of *stale* generations (any
  ``v-*`` directory other than the current fingerprint's) before
  touching warm current-generation results.

Evictions are counted into the store's lifetime ``stats.json``, so
``repro cache info`` shows hit/miss/put/eviction totals side by side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..harness.store import ResultStore


@dataclass
class CacheEntry:
    """One cached result file, with the facts eviction needs."""

    path: Path
    bytes: int
    mtime: float
    generation: str
    current: bool


@dataclass
class GcReport:
    """What one gc pass did."""

    scanned: int
    removed: int
    freed_bytes: int
    kept: int
    kept_bytes: int

    def render(self) -> str:
        return (f"cache gc: removed {self.removed}/{self.scanned} entries "
                f"({self.freed_bytes} bytes freed), "
                f"kept {self.kept} ({self.kept_bytes} bytes)")


def scan_entries(store: ResultStore) -> List[CacheEntry]:
    """Every result entry under the store root, all generations."""
    entries: List[CacheEntry] = []
    if not store.root.is_dir():
        return entries
    for directory in sorted(store.root.glob("v-*")):
        current = directory == store.generation_dir
        for path in directory.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with a concurrent eviction
            entries.append(CacheEntry(path, stat.st_size, stat.st_mtime,
                                      directory.name, current))
    return entries


def plan_gc(entries: List[CacheEntry],
            max_bytes: Optional[int] = None,
            max_age: Optional[float] = None,
            now: Optional[float] = None) -> List[CacheEntry]:
    """The entries a gc pass should evict, in eviction order."""
    now = time.time() if now is None else now
    doomed: List[CacheEntry] = []
    doomed_paths = set()

    if max_age is not None:
        for entry in entries:
            if now - entry.mtime > max_age:
                doomed.append(entry)
                doomed_paths.add(entry.path)

    if max_bytes is not None:
        survivors = [e for e in entries if e.path not in doomed_paths]
        total = sum(e.bytes for e in survivors)
        # Stale generations first, then least recently used.
        survivors.sort(key=lambda e: (e.current, e.mtime))
        for entry in survivors:
            if total <= max_bytes:
                break
            doomed.append(entry)
            doomed_paths.add(entry.path)
            total -= entry.bytes
    return doomed


def run_gc(store: ResultStore,
           max_bytes: Optional[int] = None,
           max_age: Optional[float] = None,
           now: Optional[float] = None) -> GcReport:
    """Apply the eviction policy; empty generation dirs are pruned."""
    entries = scan_entries(store)
    doomed = plan_gc(entries, max_bytes=max_bytes, max_age=max_age, now=now)
    removed = 0
    freed = 0
    for entry in doomed:
        try:
            entry.path.unlink()
        except OSError:
            continue
        removed += 1
        freed += entry.bytes
    if removed:
        store._bump(evictions=removed)
    # Prune generation directories emptied by this pass.
    for directory in store.root.glob("v-*"):
        try:
            next(directory.iterdir())
        except StopIteration:
            try:
                directory.rmdir()
            except OSError:
                pass
        except OSError:
            pass
    kept = len(entries) - removed
    kept_bytes = sum(e.bytes for e in entries) - freed
    return GcReport(scanned=len(entries), removed=removed, freed_bytes=freed,
                    kept=kept, kept_bytes=kept_bytes)


def cache_report(store: ResultStore) -> Dict:
    """``repro cache info`` payload: layout + counters in one dict."""
    info = store.info()
    counters = info["counters"]["lifetime"]
    lookups = counters.get("hits", 0) + counters.get("misses", 0)
    info["hit_rate"] = (counters.get("hits", 0) / lookups) if lookups else None
    return info
