"""Figure 13: effect of pipelining the register redefinition logic.

The bulk no-early-release logic may need 1-2 pipeline stages to meet
clock (section 4.4); that delays the redefinition signal by the same
number of cycles.  Because consumption almost always happens well after
redefinition (Figure 14), the performance cost is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from . import expectations
from .report import format_table, pct, shorten
from .runner import (
    cell_spec,
    default_instructions,
    default_int_suite,
    mean,
    prime_cells,
    run_cell,
    speedup,
)

DELAYS = (0, 1, 2)


@dataclass
class Fig13Result:
    benchmarks: Sequence[str]
    rf_size: int
    #: (benchmark, delay) -> ATR speedup over baseline
    speedups: Dict[Tuple[str, int], float]

    def average(self, delay: int) -> float:
        return mean(self.speedups[(b, delay)] for b in self.benchmarks)

    def max_degradation(self) -> float:
        """Worst average-IPC loss of delay 1/2 relative to delay 0."""
        base = 1 + self.average(0)
        worst = 0.0
        for delay in DELAYS[1:]:
            worst = max(worst, 1 - (1 + self.average(delay)) / base)
        return worst

    def render(self) -> str:
        headers = ["benchmark"] + [f"delay={d}" for d in DELAYS]
        rows = [
            [shorten(b)] + [pct(self.speedups[(b, d)]) for d in DELAYS]
            for b in self.benchmarks
        ]
        rows.append(["AVERAGE"] + [pct(self.average(d)) for d in DELAYS])
        table = format_table(headers, rows,
                             title=f"Figure 13: ATR speedup with pipelined "
                                   f"redefinition ({self.rf_size} registers)")
        return (
            f"{table}\n\n"
            f"max average degradation from pipelining: "
            f"{self.max_degradation() * 100:.2f}% "
            f"(paper: negligible, < {expectations.FIG13_MAX_DEGRADATION * 100:.0f}%)"
        )


def run(
    benchmarks: Optional[Sequence[str]] = None,
    rf_size: int = 64,
    instructions: Optional[int] = None,
    jobs: Optional[int] = None,
) -> Fig13Result:
    benchmarks = list(default_int_suite() if benchmarks is None else benchmarks)
    instructions = instructions or default_instructions()
    if jobs is not None:
        prime_cells(
            [cell_spec(b, rf_size, "baseline", instructions) for b in benchmarks]
            + [cell_spec(b, rf_size, "atr", instructions, redefine_delay=d)
               for b in benchmarks for d in DELAYS],
            jobs=jobs,
        )
    speedups: Dict[Tuple[str, int], float] = {}
    for benchmark in benchmarks:
        base = run_cell(benchmark, rf_size, "baseline", instructions)
        for delay in DELAYS:
            cell = run_cell(benchmark, rf_size, "atr", instructions,
                            redefine_delay=delay)
            speedups[(benchmark, delay)] = speedup(cell.ipc, base.ipc)
    return Fig13Result(benchmarks=benchmarks, rf_size=rf_size, speedups=speedups)
