"""Findings: the common currency of every lint pass.

A :class:`Finding` pins one defect to one instruction: a stable rule ID
(machine-matchable, used by inline suppressions and by tests), a
severity, and a source location rendered as ``program:pc [label+off]``
so a finding can be located in ``Program.disassemble()`` output.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..isa import Program


class Severity(enum.Enum):
    """Finding severity: errors make the program meaningless to run,
    warnings flag code that is suspicious but executable."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to one instruction."""

    rule: str
    severity: Severity
    program: str
    pc: int
    message: str
    suppressed: bool = False

    def location(self, prog: Optional[Program] = None) -> str:
        """``program:pc [label+offset]`` using the nearest preceding label."""
        where = f"{self.program}:{self.pc}"
        if prog is not None:
            anchor = _nearest_label(prog, self.pc)
            if anchor is not None:
                name, offset = anchor
                where += f" [{name}+{offset}]" if offset else f" [{name}]"
        return where

    def render(self, prog: Optional[Program] = None) -> str:
        tag = "suppressed " if self.suppressed else ""
        line = f"{self.location(prog)}: {tag}{self.severity}: {self.rule}: {self.message}"
        if prog is not None and prog.at(self.pc) is not None:
            line += f"\n    {self.pc:5d}  {prog.at(self.pc).render()}"
        return line


def _nearest_label(prog: Program, pc: int):
    for back in range(pc, -1, -1):
        instr = prog.at(back)
        if instr is not None and instr.label:
            return instr.label, pc - back
    return None


def render_findings(findings: Iterable[Finding],
                    prog: Optional[Program] = None) -> str:
    """Multi-line rendering, errors first, then by PC."""
    ordered: List[Finding] = sorted(
        findings, key=lambda f: (f.severity is not Severity.ERROR, f.pc, f.rule))
    return "\n".join(f.render(prog) for f in ordered)
