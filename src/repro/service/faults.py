"""Deterministic, seeded fault injection for the sweep service.

The service's headline guarantee — every submitted cell executes exactly
once and its result survives — is only trustworthy if it holds when the
world turns hostile: sockets drop mid-line, workers die holding leases,
``index.json`` is torn by a crashed writer, clocks jump.  This module
makes that hostility *reproducible*: a :class:`ServiceFaultSpec` (one
integer seed plus an intensity) derives a :class:`FaultPlan` — a pure,
bit-replayable schedule of faults across all four service layers —

* **transport**: connections refused or reset, replies dropped,
  truncated mid-line (partial writes), or delayed past the client
  timeout;
* **queue filesystem**: torn or garbage ``index.json`` / cell-record
  writes (simulating a crashed non-atomic writer), flock contention
  stalls;
* **workers**: crash after claiming (mid-lease) or after executing but
  before reporting (mid-complete), plus forward clock-skew jumps that
  expire live leases early;
* **coordinator**: full restarts with leases in flight.

A :class:`FaultInjector` executes the plan at runtime seams threaded
through :mod:`.queue`, :mod:`.server`, and :mod:`.worker` — every seam
is a ``None`` check when no injector is installed, so the fault layer
is fully off (and free) by default.  Fault decisions key off
per-category event *counters* ("the 3rd ``claim`` reply is dropped"),
so the plan is a pure function of the spec: two runs with the same seed
plan the identical schedule, byte for byte (``FaultPlan.digest()``).

:mod:`repro.validate.servicechaos` drives seeded schedules against a
live serve/work topology and asserts the exactly-once invariants.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

#: Ops the transport layer may fault.  ``watch`` is deliberately exempt
#: (streams are not retried) and ``shutdown`` must always land.
FAULTED_OPS = ("submit", "claim", "complete", "fail", "status", "fetch",
               "heartbeat")

#: Transport fault kinds.  ``refuse``/``reset`` kill the connection
#: before the request is processed; ``drop``/``partial`` after; ``delay``
#: stalls the reply past the client timeout.
TRANSPORT_KINDS = ("refuse", "reset", "drop", "partial", "delay")

#: Queue-filesystem fault kinds applied to a just-written JSON file.
QUEUEFS_KINDS = ("torn", "garbage")

#: Worker crash phases (see :func:`repro.service.worker.worker_loop`).
CRASH_PHASES = ("mid-lease", "mid-complete")

#: Per-intensity fault magnitudes.
FAULT_INTENSITIES = {
    "low": dict(p_transport=0.06, p_index=0.06, p_cell=0.04, p_lock=0.04,
                crashes=1, restarts=0, skews=0, horizon=80),
    "medium": dict(p_transport=0.14, p_index=0.12, p_cell=0.08, p_lock=0.08,
                   crashes=2, restarts=1, skews=1, horizon=140),
    "high": dict(p_transport=0.25, p_index=0.20, p_cell=0.14, p_lock=0.12,
                 crashes=4, restarts=2, skews=2, horizon=220),
}


class InjectedWorkerCrash(RuntimeError):
    """Raised at a planned worker crashpoint: the worker dies on the
    spot, abandoning whatever leases it holds."""


@dataclass(frozen=True)
class ServiceFaultSpec:
    """One seeded service-chaos schedule: topology shape + fault seed."""

    seed: int
    cells: int = 12
    workers: int = 3
    intensity: str = "medium"
    lease: float = 0.6
    client_timeout: float = 0.6

    kind = "servicechaos"

    def describe(self) -> str:
        return (f"servicechaos#{self.seed}({self.intensity}) "
                f"{self.cells}c/{self.workers}w")

    def rng(self) -> random.Random:
        """The plan RNG.  ``random.Random`` seeds strings via SHA-512,
        independent of ``PYTHONHASHSEED`` and the host process."""
        return random.Random(
            f"servicefaults|s{self.seed}|{self.intensity}"
            f"|c{self.cells}|w{self.workers}")


@dataclass
class FaultPlan:
    """A fully materialized fault schedule — pure data, derived from a
    :class:`ServiceFaultSpec` alone, so it is bit-replayable."""

    #: op -> {event index -> (kind, param)}.
    transport: Dict[str, Dict[int, Tuple[str, float]]] = field(
        default_factory=dict)
    #: index-write counter -> kind.
    index_writes: Dict[int, str] = field(default_factory=dict)
    #: cell-write counter -> kind.
    cell_writes: Dict[int, str] = field(default_factory=dict)
    #: lock-acquire counter -> stall seconds.
    lock_stalls: Dict[int, float] = field(default_factory=dict)
    #: worker slot -> {phase -> event indices}.
    worker_crashes: Dict[int, Dict[str, List[int]]] = field(
        default_factory=dict)
    #: total-op counts at which the coordinator restarts.
    restarts: List[int] = field(default_factory=list)
    #: claim-op counter -> forward clock jump (seconds).
    clock_skews: Dict[int, float] = field(default_factory=dict)

    @classmethod
    def from_spec(cls, spec: ServiceFaultSpec) -> "FaultPlan":
        if spec.intensity not in FAULT_INTENSITIES:
            raise ValueError(
                f"unknown intensity {spec.intensity!r}; "
                f"expected one of {sorted(FAULT_INTENSITIES)}")
        knobs = FAULT_INTENSITIES[spec.intensity]
        rng = spec.rng()
        plan = cls()
        horizon = knobs["horizon"]
        for op in FAULTED_OPS:
            entries: Dict[int, Tuple[str, float]] = {}
            for i in range(horizon):
                if rng.random() < knobs["p_transport"]:
                    kind = rng.choice(TRANSPORT_KINDS)
                    param = 0.0
                    if kind == "delay":
                        # Just past the client timeout: forces a retry.
                        param = round(
                            spec.client_timeout * rng.uniform(1.3, 2.0), 3)
                    entries[i] = (kind, param)
            if entries:
                plan.transport[op] = entries
        plan.index_writes = {
            i: rng.choice(QUEUEFS_KINDS) for i in range(horizon)
            if rng.random() < knobs["p_index"]}
        plan.cell_writes = {
            i: rng.choice(QUEUEFS_KINDS) for i in range(horizon)
            if rng.random() < knobs["p_cell"]}
        plan.lock_stalls = {
            i: round(rng.uniform(0.005, 0.04), 4) for i in range(horizon)
            if rng.random() < knobs["p_lock"]}
        for _ in range(knobs["crashes"]):
            slot = rng.randrange(max(1, spec.workers))
            phase = rng.choice(CRASH_PHASES)
            index = rng.randint(0, 3)  # early, so the crash actually fires
            plan.worker_crashes.setdefault(slot, {}).setdefault(
                phase, []).append(index)
        plan.restarts = sorted(rng.randint(8, 60)
                               for _ in range(knobs["restarts"]))
        plan.clock_skews = {
            rng.randint(1, 8): round(spec.lease * rng.uniform(1.1, 2.0), 3)
            for _ in range(knobs["skews"])}
        return plan

    def to_dict(self) -> Dict:
        return {
            "transport": {op: {str(i): list(entry)
                               for i, entry in sorted(entries.items())}
                          for op, entries in sorted(self.transport.items())},
            "index_writes": {str(i): kind for i, kind
                             in sorted(self.index_writes.items())},
            "cell_writes": {str(i): kind for i, kind
                            in sorted(self.cell_writes.items())},
            "lock_stalls": {str(i): stall for i, stall
                            in sorted(self.lock_stalls.items())},
            "worker_crashes": {str(slot): {phase: sorted(idx)
                                           for phase, idx
                                           in sorted(phases.items())}
                               for slot, phases
                               in sorted(self.worker_crashes.items())},
            "restarts": list(self.restarts),
            "clock_skews": {str(i): jump for i, jump
                            in sorted(self.clock_skews.items())},
        }

    def digest(self) -> str:
        """Stable content hash — the bit-replayability witness."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def classes(self) -> List[str]:
        """Which fault classes this plan exercises."""
        out = []
        if self.transport:
            out.append("transport")
        if self.index_writes or self.cell_writes or self.lock_stalls:
            out.append("queuefs")
        if self.worker_crashes or self.clock_skews:
            out.append("worker")
        if self.restarts:
            out.append("coordinator")
        return out


class SkewedClock:
    """``time.time`` plus a forward-only offset the injector can bump.

    Handed to :class:`~repro.service.queue.JobQueue` as its clock so a
    planned skew jump instantly expires live leases — the clock-skew
    lease-expiry fault class.
    """

    def __init__(self, base: Callable[[], float] = time.time):
        self._base = base
        self._offset = 0.0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._base() + self._offset

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("SkewedClock only skews forward")
        with self._lock:
            self._offset += seconds

    @property
    def offset(self) -> float:
        with self._lock:
            return self._offset


class FaultInjector:
    """Executes a :class:`FaultPlan` at the service's runtime seams.

    Thread-safe; every decision keys off a per-category event counter so
    the *plan* is deterministic even though thread interleaving is not.
    ``disarm()`` turns every seam into a no-op (the campaign's drain
    phase); ``fired`` records each fault that actually triggered.
    """

    def __init__(self, spec: ServiceFaultSpec,
                 plan: Optional[FaultPlan] = None):
        self.spec = spec
        self.plan = plan if plan is not None else FaultPlan.from_spec(spec)
        self.armed = True
        self.fired: List[Tuple[str, str, int, str]] = []
        self.clock: Optional[SkewedClock] = None
        self._lock = threading.Lock()
        self._op_counts: Dict[str, int] = {}
        self._total_ops = 0
        self._index_writes = 0
        self._cell_writes = 0
        self._lock_acquires = 0
        self._claims = 0
        self._worker_claims: Dict[int, int] = {}
        self._worker_completes: Dict[int, int] = {}
        self._pending_restarts = list(self.plan.restarts)
        self.restart_requested = threading.Event()

    # -- lifecycle ---------------------------------------------------------------
    def disarm(self) -> None:
        """Stop injecting (drain phase); counters keep advancing."""
        self.armed = False

    def attach_clock(self, clock: SkewedClock) -> None:
        self.clock = clock

    def _record(self, layer: str, kind: str, index: int,
                target: str = "") -> None:
        self.fired.append((layer, kind, index, target))

    def fired_by_class(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for layer, _kind, _index, _target in self.fired:
            out[layer] = out.get(layer, 0) + 1
        return out

    # -- transport (server handler) ----------------------------------------------
    def transport_action(self, op: str) -> Optional[Tuple[str, float]]:
        """The planned fault for this op arrival, or None."""
        with self._lock:
            self._total_ops += 1
            if (self._pending_restarts
                    and self._total_ops >= self._pending_restarts[0]):
                self._pending_restarts.pop(0)
                self.restart_requested.set()
            if op == "claim":
                index = self._claims
                self._claims += 1
                jump = self.plan.clock_skews.get(index)
                if (self.armed and jump and self.clock is not None):
                    self.clock.advance(jump)
                    self._record("worker", "clock-skew", index, f"+{jump}s")
            count = self._op_counts.get(op, 0)
            self._op_counts[op] = count + 1
            if not self.armed:
                return None
            entry = self.plan.transport.get(op, {}).get(count)
            if entry is None:
                return None
            self._record("transport", entry[0], count, op)
            return entry

    # -- queue filesystem ----------------------------------------------------------
    def _mangle(self, path: Path, kind: str) -> None:
        """Simulate a torn/garbled write by a crashed non-atomic writer."""
        try:
            if kind == "torn":
                data = path.read_bytes()
                path.write_bytes(data[:max(1, len(data) // 2)])
            else:  # garbage
                path.write_bytes(b'{"pending": [1, ')
        except OSError:
            pass

    def after_index_write(self, path: Path) -> None:
        with self._lock:
            index = self._index_writes
            self._index_writes += 1
            if not self.armed:
                return
            kind = self.plan.index_writes.get(index)
            if kind is None:
                return
            self._record("queuefs", f"index-{kind}", index)
        self._mangle(path, kind)

    def after_cell_write(self, path: Path) -> None:
        with self._lock:
            index = self._cell_writes
            self._cell_writes += 1
            if not self.armed:
                return
            kind = self.plan.cell_writes.get(index)
            if kind is None:
                return
            self._record("queuefs", f"cell-{kind}", index, path.name)
        self._mangle(path, kind)

    def lock_stall(self) -> None:
        with self._lock:
            index = self._lock_acquires
            self._lock_acquires += 1
            if not self.armed:
                return
            stall = self.plan.lock_stalls.get(index)
            if stall is None:
                return
            self._record("queuefs", "lock-stall", index, f"{stall}s")
        time.sleep(stall)

    # -- workers -------------------------------------------------------------------
    def worker_crashpoint(self, slot: int, phase: str) -> None:
        """Raise :class:`InjectedWorkerCrash` if this (slot, phase)
        event index is planned to die."""
        with self._lock:
            counts = (self._worker_claims if phase == "mid-lease"
                      else self._worker_completes)
            index = counts.get(slot, 0)
            counts[slot] = index + 1
            if not self.armed:
                return
            planned = self.plan.worker_crashes.get(slot, {}).get(phase, ())
            if index not in planned:
                return
            self._record("worker", f"crash-{phase}", index, f"slot{slot}")
        raise InjectedWorkerCrash(f"planned crash: worker {slot} {phase} "
                                  f"event {index}")

    # -- coordinator -----------------------------------------------------------------
    def take_restart_request(self) -> bool:
        """True once per planned restart whose op-count threshold passed."""
        if self.restart_requested.is_set():
            self.restart_requested.clear()
            self._record("coordinator", "restart", self._total_ops)
            return True
        return False


class WorkerFaultHooks:
    """Per-worker adapter binding an injector to one worker slot.

    Slots beyond the planned topology (supervisor respawns) never crash
    — the plan only covers slots ``0..workers-1``.
    """

    def __init__(self, injector: FaultInjector, slot: int):
        self.injector = injector
        self.slot = slot

    def crashpoint(self, phase: str) -> None:
        self.injector.worker_crashpoint(self.slot, phase)
