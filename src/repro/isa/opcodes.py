"""Opcode taxonomy of the reproduction ISA.

The classification here drives everything ATR cares about:

* **conditional branches / indirect jumps** end atomic regions because a
  misprediction flushes only the instructions *younger* than the branch;
* **exception-causing instructions** (loads, stores, integer/vector divide)
  end atomic regions because a precise exception must flush younger
  instructions while committing older ones;
* direct unconditional jumps and calls do *not* end regions — they cannot
  mispredict once the BTB knows them and cannot fault in our machine model
  (the paper's regions likewise only exclude conditional branches, indirect
  jumps, and exception-causing instructions).
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Execution class; selects functional unit and latency."""

    # Enum members are singletons, so the identity hash is valid and much
    # cheaper than Enum's default name-string hash in dict-heavy hot paths
    # (latency tables, port groups, per-file state keyed by class).
    __hash__ = object.__hash__

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"  # conditional
    JUMP = "jump"  # direct unconditional
    JUMP_INDIRECT = "jump_indirect"
    CALL = "call"  # direct call
    RETURN = "return"  # indirect via return address
    VEC_ALU = "vec_alu"
    VEC_MUL = "vec_mul"
    VEC_DIV = "vec_div"
    VEC_LOAD = "vec_load"
    VEC_STORE = "vec_store"
    NOP = "nop"
    HALT = "halt"


class Opcode(enum.Enum):
    """Static opcodes.  The value is the assembly mnemonic."""

    __hash__ = object.__hash__

    # Integer ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    NOT = "not"
    NEG = "neg"
    MOV = "mov"
    MOVI = "movi"
    LEA = "lea"  # add with immediate, no flags (paper Fig. 5 uses LEA)
    CMP = "cmp"  # writes FLAGS only
    TEST = "test"  # writes FLAGS only
    SELECT = "select"  # conditional move, reads FLAGS

    # Integer multiply / divide
    MUL = "mul"
    DIV = "div"  # exception-causing (divide by zero)
    MOD = "mod"  # exception-causing

    # Memory
    LD = "ld"
    ST = "st"

    # Control flow
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"
    JR = "jr"  # indirect jump through register
    CALL = "call"
    RET = "ret"

    # Vector
    VADD = "vadd"
    VSUB = "vsub"
    VMUL = "vmul"
    VFMA = "vfma"
    VDIV = "vdiv"
    VBROADCAST = "vbroadcast"
    VLD = "vld"
    VST = "vst"
    VREDUCE = "vreduce"  # horizontal add into an int register

    # Misc
    NOP = "nop"
    HALT = "halt"


_OP_CLASS = {
    Opcode.ADD: OpClass.INT_ALU,
    Opcode.SUB: OpClass.INT_ALU,
    Opcode.AND: OpClass.INT_ALU,
    Opcode.OR: OpClass.INT_ALU,
    Opcode.XOR: OpClass.INT_ALU,
    Opcode.SHL: OpClass.INT_ALU,
    Opcode.SHR: OpClass.INT_ALU,
    Opcode.NOT: OpClass.INT_ALU,
    Opcode.NEG: OpClass.INT_ALU,
    Opcode.MOV: OpClass.INT_ALU,
    Opcode.MOVI: OpClass.INT_ALU,
    Opcode.LEA: OpClass.INT_ALU,
    Opcode.CMP: OpClass.INT_ALU,
    Opcode.TEST: OpClass.INT_ALU,
    Opcode.SELECT: OpClass.INT_ALU,
    Opcode.MUL: OpClass.INT_MUL,
    Opcode.DIV: OpClass.INT_DIV,
    Opcode.MOD: OpClass.INT_DIV,
    Opcode.LD: OpClass.LOAD,
    Opcode.ST: OpClass.STORE,
    Opcode.BEQ: OpClass.BRANCH,
    Opcode.BNE: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.JMP: OpClass.JUMP,
    Opcode.JR: OpClass.JUMP_INDIRECT,
    Opcode.CALL: OpClass.CALL,
    Opcode.RET: OpClass.RETURN,
    Opcode.VADD: OpClass.VEC_ALU,
    Opcode.VSUB: OpClass.VEC_ALU,
    Opcode.VMUL: OpClass.VEC_MUL,
    Opcode.VFMA: OpClass.VEC_MUL,
    Opcode.VDIV: OpClass.VEC_DIV,
    Opcode.VBROADCAST: OpClass.VEC_ALU,
    Opcode.VLD: OpClass.VEC_LOAD,
    Opcode.VST: OpClass.VEC_STORE,
    Opcode.VREDUCE: OpClass.VEC_ALU,
    Opcode.NOP: OpClass.NOP,
    Opcode.HALT: OpClass.HALT,
}

_CONTROL_CLASSES = frozenset(
    {
        OpClass.BRANCH,
        OpClass.JUMP,
        OpClass.JUMP_INDIRECT,
        OpClass.CALL,
        OpClass.RETURN,
    }
)

#: Classes that end an atomic region because a misprediction may flush the
#: redefining instruction but not the renaming instruction.
_REGION_BREAKING_CONTROL = frozenset({OpClass.BRANCH, OpClass.JUMP_INDIRECT, OpClass.RETURN})

#: Classes that may raise a precise exception (page fault, divide by zero).
_EXCEPTING_CLASSES = frozenset(
    {
        OpClass.LOAD,
        OpClass.STORE,
        OpClass.INT_DIV,
        OpClass.VEC_DIV,
        OpClass.VEC_LOAD,
        OpClass.VEC_STORE,
    }
)

_MEMORY_CLASSES = frozenset(
    {OpClass.LOAD, OpClass.STORE, OpClass.VEC_LOAD, OpClass.VEC_STORE}
)


def op_class(opcode: Opcode) -> OpClass:
    """Execution class of *opcode*."""
    return _OP_CLASS[opcode]


def is_control(opcode: Opcode) -> bool:
    """True for every control-flow instruction (cond or not)."""
    return _OP_CLASS[opcode] in _CONTROL_CLASSES


def is_conditional_branch(opcode: Opcode) -> bool:
    return _OP_CLASS[opcode] is OpClass.BRANCH


def is_indirect(opcode: Opcode) -> bool:
    """True for indirect control flow (target comes from a register)."""
    return _OP_CLASS[opcode] in (OpClass.JUMP_INDIRECT, OpClass.RETURN)


def breaks_region_control(opcode: Opcode) -> bool:
    """True if *opcode* ends a *non-branch* region (paper section 3.2):
    conditional branches and indirect jumps (incl. returns)."""
    return _OP_CLASS[opcode] in _REGION_BREAKING_CONTROL


def may_except(opcode: Opcode) -> bool:
    """True if *opcode* ends a *non-except* region: memory ops and divides."""
    return _OP_CLASS[opcode] in _EXCEPTING_CLASSES


def breaks_atomic_region(opcode: Opcode) -> bool:
    """True if *opcode* ends an *atomic* region (either reason)."""
    return breaks_region_control(opcode) or may_except(opcode)


def is_memory(opcode: Opcode) -> bool:
    return _OP_CLASS[opcode] in _MEMORY_CLASSES


def is_load(opcode: Opcode) -> bool:
    return _OP_CLASS[opcode] in (OpClass.LOAD, OpClass.VEC_LOAD)


def is_store(opcode: Opcode) -> bool:
    return _OP_CLASS[opcode] in (OpClass.STORE, OpClass.VEC_STORE)


def is_vector(opcode: Opcode) -> bool:
    return _OP_CLASS[opcode] in (
        OpClass.VEC_ALU,
        OpClass.VEC_MUL,
        OpClass.VEC_DIV,
        OpClass.VEC_LOAD,
        OpClass.VEC_STORE,
    )


MNEMONICS = {op.value: op for op in Opcode}
