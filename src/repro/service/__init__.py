"""repro.service — the sweep harness, promoted to a shared service.

``repro.harness`` gives one process a parallel sweep with a persistent
cache; this package makes that a *multi-client, multi-host* system:

* **durable job queue** (:mod:`.queue`): on-disk jobs and cells with
  priorities, atomic lease claim/renew, crash-safe requeue on lease
  expiry, and per-digest deduplication — N concurrent submissions of
  the same cell coalesce into exactly one execution;
* **wire protocol + client** (:mod:`.api`): line-delimited JSON over
  TCP; submit/status/watch/cancel for clients, claim/complete/fail/
  heartbeat for workers;
* **coordinator** (:mod:`.server`): ``repro serve`` — socket server,
  lease reaper, store write-through, local worker pool;
* **workers** (:mod:`.worker`): pull loops over the lease protocol,
  local (fork) or remote (``repro work --addr``) — multi-host sharding
  with host-registration heartbeats;
* **cache management** (:mod:`.cachectl`): LRU/age eviction and the
  hit/miss/put/eviction accounting behind ``repro cache info|gc``;
* **remote sweeps** (:mod:`.remote`): ``figure all --remote`` resolves
  cold cells through the service (falling back to local execution when
  none is running);
* **fault injection** (:mod:`.faults`): seeded, bit-replayable fault
  plans over transport / queue-fs / worker / coordinator layers — the
  schedule generator behind ``repro validate --service``.
"""

from .api import (
    ADDR_ENV,
    TOKEN_ENV,
    ServiceAuthError,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    format_addr,
    resolve_addr,
    resolve_token,
)
from .cachectl import CacheEntry, GcReport, cache_report, plan_gc, run_gc, scan_entries
from .faults import (
    FAULT_INTENSITIES,
    FaultInjector,
    FaultPlan,
    InjectedWorkerCrash,
    ServiceFaultSpec,
    SkewedClock,
    WorkerFaultHooks,
)
from .queue import (
    DEFAULT_LEASE,
    DEFAULT_MAX_ATTEMPTS,
    JobQueue,
    Lease,
    SubmitReceipt,
    queue_root,
)
from .remote import clear_remote, remote_resolver, use_remote
from .server import SweepService, run_service
from .worker import (
    ErrorTally,
    LocalBackend,
    RemoteBackend,
    make_owner,
    remote_worker_main,
    spawn_workers,
    worker_loop,
)

__all__ = [
    "JobQueue", "Lease", "SubmitReceipt", "queue_root",
    "DEFAULT_LEASE", "DEFAULT_MAX_ATTEMPTS",
    "ServiceClient", "ServiceError", "ServiceUnavailable",
    "ServiceAuthError", "resolve_token", "TOKEN_ENV",
    "resolve_addr", "format_addr", "ADDR_ENV",
    "SweepService", "run_service",
    "LocalBackend", "RemoteBackend", "worker_loop", "make_owner",
    "remote_worker_main", "spawn_workers", "ErrorTally",
    "ServiceFaultSpec", "FaultPlan", "FaultInjector", "SkewedClock",
    "InjectedWorkerCrash", "WorkerFaultHooks", "FAULT_INTENSITIES",
    "CacheEntry", "GcReport", "scan_entries", "plan_gc", "run_gc",
    "cache_report",
    "use_remote", "clear_remote", "remote_resolver",
]
