"""Wrong-path instruction supply."""

from repro.frontend import WrongPathSupplier
from repro.isa import assemble


def _supplier():
    prog = assemble("""
        movi r1, 1
        ld r2, r1, 0
        st r2, r1, 8
        cmp r1, r2
    top:
        bne top
        jmp top
        halt
    """)
    return WrongPathSupplier(prog), prog


def test_fetch_decodes_static_instruction():
    supplier, prog = _supplier()
    dyn = supplier.fetch(0, seq=100)
    assert dyn.instr is prog.at(0)
    assert dyn.wrong_path
    assert dyn.seq == 100
    assert dyn.trace_seq == -1


def test_memory_gets_pseudo_address():
    supplier, _ = _supplier()
    load = supplier.fetch(1, seq=5)
    store = supplier.fetch(2, seq=6)
    assert load.mem_addr is not None and load.mem_addr % 8 == 0
    assert store.mem_addr is not None


def test_pseudo_addresses_deterministic():
    s1, _ = _supplier()
    s2, _ = _supplier()
    assert s1.fetch(1, seq=5).mem_addr == s2.fetch(1, seq=5).mem_addr
    assert s1.fetch(1, seq=6).mem_addr != s1.fetch(1, seq=5).mem_addr


def test_non_memory_has_no_address():
    supplier, _ = _supplier()
    assert supplier.fetch(0, seq=1).mem_addr is None


def test_direct_jump_follows_target():
    supplier, prog = _supplier()
    dyn = supplier.fetch(5, seq=1)  # jmp top
    assert dyn.next_pc == prog.labels["top"]


def test_conditional_reported_not_taken():
    supplier, _ = _supplier()
    dyn = supplier.fetch(4, seq=1)  # bne
    assert not dyn.taken
    assert dyn.next_pc == 5


def test_out_of_image_returns_none():
    supplier, _ = _supplier()
    assert supplier.fetch(999, seq=1) is None


def test_halt_returns_none():
    supplier, prog = _supplier()
    assert supplier.fetch(len(prog) - 1, seq=1) is None


def test_supplied_counter():
    supplier, _ = _supplier()
    supplier.fetch(0, seq=1)
    supplier.fetch(1, seq=2)
    assert supplier.supplied == 2
