"""Lint rules, inline suppression, builder validation, and the CLI."""

import json

import pytest

from repro.cli import main
from repro.isa import (
    Instruction,
    Opcode,
    Program,
    ProgramBuilder,
    ProgramValidationError,
    ireg,
    vreg,
)
from repro.staticcheck import (
    META_RULES,
    RULES,
    Severity,
    lint_benchmark,
    lint_program,
)
from repro.staticcheck.lints import suppressed_rules
from repro.workloads import ALL_BENCHMARKS

r = ireg
v = vreg


def _rules_fired(report):
    return {f.rule for f in report.active}


class TestRules:
    def test_bad_target(self):
        prog = Program(instructions=(
            Instruction(Opcode.JMP, target=99),
            Instruction(Opcode.HALT),
        ))
        report = lint_program(prog)
        assert "cfg-bad-target" in _rules_fired(report)
        assert not report.ok and report.errors

    def test_fallthrough_end(self):
        prog = Program(instructions=(
            Instruction(Opcode.MOVI, dests=(r(1),), imm=3),
        ))
        report = lint_program(prog)
        assert "cfg-fallthrough-end" in _rules_fired(report)
        assert report.errors

    def test_call_ret_imbalance(self):
        b = ProgramBuilder()
        b.movi(r(1), 1)
        b.ret()                      # no CALL on any path from entry
        report = lint_program(b.build())
        findings = report.by_rule("cfg-call-ret-imbalance")
        assert findings and findings[0].pc == 1
        assert report.errors

    def test_balanced_call_is_clean(self):
        b = ProgramBuilder()
        b.call("fn")
        b.halt()
        b.label("fn")
        b.movi(r(1), 1)
        b.ret()
        report = lint_program(b.build())
        assert not report.by_rule("cfg-call-ret-imbalance")

    def test_unreachable(self):
        b = ProgramBuilder()
        b.jmp("end")
        b.movi(r(1), 1)              # dead
        b.label("end")
        b.halt()
        report = lint_program(b.build())
        assert "cfg-unreachable" in _rules_fired(report)
        # Warning severity: the report is not ok, but has no errors.
        assert not report.ok and not report.errors

    def test_trailing_generated_halt_is_exempt(self):
        """The builder's auto-appended terminator HALT after a RET has no
        source line to suppress on; it must not fire cfg-unreachable."""
        b = ProgramBuilder()
        b.call("fn")
        b.halt()
        b.label("fn")
        b.ret()                      # build() appends an unreachable HALT
        report = lint_program(b.build())
        assert not report.by_rule("cfg-unreachable")

    def test_undef_read(self):
        b = ProgramBuilder()
        b.test(r(4), r(4))
        b.beq("skip")
        b.movi(r(3), 1)
        b.label("skip")
        b.add(r(5), r(3), r(3))      # r3 undefined when the branch is taken
        b.halt()
        report = lint_program(b.build())
        pcs = {f.pc for f in report.by_rule("df-undef-read")}
        assert 3 in pcs

    def test_dead_store(self):
        b = ProgramBuilder()
        b.movi(r(1), 1)              # dead: unconditionally redefined
        b.movi(r(1), 2)
        b.halt()
        report = lint_program(b.build())
        assert [f.pc for f in report.by_rule("df-dead-store")] == [0]

    def test_every_rule_has_severity_and_description(self):
        for rule, (severity, description) in RULES.items():
            assert isinstance(severity, Severity)
            assert description
        for rule, (severity, description) in META_RULES.items():
            assert isinstance(severity, Severity) and description
            assert rule not in RULES


class TestMemoryRules:
    def test_mem_undef_load(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x1000)
        b.ld(r(2), r(1), 0)      # nothing initializes 0x1000
        b.halt()
        report = lint_program(b.build())
        findings = report.by_rule("mem-undef-load")
        assert [f.pc for f in findings] == [1]

    def test_mem_dead_store(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.movi(r(2), 7)
        b.st(r(2), r(1), 0)      # pc 2: overwritten before any observer
        b.st(r(2), r(1), 0)
        b.halt()
        report = lint_program(b.build())
        assert [f.pc for f in report.by_rule("mem-dead-store")] == [2]

    def test_mem_overlap_partial(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.movi(r(2), 0x100)
        b.vld(v(1), r(2), 0)     # pc 2
        b.vst(v(1), r(1), 0)     # pc 3: [0x40, 0x60)
        b.ld(r(3), r(1), 28)     # pc 4: [0x5c, 0x64) — straddles the end
        b.halt()
        program = b.build()
        for lane in range(4):
            program.data[0x100 + 8 * lane] = lane  # feed the vld
        report = lint_program(program)
        findings = report.by_rule("mem-overlap-partial")
        assert [f.pc for f in findings] == [4]
        assert "neither covers the other" in findings[0].message

    def test_mem_aliased_in_region(self):
        """A store and an unknown-index load off the same loaded pointer,
        inside one atomic-but-for-memory window."""
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.ld(r(2), r(1), 0)      # p (symbolic)
        b.ld(r(3), r(1), 8)      # unknown index
        b.movi(r(4), 0x38)
        b.and_(r(5), r(3), r(4))
        b.add(r(6), r(2), r(5))  # p + masked index
        b.movi(r(7), 1)          # window opens
        b.st(r(7), r(2), 0)      # pc 7
        b.ld(r(8), r(6), 0)      # pc 8: may alias the store
        b.movi(r(7), 2)          # window closes
        b.halt()
        program = b.build()
        program.data[0x40] = 0x2000
        program.data[0x48] = 3
        report = lint_program(program)
        findings = report.by_rule("mem-aliased-in-region")
        assert [f.pc for f in findings] == [8]
        assert "same loaded pointer" in findings[0].message

    def test_mem_rule_is_suppressible(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.movi(r(2), 7)
        b.st(r(2), r(1), 0)
        b.lint_ignore("mem-dead-store")
        b.st(r(2), r(1), 0)
        b.halt()
        report = lint_program(b.build())
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["mem-dead-store"]


class TestDataflowEdgeCases:
    """FLAGS and VEC registers flow through the same def/use lattice as
    the integer file."""

    def test_branch_without_compare_reads_undefined_flags(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 1)
        b.beq("end")             # FLAGS never written on this path
        b.movi(r(2), 2)
        b.label("end")
        b.halt()
        report = lint_program(b.build())
        findings = report.by_rule("df-undef-read")
        assert [f.pc for f in findings] == [1]
        assert "flags" in findings[0].message

    def test_flags_redefined_without_branch_is_dead(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 1)
        b.cmp(r(1), r(1))        # pc 1: FLAGS overwritten before any read
        b.cmp(r(1), r(1))
        b.beq("end")
        b.label("end")
        b.halt()
        report = lint_program(b.build())
        assert [f.pc for f in report.by_rule("df-dead-store")] == [1]

    def test_vec_redefinition_is_dead(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x100)
        b.vld(v(1), r(1), 0)     # pc 1: v1 redefined before any use
        b.vld(v(1), r(1), 0)
        b.vst(v(1), r(1), 64)
        b.halt()
        program = b.build()
        for lane in range(4):
            program.data[0x100 + 8 * lane] = lane
        report = lint_program(program)
        assert [f.pc for f in report.by_rule("df-dead-store")] == [1]

    def test_vec_never_written_is_live_at_exit(self):
        """A single VEC write is architecturally observable at exit —
        no dead store, symmetric with the integer rule."""
        b = ProgramBuilder("t")
        b.movi(r(1), 0x100)
        b.vld(v(1), r(1), 0)
        b.halt()
        program = b.build()
        for lane in range(4):
            program.data[0x100 + 8 * lane] = lane
        assert lint_program(program).ok


class TestSuppression:
    def test_marker_parsing(self):
        assert suppressed_rules("lint: ignore[df-dead-store]") == (
            "df-dead-store",)
        assert suppressed_rules(
            "setup  lint: ignore[df-dead-store, cfg-unreachable]") == (
            "df-dead-store", "cfg-unreachable")
        assert suppressed_rules("") == ()
        assert suppressed_rules(None) == ()

    def test_lint_ignore_suppresses_finding(self):
        b = ProgramBuilder()
        b.movi(r(1), 1)
        b.lint_ignore("df-dead-store")
        b.movi(r(1), 2)
        b.halt()
        report = lint_program(b.build())
        assert report.ok
        suppressed = report.suppressed
        assert len(suppressed) == 1 and suppressed[0].rule == "df-dead-store"
        assert suppressed[0].pc == 0

    def test_suppression_is_rule_specific(self):
        b = ProgramBuilder()
        b.movi(r(1), 1)
        b.lint_ignore("cfg-unreachable")  # wrong rule: finding stays active
        b.movi(r(1), 2)
        b.halt()
        report = lint_program(b.build())
        assert not report.ok
        # The finding survives, and the mismatched marker itself draws
        # the unused-suppression meta-finding.
        assert sorted(f.rule for f in report.active) == [
            "df-dead-store", "lint-unused-ignore"]
        report = lint_program(b.build(), warn_unused_ignore=False)
        assert [f.rule for f in report.active] == ["df-dead-store"]

    def test_lint_ignore_requires_instruction_and_rules(self):
        b = ProgramBuilder()
        with pytest.raises(ValueError):
            b.lint_ignore("df-dead-store")  # nothing emitted yet
        b.movi(r(1), 1)
        with pytest.raises(ValueError):
            b.lint_ignore()


class TestBuilderValidation:
    def test_undefined_label_raises(self):
        b = ProgramBuilder()
        b.jmp("nowhere")
        with pytest.raises(ProgramValidationError, match="nowhere"):
            b.build()

    def test_out_of_range_numeric_target_raises(self):
        b = ProgramBuilder()
        b.jmp(99)
        with pytest.raises(ProgramValidationError, match="99"):
            b.build()

    def test_auto_halt_rules_out_fallthrough(self):
        b = ProgramBuilder()
        b.movi(r(1), 3)
        program = b.build()
        assert program.instructions[-1].is_halt
        assert lint_program(program).ok


class TestKernels:
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_kernel_is_lint_clean(self, name):
        report = lint_benchmark(name)
        assert report.ok, report.render()

    def test_known_suppressions_are_exercised(self):
        """The three in-tree lint_ignore markers must each still suppress
        a live finding (a stale marker means the code changed under it)."""
        suppressed = {name: [(f.rule, f.pc) for f in
                             lint_benchmark(name).suppressed]
                      for name in ("500.perlbench_r", "502.gcc_r",
                                   "548.exchange2_r")}
        for name, found in suppressed.items():
            assert found, f"{name}: lint_ignore marker no longer suppresses"
            assert all(rule == "df-dead-store" for rule, _pc in found)


class TestCli:
    def test_lint_single_benchmark(self, capsys):
        assert main(["lint", "mcf"]) == 0
        out = capsys.readouterr().out
        assert "505.mcf_r" in out and "clean" in out

    def test_lint_all(self, capsys):
        from repro.workloads import workload_names

        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        # --all covers every addressable ref, variants included
        assert out.count("clean") == len(workload_names(variants=True))
        assert "505.mcf_r/ref2" in out

    def test_lint_without_benchmarks_is_usage_error(self, capsys):
        assert main(["lint"]) == 2

    def test_lint_fails_on_seeded_violation(self, capsys, monkeypatch):
        """A kernel with an active finding must make the CLI exit 1."""
        import repro.workloads as workloads

        def bad_builder(iterations=1):
            b = ProgramBuilder("seeded")
            b.movi(r(1), 1)
            b.movi(r(1), 2)          # unsuppressed dead store
            b.halt()
            return b.build()

        monkeypatch.setattr(workloads, "resolve", lambda name: name)
        monkeypatch.setattr(workloads, "builder_for",
                            lambda name: bad_builder)
        assert main(["lint", "seeded"]) == 1
        out = capsys.readouterr().out
        assert "df-dead-store" in out

    def test_verbose_shows_suppressed(self, capsys):
        assert main(["lint", "perlbench", "-v"]) == 0
        out = capsys.readouterr().out
        assert "suppressed" in out

    def test_lint_format_json(self, capsys):
        assert main(["lint", "mcf", "perlbench", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 0
        by_name = {row["benchmark"]: row for row in payload["benchmarks"]}
        assert by_name["505.mcf_r"]["ok"] is True
        assert by_name["505.mcf_r"]["findings"] == []
        # perlbench carries a suppressed finding; JSON keeps it, marked
        perl = by_name["500.perlbench_r"]
        assert perl["ok"] is True
        assert any(f["suppressed"] for f in perl["findings"])
        assert all({"rule", "severity", "pc", "label", "message"}
                   <= set(f) for f in perl["findings"])

    def test_lint_json_reports_violations(self, capsys, monkeypatch):
        import repro.workloads as workloads

        def bad_builder(iterations=1):
            b = ProgramBuilder("seeded")
            b.movi(r(1), 1)
            b.movi(r(1), 2)
            b.halt()
            return b.build()

        monkeypatch.setattr(workloads, "resolve", lambda name: name)
        monkeypatch.setattr(workloads, "builder_for",
                            lambda name: bad_builder)
        assert main(["lint", "seeded", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 1
        rules = [f["rule"] for f in payload["benchmarks"][0]["findings"]]
        assert "df-dead-store" in rules

    def test_no_warn_unused_ignore_flag(self, capsys, monkeypatch):
        import repro.workloads as workloads

        def stale_builder(iterations=1):
            b = ProgramBuilder("stale")
            b.movi(r(1), 1)
            b.lint_ignore("cfg-unreachable")  # suppresses nothing
            b.halt()
            return b.build()

        monkeypatch.setattr(workloads, "resolve", lambda name: name)
        monkeypatch.setattr(workloads, "builder_for",
                            lambda name: stale_builder)
        assert main(["lint", "stale"]) == 1
        assert "lint-unused-ignore" in capsys.readouterr().out
        assert main(["lint", "stale", "--no-warn-unused-ignore"]) == 0

    def test_list_lints(self, capsys):
        assert main(["list", "lints"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out
        assert "lint-unused-ignore" in out and "(meta)" in out


class TestAnalyzeStaticCli:
    def test_static_table_json(self, capsys):
        assert main(["analyze", "static", "mcf", "-n", "400",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bound_violations"] == 0
        row = payload["benchmarks"][0]
        assert row["benchmark"] == "505.mcf_r"
        assert row["bound_ok"] is True
        assert row["dynamic_realized"] <= row["static_bound"]
        assert {"regions", "alias_pairs", "forwardable_loads"} <= set(row)

    def test_static_table_text(self, capsys):
        assert main(["analyze", "static", "exchange2", "-n", "400"]) == 0
        out = capsys.readouterr().out
        assert "548.exchange2_r" in out and "bound" in out
        assert "VIOLATION" not in out

    def test_unknown_benchmark_is_usage_error(self, capsys):
        assert main(["analyze", "static", "nonesuch"]) == 2

    def test_dynamic_mode_takes_one_benchmark(self, capsys):
        assert main(["analyze", "mcf", "omnetpp"]) == 2
