"""Rename substrate: free lists, SRT/RAT, PRT, checkpoints, release schemes."""

from .errors import DoubleFreeError, FreeListEmptyError, RenameError, UseAfterFreeError
from .freelist import FreeList
from .physreg import PhysRegEntry, PhysRegTable
from .rat import CheckpointPool, RegisterAliasTable
from .schemes import (
    SCHEME_NAMES,
    SCHEMES,
    AtrScheme,
    BaselineScheme,
    CombinedScheme,
    NonSpecEarlyReleaseScheme,
    ReleaseScheme,
    SchemeStats,
    make_scheme,
)
from .unit import DestRecord, RenameFile, RenameUnit

__all__ = [
    "RenameError", "DoubleFreeError", "FreeListEmptyError", "UseAfterFreeError",
    "FreeList", "PhysRegTable", "PhysRegEntry",
    "RegisterAliasTable", "CheckpointPool",
    "RenameUnit", "RenameFile", "DestRecord",
    "ReleaseScheme", "SchemeStats", "BaselineScheme", "NonSpecEarlyReleaseScheme",
    "AtrScheme", "CombinedScheme", "make_scheme", "SCHEMES", "SCHEME_NAMES",
]
