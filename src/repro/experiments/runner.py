"""Experiment execution: one simulation = one (benchmark, config) cell.

Every figure module builds on :func:`run_cell`, which resolves cells
through :mod:`repro.harness`: an in-process memo gives overlapping
sweeps (Figure 10's 64-register column reuses Figure 11's) identity-
cached results, and the harness's persistent store makes re-runs warm
across interpreter invocations.  Figures regenerate in parallel by
priming the memo with :func:`prime_cells` / :func:`prime_regions`, which
shard the cold cells over worker processes.

Scale is controlled by the ``REPRO_BENCH_INSTRUCTIONS`` environment
variable (default 5000 dynamic instructions per benchmark — enough for
steady-state register-pressure behaviour of these loop-dominated
kernels; raise it for tighter numbers).
"""

from __future__ import annotations

import math
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis import RegionReport
from ..harness import (
    DETAILED,
    CellResult,
    CellSpec,
    RegionSpec,
    TierPolicy,
    default_store,
    simulate_cell,
    sweep,
)
from ..pipeline import CoreConfig
from ..workloads import SPEC_FP, SPEC_INT

__all__ = [
    "CellResult", "CellSpec", "RegionSpec", "TierPolicy", "DETAILED",
    "run_cell", "region_report", "prime_cells", "prime_regions",
    "clear_result_cache",
    "geomean", "mean", "speedup", "suite_speedup",
    "default_instructions", "default_int_suite", "default_fp_suite",
]


def default_instructions() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "5000"))


def default_int_suite() -> Tuple[str, ...]:
    return SPEC_INT


def default_fp_suite() -> Tuple[str, ...]:
    return SPEC_FP


_cell_cache: Dict[CellSpec, CellResult] = {}
_region_cache: Dict[RegionSpec, RegionReport] = {}


def cell_spec(
    benchmark: str,
    rf_size: int,
    scheme: str,
    instructions: Optional[int] = None,
    redefine_delay: int = 0,
    record_register_events: bool = False,
    tier: Optional[TierPolicy] = None,
) -> CellSpec:
    """Build the canonical spec, defaulting the instruction count."""
    return CellSpec(
        benchmark=benchmark,
        rf_size=rf_size,
        scheme=scheme,
        instructions=instructions or default_instructions(),
        redefine_delay=redefine_delay,
        record_register_events=record_register_events,
        tier=tier or DETAILED,
    )


def run_cell(
    benchmark: str,
    rf_size: int,
    scheme: str,
    instructions: Optional[int] = None,
    redefine_delay: int = 0,
    record_register_events: bool = False,
    config: Optional[CoreConfig] = None,
    use_cache: bool = True,
    tier: Optional[TierPolicy] = None,
) -> CellResult:
    """Simulate one benchmark under one configuration.

    With a custom *config* the cell is computed directly and never cached
    (the config is not part of the spec identity).  *tier* selects the
    simulation tier (default: full-trace detailed); tiered and detailed
    results of the same cell cache under distinct spec identities.
    """
    spec = cell_spec(benchmark, rf_size, scheme, instructions,
                     redefine_delay, record_register_events, tier)
    if config is not None:
        return simulate_cell(spec, config=config)
    if use_cache and spec in _cell_cache:
        return _cell_cache[spec]
    result = None
    store = default_store() if use_cache else None
    if store is not None:
        result = store.get(spec)
    if result is None:
        result = simulate_cell(spec)
        if store is not None:
            store.put(spec, result)
    if use_cache:
        _cell_cache[spec] = result
    return result


def region_report(benchmark: str, instructions: Optional[int] = None) -> RegionReport:
    """Trace-level region classification (no simulation needed)."""
    spec = RegionSpec(benchmark, instructions or default_instructions())
    if spec not in _region_cache:
        report = sweep([spec], jobs=1).require_complete()[spec]
        _region_cache[spec] = report
    return _region_cache[spec]


def prime_cells(specs: Iterable[CellSpec], jobs: Optional[int] = None) -> None:
    """Resolve *specs* (deduplicated, parallel across cores, store-backed)
    into the in-process memo, so subsequent :func:`run_cell` calls hit.

    ``jobs=None`` uses every core; raises :class:`repro.harness.SweepError`
    if any cell failed.
    """
    cold = [spec for spec in specs if spec not in _cell_cache]
    if not cold:
        return
    report = sweep(cold, jobs=jobs).require_complete()
    _cell_cache.update(report.results)


def prime_regions(specs: Iterable[RegionSpec], jobs: Optional[int] = None) -> None:
    """:func:`prime_cells`, for :func:`region_report` specs."""
    cold = [spec for spec in specs if spec not in _region_cache]
    if not cold:
        return
    report = sweep(cold, jobs=jobs).require_complete()
    _region_cache.update(report.results)


def clear_result_cache() -> None:
    """Drop the in-process memo (the persistent store is unaffected;
    use ``repro cache clear`` / ``ResultStore.clear`` for that)."""
    _cell_cache.clear()
    _region_cache.clear()


# -- aggregation helpers ---------------------------------------------------------


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values]
    if not values:
        raise ValueError("geomean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of an empty sequence is undefined")
    return sum(values) / len(values)


def speedup(test_ipc: float, base_ipc: float) -> float:
    """Fractional speedup (0.05 == +5%)."""
    if base_ipc == 0:
        raise ValueError("speedup is undefined for a zero baseline IPC")
    return test_ipc / base_ipc - 1.0


def suite_speedup(
    benchmarks: Sequence[str],
    rf_size: int,
    scheme: str,
    baseline: str = "baseline",
    instructions: Optional[int] = None,
    redefine_delay: int = 0,
    jobs: Optional[int] = None,
) -> float:
    """Mean per-benchmark speedup of *scheme* over *baseline* (the
    paper's 'average speedup' aggregation)."""
    benchmarks = list(benchmarks)
    if not benchmarks:
        raise ValueError("suite_speedup over an empty benchmark list")
    if jobs is not None:
        prime_cells(
            [cell_spec(b, rf_size, s, instructions,
                       redefine_delay if s == scheme else 0)
             for b in benchmarks for s in (scheme, baseline)],
            jobs=jobs,
        )
    speedups = []
    for benchmark in benchmarks:
        test = run_cell(benchmark, rf_size, scheme, instructions,
                        redefine_delay=redefine_delay)
        base = run_cell(benchmark, rf_size, baseline, instructions)
        speedups.append(speedup(test.ipc, base.ipc))
    return mean(speedups)
