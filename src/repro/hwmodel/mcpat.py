"""McPAT-lite: analytical core power and area model (paper section 5.6).

The paper uses McPAT to report that the atomic scheme cuts runtime power
by 5.5% and core area by 2.7% (combined: 5.5% / 2.9%), almost entirely by
shrinking the physical register file while holding IPC.  This model
captures the structures whose size the schemes change — the register
files and their ports — plus the fixed structures (ROB, RS, LSQ, caches,
predictors, FUs) needed to express those savings as a fraction of the
core.  Area/energy scale with bits and ports the way CACTI-class models
do to first order: area ~ bits x ports^2 wordline/bitline growth, access
energy ~ bits^0.5 x ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..pipeline import CoreConfig, SimStats


@dataclass
class StructureModel:
    """One SRAM/CAM-like structure."""

    name: str
    bits: int
    read_ports: int
    write_ports: int
    is_cam: bool = False

    # Technology constants (arbitrary but consistent units; only ratios
    # between configurations are meaningful, as in the paper's deltas).
    AREA_PER_BIT: float = 1.0
    ENERGY_PER_BIT_ACCESS: float = 1.0

    @property
    def ports(self) -> int:
        return self.read_ports + self.write_ports

    @property
    def area(self) -> float:
        # Each extra port adds a wordline and a bitline pair per cell:
        # cell area grows roughly quadratically with ports.
        port_factor = (1.0 + 0.25 * self.ports) ** 2
        cam_factor = 2.0 if self.is_cam else 1.0
        return self.AREA_PER_BIT * self.bits * port_factor * cam_factor / 16.0

    def access_energy(self) -> float:
        # Energy per access ~ sqrt(bits) (bitline+wordline halves) x ports.
        return self.ENERGY_PER_BIT_ACCESS * (self.bits ** 0.5) * (1 + 0.1 * self.ports)


@dataclass
class CorePowerModel:
    """Whole-core area/power roll-up for one configuration."""

    config: CoreConfig
    extra_prf_bits: int = 0  # e.g. ATR's 3-bit consumer counters

    def structures(self) -> Dict[str, StructureModel]:
        c = self.config
        word = 64
        vec_word = 256
        read_ports = 2 * c.rename_width
        write_ports = c.rename_width
        prf_int_bits = c.int_rf_size * (word + self.extra_prf_bits)
        prf_vec_bits = c.vec_rf_size * (vec_word + self.extra_prf_bits)
        out = {
            "prf_int": StructureModel("prf_int", prf_int_bits, read_ports, write_ports),
            "prf_vec": StructureModel("prf_vec", prf_vec_bits, read_ports // 2, write_ports // 2),
            "rob": StructureModel("rob", c.rob_size * 96, c.retire_width, c.rename_width),
            "rs": StructureModel("rs", c.rs_size * 64, c.alu_ports, c.rename_width, is_cam=True),
            "lsq": StructureModel("lsq", (c.lq_size + c.sq_size) * 80,
                                  c.load_ports + c.store_ports, c.rename_width, is_cam=True),
            "l1d": StructureModel("l1d", c.memory.l1d_size * 8, 2, 1),
            "l1i": StructureModel("l1i", c.memory.l1i_size * 8, 1, 1),
            "l2": StructureModel("l2", c.memory.l2_size * 8, 1, 1),
            "btb": StructureModel("btb", 12288 * 40, 2, 1),
            "predictor": StructureModel("predictor", 8 * 1024 * 12, 2, 1),
            "srt": StructureModel("srt", 33 * 9, 3 * c.rename_width, c.rename_width),
        }
        return out

    def core_area(self) -> float:
        sram = sum(s.area for s in self.structures().values())
        # Functional units, decode, and wiring: fixed fraction of a
        # Golden-Cove-like core not affected by RF size.
        fixed = 0.55 * sram_baseline_area(self.config)
        return sram + fixed

    def runtime_power(self, stats: SimStats) -> float:
        """Energy/cycle proxy: per-structure access energy x activity,
        plus leakage proportional to area."""
        structures = self.structures()
        cycles = max(1, stats.cycles)
        activity = {
            "prf_int": 3.0 * stats.renamed / cycles,
            "prf_vec": 0.6 * stats.renamed / cycles,
            "rob": 2.0 * stats.renamed / cycles,
            "rs": 2.0 * stats.renamed / cycles,
            "lsq": 1.0 * stats.renamed / cycles,
            "l1d": 0.4 * stats.renamed / cycles,
            "l1i": 0.8,
            "l2": 0.02,
            "btb": 0.8,
            "predictor": 0.8,
            "srt": 3.0 * stats.renamed / cycles,
        }
        dynamic = sum(
            structures[name].access_energy() * activity.get(name, 0.1)
            for name in structures
        )
        leakage = 0.02 * self.core_area()
        return dynamic + leakage


_baseline_cache: Dict[tuple, float] = {}


def sram_baseline_area(config: CoreConfig) -> float:
    """SRAM area of the Table 1 reference core (280 registers), used to
    size the fixed (non-SRAM) portion consistently across RF sweeps."""
    key = (config.rob_size, config.rs_size)
    if key not in _baseline_cache:
        reference = CorePowerModel(config.with_rf_size(280))
        _baseline_cache[key] = sum(s.area for s in reference.structures().values())
    return _baseline_cache[key]


def area_delta(config_a: CoreConfig, config_b: CoreConfig,
               extra_bits_a: int = 0, extra_bits_b: int = 0) -> float:
    """Fractional core-area change going from config_a to config_b."""
    a = CorePowerModel(config_a, extra_prf_bits=extra_bits_a).core_area()
    b = CorePowerModel(config_b, extra_prf_bits=extra_bits_b).core_area()
    return (b - a) / a


def power_delta(config_a: CoreConfig, stats_a: SimStats,
                config_b: CoreConfig, stats_b: SimStats,
                extra_bits_a: int = 0, extra_bits_b: int = 0) -> float:
    """Fractional runtime-power change going from (a) to (b)."""
    pa = CorePowerModel(config_a, extra_prf_bits=extra_bits_a).runtime_power(stats_a)
    pb = CorePowerModel(config_b, extra_prf_bits=extra_bits_b).runtime_power(stats_b)
    return (pb - pa) / pa


def consumer_counter_overhead(word_bits: int, counter_bits: int = 3) -> float:
    """Storage overhead of the consumer counter (paper section 4.4:
    3/64 = 4.6% scalar, 3/256 = 1.1% vector)."""
    return counter_bits / word_bits
