"""Experiment runner/report helpers not covered elsewhere."""

import os

import pytest

from repro.experiments.runner import (
    clear_result_cache,
    default_fp_suite,
    default_instructions,
    default_int_suite,
    geomean,
    mean,
    region_report,
    run_cell,
    speedup,
    suite_speedup,
)
from repro.workloads import SPEC_FP, SPEC_INT


def test_default_suites_match_registry():
    assert tuple(default_int_suite()) == SPEC_INT
    assert tuple(default_fp_suite()) == SPEC_FP


def test_default_instructions_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "1234")
    assert default_instructions() == 1234
    monkeypatch.delenv("REPRO_BENCH_INSTRUCTIONS")
    assert default_instructions() == 5000


def test_region_report_cached():
    a = region_report("xz", 1000)
    b = region_report("xz", 1000)
    assert a is b


def test_suite_speedup_small():
    value = suite_speedup(["531.deepsjeng_r"], 64, "nonspec_er",
                          instructions=1500)
    assert -0.2 < value < 3.0


def test_clear_result_cache():
    region_report("xz", 1000)
    clear_result_cache()  # must not raise; next call recomputes
    region_report("xz", 1000)


def test_run_cell_warm_across_memo_clears(tmp_path, monkeypatch):
    """The persistent store survives what clear_result_cache drops."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_result_cache()
    first = run_cell("mcf", 64, "baseline", 900)
    clear_result_cache()
    second = run_cell("mcf", 64, "baseline", 900)
    assert second is not first  # decoded from disk, not the memo
    assert second.stats == first.stats
    clear_result_cache()


class TestAggregationSemantics:
    """Empty/degenerate aggregation is an error, never a silent 0.0."""

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError, match="empty"):
            mean([])

    def test_empty_geomean_raises(self):
        with pytest.raises(ValueError, match="empty"):
            geomean([])

    def test_zero_baseline_speedup_raises(self):
        with pytest.raises(ValueError, match="zero baseline"):
            speedup(1.0, 0.0)

    def test_empty_suite_speedup_raises(self):
        with pytest.raises(ValueError, match="empty benchmark list"):
            suite_speedup([], 64, "atr", instructions=900)
