"""Functional fast-forward warmup for tiered simulation.

The tiered protocol (DESIGN.md, "Tiered simulation") runs the golden
functional emulator over a program prefix while updating only the
cheap-to-model microarchitectural state that matters for detailed
accuracy, then hands the result to a detailed :class:`~.core.Core` so the
cycle-level window starts hot instead of cold:

* **branch state** — every correct-path control instruction trains the
  direction predictor, BTB, indirect predictor, and RAS through the same
  ``predict``-then-``resolve`` sequence the fetch stage performs, so the
  predictor tables at the window boundary match what a detailed run from
  the start would have produced up to timing-dependent wrong-path noise
  (wrong-path fetch trains nothing in this machine, which is what makes
  this approximation tight);
* **cache/memory state** — instruction fetch touches the icache once per
  fetch-target block, loads and stores touch the data side, with the
  instruction index as a pseudo-cycle so MSHR merging and DRAM row state
  evolve plausibly; snapshots clear the MSHR file (all fills have
  logically arrived by the window boundary);
* **architectural state** — registers, FLAGS, and memory from the
  emulator, installed through the initial RAT so the window's value
  execution and end-of-window architectural comparison see the prefix's
  effects.

What is deliberately **not** primed: ROB/queue occupancy, in-flight
instructions, rename state beyond the architectural mapping, and store
buffers — the pipeline drains at a window boundary by construction, and
the first ~pipeline-depth cycles of a window re-fill the frontend (the
classic "detailed warmup" transient; EXPERIMENTS.md quantifies it).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import List, Sequence

from ..branch import BranchUnit
from ..frontend import ArchState, Emulator, Trace
from ..isa import FLAGS, I_BYTES, RegClass, ireg, vreg
from ..memory import MemoryHierarchy
from .config import CoreConfig


def _clone(obj):
    """Deep copy via pickle — several times faster than ``copy.deepcopy``
    on the dict-heavy predictor/cache state cloned here (enum members
    pickle by name, so singletons stay singletons)."""
    return pickle.loads(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))


@dataclass
class WarmupState:
    """Primed state at one fast-forward stop.

    ``apply_warmup`` deep-copies the mutable members, so one
    ``WarmupState`` may seed any number of detailed cores.
    """

    instructions: int  #: prefix length executed before this stop
    arch: ArchState
    branch_unit: BranchUnit
    memory: MemoryHierarchy


def fast_forward(config: CoreConfig, trace: Trace,
                 stops: Sequence[int]) -> List[WarmupState]:
    """Emulate *trace*'s program prefix once, snapshotting at *stops*.

    Each stop is an instruction count (0 = cold start); stops are
    deduplicated and visited in ascending order, so a multi-window tiered
    run pays one functional pass regardless of window count.
    """
    from .stages.fetch import make_predictor

    entries = trace.entries
    ordered = sorted(set(stops))
    if ordered and (ordered[0] < 0 or ordered[-1] > len(entries)):
        raise ValueError(
            f"warmup stops {ordered[0]}..{ordered[-1]} outside trace of "
            f"{len(entries)} instructions")

    branch_unit = BranchUnit(direction=make_predictor(config.predictor))
    memory = MemoryHierarchy(config.memory)
    if config.model_icache:
        # Same code-image pre-warm as build_state, so a window boundary
        # never looks *colder* than a from-reset detailed run.
        code_bytes = len(trace.program) * I_BYTES
        for addr in range(0, code_bytes, config.memory.line_bytes):
            memory.l1i.fill(addr)
            memory.l2.fill(addr)

    emulator = Emulator(trace.program)
    model_icache = config.model_icache
    ft_block_bytes = config.ft_block_bytes
    last_fetch_block = -1
    executed = 0
    snapshots: List[WarmupState] = []
    for stop in ordered:
        while executed < stop:
            record = emulator.step()
            if record is None or record.pc != entries[executed].pc:
                raise RuntimeError(
                    f"fast-forward diverged from trace at instruction "
                    f"{executed} (pc {entries[executed].pc})")
            instr = record.instr
            if model_icache:
                block = (record.pc * I_BYTES) // ft_block_bytes
                if block != last_fetch_block:
                    memory.fetch(executed, record.pc * I_BYTES)
                    last_fetch_block = block
                if record.taken:
                    last_fetch_block = -1
            if instr.is_control and not instr.is_halt:
                prediction = branch_unit.predict(record.pc, instr)
                branch_unit.resolve(record.pc, instr, prediction,
                                    record.taken, record.next_pc)
            if record.mem_addr is not None:
                if instr.is_load:
                    memory.load(executed, record.mem_addr, pc=record.pc)
                elif instr.is_store:
                    memory.store(executed, record.mem_addr, pc=record.pc)
            executed += 1
        warm_memory = _clone(memory)
        # Pseudo-time ends at the window boundary: every outstanding fill
        # has logically arrived, so the detailed window (which restarts
        # the clock at 0) must not inherit pseudo-cycle completion times.
        warm_memory._mshr.clear()
        snapshots.append(WarmupState(
            instructions=executed,
            arch=emulator.snapshot(),
            branch_unit=_clone(branch_unit),
            memory=warm_memory,
        ))
    return snapshots


def apply_warmup(state, warmup: WarmupState, consume: bool = False) -> None:
    """Install *warmup* into a freshly built ``PipelineState``.

    Must run before stages are constructed (stages cache identity-stable
    references to ``state.branch_unit`` / ``state.memory``).  The
    architectural registers are primed through the initial RAT mapping,
    so the window's value execution continues exactly from the prefix.

    With ``consume=True`` the warmup's mutable members move into the
    pipeline instead of being cloned — a single-use optimization for
    callers (like ``repro.tiered``) that discard the checkpoint after
    seeding exactly one core.
    """
    if consume:
        state.branch_unit = warmup.branch_unit
        state.memory = warmup.memory
    else:
        state.branch_unit = _clone(warmup.branch_unit)
        state.memory = _clone(warmup.memory)
    arch = warmup.arch
    unit = state.rename_unit
    int_rat = unit.files[RegClass.INT].rat
    vec_rat = unit.files[RegClass.VEC].rat
    int_values = state.values[RegClass.INT]
    vec_values = state.values[RegClass.VEC]
    for i in range(16):
        int_values[int_rat.read(ireg(i).srt_slot)] = arch.int_regs[i]
        vec_values[vec_rat.read(vreg(i).srt_slot)] = arch.vec_regs[i]
    int_values[int_rat.read(FLAGS.srt_slot)] = arch.flags
    state.mem_values.clear()
    state.mem_values.update(arch.memory)
