"""Figure 13: effect of pipelining the redefinition logic by 1-2 cycles."""

from repro.experiments import fig13

from conftest import emit


def test_fig13_pipeline_delay(benchmark, int_suite, instructions):
    result = benchmark.pedantic(
        fig13.run,
        kwargs=dict(benchmarks=int_suite, rf_size=64, instructions=instructions),
        rounds=1, iterations=1,
    )
    emit(result)
    # Paper: negligible impact of delaying the redefinition signal.
    assert result.max_degradation() < 0.02
