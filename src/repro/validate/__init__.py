"""repro.validate — online invariant sanitizer, seeded fault injection,
and crash diagnostics.

End-of-run golden-state diffs only catch a bad early release when the
corruption survives to the end; this package checks the ATR safety
property *while it can still be violated*:

* **sanitizer** (:mod:`.sanitizer`): per-event invariant checker hooked
  into the cycle core via ``CoreConfig.check_invariants`` — use-after-
  release, consumer-count underflow, conservation at ROB-empty points,
  occupancy bounds, precommit monotonicity.  Violations are structured
  :class:`InvariantViolation` s carrying a pipeline snapshot and a ring
  buffer of recent events.
* **snapshot** (:mod:`.snapshot`): the diagnostic state dump attached to
  violations and ``DeadlockError``.
* **chaos** (:mod:`.chaos`): deterministic seeded timing-fault injection
  (latency jitter, forced mispredicts, forced interrupts, free-list
  pressure) with differential verification against the golden emulator.
* **campaign** (:mod:`.campaign`): multi-seed chaos grids through the
  parallel harness; drives the ``repro validate`` CLI command.
* **servicechaos** (:mod:`.servicechaos`): seeded fault schedules
  against a live sweep-service topology (``repro validate --service``)
  asserting exactly-once execution, zero lost cells, and clean drains.
"""

from .campaign import CampaignReport, campaign_specs, run_campaign
from .chaos import (
    INTENSITIES,
    ChaosCore,
    ChaosSpec,
    chaos_config,
    execute_chaos_spec,
    run_chaos_cell,
)
from .sanitizer import EventRing, InvariantChecker, InvariantViolation
from .servicechaos import (
    ScheduleResult,
    ServiceCampaignReport,
    campaign_fault_specs,
    run_service_campaign,
    run_service_chaos_schedule,
)
from .snapshot import format_snapshot, pipeline_snapshot

__all__ = [
    "InvariantChecker", "InvariantViolation", "EventRing",
    "pipeline_snapshot", "format_snapshot",
    "ChaosSpec", "ChaosCore", "chaos_config", "run_chaos_cell",
    "execute_chaos_spec", "INTENSITIES",
    "campaign_specs", "run_campaign", "CampaignReport",
    "ScheduleResult", "ServiceCampaignReport", "campaign_fault_specs",
    "run_service_campaign", "run_service_chaos_schedule",
]
