"""Shared consumer-count tracking for the early-release schemes.

Both non-speculative early release and ATR track, per physical register,
how many renamed consumers have not yet issued (paper sections 2.2 and
4.2.2): increment when a consumer renames, decrement when it issues, and
the count-reaching-zero event is a release trigger.
"""

from __future__ import annotations

from typing import List

from ...isa import RegClass
from .base import ReleaseScheme


class ConsumerTrackingScheme(ReleaseScheme):
    """Base for schemes that maintain PRT consumer counters.

    Args:
        restore_counts_on_flush: Undo the rename-time increments of
            flushed, never-issued consumers.  Required by nonspec-ER (the
            paper notes prior work needs recovery hardware for this);
            unnecessary for pure ATR, whose bulk marking guarantees that
            any register live across a flush point is no-early-release
            anyway.
    """

    def __init__(self, restore_counts_on_flush: bool = False):
        super().__init__()
        self.restore_counts_on_flush = restore_counts_on_flush

    # -- consumer counting -------------------------------------------------------
    def pre_rename(self, entry, cycle: int) -> None:
        for file_cls, _slot, ptag in entry.src_ptags:
            self.unit.files[file_cls].prt.add_consumer(ptag)

    def on_issue(self, entry, cycle: int) -> None:
        for file_cls, _slot, ptag in entry.src_ptags:
            if self.unit.files[file_cls].prt.remove_consumer(ptag):
                self._count_reached_zero(file_cls, ptag, cycle)

    def _count_reached_zero(self, file_cls: RegClass, ptag: int, cycle: int) -> None:
        """Override: a release trigger for schemes that care."""

    # -- flush ---------------------------------------------------------------------
    def on_flush(self, flushed: List, cycle: int) -> None:
        if self.restore_counts_on_flush:
            for entry in flushed:
                if not entry.issued:
                    for file_cls, _slot, ptag in entry.src_ptags:
                        self.unit.files[file_cls].prt.undo_consumer(ptag)
        super().on_flush(flushed, cycle)
