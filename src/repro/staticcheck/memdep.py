"""Static memory dependence: value-set analysis (VSA) over addresses.

Every address in this machine is ``base register + constant
displacement`` (:class:`repro.isa.Instruction` memory forms), so a
flow-sensitive abstract interpretation that tracks, per register, *which
base a value derives from and by how much it is offset* disambiguates
most static load/store pairs.  The abstract value of a register is a
**value set**: a small map from *region* to a :class:`StridedInterval`
of byte offsets, or ``TOP`` (no information).  Regions are either

* ``ABS`` — the absolute region; offsets are concrete machine values
  (program entry zero-initializes every register, so the entry state is
  ``{ABS: 0}`` for all registers, which is both sound and precise); or
* a **symbolic region** ``("pc", n)`` — the unknown-but-fixed value
  produced by the instruction at pc *n* (loads; any producer the
  transfer functions do not model).  Offsets within one symbolic region
  are mathematical integers, so differences survive the machine's
  mod-2^64 arithmetic.

At ordinary confluence points the precise strided-interval join
applies.  At **loop heads** — targets of retreating edges, so every CFG
cycle passes through at least one — the joined state is additionally
pushed through a monotone upper-closure abstraction with a finite
non-singleton image: singletons stay exact (loop-invariant base
addresses keep their full precision), non-singleton bounds round
outward to power-of-two thresholds, and strides drop to their largest
power-of-two divisor.  Because the abstraction is a *monotone function*
rather than a history-dependent widening operator, the whole equation
system stays monotone, every per-variable chain is finite (at most one
singleton, then the finite rounded lattice), and chaotic iteration
converges to the same least fixpoint **regardless of worklist order** —
a property the test suite asserts by shuffling the order.  Power-of-two
strides are also exactly what the congruence-based disjointness proof
wants: they divide 2^64, so residues survive address wraparound.

Alias verdicts between two accesses:

* ``must`` — provably identical start addresses: both single-region over
  the *same* region with equal singleton offsets;
* ``no``   — provably disjoint footprints: same region, and the strided
  offset sets are separated by range or by congruence.  Congruence
  disjointness (``w1 <= d`` and ``d + w2 <= g`` for ``d = (p2 - p1) mod
  g``, ``g = gcd`` of the strides) is applied only when it survives the
  machine's wraparound: ``g`` a power of two (then ``g | 2^64`` and
  residues survive reduction), or both intervals bounded with total span
  under 2^64;
* ``may``  — everything else.  In particular, verdicts through a
  symbolic region whose creating pc can re-execute (its block reaches
  itself in the CFG) are demoted to ``may`` unless the caller proves the
  two accesses observe the *same instance* of the region (the
  atomic-region pass can: a region chain is deterministic and
  re-executes nothing).

On top of the verdicts: reaching stores (no-kill over-approximation),
store-to-load dependence edges, the four ``mem-*`` lint rules, and the
memory-aware atomic-region pass classifying which accesses inside an
atomic-but-for-memory region are provably safe to reorder or forward.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..frontend.emulator import WORD_BYTES
from ..isa import (
    ArchReg,
    Opcode,
    Program,
    RegClass,
    VEC_LANES,
    all_arch_regs,
)
from ..isa.semantics import MASK64, compute
from .cfg import CFG, build_cfg
from .regions import StaticRegionReport, StaticWindow

#: Alias verdicts.
MUST = "must"
MAY = "may"
NO = "no"

#: The absolute region (base 0; offsets are machine values).
ABS = "abs"

#: Value sets wider than this many regions collapse to TOP.
MAX_REGIONS = 4

_TWO64 = 1 << 64


def _region_key(region) -> Tuple[int, int]:
    return (0, 0) if region == ABS else (1, region[1])


@dataclass(frozen=True)
class StridedInterval:
    """Offsets ``{x : x ≡ phase (mod stride), lo <= x <= hi}``.

    ``stride == 0`` is a singleton (``lo == hi == phase``); otherwise
    ``phase`` is the canonical residue in ``[0, stride)`` and either
    bound may be ``None`` (unbounded on that side).
    """

    stride: int
    phase: int
    lo: Optional[int]
    hi: Optional[int]

    @property
    def is_singleton(self) -> bool:
        return self.stride == 0

    @property
    def bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    def shift(self, k: int) -> "StridedInterval":
        if self.stride == 0:
            return si_const(self.phase + k)
        return StridedInterval(
            self.stride, (self.phase + k) % self.stride,
            None if self.lo is None else self.lo + k,
            None if self.hi is None else self.hi + k)

    def add(self, other: "StridedInterval") -> "StridedInterval":
        """Sound sum: ``{x + y}`` for x here, y in *other*."""
        if other.stride == 0:
            return self.shift(other.phase)
        if self.stride == 0:
            return other.shift(self.phase)
        stride = gcd(self.stride, other.stride)
        lo = (None if self.lo is None or other.lo is None
              else self.lo + other.lo)
        hi = (None if self.hi is None or other.hi is None
              else self.hi + other.hi)
        return _si_make(stride, self.phase + other.phase, lo, hi)

    def negate(self) -> "StridedInterval":
        if self.stride == 0:
            return si_const(-self.phase)
        return _si_make(
            self.stride, -self.phase,
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo)

    def join(self, other: "StridedInterval") -> "StridedInterval":
        """Precise join: smallest representable superset of the union."""
        if self == other:
            return self
        stride = _congruence_join(self, other)
        lo = (None if self.lo is None or other.lo is None
              else min(self.lo, other.lo))
        hi = (None if self.hi is None or other.hi is None
              else max(self.hi, other.hi))
        return _si_make(stride, self.phase, lo, hi)

    def abstract(self) -> "StridedInterval":
        """Round into the finite loop-head lattice: singletons stay
        exact; otherwise bounds round outward to power-of-two
        thresholds and the stride drops to its largest power-of-two
        divisor.  A monotone upper closure with a finite non-singleton
        image, so any ascending chain through it is finite (it passes
        through at most one singleton first)."""
        if self.stride == 0:
            return self
        stride = self.stride & -self.stride
        lo = None if self.lo is None else _round_down(self.lo)
        hi = None if self.hi is None else _round_up(self.hi)
        return _si_make(stride, self.phase, lo, hi)


def si_const(value: int) -> StridedInterval:
    return StridedInterval(0, value, value, value)


#: No offset information within a region.
SI_ANY = StridedInterval(1, 0, None, None)


def _si_make(stride: int, phase: int, lo: Optional[int],
             hi: Optional[int]) -> StridedInterval:
    if lo is not None and hi is not None and lo == hi:
        return si_const(lo)
    stride = max(1, stride)
    return StridedInterval(stride, phase % stride, lo, hi)


def _congruence_join(a: StridedInterval, b: StridedInterval) -> int:
    """Join in the arithmetic-congruence lattice: the largest modulus
    both phases agree under."""
    return gcd(a.stride, b.stride, abs(a.phase - b.phase))


#: Bound thresholds for the loop-head abstraction: 0 and ±2^k.
_THRESHOLDS = sorted({0}
                     | {1 << k for k in range(64)}
                     | {-(1 << k) for k in range(64)})


def _round_down(x: int) -> Optional[int]:
    best = None
    for t in _THRESHOLDS:
        if t <= x:
            best = t
        else:
            break
    return best


def _round_up(x: int) -> Optional[int]:
    for t in _THRESHOLDS:
        if t >= x:
            return t
    return None


class _Top:
    """Singleton TOP value set (any address)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TOP"


TOP = _Top()


@dataclass(frozen=True)
class ValueSet:
    """A non-TOP abstract value: sorted (region, interval) parts."""

    parts: Tuple[Tuple[object, StridedInterval], ...]

    @property
    def regions(self) -> Tuple[object, ...]:
        return tuple(region for region, _si in self.parts)

    def get(self, region) -> Optional[StridedInterval]:
        for part_region, si in self.parts:
            if part_region == region:
                return si
        return None

    @property
    def single(self) -> Optional[Tuple[object, StridedInterval]]:
        """The sole (region, interval) part, if there is exactly one."""
        return self.parts[0] if len(self.parts) == 1 else None

    def shift(self, k: int) -> "ValueSet":
        return _vs(((region, si.shift(k)) for region, si in self.parts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "VS{" + ", ".join(f"{r}:{si}" for r, si in self.parts) + "}"


def _vs(items) -> ValueSet:
    parts = tuple(sorted(items, key=lambda item: _region_key(item[0])))
    return ValueSet(parts)


def vs_const(value: int) -> ValueSet:
    return _vs(((ABS, si_const(value & MASK64)),))


def vs_region(region) -> ValueSet:
    return _vs(((region, si_const(0)),))


def vs_join(a, b):
    if a is TOP or b is TOP:
        return TOP
    merged: Dict[object, StridedInterval] = dict(a.parts)
    for region, si in b.parts:
        merged[region] = merged[region].join(si) if region in merged else si
    if len(merged) > MAX_REGIONS:
        return TOP
    return _vs(merged.items())


def vs_abstract(vs):
    """Loop-head abstraction, pointwise over the regions (the region
    set itself is finite per program — one per pc — so only the
    intervals need rounding)."""
    if vs is TOP:
        return TOP
    return _vs((region, si.abstract()) for region, si in vs.parts)


def vs_add(a, b):
    """Sum of two value sets; symbolic + symbolic is unrepresentable."""
    if a is TOP or b is TOP:
        return TOP
    for left, right in ((a, b), (b, a)):
        single = left.single
        if single is not None and single[0] == ABS:
            si = single[1]
            return _vs((region, other.add(si)) for region, other in right.parts)
    return TOP


def vs_sub(a, b):
    if a is TOP or b is TOP:
        return TOP
    single_b = b.single
    if single_b is not None and single_b[0] == ABS:
        return _vs((region, si.add(single_b[1].negate()))
                   for region, si in a.parts)
    single_a = a.single
    if (single_a is not None and single_b is not None
            and single_a[0] == single_b[0]):
        # Same symbolic base on both sides: the difference is absolute.
        return _vs(((ABS, single_a[1].add(single_b[1].negate())),))
    return TOP


def _mask_interval(mask: int) -> StridedInterval:
    """``x & mask`` for any x: a submask of *mask* — bounded by it and
    congruent to 0 modulo the mask's lowest set bit."""
    if mask == 0:
        return si_const(0)
    low_bit = mask & -mask
    return _si_make(low_bit, 0, 0, mask)


#: Opcodes folded exactly via :func:`repro.isa.semantics.compute` when
#: every source is an absolute singleton.
_FOLDABLE = frozenset({
    Opcode.MOV, Opcode.MOVI, Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
    Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.NOT, Opcode.NEG, Opcode.LEA,
    Opcode.CMP, Opcode.TEST, Opcode.SELECT, Opcode.MUL, Opcode.DIV,
    Opcode.MOD,
})


def _normalize_abs(vs: ValueSet) -> ValueSet:
    """Reduce singleton ABS offsets to machine values so a negative
    displacement and its wrapped equivalent compare as the same
    address."""
    parts = []
    for region, si in vs.parts:
        if region == ABS and si.is_singleton:
            si = si_const(si.phase & MASK64)
        parts.append((region, si))
    return _vs(parts)


@dataclass(frozen=True)
class MemAccess:
    """One static memory access: ``[address, address + width)`` bytes."""

    pc: int
    kind: str  # "load" | "store"
    width: int  # 8 (LD/ST) or 32 (VLD/VST)
    address: object  # ValueSet | TOP


def _footprints_disjoint(a: StridedInterval, wa: int,
                         b: StridedInterval, wb: int) -> bool:
    """True iff ``a + [0, wa)`` and ``b + [0, wb)`` are provably disjoint
    as machine addresses (offsets share one region base).

    Range separation needs mathematical distance that cannot wrap; the
    congruence argument needs a power-of-two modulus (dividing 2^64) or
    bounded spans under 2^64.
    """
    bounded = a.bounded and b.bounded
    span_ok = (bounded
               and max(a.hi + wa, b.hi + wb) - min(a.lo, b.lo) < _TWO64)
    if span_ok and (a.hi + wa <= b.lo or b.hi + wb <= a.lo):
        return True
    g = gcd(a.stride, b.stride)
    if g == 0:  # two singletons: covered by the range check above
        return span_ok and (a.phase + wa <= b.phase or b.phase + wb <= a.phase)
    if wa + wb > g:
        return False
    power_of_two = g & (g - 1) == 0
    if not (power_of_two or span_ok):
        return False
    # g divides each nonzero stride, so all of a's values are congruent
    # to a.phase (mod g) and likewise for b.
    d = (b.phase - a.phase) % g
    return wa <= d <= g - wb


class MemDepResult:
    """Value sets, accesses, and alias verdicts of one program."""

    def __init__(self, program: Program, cfg: Optional[CFG] = None,
                 worklist_order: Optional[Sequence[int]] = None):
        self.program = program
        self.cfg = cfg if cfg is not None else build_cfg(program)
        self._regs: Tuple[ArchReg, ...] = all_arch_regs()
        self._loop_heads = self._find_loop_heads()
        self._multi_instance = self._find_multi_instance()
        self._block_in: List[Optional[Dict[ArchReg, object]]] = []
        if self.cfg.blocks:
            self._solve(worklist_order)
        self.accesses: List[MemAccess] = self._collect_accesses()
        self._access_at: Dict[int, MemAccess] = {
            access.pc: access for access in self.accesses}
        self._block_reach = self._block_reachability()

    # -- fixpoint ----------------------------------------------------------
    def _find_loop_heads(self) -> FrozenSet[int]:
        """Targets of retreating edges (``succ.start <= block.start``):
        every CFG cycle passes through at least one, so joining coarsely
        there bounds the lattice height."""
        heads = set()
        for block in self.cfg.blocks:
            for succ, _kind in block.succs:
                if self.cfg.blocks[succ].start <= block.start:
                    heads.add(succ)
        return frozenset(heads)

    def _find_multi_instance(self) -> FrozenSet[object]:
        """Symbolic regions whose creating block can re-execute (reaches
        itself in the CFG): their instances are not unique, so verdicts
        through them need the caller's same-instance proof."""
        blocks = self.cfg.blocks
        in_cycle: Set[int] = set()
        for block in blocks:
            seen: Set[int] = set()
            work = [succ for succ, _kind in block.succs]
            while work:
                index = work.pop()
                if index == block.index:
                    in_cycle.add(block.index)
                    break
                if index in seen:
                    continue
                seen.add(index)
                work.extend(succ for succ, _kind in blocks[index].succs)
        return frozenset(
            ("pc", pc) for block_index in in_cycle
            for pc in blocks[block_index].pcs())

    def _entry_state(self) -> Dict[ArchReg, object]:
        # The machine zero-initializes every register.
        zero_int = vs_const(0)
        return {reg: (TOP if reg.cls is RegClass.VEC else zero_int)
                for reg in self._regs}

    def _transfer(self, state: Dict[ArchReg, object], pc: int) -> None:
        instr = self.program.instructions[pc]
        if not instr.dests:
            return
        op = instr.opcode
        dest = instr.dests[0]
        if dest.cls is RegClass.VEC:
            state[dest] = TOP
            return
        if op is Opcode.CALL:
            state[dest] = vs_const(pc + 1)
            return
        if op is Opcode.LD:
            state[dest] = vs_region(("pc", pc))
            return
        if op is Opcode.MOVI:
            state[dest] = vs_const(instr.imm)
            return
        srcs = [state[src] for src in instr.srcs]
        if (op in _FOLDABLE
                and all(vs is not TOP and vs.single is not None
                        and vs.single[0] == ABS and vs.single[1].is_singleton
                        for vs in srcs)):
            values = [vs.single[1].phase & MASK64 for vs in srcs]
            state[dest] = vs_const(compute(instr, values))
            return
        if op is Opcode.MOV:
            state[dest] = srcs[0]
        elif op is Opcode.LEA:
            state[dest] = (TOP if srcs[0] is TOP
                           else srcs[0].shift(instr.imm))
        elif op is Opcode.ADD:
            state[dest] = vs_add(srcs[0], srcs[1])
        elif op is Opcode.SUB:
            state[dest] = vs_sub(srcs[0], srcs[1])
        elif op is Opcode.AND:
            state[dest] = self._transfer_and(srcs)
        elif op is Opcode.SELECT:
            state[dest] = vs_join(srcs[1], srcs[2])
        else:
            state[dest] = TOP

    @staticmethod
    def _transfer_and(srcs) -> object:
        for vs in srcs:
            if vs is TOP:
                continue
            single = vs.single
            if (single is not None and single[0] == ABS
                    and single[1].is_singleton):
                return _vs(((ABS, _mask_interval(single[1].phase & MASK64)),))
        return TOP

    def _solve(self, worklist_order: Optional[Sequence[int]]) -> None:
        blocks = self.cfg.blocks
        self._block_in = [None] * len(blocks)
        self._out: List[Optional[Dict[ArchReg, object]]] = [None] * len(blocks)
        order = (list(worklist_order) if worklist_order is not None
                 else list(range(len(blocks))))
        work = list(order)
        in_work = set(work)
        while work:
            index = work.pop()
            in_work.discard(index)
            block = blocks[index]
            state = self._join_preds(index)
            if state is None:
                continue
            self._block_in[index] = state
            new_out = dict(state)
            for pc in block.pcs():
                self._transfer(new_out, pc)
            if new_out != self._out[index]:
                self._out[index] = new_out
                for succ, _kind in block.succs:
                    if succ not in in_work:
                        work.append(succ)
                        in_work.add(succ)

    def _join_preds(self, index: int) -> Optional[Dict[ArchReg, object]]:
        state: Optional[Dict[ArchReg, object]] = (
            self._entry_state() if index == 0 else None)
        for pred in self.cfg.blocks[index].preds:
            pred_out = self._out[pred]
            if pred_out is None:
                continue
            if state is None:
                state = dict(pred_out)
            else:
                state = {reg: vs_join(state[reg], pred_out[reg])
                         for reg in state}
        if state is not None and index in self._loop_heads:
            state = {reg: vs_abstract(vs) for reg, vs in state.items()}
        return state

    # -- queries -----------------------------------------------------------
    def value_at(self, pc: int, reg: ArchReg) -> object:
        """Abstract value of *reg* immediately before *pc* executes."""
        block = self.cfg.block_of(pc)
        state_in = self._block_in[block.index]
        if state_in is None:  # unreachable block
            return TOP
        state = dict(state_in)
        for q in range(block.start, pc):
            self._transfer(state, q)
        return state[reg]

    def _collect_accesses(self) -> List[MemAccess]:
        accesses = []
        reachable = self.cfg.reachable()
        for pc, instr in enumerate(self.program.instructions):
            if not instr.is_memory:
                continue
            if self.cfg.block_index[pc] not in reachable:
                continue
            base = instr.srcs[1] if instr.is_store else instr.srcs[0]
            vs = self.value_at(pc, base)
            address = TOP if vs is TOP else _normalize_abs(vs.shift(instr.imm))
            width = (VEC_LANES * WORD_BYTES
                     if instr.opcode in (Opcode.VLD, Opcode.VST)
                     else WORD_BYTES)
            accesses.append(MemAccess(
                pc=pc, kind="load" if instr.is_load else "store",
                width=width, address=address))
        return accesses

    def access_at(self, pc: int) -> Optional[MemAccess]:
        return self._access_at.get(pc)

    # -- alias verdicts ----------------------------------------------------
    def alias(self, a: MemAccess, b: MemAccess,
              same_instance: bool = False) -> str:
        """Verdict between two accesses: ``must`` (identical start
        addresses), ``no`` (provably disjoint footprints), or ``may``.

        *same_instance* asserts that the two accesses observe the same
        instance of any shared symbolic region (valid inside one atomic
        region chain that does not re-execute the region's creating pc).
        """
        if a.address is TOP or b.address is TOP:
            return MAY
        sa, sb = a.address.single, b.address.single
        if sa is None or sb is None or sa[0] != sb[0]:
            return MAY
        region = sa[0]
        if (region != ABS and not same_instance
                and region in self._multi_instance):
            return MAY
        si_a, si_b = sa[1], sb[1]
        if si_a.is_singleton and si_b.is_singleton:
            if si_a.phase == si_b.phase:
                return MUST
        if _footprints_disjoint(si_a, a.width, si_b, b.width):
            return NO
        return MAY

    def alias_counts(self) -> Dict[str, int]:
        """Verdict histogram over every load/store-relevant pair (at
        least one store)."""
        counts = {MUST: 0, MAY: 0, NO: 0}
        for i, a in enumerate(self.accesses):
            for b in self.accesses[i + 1:]:
                if a.kind == "load" and b.kind == "load":
                    continue
                counts[self.alias(a, b)] += 1
        return counts

    # -- reachability ------------------------------------------------------
    def _block_reachability(self) -> List[Set[int]]:
        """Per block: blocks reachable along one or more CFG edges."""
        blocks = self.cfg.blocks
        reach: List[Set[int]] = []
        for block in blocks:
            seen: Set[int] = set()
            work = [succ for succ, _kind in block.succs]
            while work:
                index = work.pop()
                if index in seen:
                    continue
                seen.add(index)
                work.extend(succ for succ, _kind in blocks[index].succs)
            reach.append(seen)
        return reach

    def pc_reaches(self, src_pc: int, dst_pc: int) -> bool:
        """May execution at *src_pc* be followed, later, by *dst_pc*?"""
        src_block = self.cfg.block_index[src_pc]
        dst_block = self.cfg.block_index[dst_pc]
        if src_block == dst_block and src_pc < dst_pc:
            return True
        return dst_block in self._block_reach[src_block]

    def _successor_pcs(self, pc: int) -> List[int]:
        block = self.cfg.block_of(pc)
        if pc < block.end - 1:
            return [pc + 1]
        return [self.cfg.blocks[succ].start for succ, _kind in block.succs]

    # -- dependence edges --------------------------------------------------
    def reaching_stores(self, load: MemAccess) -> List[Tuple[MemAccess, str]]:
        """Stores that may reach *load* (no-kill over-approximation) and
        are not provably disjoint from it, with their verdicts."""
        out = []
        for store in self.accesses:
            if store.kind != "store":
                continue
            if not self.pc_reaches(store.pc, load.pc):
                continue
            verdict = self.alias(store, load)
            if verdict != NO:
                out.append((store, verdict))
        return out

    def dependence_edges(self) -> List[Tuple[int, int, str]]:
        """Store-to-load edges ``(store_pc, load_pc, verdict)``."""
        edges = []
        for load in self.accesses:
            if load.kind != "load":
                continue
            edges.extend((store.pc, load.pc, verdict)
                         for store, verdict in self.reaching_stores(load))
        return edges

    # -- lint back-ends ----------------------------------------------------
    def undefined_loads(self) -> List[int]:
        """Loads no store and no data-image word can reach: the value is
        provably the zero-fill.  Only absolute, bounded addresses can
        prove this (a symbolic base might point anywhere)."""
        out = []
        data_words = [(si_const(addr), WORD_BYTES)
                      for addr in self.program.data]
        for load in self.accesses:
            if load.kind != "load" or load.address is TOP:
                continue
            single = load.address.single
            if single is None or single[0] != ABS or not single[1].bounded:
                continue
            if self.reaching_stores(load):
                continue
            if any(not _footprints_disjoint(single[1], load.width, si, width)
                   for si, width in data_words):
                continue
            out.append(load.pc)
        return out

    def _must_cover(self, killer: MemAccess, victim: MemAccess) -> bool:
        """Does *killer*'s footprint provably contain *victim*'s?"""
        if killer.address is TOP or victim.address is TOP:
            return False
        sk, sv = killer.address.single, victim.address.single
        if sk is None or sv is None or sk[0] != sv[0]:
            return False
        if sk[0] != ABS and sk[0] in self._multi_instance:
            return False
        if not (sk[1].is_singleton and sv[1].is_singleton):
            return False
        start_k, start_v = sk[1].phase, sv[1].phase
        return (start_k <= start_v
                and start_v + victim.width <= start_k + killer.width)

    def dead_stores(self) -> List[int]:
        """Stores provably overwritten, on every path, before any load
        that could observe them and before program exit (final memory is
        architecturally observable, so exit counts as a use)."""
        out = []
        for store in self.accesses:
            if store.kind != "store":
                continue
            single = (None if store.address is TOP
                      else store.address.single)
            if single is None or not single[1].is_singleton:
                continue
            if single[0] != ABS and single[0] in self._multi_instance:
                continue
            if self._store_is_dead(store):
                out.append(store.pc)
        return out

    def _store_is_dead(self, store: MemAccess) -> bool:
        work = self._successor_pcs(store.pc)
        visited: Set[int] = set()
        while work:
            pc = work.pop()
            if pc in visited:
                continue
            visited.add(pc)
            instr = self.program.instructions[pc]
            access = self._access_at.get(pc)
            if access is not None:
                if access.kind == "load":
                    if self.alias(store, access) != NO:
                        return False
                elif self._must_cover(access, store):
                    continue  # this path is killed
            if instr.is_halt:
                return False
            succs = self._successor_pcs(pc)
            if not succs:
                return False  # leaving the image is an exit
            work.extend(succs)
        return True

    def partial_overlaps(self) -> List[Tuple[int, int]]:
        """Pairs provably overlapping with neither footprint containing
        the other — almost always a width confusion."""
        out = []
        for i, a in enumerate(self.accesses):
            for b in self.accesses[i + 1:]:
                if not (self.pc_reaches(a.pc, b.pc)
                        or self.pc_reaches(b.pc, a.pc)):
                    continue
                if self._partially_overlap(a, b):
                    out.append((a.pc, b.pc))
        return out

    def _partially_overlap(self, a: MemAccess, b: MemAccess) -> bool:
        if a.address is TOP or b.address is TOP:
            return False
        sa, sb = a.address.single, b.address.single
        if sa is None or sb is None or sa[0] != sb[0]:
            return False
        if sa[0] != ABS and sa[0] in self._multi_instance:
            return False
        if not (sa[1].is_singleton and sb[1].is_singleton):
            return False
        lo_a, lo_b = sa[1].phase, sb[1].phase
        overlap = lo_a < lo_b + b.width and lo_b < lo_a + a.width
        return (overlap and not self._must_cover(a, b)
                and not self._must_cover(b, a))

    # -- memory-aware atomic regions ---------------------------------------
    def classify_regions(self, report: StaticRegionReport
                         ) -> List["RegionMemory"]:
        """Memory classification of every atomic-but-for-memory region
        (closed ``non_branch`` windows): which accesses are provably
        safe to reorder, which loads could forward, which pairs block.

        Atomic windows proper contain no memory operations (loads and
        stores are ``may_except`` breakers), so the candidates are the
        windows only memory keeps from being atomic — exactly the set a
        speculative-memory pipeline could promote.
        """
        out = []
        for window in report.closed_windows():
            if not window.non_branch:
                continue
            accesses = [self._access_at[pc] for pc in window.chain
                        if pc in self._access_at]
            if not accesses:
                continue
            out.append(self._classify_window(window, accesses))
        return out

    def _classify_window(self, window: StaticWindow,
                         accesses: List[MemAccess]) -> "RegionMemory":
        chain_pcs = set(window.chain)

        def verdict(a: MemAccess, b: MemAccess) -> str:
            # Within one deterministic chain every pc executes once, so
            # a symbolic region created outside the chain is observed as
            # a single instance by both accesses.
            regions = set()
            for access in (a, b):
                if access.address is not TOP:
                    regions.update(access.address.regions)
            same_instance = not any(
                region != ABS and region[1] in chain_pcs
                for region in regions)
            return self.alias(a, b, same_instance=same_instance)

        safe_reorder = []
        forwardable = []
        blocked: List[Tuple[int, int]] = []
        for i, access in enumerate(accesses):
            others = [other for other in accesses if other is not access
                      and (access.kind == "store" or other.kind == "store")]
            if all(verdict(access, other) == NO for other in others):
                safe_reorder.append(access.pc)
            for other in accesses[i + 1:]:
                if (access.kind == "store" or other.kind == "store") \
                        and verdict(access, other) == MAY:
                    blocked.append((access.pc, other.pc))
        for i, access in enumerate(accesses):
            if access.kind != "load":
                continue
            source = None
            clean = True
            for prior in accesses[:i]:
                if prior.kind != "store":
                    continue
                v = verdict(prior, access)
                if v == MUST and prior.width == access.width:
                    source = prior.pc
                elif v == MAY:
                    clean = False
            if source is not None and clean:
                forwardable.append(access.pc)
        return RegionMemory(
            window=window,
            access_pcs=tuple(access.pc for access in accesses),
            safe_reorder=tuple(safe_reorder),
            forwardable=tuple(forwardable),
            blocked_pairs=tuple(blocked),
        )

    def region_may_alias(self, report: StaticRegionReport
                         ) -> List[Tuple[int, int]]:
        """Deduplicated same-provenance ``may`` pairs (at least one
        store) inside atomic-but-for-memory regions — the pairs that
        would block forwarding.  "Same provenance" means both addresses
        derive from the same *symbolic* region (the same load-produced
        pointer): those are the pairs the author could restructure.  ABS
        commonality is excluded — every concrete address is absolute, so
        a ``may`` verdict there usually just means the lattice cannot
        count loop trips; such pairs (and unrelated-provenance ones) are
        reported through :meth:`classify_regions` counts instead."""
        seen: Set[Tuple[int, int]] = set()
        out = []
        for info in self.classify_regions(report):
            for pc_a, pc_b in info.blocked_pairs:
                a, b = self._access_at[pc_a], self._access_at[pc_b]
                if a.address is TOP or b.address is TOP:
                    continue
                sa, sb = a.address.single, b.address.single
                if (sa is None or sb is None or sa[0] != sb[0]
                        or sa[0] == ABS):
                    continue
                key = (min(pc_a, pc_b), max(pc_a, pc_b))
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        return sorted(out)


@dataclass(frozen=True)
class RegionMemory:
    """Memory classification of one atomic-but-for-memory region."""

    window: StaticWindow
    access_pcs: Tuple[int, ...]
    safe_reorder: Tuple[int, ...]
    forwardable: Tuple[int, ...]
    blocked_pairs: Tuple[Tuple[int, int], ...]


def analyze_memdep(program: Program, cfg: Optional[CFG] = None,
                   worklist_order: Optional[Sequence[int]] = None
                   ) -> MemDepResult:
    """Run the address VSA over *program* and return the result.

    *worklist_order* seeds the fixpoint worklist (any permutation of the
    block indices); the result is identical for every order — the
    determinism tests shuffle it.
    """
    return MemDepResult(program, cfg=cfg, worklist_order=worklist_order)
