"""Plain-text rendering of experiment results.

Every figure module returns a result object with a ``render()`` method
built on these helpers, so the benchmark harness can print the same rows
and series the paper reports.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


def pct(value: float) -> str:
    return f"{value * 100:+.2f}%"


def compare_line(label: str, measured: float, paper: float, as_pct: bool = True) -> str:
    """One 'measured vs paper' row for EXPERIMENTS.md-style reporting."""
    if as_pct:
        return f"{label:48s} measured {pct(measured):>9s}   paper {pct(paper):>9s}"
    return f"{label:48s} measured {measured:9.3f}   paper {paper:9.3f}"


def shorten(benchmark: str) -> str:
    """'520.omnetpp_r' -> 'omnetpp'."""
    name = benchmark.split(".", 1)[-1]
    return name[:-2] if name.endswith("_r") else name
