"""Figure 1: baseline IPC vs physical register file size.

The paper shows normalized IPC (1.0 = infinite registers) rising from
37.7% at 64 registers to within 5% of ideal at 280, on the int suite.
"IPC improves with increasing register file size" is the motivating
observation for everything that follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from . import expectations
from .report import format_table, shorten
from .runner import (
    cell_spec,
    default_instructions,
    default_int_suite,
    mean,
    prime_cells,
    run_cell,
)

#: The "infinite" configuration: more registers than the 512-entry ROB
#: can ever hold live, so rename never stalls on the free list.
IDEAL_RF = 560

DEFAULT_SIZES: Tuple[int, ...] = (64, 96, 128, 160, 192, 224, 256, 280)


@dataclass
class Fig01Result:
    sizes: Sequence[int]
    benchmarks: Sequence[str]
    #: benchmark -> {rf_size: normalized IPC}
    normalized: Dict[str, Dict[int, float]]
    average: Dict[int, float]

    def render(self) -> str:
        headers = ["benchmark"] + [str(s) for s in self.sizes]
        rows = []
        for benchmark in self.benchmarks:
            per = self.normalized[benchmark]
            rows.append([shorten(benchmark)] + [per[s] for s in self.sizes])
        rows.append(["AVERAGE"] + [self.average[s] for s in self.sizes])
        table = format_table(headers, rows,
                             title="Figure 1: normalized IPC vs register file size "
                                   "(1.0 = infinite registers)")
        notes = [
            "",
            f"measured avg at 64 regs: {self.average[min(self.sizes)]:.3f}   "
            f"paper: {expectations.FIG01_IPC_FRACTION_AT_64:.3f}",
        ]
        return table + "\n" + "\n".join(notes)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    instructions: Optional[int] = None,
    jobs: Optional[int] = None,
) -> Fig01Result:
    benchmarks = list(default_int_suite() if benchmarks is None else benchmarks)
    instructions = instructions or default_instructions()
    if jobs is not None:
        prime_cells(
            [cell_spec(b, size, "baseline", instructions)
             for b in benchmarks for size in (IDEAL_RF, *sizes)],
            jobs=jobs,
        )
    normalized: Dict[str, Dict[int, float]] = {}
    for benchmark in benchmarks:
        ideal = run_cell(benchmark, IDEAL_RF, "baseline", instructions).ipc
        normalized[benchmark] = {
            size: run_cell(benchmark, size, "baseline", instructions).ipc / ideal
            for size in sizes
        }
    average = {
        size: mean(normalized[b][size] for b in benchmarks) for size in sizes
    }
    return Fig01Result(
        sizes=sizes, benchmarks=benchmarks, normalized=normalized, average=average
    )
