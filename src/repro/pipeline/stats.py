"""Simulation statistics and the register-lifetime event log.

``SimStats`` aggregates everything a run reports (IPC, stall breakdown,
flush counts).  ``RegisterEventLog`` records, per physical-register
allocation on the committed path, the five lifecycle events of paper
section 3.1 — Renamed, Consumed (last consumer executes), Redefined,
Redefiner-Precommitted, Redefiner-Committed — which the analysis package
turns into Figures 4 and 14.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..isa import RegClass


@dataclass
class SimStats:
    """Aggregate counters for one simulation run."""

    cycles: int = 0
    committed: int = 0
    committed_by_class: Dict[str, int] = field(default_factory=dict)
    fetched: int = 0
    renamed: int = 0
    wrong_path_renamed: int = 0
    flushes: int = 0
    flushed_instructions: int = 0

    # Rename stall cycles by cause (a cycle is charged to the first
    # blocking cause encountered).
    stall_freelist: int = 0
    stall_rob: int = 0
    stall_rs: int = 0
    stall_lq: int = 0
    stall_sq: int = 0
    stall_empty: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def total_rename_stalls(self) -> int:
        return (
            self.stall_freelist + self.stall_rob + self.stall_rs
            + self.stall_lq + self.stall_sq
        )

    def count_commit(self, op_class: str) -> None:
        self.committed += 1
        self.committed_by_class[op_class] = self.committed_by_class.get(op_class, 0) + 1

    def to_dict(self) -> Dict:
        """JSON-serializable form (see :mod:`repro.harness.serialize`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "SimStats":
        return cls(**data)


class RegisterLifetime:
    """One committed-path allocation chain of a physical register.

    Cycles are absolute simulation cycles; ``alloc_seq`` / ``redefine_seq``
    are the *trace* sequence numbers of the allocating and redefining
    instructions, which lets the analysis package join these records with
    the trace-level atomic-region classification.
    """

    __slots__ = (
        "file",
        "ptag",
        "alloc_seq",
        "alloc_cycle",
        "last_consume_cycle",
        "consumer_count",
        "redefine_seq",
        "redefine_cycle",
        "redefiner_precommit_cycle",
        "redefiner_commit_cycle",
        "early_release_cycle",
    )

    def __init__(self, file: RegClass, ptag: int, alloc_seq: int, alloc_cycle: int):
        self.file = file
        self.ptag = ptag
        self.alloc_seq = alloc_seq
        self.alloc_cycle = alloc_cycle
        self.last_consume_cycle: Optional[int] = None
        self.consumer_count = 0
        self.redefine_seq: Optional[int] = None
        self.redefine_cycle: Optional[int] = None
        self.redefiner_precommit_cycle: Optional[int] = None
        self.redefiner_commit_cycle: Optional[int] = None
        self.early_release_cycle: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.redefiner_commit_cycle is not None

    def to_dict(self) -> Dict:
        data = {slot: getattr(self, slot) for slot in self.__slots__}
        data["file"] = self.file.name
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RegisterLifetime":
        lifetime = cls(RegClass[data["file"]], data["ptag"],
                       data["alloc_seq"], data["alloc_cycle"])
        for slot in cls.__slots__:
            if slot not in ("file", "ptag", "alloc_seq", "alloc_cycle"):
                setattr(lifetime, slot, data[slot])
        return lifetime


class RegisterEventLog:
    """Collects committed-path :class:`RegisterLifetime` chains.

    Only chains whose allocator *and* redefiner both commit are finalized;
    wrong-path allocations and flushed redefinitions are discarded, which
    matches the paper's committed-register accounting.
    """

    def __init__(self):
        # (file, ptag) -> open lifetime of the current allocation
        self._open: Dict[tuple, RegisterLifetime] = {}
        self.records: List[RegisterLifetime] = []

    def on_allocate(self, file: RegClass, ptag: int, seq: int, cycle: int,
                    wrong_path: bool) -> None:
        if wrong_path:
            # Wrong-path allocations are not tracked; a wrong-path
            # reallocation of an early-released ptag leaves the committed
            # chain (still pending its redefiner's commit) untouched.
            return
        self._open[(file, ptag)] = RegisterLifetime(file, ptag, seq, cycle)

    def on_consume(self, file: RegClass, ptag: int, cycle: int) -> None:
        lifetime = self._open.get((file, ptag))
        if lifetime is not None:
            lifetime.consumer_count += 1
            if lifetime.last_consume_cycle is None or cycle > lifetime.last_consume_cycle:
                lifetime.last_consume_cycle = cycle

    def on_redefine(self, file: RegClass, ptag: int, redefiner_entry, cycle: int) -> None:
        """The SRT mapping of *ptag* was displaced by *redefiner_entry*."""
        lifetime = self._open.get((file, ptag))
        if lifetime is None or redefiner_entry.wrong_path:
            return
        lifetime.redefine_seq = redefiner_entry.dyn.trace_seq
        lifetime.redefine_cycle = cycle
        redefiner_entry.pending_lifetimes.append(lifetime)

    def on_redefiner_precommit(self, entry, cycle: int) -> None:
        for lifetime in entry.pending_lifetimes:
            lifetime.redefiner_precommit_cycle = cycle

    def on_redefiner_commit(self, entry, cycle: int) -> None:
        for lifetime in entry.pending_lifetimes:
            lifetime.redefiner_commit_cycle = cycle
            self.records.append(lifetime)
            key = (lifetime.file, lifetime.ptag)
            # The ptag may have been early released and reallocated to a
            # younger chain already; only close the chain we own.
            if self._open.get(key) is lifetime:
                del self._open[key]
        entry.pending_lifetimes = []

    def on_redefiner_flush(self, entry) -> None:
        """Un-redefine: the chains stay open for the next redefiner."""
        for lifetime in entry.pending_lifetimes:
            lifetime.redefine_seq = None
            lifetime.redefine_cycle = None
            lifetime.redefiner_precommit_cycle = None
        entry.pending_lifetimes = []

    def on_early_release(self, file: RegClass, ptag: int, cycle: int) -> None:
        lifetime = self._open.get((file, ptag))
        if lifetime is not None:
            lifetime.early_release_cycle = cycle
