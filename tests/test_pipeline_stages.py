"""Staged-pipeline regression tests.

Covers the stage/probe decomposition of the core:

* **Golden stats** — the refactored pipeline reproduces the
  pre-refactor fixture (``tests/data/golden_stats.json``) bit for bit.
* **Stage order** — the documented 7-phase order holds on every cycle,
  including flush and interrupt-service cycles, observed through a
  recording probe rather than instrumentation hacks.
* **Probe layer** — zero-cost-when-off wiring, event emission points,
  and removal semantics.
* **Predictor registry** — unknown predictors fail at config build with
  the valid names listed.
* **Chaos stage wrappers** — seeded fault injection replays
  bit-identically through the stage interface.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.branch import PREDICTORS
from repro.frontend import run_program
from repro.isa import assemble
from repro.pipeline import (
    PHASE_ORDER,
    Core,
    CoreConfig,
    InterruptController,
    RecordingProbe,
    fast_test_config,
    golden_cove_config,
)
from repro.pipeline.stages import make_predictor
from repro.validate.chaos import ChaosSpec, run_chaos_cell
from repro.workloads import build_trace

from tests.conftest import BRANCHY_SRC

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_stats.json"


def _normalize(d):
    """JSON round-trip: the fixture stores int histogram keys as strings."""
    return json.loads(json.dumps(d))


class TestGoldenStats:
    """The refactor must not change simulated behaviour at all."""

    @pytest.fixture(scope="class")
    def fixture_data(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_fixture_present_and_complete(self, fixture_data):
        assert fixture_data["cells"], "golden fixture must hold cells"
        schemes = {c["scheme"] for c in fixture_data["cells"]}
        assert {"baseline", "atr"} <= schemes

    @pytest.mark.parametrize("index", range(4))
    def test_cell_reproduces_exactly(self, fixture_data, index):
        cell = fixture_data["cells"][index]
        trace = build_trace(cell["benchmark"], fixture_data["instructions"])
        config = golden_cove_config(
            rf_size=fixture_data["rf_size"], scheme=cell["scheme"])
        core = Core(config, trace)
        stats = core.run()
        assert _normalize(stats.to_dict()) == cell["sim_stats"]
        assert _normalize(core.scheme.stats.to_dict()) == cell["scheme_stats"]


class TestStageOrder:
    """Every cycle runs the documented phases, in order, exactly once."""

    def _phase_trace(self, core):
        probe = core.add_probe(RecordingProbe())
        core.run()
        return probe

    def _assert_order(self, probe, cycles):
        per_cycle = {}
        for kind, cycle, name in probe.of_kind("phase"):
            per_cycle.setdefault(cycle, []).append(name)
        assert len(per_cycle) == cycles, "phase events on every cycle"
        for cycle, names in per_cycle.items():
            assert tuple(names) == PHASE_ORDER, f"cycle {cycle}: {names}"

    def test_order_on_branchy_run_with_flushes(self, branchy_program):
        trace = run_program(branchy_program)
        core = Core(fast_test_config(scheme="atr", rf_size=28), trace)
        probe = self._phase_trace(core)
        self._assert_order(probe, core.cycle)
        flushes = probe.of_kind("flush")
        assert flushes, "branchy program must flush at least once"
        assert all(detail[0] == "branch" for _, _, detail in flushes)

    def test_order_on_interrupt_flush_cycles(self, branchy_program):
        trace = run_program(branchy_program)
        core = Core(fast_test_config(scheme="atr", rf_size=28), trace)
        controller = InterruptController(core, policy="flush",
                                         service_cycles=10)
        controller.schedule(at_cycle=40)
        probe = self._phase_trace(core)
        self._assert_order(probe, core.cycle)
        assert controller.stats.serviced == 1
        kinds = {detail[0] for _, _, detail in probe.of_kind("flush")}
        assert "interrupt" in kinds or controller.stats.flushed_instructions == 0

    def test_cycle_end_fires_once_per_cycle(self, loop_trace):
        core = Core(fast_test_config(), loop_trace)
        probe = core.add_probe(RecordingProbe())
        core.run()
        ends = probe.of_kind("cycle_end")
        assert len(ends) == core.cycle
        assert [c for _, c, _ in ends] == sorted(set(c for _, c, _ in ends))


class TestProbeLayer:
    def test_unprobed_core_has_no_manager(self, loop_trace):
        core = Core(fast_test_config(), loop_trace)
        assert core.state.probes is None
        core.run()
        assert core.state.probes is None

    def test_remove_restores_unprobed_fast_path(self, loop_trace):
        core = Core(fast_test_config(), loop_trace)
        probe = core.add_probe(RecordingProbe())
        assert core.state.probes is not None
        core.remove_probe(probe)
        assert core.state.probes is None

    def test_probes_observe_instruction_lifecycle(self, loop_trace):
        core = Core(fast_test_config(), loop_trace)
        probe = core.add_probe(RecordingProbe())
        stats = core.run()
        assert len(probe.of_kind("fetch")) == stats.fetched
        assert len(probe.of_kind("rename")) == stats.renamed
        assert len(probe.of_kind("commit")) == stats.committed
        # Every commit was preceded by rename/issue/writeback/precommit
        # of the same seq.
        committed = {seq for _, _, seq in probe.of_kind("commit")}
        for kind in ("rename_sources", "allocate", "rename", "issue",
                     "writeback", "precommit"):
            seen = {detail for _, _, detail in probe.of_kind(kind)}
            assert committed <= seen, f"{kind} missing for committed seqs"

    def test_probe_observation_does_not_perturb_timing(self, branchy_program):
        trace = run_program(branchy_program)
        plain = Core(fast_test_config(scheme="atr", rf_size=28), trace)
        probed = Core(fast_test_config(scheme="atr", rf_size=28), trace)
        probed.add_probe(RecordingProbe())
        assert plain.run().to_dict() == probed.run().to_dict()

    def test_claim_and_release_events_under_atr(self):
        src = "movi r1, 1\n" + "add r2, r1, r1\nadd r2, r2, r1\n" * 50 + "halt"
        trace = run_program(assemble(src, name="churn"))
        core = Core(fast_test_config(scheme="atr", rf_size=24), trace)
        probe = core.add_probe(RecordingProbe())
        core.run()
        assert len(probe.of_kind("claim")) == core.scheme.stats.atr_claims
        assert len(probe.of_kind("early_release")) == core.scheme.stats.atr_frees


class TestPredictorRegistry:
    def test_registry_names(self):
        assert set(PREDICTORS) == {
            "tage", "gshare", "bimodal", "always_taken", "always_not_taken"}

    @pytest.mark.parametrize("name", sorted(PREDICTORS))
    def test_every_registered_predictor_builds_and_runs(self, name, loop_trace):
        core = Core(fast_test_config(predictor=name), loop_trace)
        stats = core.run()
        assert stats.committed == len(loop_trace)

    def test_unknown_predictor_fails_at_config_build(self):
        config = dataclasses.replace(CoreConfig(), predictor="perceptron")
        with pytest.raises(ValueError) as err:
            config.validate()
        message = str(err.value)
        assert "perceptron" in message
        for name in PREDICTORS:
            assert name in message, "error must list the valid names"

    def test_make_predictor_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            make_predictor("nope")


class TestChaosThroughStages:
    """Chaos perturbations ride the stage interface, deterministically."""

    SPEC = ChaosSpec(benchmark="mcf", scheme="atr", rf_size=40,
                     instructions=1500, seed=7, intensity="medium")

    def test_chaos_replays_bit_identically(self):
        first = run_chaos_cell(self.SPEC)
        second = run_chaos_cell(self.SPEC)
        assert first.error is None
        assert first.stats.to_dict() == second.stats.to_dict()
        assert first.scheme_stats.to_dict() == second.scheme_stats.to_dict()

    def test_chaos_actually_perturbs(self):
        seeds = [ChaosSpec(benchmark="mcf", scheme="atr", rf_size=40,
                           instructions=1500, seed=s, intensity="high")
                 for s in range(3)]
        cycle_counts = {run_chaos_cell(s).stats.cycles for s in seeds}
        assert len(cycle_counts) > 1, "different seeds must differ in timing"
