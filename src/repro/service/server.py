"""The sweep service coordinator: socket server + reaper + worker pool.

``repro serve`` runs one :class:`SweepService` per host.  The service
owns the durable :class:`~repro.service.queue.JobQueue` and the shared
:class:`~repro.harness.store.ResultStore`; clients and workers talk the
line-JSON protocol of :mod:`repro.service.api`.

Division of labour:

* **submit** checks the store first (``store.contains``) so cells whose
  result already exists under the current code fingerprint complete
  instantly — a warm resubmission never touches a worker;
* **claim/complete/fail** drive the queue's lease protocol; completed
  results are written through the store *here*, on the coordinator, so
  remote workers need no shared filesystem and the store's lifetime
  ``puts`` counter counts executions exactly once per cell;
* a background **reaper** thread requeues expired leases even when no
  worker is claiming (a lone dead worker cannot stall a job forever);
* ``repro serve --workers N`` forks N local worker processes that
  connect back over the same socket protocol as remote ones — one code
  path, exercised everywhere.

Robustness: a shared-secret *token* (``--token`` /
``$REPRO_SERVICE_TOKEN``) gates every op when configured — mandatory
for non-loopback binds.  When the queue directory turns unhealthy
(``OSError`` out of a mutating op) the service degrades to read-only:
``status``/``fetch``/``stats``/``ping`` keep answering while mutations
are rejected with a typed ``degraded`` error, and the reaper thread
doubles as a heal probe that restores full service once the queue dir
answers again.  An optional
:class:`~repro.service.faults.FaultInjector` threads seeded transport
faults through the handler — all ``None``-checked, zero cost when off.
"""

from __future__ import annotations

import json
import socket
import socketserver
import struct
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from ..harness.serialize import decode_result
from ..harness.spec import spec_from_dict
from ..harness.store import ResultStore, code_fingerprint
from .queue import DEFAULT_LEASE, JOB_CANCELLED, JOB_DONE, JOB_FAILED, JobQueue

TERMINAL_JOB_STATES = (JOB_DONE, JOB_FAILED, JOB_CANCELLED)

#: Fastest/slowest a watch loop may poll, whatever the client asks.
WATCH_INTERVAL_MIN = 0.05
WATCH_INTERVAL_MAX = 5.0

#: Ops refused while the service is degraded to read-only.
MUTATING_OPS = frozenset({
    "submit", "claim", "complete", "fail", "cancel", "heartbeat",
})


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read one request line, answer, hang up."""

    def handle(self) -> None:
        service: "SweepService" = self.server.service  # type: ignore[attr-defined]
        self._mangle = None
        try:
            line = self.rfile.readline()
        except OSError:
            return
        if not line.strip():
            return
        try:
            request = json.loads(line)
            op = request.get("op")
            faults = service.faults
            action = faults.transport_action(op) if faults is not None \
                else None
            if action is not None:
                kind, param = action
                if kind in ("refuse", "reset"):
                    # Injected connection failure: RST before answering.
                    self._hard_close()
                    return
                if kind == "delay":
                    time.sleep(param)  # hung reply: outlive client timeout
                elif kind in ("drop", "partial"):
                    self._mangle = kind  # sabotage the reply line below
            service.dispatch(op, request, self._reply)
        except Exception as exc:  # one bad request must not kill the server
            try:
                self._reply({"ok": False,
                             "error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                pass

    def _reply(self, payload: Dict) -> None:
        data = json.dumps(payload).encode("utf-8") + b"\n"
        mangle, self._mangle = self._mangle, None  # one-shot
        if mangle == "drop":
            self._hard_close()  # reply vanishes: truncated stream
            return
        if mangle == "partial":
            # Half a JSON line, no newline terminator, then RST.
            self.wfile.write(data[:max(1, len(data) // 2)].rstrip(b"\n"))
            self.wfile.flush()
            self._hard_close()
            return
        self.wfile.write(data)
        self.wfile.flush()

    def _hard_close(self) -> None:
        try:
            self.connection.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0))  # RST, not FIN
            self.connection.close()
        except OSError:
            pass


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class SweepService:
    """Queue + store behind a line-JSON TCP socket."""

    def __init__(self, queue: Optional[JobQueue] = None,
                 store: Optional[ResultStore] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 lease: float = DEFAULT_LEASE,
                 token: Optional[str] = None,
                 faults=None):
        self.queue = queue or JobQueue(lease=lease)
        self.store = store or ResultStore()
        self.token = token
        #: Optional :class:`~repro.service.faults.FaultInjector`.
        self.faults = faults
        #: Cause string while degraded to read-only; None when healthy.
        self.degraded: Optional[str] = None
        self.server = _Server((host, port), _Handler)
        self.server.service = self  # type: ignore[attr-defined]
        self.ops = {
            "ping": self._op_ping,
            "submit": self._op_submit,
            "status": self._op_status,
            "watch": self._op_watch,
            "cancel": self._op_cancel,
            "fetch": self._op_fetch,
            "stats": self._op_stats,
            "claim": self._op_claim,
            "complete": self._op_complete,
            "fail": self._op_fail,
            "heartbeat": self._op_heartbeat,
            "shutdown": self._op_shutdown,
        }
        self._threads = []
        self._stopping = threading.Event()

    # -- lifecycle ---------------------------------------------------------------
    @property
    def address(self) -> str:
        host, port = self.server.server_address[:2]
        return f"{host}:{port}"

    def start(self, reaper_interval: Optional[float] = None) -> None:
        """Serve + reap in background threads (returns immediately)."""
        serve = threading.Thread(target=self.server.serve_forever,
                                 name="repro-serve", daemon=True)
        serve.start()
        self._threads.append(serve)
        if reaper_interval is None:
            reaper_interval = max(self.queue.lease / 4.0, 0.05)
        reaper = threading.Thread(target=self._reap_loop,
                                  args=(reaper_interval,),
                                  name="repro-reaper", daemon=True)
        reaper.start()
        self._threads.append(reaper)

    def stop(self) -> None:
        self._stopping.set()
        self.server.shutdown()
        self.server.server_close()

    def wait(self) -> None:
        """Block until :meth:`stop` (the ``repro serve`` foreground)."""
        self._stopping.wait()

    def _reap_loop(self, interval: float) -> None:
        while not self._stopping.wait(interval):
            try:
                if self.degraded is not None:
                    self.check_health()  # heal probe while read-only
                else:
                    self.queue.reap()
            except Exception:
                pass  # the reaper must outlive any transient queue error

    # -- dispatch & health -------------------------------------------------------
    def dispatch(self, op: Optional[str], request: Dict, reply) -> None:
        """Auth gate → degraded gate → op handler (+ degrade on OSError)."""
        if self.token is not None and request.get("token") != self.token:
            reply({"ok": False, "kind": "auth",
                   "error": "missing or invalid service token "
                            "(--token / $REPRO_SERVICE_TOKEN)"})
            return
        handler = self.ops.get(op)
        if handler is None:
            reply({"ok": False, "error": f"unknown op {op!r}"})
            return
        if self.degraded is not None and op in MUTATING_OPS:
            reply({"ok": False, "kind": "degraded",
                   "error": f"service is read-only while the queue dir "
                            f"is unhealthy ({self.degraded}); "
                            f"status/fetch/stats still served"})
            return
        try:
            handler(request, reply)
        except OSError as exc:
            if op in MUTATING_OPS:
                # The queue dir is sick: stop mutating, keep reads up.
                self.degraded = f"{type(exc).__name__}: {exc}"
            raise

    def check_health(self) -> bool:
        """Probe the queue dir with a full read-modify-write; heal or
        (re-)degrade accordingly."""
        try:
            self.queue.reap()
        except OSError as exc:
            self.degraded = f"{type(exc).__name__}: {exc}"
            return False
        if self.degraded is not None:
            self.degraded = None
        return True

    # -- operations --------------------------------------------------------------
    def _op_ping(self, request: Dict, reply) -> None:
        reply({"ok": True, "service": "repro", "address": self.address,
               "fingerprint": self.store.fingerprint[:16],
               "degraded": self.degraded})

    def _op_submit(self, request: Dict, reply) -> None:
        specs = [spec_from_dict(data) for data in request.get("specs", [])]
        if not specs:
            reply({"ok": False, "error": "submit with no specs"})
            return
        receipt = self.queue.submit(
            specs,
            priority=int(request.get("priority", 0)),
            label=str(request.get("label", "")),
            is_warm=self.store.contains,
        )
        reply({"ok": True, **receipt.to_dict()})

    def _op_status(self, request: Dict, reply) -> None:
        job_id = request.get("job")
        if job_id is None:
            reply({"ok": True, "jobs": self.queue.jobs(),
                   "stats": self.queue.stats()})
            return
        status = self.queue.job(job_id)
        if status is None:
            reply({"ok": False, "error": f"unknown job {job_id!r}"})
            return
        reply({"ok": True, "job": status})

    def _op_watch(self, request: Dict, reply) -> None:
        job_id = request.get("job")
        interval = min(max(float(request.get("interval", 0.2)),
                           WATCH_INTERVAL_MIN), WATCH_INTERVAL_MAX)
        status = self.queue.job(job_id)
        if status is None:
            reply({"ok": False, "error": f"unknown job {job_id!r}"})
            return
        while True:
            terminal = status["state"] in TERMINAL_JOB_STATES
            reply({"ok": True,
                   "event": "done" if terminal else "progress",
                   "job": status})
            if terminal or self._stopping.is_set():
                return
            time.sleep(interval)
            status = self.queue.job(job_id)
            if status is None:  # job file vanished mid-watch
                reply({"ok": False, "error": f"job {job_id!r} disappeared"})
                return

    def _op_cancel(self, request: Dict, reply) -> None:
        reply({"ok": True,
               "cancelled": self.queue.cancel(request.get("job", ""))})

    def _op_fetch(self, request: Dict, reply) -> None:
        spec = spec_from_dict(request["spec"])
        path = self.store.path_for(spec)
        try:
            payload = json.loads(path.read_text())["result"]
        except (OSError, ValueError, KeyError):
            reply({"ok": True, "result": None})
            return
        reply({"ok": True, "result": payload,
               "elapsed": None})

    def _op_stats(self, request: Dict, reply) -> None:
        reply({"ok": True, "queue": self.queue.stats(),
               "store": self.store.info(),
               "degraded": self.degraded})

    def _op_claim(self, request: Dict, reply) -> None:
        owner = request.get("owner") or "anonymous"
        host = request.get("host")
        if host:
            self.queue.heartbeat(host)
        leases = self.queue.claim(owner,
                                  max_cells=int(request.get("max", 1)))
        reply({"ok": True, "cells": [lease.to_dict() for lease in leases]})

    def _op_complete(self, request: Dict, reply) -> None:
        owner = request["owner"]
        digest = request["digest"]
        elapsed = request.get("elapsed")
        result = decode_result(request["result"])
        # Publish + settle in one queue critical section: the store
        # write-through happens iff this (digest, owner) still holds
        # the lease, so a duplicate/stale complete never double-puts.
        outcome = self.queue.complete_with(
            digest, owner,
            publish=lambda spec: self.store.put(spec, result, elapsed),
            elapsed=elapsed,
            spec_fallback=request.get("spec"))
        if outcome == "duplicate":
            # The queue says done; heal the store if it lost the entry
            # (`cache gc` between the first complete and this retry).
            spec_data = request.get("spec")
            if spec_data is None:
                try:
                    spec_data = json.loads(
                        self.queue._cell_path(digest).read_text())["spec"]
                except (OSError, ValueError, KeyError):
                    spec_data = None
            if spec_data is not None:
                spec = spec_from_dict(spec_data)
                if not self.store.contains(spec):
                    self.store.put(spec, result, elapsed)
        reply({"ok": True,
               "accepted": outcome in ("accepted", "duplicate"),
               "outcome": outcome})

    def _op_fail(self, request: Dict, reply) -> None:
        accepted = self.queue.fail(request["digest"], request["owner"],
                                   str(request.get("error", "worker error")))
        reply({"ok": True, "accepted": accepted})

    def _op_heartbeat(self, request: Dict, reply) -> None:
        errors = request.get("errors")
        self.queue.heartbeat(str(request.get("host", "unknown")),
                             workers=int(request.get("workers", 1)),
                             meta={"errors": errors} if errors else None)
        reply({"ok": True})

    def _op_shutdown(self, request: Dict, reply) -> None:
        reply({"ok": True})
        threading.Thread(target=self.stop, daemon=True).start()


def run_service(host: str = "127.0.0.1", port: int = 0,
                workers: int = 0,
                queue_root: Optional[Path] = None,
                store_root: Optional[Path] = None,
                lease: float = DEFAULT_LEASE,
                token: Optional[str] = None,
                announce=print) -> int:
    """``repro serve``: coordinator + N local workers, until interrupted."""
    import signal

    # SIGTERM's default action would skip the finally block below and
    # orphan the forked worker pool; route it through KeyboardInterrupt
    # so `kill <serve-pid>` (CI, process managers) shuts down cleanly.
    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    queue = JobQueue(root=queue_root, lease=lease)
    store = ResultStore(root=store_root)
    service = SweepService(queue=queue, store=store, host=host, port=port,
                           lease=lease, token=token)
    service.start()
    if token is None and host not in ("127.0.0.1", "localhost", "::1"):
        announce("warning: binding a non-loopback address without "
                 "--token / $REPRO_SERVICE_TOKEN — anyone who can reach "
                 "the socket can submit and claim work")
    announce(f"repro service on {service.address} "
             f"(queue {queue.root}, store {store.root}, "
             f"fingerprint {code_fingerprint()[:16]}"
             f"{', token auth on' if token else ''})")
    processes = []
    if workers:
        from .worker import spawn_workers

        processes = spawn_workers(service.address, workers, token=token)
        announce(f"started {workers} local worker process(es)")
    try:
        service.wait()
    except KeyboardInterrupt:
        announce("repro service: shutting down")
    finally:
        service.stop()
        for process in processes:
            process.terminate()
        for process in processes:
            process.join(2.0)
        signal.signal(signal.SIGTERM, previous_sigterm)
    return 0
