"""TAGE direction predictor (TAGE-SC-L-lite).

A faithful-in-structure implementation of the TAGE predictor the paper's
Golden-Cove-like Scarab configuration uses ("TAGE-SC-L + BPU enhancements"):
a bimodal base predictor plus N partially-tagged tables indexed by
geometrically increasing global-history lengths, with provider/altpred
selection, useful counters, and graceful allocation on mispredictions.
A small loop predictor provides the "L" component; the statistical
corrector is omitted (it corrects <1% of predictions and does not affect
register-release behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .interface import DirectionPredictor, saturate
from .simple import Bimodal


@dataclass
class _TageEntry:
    tag: int = 0
    counter: int = 4  # 3-bit, weakly taken at 4 (range 0..7)
    useful: int = 0  # 2-bit


class _TaggedTable:
    """One partially-tagged TAGE component."""

    def __init__(self, entries: int, tag_bits: int, history_length: int):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.tag_bits = tag_bits
        self.history_length = history_length
        self.table = [_TageEntry() for _ in range(entries)]

    def _fold(self, history: int, bits: int) -> int:
        """Fold ``history_length`` history bits down to *bits* bits."""
        masked = history & ((1 << self.history_length) - 1)
        folded = 0
        while masked:
            folded ^= masked & ((1 << bits) - 1)
            masked >>= bits
        return folded

    def index(self, pc: int, history: int) -> int:
        return (pc ^ (pc >> 4) ^ self._fold(history, self.entries.bit_length() - 1)) & (
            self.entries - 1
        )

    def tag(self, pc: int, history: int) -> int:
        return (pc ^ self._fold(history, self.tag_bits) ^ (self._fold(history, self.tag_bits - 1) << 1)) & (
            (1 << self.tag_bits) - 1
        )


class _LoopEntry:
    __slots__ = ("tag", "trip_count", "current", "confidence")

    def __init__(self):
        self.tag = 0
        self.trip_count = 0
        self.current = 0
        self.confidence = 0


class LoopPredictor:
    """Detects fixed-trip-count loops and predicts their exit."""

    def __init__(self, entries: int = 64, confidence_max: int = 3):
        self.entries = entries
        self.confidence_max = confidence_max
        self.table = [_LoopEntry() for _ in range(entries)]

    def _entry(self, pc: int) -> _LoopEntry:
        return self.table[pc % self.entries]

    def predict(self, pc: int) -> Optional[bool]:
        """Confident loop prediction, or ``None`` if not applicable."""
        e = self._entry(pc)
        if e.tag != pc or e.confidence < self.confidence_max or e.trip_count == 0:
            return None
        return e.current < e.trip_count

    def update(self, pc: int, taken: bool) -> None:
        e = self._entry(pc)
        if e.tag != pc:
            e.tag = pc
            e.trip_count = 0
            e.current = 0
            e.confidence = 0
            if not taken:
                return
        if taken:
            e.current += 1
        else:
            # Loop exit: does the trip count repeat?
            if e.trip_count == e.current and e.trip_count > 0:
                e.confidence = saturate(e.confidence, 1, 0, self.confidence_max)
            else:
                e.trip_count = e.current
                e.confidence = 0
            e.current = 0


class Tage(DirectionPredictor):
    """TAGE with a bimodal base, tagged components, and a loop predictor."""

    def __init__(
        self,
        num_tables: int = 6,
        table_entries: int = 1024,
        tag_bits: int = 9,
        min_history: int = 4,
        max_history: int = 128,
        base_entries: int = 8192,
        with_loop_predictor: bool = True,
    ):
        self.base = Bimodal(entries=base_entries, counter_bits=2)
        lengths = _geometric_lengths(num_tables, min_history, max_history)
        self.tables: List[_TaggedTable] = [
            _TaggedTable(table_entries, tag_bits, length) for length in lengths
        ]
        self.history = 0
        self.history_bits = max_history
        self.loop = LoopPredictor() if with_loop_predictor else None
        self.use_alt_on_new = 8  # 4-bit counter, >=8 prefers altpred for fresh entries
        # Prediction bookkeeping (provider table etc.) keyed by pc for the
        # common predict -> update flow.
        self._last: dict = {}

    # -- prediction ----------------------------------------------------------
    def _lookup(self, pc: int):
        provider = None
        provider_index = -1
        alt = None
        alt_index = -1
        for t in range(len(self.tables) - 1, -1, -1):
            table = self.tables[t]
            idx = table.index(pc, self.history)
            entry = table.table[idx]
            if entry.tag == table.tag(pc, self.history):
                if provider is None:
                    provider, provider_index = t, idx
                elif alt is None:
                    alt, alt_index = t, idx
                    break
        return provider, provider_index, alt, alt_index

    def predict(self, pc: int) -> bool:
        if self.loop is not None:
            loop_pred = self.loop.predict(pc)
        else:
            loop_pred = None
        provider, p_idx, alt, a_idx = self._lookup(pc)
        base_pred = self.base.predict(pc)
        if provider is None:
            pred = base_pred
            alt_pred = base_pred
        else:
            entry = self.tables[provider].table[p_idx]
            provider_pred = entry.counter >= 4
            if alt is not None:
                alt_pred = self.tables[alt].table[a_idx].counter >= 4
            else:
                alt_pred = base_pred
            newly_allocated = entry.useful == 0 and entry.counter in (3, 4)
            if newly_allocated and self.use_alt_on_new >= 8:
                pred = alt_pred
            else:
                pred = provider_pred
        self._last[pc] = (provider, p_idx, alt, a_idx, pred, alt_pred)
        return loop_pred if loop_pred is not None else pred

    def confidence(self, pc: int) -> bool:
        """High confidence when the provider counter is strongly saturated."""
        provider, p_idx, _, _ = self._lookup(pc)
        if provider is None:
            return self.base.confidence(pc)
        counter = self.tables[provider].table[p_idx].counter
        return counter <= 1 or counter >= 6

    # -- update ----------------------------------------------------------------
    def update(self, pc: int, taken: bool) -> None:
        if self.loop is not None:
            self.loop.update(pc, taken)
        state = self._last.pop(pc, None)
        if state is None:
            # update without a preceding predict (e.g. replayed): look up now
            provider, p_idx, alt, a_idx = self._lookup(pc)
            pred = alt_pred = None
        else:
            provider, p_idx, alt, a_idx, pred, alt_pred = state

        if provider is not None:
            table = self.tables[provider]
            entry = table.table[p_idx]
            if pred is not None and pred != alt_pred:
                # provider was useful iff it was right where altpred was wrong
                entry.useful = saturate(entry.useful, 1 if pred == taken else -1, 0, 3)
                self.use_alt_on_new = saturate(
                    self.use_alt_on_new, -1 if pred == taken else 1, 0, 15
                )
            entry.counter = saturate(entry.counter, 1 if taken else -1, 0, 7)
        else:
            self.base.update(pc, taken)

        mispredicted = pred is not None and pred != taken
        if mispredicted:
            self._allocate(pc, taken, provider)

        self.history = ((self.history << 1) | int(taken)) & ((1 << self.history_bits) - 1)

    def _allocate(self, pc: int, taken: bool, provider: Optional[int]) -> None:
        """Allocate a new entry in a longer-history table on a mispredict."""
        start = (provider + 1) if provider is not None else 0
        for t in range(start, len(self.tables)):
            table = self.tables[t]
            idx = table.index(pc, self.history)
            entry = table.table[idx]
            if entry.useful == 0:
                entry.tag = table.tag(pc, self.history)
                entry.counter = 4 if taken else 3
                entry.useful = 0
                return
        # No victim: age the candidate entries instead.
        for t in range(start, len(self.tables)):
            table = self.tables[t]
            entry = table.table[table.index(pc, self.history)]
            entry.useful = saturate(entry.useful, -1, 0, 3)


def _geometric_lengths(count: int, shortest: int, longest: int) -> List[int]:
    """Geometrically spaced history lengths, TAGE-style."""
    if count == 1:
        return [shortest]
    ratio = (longest / shortest) ** (1.0 / (count - 1))
    lengths = []
    for i in range(count):
        length = int(round(shortest * ratio**i))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return lengths
