"""Workload suite registry (paper Table 2, grown sideways with variants).

Every SPEC CPU 2017 benchmark the paper evaluates is a declarative
:class:`Workload` entry in the :data:`WORKLOADS` registry: builder, int/fp
class, probe iteration count, and a list of named **input variants** —
alternate refs of the same kernel, hand-tuned seed parameterizations that
change the embedded data (hash contents, branch patterns, pointer chains)
without changing program structure, so lint findings and the static
atomic-region proof carry over while the dynamic trace genuinely differs.

A variant is addressed with a ``/``-qualified name — ``505.mcf_r/ref2`` —
anywhere a benchmark name is accepted (``CellSpec.benchmark``, the CLI,
``build_trace``); the unqualified name is the default ``ref``.  Traces
are cached per (qualified name, length) within a process, bounded LRU, so
experiment sweeps that re-simulate the same workload under many
configurations only emulate it once and long sweeps cannot grow memory
without limit.

Out-of-tree workloads plug in via the registry's discovery hook (see
:mod:`repro.registry`): register a :class:`Workload` under a new name
from a ``REPRO_PLUGINS`` module and every layer — ``repro run``,
``repro list``, sweeps, the service — can name it.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..frontend import Emulator, Trace
from ..isa import Program
from ..registry import Registry
from . import kernels_fp, kernels_int

VARIANT_SEP = "/"
DEFAULT_VARIANT = "ref"


@dataclass(frozen=True)
class WorkloadVariant:
    """One named input set of a workload (an alternate SPEC 'ref').

    ``params`` are extra keyword arguments for the builder (typically a
    ``seed`` reshaping the embedded data); ``builder`` overrides the
    workload's builder entirely (e.g. a synthesizer-profile closure).
    ``iterations`` never appears in ``params`` — trace construction owns
    the iteration count and scales it to the requested dynamic length.
    """

    name: str
    params: Dict[str, object] = field(default_factory=dict)
    builder: Optional[Callable[..., Program]] = None
    note: str = ""

    def __post_init__(self):
        if "iterations" in self.params:
            raise ValueError(
                f"variant {self.name!r}: 'iterations' is not a variant "
                f"parameter (trace construction scales it)")


@dataclass(frozen=True)
class Workload:
    """One declarative suite entry: how to build a benchmark's program."""

    name: str
    builder: Callable[..., Program]
    cls: str  #: "int" | "fp" | anything else (plugins; counts as non-fp)
    probe_iterations: int = 4
    variants: Tuple[WorkloadVariant, ...] = ()

    def variant(self, name: Optional[str]) -> Optional[WorkloadVariant]:
        """The named variant, or ``None`` for the default ref."""
        if name is None or name == DEFAULT_VARIANT:
            return None
        for variant in self.variants:
            if variant.name == name:
                return variant
        known = [DEFAULT_VARIANT] + [v.name for v in self.variants]
        raise KeyError(
            f"unknown variant {name!r} of {self.name}; "
            f"known: {', '.join(known)}")

    def build(self, iterations: int,
              variant: Optional[str] = None, **overrides) -> Program:
        """Build the program for one variant at one iteration count."""
        chosen = self.variant(variant)
        builder = self.builder
        params: Dict[str, object] = {}
        if chosen is not None:
            if chosen.builder is not None:
                builder = chosen.builder
            params.update(chosen.params)
        params.update(overrides)
        return builder(iterations=iterations, **params)


#: The workload registry: every benchmark (and, via plugins, any
#: out-of-tree workload) as pure data.
WORKLOADS: Registry = Registry(
    "workload", doc="benchmark programs (SPEC 2017 stand-ins + plugins)")


def _ref2(seed: int, note: str = "alternate data ref") -> WorkloadVariant:
    return WorkloadVariant("ref2", params={"seed": seed}, note=note)


def _register_suite() -> None:
    int_entries = [
        ("500.perlbench_r", kernels_int.perlbench,
         (_ref2(101, "second hash corpus: different string/table data"),)),
        ("502.gcc_r", kernels_int.gcc,
         (_ref2(102, "alternate IR stream: reshaped opcode dispatch"),)),
        ("505.mcf_r", kernels_int.mcf,
         (_ref2(103, "second network: different arc costs/pointer chains"),)),
        ("520.omnetpp_r", kernels_int.omnetpp, ()),
        ("523.xalancbmk_r", kernels_int.xalancbmk, ()),
        ("525.x264_r", kernels_int.x264, ()),
        ("531.deepsjeng_r", kernels_int.deepsjeng,
         (_ref2(106, "second position set: different search shape"),)),
        ("541.leela_r", kernels_int.leela, ()),
        ("548.exchange2_r", kernels_int.exchange2, ()),
        ("557.xz_r", kernels_int.xz,
         (_ref2(109, "second input block: different match structure"),)),
    ]
    fp_entries = [
        ("503.bwaves_r", kernels_fp.bwaves,
         (_ref2(111, "second grid: different flow-field data"),)),
        ("507.cactuBSSN_r", kernels_fp.cactubssn, ()),
        ("508.namd_r", kernels_fp.namd, ()),
        ("510.parest_r", kernels_fp.parest, ()),
        ("511.povray_r", kernels_fp.povray, ()),
        ("519.lbm_r", kernels_fp.lbm,
         (_ref2(116, "second lattice: different site occupancy"),)),
        ("521.wrf_r", kernels_fp.wrf, ()),
        ("526.blender_r", kernels_fp.blender, ()),
        ("527.cam4_r", kernels_fp.cam4, ()),
        ("538.imagick_r", kernels_fp.imagick, ()),
        ("544.nab_r", kernels_fp.nab, ()),
        ("549.fotonik3d_r", kernels_fp.fotonik3d, ()),
        ("554.roms_r", kernels_fp.roms,
         (_ref2(123, "second bathymetry: different coastal data"),)),
    ]
    for name, builder, variants in int_entries:
        WORKLOADS.register(name, Workload(name, builder, "int",
                                          variants=variants))
    for name, builder, variants in fp_entries:
        WORKLOADS.register(name, Workload(name, builder, "fp",
                                          variants=variants))


_register_suite()

#: Built-in suite membership, frozen at import (back-compat constants —
#: plugin workloads intentionally do not appear; derive live views from
#: ``WORKLOADS`` instead).
SPEC_INT: Tuple[str, ...] = tuple(
    name for name in WORKLOADS.names() if WORKLOADS.get(name).cls == "int")
SPEC_FP: Tuple[str, ...] = tuple(
    name for name in WORKLOADS.names() if WORKLOADS.get(name).cls == "fp")
ALL_BENCHMARKS: Tuple[str, ...] = SPEC_INT + SPEC_FP


def split_variant(name: str) -> Tuple[str, Optional[str]]:
    """``"505.mcf_r/ref2"`` -> ``("505.mcf_r", "ref2")``; no variant -> None."""
    if VARIANT_SEP in name:
        base, _, variant = name.partition(VARIANT_SEP)
        return base, (variant or None)
    return name, None


def workload_names(variants: bool = True) -> Tuple[str, ...]:
    """Every addressable workload name, registry-derived.

    With *variants*, variant-qualified names follow their base entry
    (``505.mcf_r``, ``505.mcf_r/ref2``, …) — the ``repro list`` view.
    """
    names: List[str] = []
    for base in WORKLOADS.names():
        names.append(base)
        if variants:
            entry = WORKLOADS.get(base)
            names.extend(f"{base}{VARIANT_SEP}{v.name}"
                         for v in getattr(entry, "variants", ()))
    return tuple(names)


def is_fp(name: str) -> bool:
    base, _ = split_variant(name)
    if base not in WORKLOADS:
        return False
    return WORKLOADS.get(base).cls == "fp"


def workload_for(name: str) -> Tuple[Workload, Optional[str]]:
    """Resolve *name* to its registry entry + optional variant name."""
    base, variant = split_variant(name)
    try:
        entry = WORKLOADS.get(base)
    except KeyError:
        raise KeyError(
            f"unknown benchmark {base!r}; known: {', '.join(ALL_BENCHMARKS)}"
        ) from None
    entry.variant(variant)  # validate the variant exists
    return entry, variant


def builder_for(name: str) -> Callable[..., Program]:
    """A builder for *name* (variant parameters pre-bound).

    The returned callable takes ``iterations`` (positionally or by
    keyword) like the raw kernel builders do.
    """
    entry, variant = workload_for(name)

    def build(iterations: int = 4, **overrides) -> Program:
        return entry.build(iterations, variant=variant, **overrides)

    build.__name__ = f"build_{name}"
    return build


def resolve(name: str) -> str:
    """Accept short names ('mcf', 'x264', 'mcf/ref2') as well as full ids."""
    base, variant = split_variant(name)
    if base not in WORKLOADS:
        matches = [full for full in WORKLOADS.names() if base in full]
        if len(matches) != 1:
            raise KeyError(
                f"ambiguous or unknown benchmark {base!r}: {matches}")
        base = matches[0]
    entry = WORKLOADS.get(base)
    if variant is not None and variant != DEFAULT_VARIANT:
        entry.variant(variant)  # validate
        return f"{base}{VARIANT_SEP}{variant}"
    # an explicit "/ref" is the default input: normalize to the bare name
    # so one cell never earns two spec digests
    return base


#: Per-process trace cache, keyed on (variant-qualified name, length) and
#: bounded LRU so long many-workload sweeps cannot grow without limit.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"
_trace_cache: "OrderedDict[Tuple[str, int], Trace]" = OrderedDict()


def _trace_cache_max() -> int:
    return max(1, int(os.environ.get(TRACE_CACHE_ENV, "32")))


def build_trace(name: str, instructions: int = 20_000, use_cache: bool = True) -> Trace:
    """A dynamic trace of roughly *instructions* instructions.

    The kernel's outer iteration count is scaled from a small probe run;
    the trace is truncated at exactly *instructions* if the scaled run
    overshoots (the simulator does not require a trailing HALT).
    """
    name = resolve(name)
    key = (name, instructions)
    if use_cache and key in _trace_cache:
        _trace_cache.move_to_end(key)
        return _trace_cache[key]
    entry, variant = workload_for(name)

    probe_iters = max(1, entry.probe_iterations)
    probe = Emulator(entry.build(probe_iters, variant=variant)) \
        .run(max_instructions=instructions)
    per_iter = max(1, len(probe) // probe_iters)
    need_iters = max(probe_iters, (instructions // per_iter) + 2)
    # Some kernels terminate on data-dependent conditions rather than the
    # iteration count alone; keep doubling until the trace is long enough.
    trace = None
    for _ in range(8):
        program = entry.build(need_iters, variant=variant)
        trace = Emulator(program).run(max_instructions=instructions)
        if len(trace) >= instructions or not trace.entries[-1].instr.is_halt:
            break
        need_iters *= 2
    trace.entries = trace.entries[:instructions]
    trace.name = name
    if use_cache:
        _trace_cache[key] = trace
        _trace_cache.move_to_end(key)
        while len(_trace_cache) > _trace_cache_max():
            _trace_cache.popitem(last=False)
    return trace


def build_suite(names, instructions: int = 20_000) -> List[Trace]:
    return [build_trace(name, instructions) for name in names]


def clear_trace_cache() -> None:
    _trace_cache.clear()
