"""Service-chaos campaigns: seeded fault schedules against a live topology.

One *schedule* is a full serve/work deployment — a real
:class:`~repro.service.server.SweepService` on a loopback socket, a
fresh queue + store, N worker threads speaking the wire protocol —
driven by one :class:`~repro.service.faults.ServiceFaultSpec`.  The
schedule runs in two phases:

1. **chaos** — the injector is armed: connections drop, replies are
   truncated, ``index.json`` is torn, workers crash holding leases,
   the coordinator restarts with work in flight;
2. **drain** — the injector is disarmed, the cells are resubmitted,
   and healthy workers finish whatever the chaos left behind.

Then the invariants are asserted on the wreckage:

* **exactly-once**: the store's lifetime ``puts`` counter equals the
  number of distinct cells — no fault schedule may yield a double
  execution that publishes twice;
* **zero lost cells**: every submitted spec has a result in the store;
* **all leases settled**: no pending or leased cells remain;
* **no dead-without-cause cells**: the drained queue has zero dead
  cells (quarantined corpses are resurrected by the drain resubmit).

``run_service_campaign`` runs many seeded schedules and additionally
witnesses **bit-replayability**: every schedule's
:meth:`~repro.service.faults.FaultPlan.digest` is re-derived from a
fresh spec and must match, so a recorded seed replays the identical
fault schedule byte for byte.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..harness.spec import CellSpec, spec_digest
from ..harness.store import ResultStore
from ..service.api import ServiceClient, ServiceError
from ..service.faults import (
    FaultInjector,
    FaultPlan,
    InjectedWorkerCrash,
    ServiceFaultSpec,
    SkewedClock,
    WorkerFaultHooks,
)
from ..service.queue import JobQueue
from ..service.server import SweepService
from ..service.worker import ErrorTally, RemoteBackend, worker_loop

#: Seconds the armed (chaos) phase may run before draining.
CHAOS_PHASE_CAP = 3.0
#: Seconds the drain phase gets to reach a clean queue.
DRAIN_DEADLINE = 30.0
#: Attempt budget per cell — generous, so repeated injected lease
#: expiries degrade to retries instead of dead cells.
CHAOS_MAX_ATTEMPTS = 10


def chaos_cells(spec: ServiceFaultSpec) -> List[CellSpec]:
    """A deterministic set of ``spec.cells`` distinct cell specs."""
    from ..rename.schemes import SCHEME_NAMES

    bases = [(rf, scheme)
             for rf in (40, 52, 64, 128)
             for scheme in SCHEME_NAMES]
    out: List[CellSpec] = []
    instructions = 500
    while len(out) < spec.cells:
        for rf, scheme in bases:
            if len(out) >= spec.cells:
                break
            out.append(CellSpec("505.mcf_r", rf, scheme, instructions))
        instructions += 100  # next lap: distinct digests
    return out


def _chaos_executor(cell_spec) -> Dict:
    """Fast fake cell: the campaign validates the service, not the
    simulator.  The small sleep keeps leases in flight long enough for
    crash and skew faults to land on real work."""
    time.sleep(0.01)
    return {"benchmark": cell_spec.benchmark, "scheme": cell_spec.scheme,
            "rf": cell_spec.rf_size, "n": cell_spec.instructions}


@dataclass
class ScheduleResult:
    """Verdict of one seeded fault schedule."""

    seed: int
    intensity: str
    described: str
    plan_digest: str
    classes: List[str]
    ok: bool
    failures: List[str]
    fired: Dict[str, int]
    puts: int
    cells: int
    worker_respawns: int
    coordinator_restarts: int
    replayable: bool
    duration: float
    counters: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        fired = sum(self.fired.values())
        return (f"{self.described:34} plan {self.plan_digest[:10]} "
                f"{fired:3} faults fired "
                f"({'+'.join(self.classes) or 'none'}) "
                f"puts {self.puts}/{self.cells} "
                f"respawn {self.worker_respawns} "
                f"restart {self.coordinator_restarts} "
                f"[{status}]")


class _Topology:
    """One live serve/work deployment under an injector's thumb."""

    def __init__(self, spec: ServiceFaultSpec, root: Path):
        self.spec = spec
        self.injector = FaultInjector(spec)
        self.clock = SkewedClock()
        self.injector.attach_clock(self.clock)
        self.store = ResultStore(root=root / "store")
        self.queue = JobQueue(root=root / "queue", lease=spec.lease,
                              max_attempts=CHAOS_MAX_ATTEMPTS,
                              clock=self.clock, faults=self.injector)
        self.service = SweepService(queue=self.queue, store=self.store,
                                    host="127.0.0.1", port=0,
                                    faults=self.injector)
        self.service.start(reaper_interval=0.05)
        self.port = int(self.service.address.rsplit(":", 1)[1])
        self.restarts = 0
        self.respawns = 0
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self.worker_errors = ErrorTally(log=lambda _msg: None,
                                        min_interval=0.0)
        for slot in range(spec.workers):
            thread = threading.Thread(
                target=self._worker_thread, args=(slot,),
                name=f"chaos-w{slot}", daemon=True)
            thread.start()
            self._threads.append(thread)

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self.port}"

    def client(self, retries: int = 6) -> ServiceClient:
        return ServiceClient(self.address,
                             timeout=self.spec.client_timeout,
                             retries=retries)

    def _worker_thread(self, slot: int) -> None:
        """Run the worker loop; an injected crash kills this worker and
        the supervisor (this loop) respawns a fresh incarnation with a
        new owner identity — its abandoned leases expire and requeue."""
        hooks = WorkerFaultHooks(self.injector, slot)
        while not self._stop.is_set():
            backend = RemoteBackend(self.client(retries=2),
                                    host=f"chaos-w{slot}")
            try:
                worker_loop(backend, executor=_chaos_executor,
                            poll=0.02, batch=2, stop=self._stop.is_set,
                            errors=self.worker_errors, hooks=hooks)
                return  # stop() requested
            except InjectedWorkerCrash:
                self.respawns += 1

    def restart_coordinator(self) -> None:
        """Kill the coordinator with leases in flight, then bring a new
        incarnation up on the same port over the same queue/store."""
        self.service.stop()
        deadline = time.monotonic() + 5.0
        while True:
            try:
                self.service = SweepService(
                    queue=self.queue, store=self.store,
                    host="127.0.0.1", port=self.port,
                    faults=self.injector)
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
        self.service.start(reaper_interval=0.05)
        self.restarts += 1

    def poll_restart(self) -> None:
        if self.injector.take_restart_request():
            self.restart_coordinator()

    def close(self) -> None:
        self._stop.set()
        self.service.stop()
        for thread in self._threads:
            thread.join(5)


def run_service_chaos_schedule(spec: ServiceFaultSpec,
                               root: Path) -> ScheduleResult:
    """One seeded schedule: chaos phase, drain phase, invariants."""
    started = time.monotonic()
    cells = chaos_cells(spec)
    topo = _Topology(spec, Path(root))
    failures: List[str] = []
    try:
        from ..harness.spec import spec_to_dict

        spec_dicts = [spec_to_dict(cell) for cell in cells]

        # -- chaos phase: submit and let the faults land ------------------
        deadline = time.monotonic() + CHAOS_PHASE_CAP
        job_id = None
        while time.monotonic() < deadline:
            topo.poll_restart()
            try:
                if job_id is None:
                    job_id = topo.client().submit(
                        spec_dicts, label=spec.describe())["job"]
                status = topo.client().status(job_id)["job"]
                if status["state"] in ("done", "failed"):
                    break
            except (ServiceError, OSError):
                pass  # injected transport failure; keep the phase going
            time.sleep(0.05)

        # -- drain phase: faults off, heal everything ---------------------
        topo.injector.disarm()
        topo.poll_restart()
        drain_client = topo.client(retries=8)
        receipt = drain_client.submit(spec_dicts, label="drain")
        drain_deadline = time.monotonic() + DRAIN_DEADLINE
        final = None
        while time.monotonic() < drain_deadline:
            final = drain_client.status(receipt["job"])["job"]
            if final["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        if final is None or final["state"] != "done":
            failures.append(
                f"drain job did not complete: "
                f"{final['state'] if final else 'no status'} "
                f"(done {final and final.get('done')}, "
                f"dead {final and final.get('dead')})")

        # Let in-flight leases from the chaos job settle too.
        quiesce_deadline = time.monotonic() + 5.0
        while time.monotonic() < quiesce_deadline:
            stats = topo.queue.stats()
            if (stats["pending_queue"] == 0
                    and stats["active_leases"] == 0):
                break
            time.sleep(0.05)

        # -- invariants ---------------------------------------------------
        stats = topo.queue.stats()
        puts = topo.store.info()["counters"]["lifetime"]["puts"]
        distinct = len({spec_digest(cell) for cell in cells})
        if puts != distinct:
            failures.append(
                f"exactly-once violated: {puts} store puts for "
                f"{distinct} distinct cells")
        lost = [cell for cell in cells if not topo.store.contains(cell)]
        if lost:
            failures.append(f"{len(lost)} lost cell(s): results missing "
                            f"from the store after drain")
        if stats["pending_queue"] != 0:
            failures.append(
                f"unclean drain: {stats['pending_queue']} cells pending")
        if stats["active_leases"] != 0:
            failures.append(
                f"unsettled leases: {stats['active_leases']} still held")
        if stats["cells"].get("dead", 0) != 0:
            failures.append(
                f"dead cells after drain: {stats['cells']['dead']} "
                f"(quarantined corpses must be resurrected)")
        counters = dict(stats["counters"])
    finally:
        topo.close()

    # Replayability witness: the plan re-derived from a fresh spec must
    # hash identically — seeds fully determine schedules.
    replay_digest = FaultPlan.from_spec(ServiceFaultSpec(
        seed=spec.seed, cells=spec.cells, workers=spec.workers,
        intensity=spec.intensity, lease=spec.lease,
        client_timeout=spec.client_timeout)).digest()
    plan_digest = topo.injector.plan.digest()
    replayable = replay_digest == plan_digest
    if not replayable:
        failures.append("replay mismatch: re-derived plan digest differs")

    return ScheduleResult(
        seed=spec.seed,
        intensity=spec.intensity,
        described=spec.describe(),
        plan_digest=plan_digest,
        classes=topo.injector.plan.classes(),
        ok=not failures,
        failures=failures,
        fired=topo.injector.fired_by_class(),
        puts=puts,
        cells=len(cells),
        worker_respawns=topo.respawns,
        coordinator_restarts=topo.restarts,
        replayable=replayable,
        duration=time.monotonic() - started,
        counters=counters,
    )


def campaign_fault_specs(schedules: int, base_seed: int = 0,
                         cells: int = 12, workers: int = 3,
                         lease: float = 0.6,
                         client_timeout: float = 0.6,
                         ) -> List[ServiceFaultSpec]:
    """The campaign's seed grid, cycling through the intensities."""
    intensities = ("medium", "high", "low")
    return [ServiceFaultSpec(seed=base_seed + i, cells=cells,
                             workers=workers,
                             intensity=intensities[i % len(intensities)],
                             lease=lease, client_timeout=client_timeout)
            for i in range(schedules)]


class ServiceCampaignReport:
    """Outcome of one service-chaos campaign."""

    #: Every fault class a full campaign must have exercised.
    REQUIRED_CLASSES = ("transport", "queuefs", "worker", "coordinator")

    def __init__(self, schedules: List[ScheduleResult]):
        self.schedules = schedules

    @property
    def failures(self) -> List[ScheduleResult]:
        return [s for s in self.schedules if not s.ok]

    @property
    def classes_covered(self) -> List[str]:
        seen = set()
        for schedule in self.schedules:
            seen.update(schedule.classes)
        return sorted(seen)

    @property
    def missing_classes(self) -> List[str]:
        return [cls for cls in self.REQUIRED_CLASSES
                if cls not in self.classes_covered]

    @property
    def replayable(self) -> bool:
        return all(s.replayable for s in self.schedules)

    @property
    def ok(self) -> bool:
        return (not self.failures and not self.missing_classes
                and self.replayable)

    def render(self) -> str:
        lines = [schedule.summary() for schedule in self.schedules]
        fired_total: Dict[str, int] = {}
        for schedule in self.schedules:
            for cls, count in schedule.fired.items():
                fired_total[cls] = fired_total.get(cls, 0) + count
        fired_text = ", ".join(f"{cls} {count}" for cls, count
                               in sorted(fired_total.items())) or "none"
        lines.append(
            f"campaign: {len(self.schedules)} schedules, "
            f"{len(self.schedules) - len(self.failures)} ok, "
            f"{len(self.failures)} failed; faults fired: {fired_text}")
        lines.append(
            f"fault classes covered: "
            f"{', '.join(self.classes_covered) or 'none'}"
            + (f" (MISSING: {', '.join(self.missing_classes)})"
               if self.missing_classes else ""))
        lines.append("replay: plans bit-identical for fixed seeds"
                     if self.replayable else
                     "replay: PLAN DIGEST MISMATCH — determinism broken")
        for schedule in self.failures:
            lines.append(f"\nFAILED {schedule.described}:")
            for failure in schedule.failures:
                lines.append(f"  - {failure}")
        return "\n".join(lines)


def run_service_campaign(
        schedules: int = 50, base_seed: int = 0,
        root: Optional[Path] = None,
        cells: int = 12, workers: int = 3,
        progress: Optional[Callable[[str], None]] = None,
) -> ServiceCampaignReport:
    """Run *schedules* seeded fault schedules, each against a fresh
    queue/store under *root* (a temp dir when omitted)."""
    specs = campaign_fault_specs(schedules, base_seed=base_seed,
                                 cells=cells, workers=workers)
    results: List[ScheduleResult] = []
    base = Path(root) if root is not None else Path(
        tempfile.mkdtemp(prefix="repro-servicechaos-"))
    for i, spec in enumerate(specs):
        result = run_service_chaos_schedule(
            spec, base / f"s{spec.seed}-{spec.intensity}")
        results.append(result)
        if progress is not None:
            progress(f"[{i + 1}/{len(specs)}] {result.summary()}")
    return ServiceCampaignReport(results)
