"""Lint rules over the CFG/dataflow results, with inline suppression.

Every rule has a stable ID (the suppression and test contract):

=======================  ========  ==============================================
rule                     severity  fires when
=======================  ========  ==============================================
``cfg-bad-target``       error     direct branch/jump/call target missing or
                                   outside the code image
``cfg-fallthrough-end``  error     execution can run off the end of the image
``cfg-call-ret-imbalance`` error   a ``RET`` is executable with no unmatched
                                   ``CALL`` on any path from entry
``cfg-unreachable``      warning   a basic block no CFG path from entry reaches
``df-undef-read``        warning   a source read the virtual entry definition
                                   may still reach (register never written on
                                   some path; reads as zero)
``df-dead-store``        warning   a destination write that no path uses before
                                   redefinition (the final architectural state
                                   counts as a use)
``mem-undef-load``       warning   load from a location no store and no data
                                   image can reach (provably reads the zero
                                   fill)
``mem-dead-store``       warning   store overwritten on every path before any
                                   load or program exit could observe it
``mem-aliased-in-region`` warning  may-alias load/store pair with common
                                   symbolic provenance inside one atomic-but-
                                   for-memory region (blocks forwarding)
``mem-overlap-partial``  warning   two accesses provably overlap with neither
                                   footprint containing the other (width
                                   confusion)
=======================  ========  ==============================================

The memory rules are backed by the value-set alias analysis in
:mod:`repro.staticcheck.memdep`.

A finding is suppressed by a ``lint: ignore[rule-id]`` marker in the
instruction's ``comment`` field — attached in kernel source via
:meth:`repro.isa.ProgramBuilder.lint_ignore` on the offending emit.
Suppressed findings stay in the report (marked) but do not fail the run.
A marker that suppresses nothing draws the ``lint-unused-ignore``
meta-finding (disable with ``warn_unused_ignore=False`` /
``--no-warn-unused-ignore``) so stale suppressions cannot linger.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa import Program
from .cfg import CFG, build_cfg
from .dataflow import DataflowResult, analyze_dataflow
from .report import Finding, Severity, render_findings

#: rule id -> (severity, one-line description).
RULES: Dict[str, Tuple[Severity, str]] = {
    "cfg-bad-target": (
        Severity.ERROR,
        "direct control-flow target missing or outside the code image"),
    "cfg-fallthrough-end": (
        Severity.ERROR,
        "execution can fall through past the end of the code image"),
    "cfg-call-ret-imbalance": (
        Severity.ERROR,
        "RET executable without an unmatched CALL (empty link register)"),
    "cfg-unreachable": (
        Severity.WARNING,
        "basic block unreachable from program entry"),
    "df-undef-read": (
        Severity.WARNING,
        "read of a register that may never have been written"),
    "df-dead-store": (
        Severity.WARNING,
        "destination is never used before being redefined"),
    "mem-undef-load": (
        Severity.WARNING,
        "load from memory no store or data image initializes"),
    "mem-dead-store": (
        Severity.WARNING,
        "store overwritten before any load or exit can observe it"),
    "mem-aliased-in-region": (
        Severity.WARNING,
        "may-alias pair inside an atomic region blocks forwarding"),
    "mem-overlap-partial": (
        Severity.WARNING,
        "partially overlapping access widths (neither covers the other)"),
}

#: Meta-rules about the lint machinery itself (not suppressible targets
#: of ``lint: ignore[...]``, and not part of the per-program rule set).
META_RULES: Dict[str, Tuple[Severity, str]] = {
    "lint-unused-ignore": (
        Severity.WARNING,
        "lint: ignore[...] marker suppresses no finding"),
}

_IGNORE_RE = re.compile(r"lint:\s*ignore\[([a-z0-9\-,\s]+)\]")


def suppressed_rules(comment: str) -> Tuple[str, ...]:
    """Rule IDs named by ``lint: ignore[...]`` markers in *comment*."""
    rules: List[str] = []
    for match in _IGNORE_RE.finditer(comment or ""):
        rules.extend(part.strip() for part in match.group(1).split(",")
                     if part.strip())
    return tuple(rules)


@dataclass
class LintReport:
    """All findings of one program, suppressed ones included (marked)."""

    program: Program
    findings: List[Finding] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.active if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.active

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def render(self) -> str:
        if not self.findings:
            return f"{self.program.name}: clean"
        return render_findings(self.findings, self.program)


class _Linter:
    def __init__(self, program: Program, cfg: Optional[CFG] = None,
                 dataflow: Optional[DataflowResult] = None,
                 warn_unused_ignore: bool = True):
        self.program = program
        self.cfg = cfg if cfg is not None else build_cfg(program)
        self.dataflow = (dataflow if dataflow is not None
                         else DataflowResult(self.cfg))
        self.warn_unused_ignore = warn_unused_ignore
        self.report = LintReport(program=program)

    def _emit(self, rule: str, pc: int, message: str) -> None:
        severity, _ = RULES.get(rule) or META_RULES[rule]
        instr = self.program.at(pc)
        suppressed = (rule in RULES and instr is not None
                      and rule in suppressed_rules(instr.comment))
        self.report.findings.append(Finding(
            rule=rule, severity=severity, program=self.program.name,
            pc=pc, message=message, suppressed=suppressed))

    def run(self) -> LintReport:
        cfg = self.cfg
        for pc in cfg.bad_targets:
            instr = self.program.instructions[pc]
            self._emit("cfg-bad-target", pc,
                       f"target {instr.target!r} of {instr.opcode.value} "
                       f"is not a pc in [0, {len(self.program)})")
        for pc in cfg.falls_off_end:
            self._emit("cfg-fallthrough-end", pc,
                       "control continues past the last instruction")
        for pc in cfg.top_level_rets():
            self._emit("cfg-call-ret-imbalance", pc,
                       "RET reachable from entry with call depth 0")
        reachable = cfg.reachable()
        last = cfg.blocks[-1] if cfg.blocks else None
        for block in cfg.blocks:
            if block.index in reachable:
                continue
            # The builder appends a terminator HALT to programs whose
            # last authored instruction is a RET/JMP; that generated
            # padding block has no source line to hang a suppression on.
            if (block is last and block.end - block.start == 1
                    and self.program.instructions[block.start].is_halt):
                continue
            self._emit("cfg-unreachable", block.start,
                       f"block [{block.start}, {block.end}) has no "
                       f"path from entry")
        for pc, instr in enumerate(self.program.instructions):
            if cfg.block_index[pc] not in reachable:
                continue
            for reg in self.dataflow.maybe_undefined_reads(pc):
                self._emit("df-undef-read", pc,
                           f"{reg.name} may be read before any write "
                           f"(reads as zero)")
        for pc, reg in self.dataflow.dead_stores():
            self._emit("df-dead-store", pc,
                       f"{reg.name} is redefined on every path before "
                       f"any use")
        self._run_memory_rules()
        if self.warn_unused_ignore:
            self._check_unused_ignores()
        return self.report

    def _run_memory_rules(self) -> None:
        from .memdep import analyze_memdep
        from .regions import analyze_regions

        memdep = analyze_memdep(self.program, cfg=self.cfg)
        label = self.program.label_of
        for pc in memdep.undefined_loads():
            self._emit("mem-undef-load", pc,
                       "load from memory no store or data image can "
                       "reach (provably reads the zero fill)")
        for pc in memdep.dead_stores():
            self._emit("mem-dead-store", pc,
                       "store is overwritten on every path before any "
                       "load or program exit can observe it")
        for pc_a, pc_b in memdep.partial_overlaps():
            a, b = memdep.access_at(pc_a), memdep.access_at(pc_b)
            self._emit("mem-overlap-partial", pc_b,
                       f"{b.width}-byte {b.kind} partially overlaps the "
                       f"{a.width}-byte {a.kind} at pc {pc_a} "
                       f"({label(pc_a)}); neither covers the other")
        regions = analyze_regions(self.program)
        for pc_a, pc_b in memdep.region_may_alias(regions):
            self._emit("mem-aliased-in-region", pc_b,
                       f"may-alias with the access at pc {pc_a} "
                       f"({label(pc_a)}) through the same loaded pointer "
                       f"inside one atomic region; would block "
                       f"store-to-load forwarding")

    def _check_unused_ignores(self) -> None:
        used = {(f.rule, f.pc) for f in self.report.findings if f.suppressed}
        for pc, instr in enumerate(self.program.instructions):
            for rule in suppressed_rules(instr.comment):
                if (rule, pc) not in used:
                    self._emit("lint-unused-ignore", pc,
                               f"lint: ignore[{rule}] suppresses no "
                               f"finding at this instruction")


def lint_program(program: Program, cfg: Optional[CFG] = None,
                 dataflow: Optional[DataflowResult] = None,
                 warn_unused_ignore: bool = True) -> LintReport:
    """Run every rule against *program*."""
    return _Linter(program, cfg=cfg, dataflow=dataflow,
                   warn_unused_ignore=warn_unused_ignore).run()


def lint_benchmark(name: str, iterations: int = 4) -> LintReport:
    """Lint one workload kernel by (resolved) benchmark name."""
    from ..workloads import builder_for, resolve
    program = builder_for(resolve(name))(iterations)
    return lint_program(program)
