"""The sweep layer: dedup -> warm-cache lookup -> schedule -> persist.

``sweep`` is what figures and the CLI call: give it every spec a figure
needs (duplicates welcome — overlapping figures share cells) and it
returns a spec-indexed result map, having simulated only the cells the
persistent store had never seen under the current code version.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .progress import SweepProgress
from .scheduler import CellFailure, run_specs
from .spec import Spec
from .store import ResultStore, default_store

_UNSET = object()

#: Process-wide default progress sink, set by the CLI so figure modules
#: don't need a ``progress`` parameter threaded through every ``run()``.
_default_progress: Optional[SweepProgress] = None


def set_default_progress(progress: Optional[SweepProgress]) -> None:
    global _default_progress
    _default_progress = progress


def get_default_progress() -> Optional[SweepProgress]:
    return _default_progress


#: Process-wide cold-spec resolver override.  When set (by
#: ``repro.service.remote.use_remote``), cold specs are resolved through
#: a running sweep service instead of local worker processes; the
#: callable matches ``run_specs``'s ``(results, failures)`` contract.
_remote_resolver: Optional[Callable] = None


def set_remote_resolver(resolver: Optional[Callable]) -> None:
    global _remote_resolver
    _remote_resolver = resolver


def get_remote_resolver() -> Optional[Callable]:
    return _remote_resolver


class SweepError(RuntimeError):
    """Raised when a sweep that must be complete has failed cells."""

    def __init__(self, failures: List[CellFailure]):
        self.failures = failures
        lines = "\n".join(f"  {failure.describe()}" for failure in failures)
        super().__init__(f"{len(failures)} cell(s) failed:\n{lines}")


class SweepReport:
    """Outcome of one sweep: results by spec, failures, cache accounting."""

    def __init__(self, results: Dict[Spec, object], failures: List[CellFailure],
                 hits: int, progress: SweepProgress):
        self.results = results
        self.failures = failures
        self.hits = hits
        self.progress = progress

    @property
    def misses(self) -> int:
        return len(self.results) - self.hits + len(self.failures)

    def require_complete(self) -> "SweepReport":
        if self.failures:
            raise SweepError(self.failures)
        return self

    def __getitem__(self, spec: Spec):
        return self.results[spec]


def sweep(
    specs: Sequence[Spec],
    jobs: Optional[int] = None,
    store=_UNSET,
    timeout: Optional[float] = None,
    retries: int = 1,
    executor: Optional[Callable] = None,
    progress: Optional[SweepProgress] = None,
) -> SweepReport:
    """Resolve every spec, through the store where possible.

    ``store=None`` disables persistence for this sweep; the default is
    the process store (``~/.cache/repro`` / ``$REPRO_CACHE_DIR``, or
    disabled entirely by ``REPRO_NO_CACHE``).
    """
    if store is _UNSET:
        store = default_store()
    progress = progress or get_default_progress() or SweepProgress()

    unique: List[Spec] = []
    seen = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)
    progress.start(len(unique))

    results: Dict[Spec, object] = {}
    cold: List[Spec] = []
    hits = 0
    for spec in unique:
        cached = store.get(spec) if store is not None else None
        if cached is not None:
            results[spec] = cached
            hits += 1
            progress.hit(spec)
        else:
            cold.append(spec)

    resolver = _remote_resolver
    if resolver is not None and cold and executor is None:
        # Custom executors stay local: a remote worker would run the
        # default executor for the spec, not the caller's callable.
        computed, failures = resolver(cold, progress)
    else:
        computed, failures = run_specs(
            cold, jobs=jobs, timeout=timeout, retries=retries,
            executor=executor, progress=progress)
    for spec, result in computed:
        results[spec] = result
        if store is not None:
            store.put(spec, result)
    return SweepReport(results, failures, hits, progress)
