"""Chaos campaigns: many seeded cells through the parallel harness.

A campaign is a grid of :class:`~repro.validate.chaos.ChaosSpec` cells —
benchmarks x schemes x rf-sizes x seeds — executed by the existing sweep
scheduler (worker sharding, per-cell timeout, retry with backoff).  The
persistent store is bypassed: a validation run must actually run.

``run_campaign`` returns a :class:`CampaignReport` separating three
outcomes per cell: **clean** (timing faults changed nothing), **violation**
(the sanitizer or the differential check caught a safety break — the
interesting case), and **harness failure** (the cell itself could not be
executed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..harness import CellFailure, CellResult, SweepProgress, sweep
from .chaos import INTENSITIES, ChaosSpec, execute_chaos_spec


def campaign_specs(
    benchmarks: Sequence[str],
    schemes: Sequence[str],
    rf_sizes: Sequence[int],
    seeds: Sequence[int],
    instructions: int,
    intensity: str = "medium",
    redefine_delay: int = 0,
) -> List[ChaosSpec]:
    """The full campaign grid, in deterministic order."""
    if intensity not in INTENSITIES:
        raise ValueError(f"unknown intensity {intensity!r}; "
                         f"expected one of {sorted(INTENSITIES)}")
    return [
        ChaosSpec(benchmark=benchmark, scheme=scheme, rf_size=rf_size,
                  instructions=instructions, seed=seed, intensity=intensity,
                  redefine_delay=redefine_delay)
        for benchmark in benchmarks
        for scheme in schemes
        for rf_size in rf_sizes
        for seed in seeds
    ]


class CampaignReport:
    """Outcome of one chaos campaign."""

    def __init__(self, results: Dict[ChaosSpec, CellResult],
                 failures: List[CellFailure]):
        self.results = results
        self.failures = failures

    @property
    def violations(self) -> List[Tuple[ChaosSpec, str]]:
        return [(spec, result.error)
                for spec, result in sorted(self.results.items(),
                                           key=lambda item: item[0].describe())
                if result.error is not None]

    @property
    def clean(self) -> int:
        return sum(1 for result in self.results.values()
                   if result.error is None)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.failures

    def render(self) -> str:
        by_scheme: Dict[str, List[CellResult]] = {}
        for result in self.results.values():
            by_scheme.setdefault(result.scheme, []).append(result)
        lines = [f"{'scheme':12} {'cells':>6} {'clean':>6} {'violations':>11}"]
        for scheme in sorted(by_scheme):
            cells = by_scheme[scheme]
            bad = sum(1 for cell in cells if cell.error is not None)
            lines.append(f"{scheme:12} {len(cells):6} {len(cells) - bad:6} "
                         f"{bad:11}")
        total_bad = len(self.violations)
        lines.append(
            f"campaign: {len(self.results)} cells, {self.clean} clean, "
            f"{total_bad} violation(s), {len(self.failures)} harness "
            f"failure(s)")
        for spec, error in self.violations:
            lines.append(f"\nVIOLATION {spec.describe()}:\n{error}")
        for failure in self.failures:
            lines.append(f"\nHARNESS FAILURE {failure.describe()}")
        return "\n".join(lines)


def run_campaign(
    specs: Sequence[ChaosSpec],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    progress: Optional[SweepProgress] = None,
) -> CampaignReport:
    """Execute every chaos cell through the parallel harness, uncached."""
    report = sweep(specs, jobs=jobs, store=None, timeout=timeout,
                   executor=execute_chaos_spec, progress=progress)
    return CampaignReport(report.results, report.failures)
