"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate one benchmark under one configuration and print the
  stats (IPC, stalls, release breakdown).
* ``compare`` — all four schemes side by side on one benchmark.
* ``figure`` — regenerate one of the paper's figures (fig01..fig15, sec44).
* ``analyze`` — trace-level atomic-region analysis of a benchmark.
* ``list`` — the benchmark suite (paper Table 2).
* ``disasm`` — disassemble a benchmark's kernel program.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("benchmark", help="suite name, e.g. mcf or 505.mcf_r")
    parser.add_argument("-n", "--instructions", type=int, default=10_000,
                        help="dynamic trace length (default 10000)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ATR (MICRO 2025) reproduction: simulate, analyze, "
                    "and regenerate the paper's figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one benchmark")
    _add_common(run)
    run.add_argument("-s", "--scheme", default="atr",
                     choices=["baseline", "nonspec_er", "atr", "combined"])
    run.add_argument("-r", "--rf-size", type=int, default=64)
    run.add_argument("-d", "--redefine-delay", type=int, default=0)

    compare = sub.add_parser("compare", help="all four schemes side by side")
    _add_common(compare)
    compare.add_argument("-r", "--rf-size", type=int, default=64)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", help="fig01|fig04|fig06|fig10|fig11|fig12|"
                                     "fig13|fig14|fig15|sec44")
    figure.add_argument("-n", "--instructions", type=int, default=None)
    figure.add_argument("--quick", action="store_true",
                        help="2 int + 2 fp benchmarks only")

    analyze = sub.add_parser("analyze", help="atomic-region analysis")
    _add_common(analyze)

    sub.add_parser("list", help="list the benchmark suite")

    disasm = sub.add_parser("disasm", help="disassemble a kernel")
    disasm.add_argument("benchmark")
    return parser


def _cmd_run(args) -> int:
    from .pipeline import Core, golden_cove_config
    from .workloads import build_trace, resolve

    name = resolve(args.benchmark)
    trace = build_trace(name, args.instructions)
    config = golden_cove_config(rf_size=args.rf_size, scheme=args.scheme,
                                redefine_delay=args.redefine_delay)
    core = Core(config, trace)
    stats = core.run()
    s = core.scheme.stats
    print(f"{name}: {stats.committed} instructions in {stats.cycles} cycles "
          f"(IPC {stats.ipc:.3f})")
    print(f"  scheme {args.scheme} @ {args.rf_size} regs, "
          f"redefine delay {args.redefine_delay}")
    print(f"  releases: commit {s.commit_frees}, atr {s.atr_frees}, "
          f"nonspec {s.nonspec_frees}, flush {s.flush_frees}")
    print(f"  flushes {stats.flushes} ({stats.flushed_instructions} squashed, "
          f"{stats.wrong_path_renamed} wrong-path renamed)")
    print(f"  rename stalls: freelist {stats.stall_freelist}, "
          f"rob {stats.stall_rob}, rs {stats.stall_rs}")
    return 0


def _cmd_compare(args) -> int:
    from .pipeline import Core, golden_cove_config
    from .workloads import build_trace, resolve

    name = resolve(args.benchmark)
    trace = build_trace(name, args.instructions)
    print(f"{name} @ {args.rf_size} registers, {len(trace)} instructions")
    print(f"{'scheme':12} {'IPC':>7} {'vs base':>8} {'early frees':>12}")
    base_ipc = None
    for scheme in ("baseline", "nonspec_er", "atr", "combined"):
        config = golden_cove_config(rf_size=args.rf_size, scheme=scheme)
        core = Core(config, trace)
        stats = core.run()
        if base_ipc is None:
            base_ipc = stats.ipc
        gain = stats.ipc / base_ipc - 1
        print(f"{scheme:12} {stats.ipc:7.3f} {gain:+7.2%} "
              f"{core.scheme.stats.early_frees:12}")
    return 0


def _cmd_figure(args) -> int:
    import os

    from .experiments import ALL_FIGURES

    module = ALL_FIGURES.get(args.name)
    if module is None:
        print(f"unknown figure {args.name!r}; known: {', '.join(ALL_FIGURES)}",
              file=sys.stderr)
        return 2
    if args.instructions:
        os.environ["REPRO_BENCH_INSTRUCTIONS"] = str(args.instructions)
    kwargs = {}
    if args.quick and args.name not in ("sec44",):
        int2 = ["505.mcf_r", "531.deepsjeng_r"]
        fp2 = ["503.bwaves_r", "508.namd_r"]
        import inspect

        params = inspect.signature(module.run).parameters
        if "int_benchmarks" in params:
            kwargs["int_benchmarks"] = int2
            kwargs["fp_benchmarks"] = fp2
        elif "benchmarks" in params:
            kwargs["benchmarks"] = int2 + fp2
    result = module.run(**kwargs)
    print(result.render())
    return 0


def _cmd_analyze(args) -> int:
    from .analysis import classify_regions
    from .workloads import build_trace, resolve

    name = resolve(args.benchmark)
    trace = build_trace(name, args.instructions)
    report = classify_regions(trace)
    print(f"{name}: {len(trace)} instructions, "
          f"{report.total_allocations} register allocations")
    for kind in ("non_branch", "non_except", "atomic"):
        print(f"  {kind:>11}: {report.ratio(kind):6.2%}")
    print(f"  mean consumers per atomic region: {report.mean_consumers():.2f}")
    return 0


def _cmd_list(_args) -> int:
    from .workloads import SPEC_FP, SPEC_INT

    print("SPEC2017int stand-ins:")
    for name in SPEC_INT:
        print(f"  {name}")
    print("SPEC2017fp stand-ins:")
    for name in SPEC_FP:
        print(f"  {name}")
    return 0


def _cmd_disasm(args) -> int:
    from .isa import disassemble
    from .workloads import builder_for, resolve

    name = resolve(args.benchmark)
    program = builder_for(name)(iterations=2)
    print(disassemble(program))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "analyze": _cmd_analyze,
    "list": _cmd_list,
    "disasm": _cmd_disasm,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
