"""Non-speculative early release (paper sections 2.3 / 4.3, after
Monreal et al. [19] with the paper's safe precommit definition).

A physical register is freed before the commit of its redefining
instruction when (1) its consumer count is zero and (2) the redefining
instruction has *precommitted* — all older branches are resolved and all
older exception-causing instructions are known not to fault.  Precommitted
instructions can never flush, so the release is safe and needs no recovery
machinery; the cost is that releases happen in precommit order, typically
only a few cycles before commit (paper Figure 4).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...isa import RegClass
from .tracking import ConsumerTrackingScheme


class NonSpecEarlyReleaseScheme(ConsumerTrackingScheme):
    """Early release gated on the redefiner's precommit."""

    name = "nonspec_er"
    uses_precommit = True

    def __init__(self):
        super().__init__(restore_counts_on_flush=True)
        # (file, prev_ptag) -> (rob entry, dest record) of the redefiner.
        self._redefiner: Dict[Tuple[RegClass, int], tuple] = {}

    # -- rename -----------------------------------------------------------------
    def post_rename(self, entry, cycle: int) -> None:
        for record in entry.dests:
            if record.release_prev is not None:
                self._redefiner[(record.file, record.release_prev)] = (entry, record)

    # -- release triggers ----------------------------------------------------------
    def _count_reached_zero(self, file_cls: RegClass, ptag: int, cycle: int) -> None:
        if not self.unit.files[file_cls].prt.is_written(ptag):
            return
        redefiner = self._redefiner.get((file_cls, ptag))
        if redefiner is None:
            return
        entry, record = redefiner
        if entry.precommitted and not entry.squashed and record.release_prev == ptag:
            self._early_release(file_cls, record)

    def on_writeback(self, file_cls: RegClass, ptag: int, cycle: int) -> None:
        if self.unit.files[file_cls].prt.consumers(ptag) != 0:
            return
        redefiner = self._redefiner.get((file_cls, ptag))
        if redefiner is None:
            return
        entry, record = redefiner
        if entry.precommitted and not entry.squashed and record.release_prev == ptag:
            self._early_release(file_cls, record)

    def on_precommit(self, entry, cycle: int) -> None:
        for record in entry.dests:
            ptag = record.release_prev
            if ptag is None:
                continue
            prt = self.unit.files[record.file].prt
            if prt.consumers(ptag) == 0 and prt.is_written(ptag):
                self._early_release(record.file, record)

    def _early_release(self, file_cls: RegClass, record) -> None:
        ptag = record.release_prev
        record.release_prev = None
        self._redefiner.pop((file_cls, ptag), None)
        file = self.unit.files[file_cls]
        file.prt.entries[ptag].early_released = True
        file.freelist.free(ptag)
        self.stats.nonspec_frees += 1
        self._notify_release(file_cls, ptag)

    # -- commit / flush ---------------------------------------------------------------
    def on_commit(self, entry, cycle: int) -> None:
        for record in entry.dests:
            if record.release_prev is not None:
                self._redefiner.pop((record.file, record.release_prev), None)
        super().on_commit(entry, cycle)

    def on_flush(self, flushed: List, cycle: int) -> None:
        # Flushed redefiners never early released anything (they were never
        # precommitted), so reclamation is the plain tail walk; we only
        # drop their redefiner registrations.
        for entry in flushed:
            for record in entry.dests:
                if record.release_prev is not None:
                    key = (record.file, record.release_prev)
                    registered = self._redefiner.get(key)
                    if registered is not None and registered[0] is entry:
                        del self._redefiner[key]
        super().on_flush(flushed, cycle)
