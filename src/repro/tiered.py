"""Tiered simulation protocol: fast-forward warmup + weighted windows.

The paper's methodology simulates representative SimPoints and aggregates
them by weight (section 5.1); this module does the same at our scale, and
it is the throughput tier of the simulation stack (DESIGN.md, "Tiered
simulation"):

1. :func:`~repro.workloads.simpoint.pick_simpoints` selects up to
   ``max_windows`` representative intervals of the trace;
2. one functional fast-forward pass
   (:func:`~repro.pipeline.warmup.fast_forward`) primes branch/cache/
   architectural state at every window start;
3. each window runs through the detailed core from its warm checkpoint;
4. whole-run statistics are reconstituted: IPC is the SimPoint-weighted
   mean of per-window IPCs (exactly how the paper aggregates), and every
   event counter is scaled from its weighted per-committed-instruction
   rate to the full trace length.

The result is an *estimate* of the full detailed run — EXPERIMENTS.md
quantifies fidelity — bought at a fraction of the detailed-instruction
cost.  Pure-detailed simulation stays available (and bit-exact) through
``TierPolicy(mode="detailed")`` / plain ``Core.run``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .frontend import Trace
from .pipeline import Core, CoreConfig
from .pipeline.stats import SimStats
from .pipeline.warmup import fast_forward
from .rename.schemes.base import SchemeStats
from .workloads.simpoint import SimPoint, pick_simpoints, slice_trace, weighted_mean

#: SimStats counters reconstituted by weighted per-instruction rate.
_SCALED_SIM_COUNTERS = (
    "fetched", "renamed", "wrong_path_renamed", "flushes",
    "flushed_instructions", "stall_freelist", "stall_rob", "stall_rs",
    "stall_lq", "stall_sq", "stall_empty",
)

#: SchemeStats counters reconstituted the same way.
_SCALED_SCHEME_COUNTERS = (
    "commit_frees", "flush_frees", "atr_frees", "nonspec_frees",
    "atr_claims", "bulk_mark_events", "bulk_marked_ptags", "flush_walks",
    "pending_squashed",
)


def _weighted_rate(per_window: List[float], simpoints: List[SimPoint],
                   total: int) -> int:
    """Scale a weighted per-instruction rate back to the full trace."""
    return round(weighted_mean(per_window, simpoints) * total)


def run_tiered(config: CoreConfig, trace: Trace, *, interval: int = 2_000,
               max_windows: int = 6, seed: int = 0,
               ) -> Tuple[SimStats, SchemeStats, Dict]:
    """Run *trace* under the tiered protocol.

    Returns ``(stats, scheme_stats, tier_info)``: whole-run-scale
    statistics stitched from the weighted windows, the release scheme's
    accounting at the same scale, and a description of the windows
    actually simulated (kept by the harness as ``CellResult.tier_info``).
    """
    simpoints = pick_simpoints(trace, interval=interval, max_k=max_windows,
                               seed=seed)
    warm = {w.instructions: w
            for w in fast_forward(config, trace, [sp.start for sp in simpoints])}

    window_stats: List[SimStats] = []
    window_scheme: List[SchemeStats] = []
    windows: List[Dict] = []
    for sp in simpoints:
        # SimPoint windows are distinct intervals, so each checkpoint
        # seeds exactly one core — let it move in rather than clone.
        core = Core(config, slice_trace(trace, sp), warmup=warm[sp.start],
                    consume_warmup=True)
        stats = core.run()
        window_stats.append(stats)
        window_scheme.append(core.scheme.stats)
        windows.append({
            "start": sp.start, "length": sp.length, "weight": sp.weight,
            "cluster": sp.cluster, "cycles": stats.cycles,
            "committed": stats.committed,
            "ipc": round(stats.ipc, 6),
        })

    represented = len(trace.entries)
    committed = [max(1, s.committed) for s in window_stats]
    ipc = weighted_mean(
        [s.committed / s.cycles for s in window_stats], simpoints)
    stitched = SimStats(
        cycles=max(1, round(represented / ipc)) if ipc else 0,
        committed=represented,
    )
    for name in _SCALED_SIM_COUNTERS:
        setattr(stitched, name, _weighted_rate(
            [getattr(s, name) / n for s, n in zip(window_stats, committed)],
            simpoints, represented))
    for cls in sorted({k for s in window_stats for k in s.committed_by_class}):
        stitched.committed_by_class[cls] = _weighted_rate(
            [s.committed_by_class.get(cls, 0) / n
             for s, n in zip(window_stats, committed)],
            simpoints, represented)

    scheme_stats = SchemeStats()
    for name in _SCALED_SCHEME_COUNTERS:
        setattr(scheme_stats, name, _weighted_rate(
            [getattr(s, name) / n for s, n in zip(window_scheme, committed)],
            simpoints, represented))
    for bucket in sorted({k for s in window_scheme for k in s.claim_consumers}):
        count = _weighted_rate(
            [s.claim_consumers.get(bucket, 0) / n
             for s, n in zip(window_scheme, committed)],
            simpoints, represented)
        if count:
            scheme_stats.claim_consumers[bucket] = count

    tier_info = {
        "mode": "tiered",
        "interval": interval,
        "max_windows": max_windows,
        "seed": seed,
        "represented_instructions": represented,
        "detailed_instructions": sum(sp.length for sp in simpoints),
        "warmup_instructions": max(sp.start for sp in simpoints),
        "windows": windows,
    }
    return stitched, scheme_stats, tier_info
