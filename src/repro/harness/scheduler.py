"""Sweep scheduler: shard specs over worker processes, isolate failures.

Each cold spec runs in its own forked worker with a per-cell deadline;
a worker that hangs is terminated and the cell retried once (then
reported as a failure without sinking the sweep).  Results travel back
through the same JSON encoding the persistent store uses, so parallel
and serial execution produce byte-identical result objects.

With ``jobs=1`` — or on platforms without the ``fork`` start method —
the scheduler degrades to plain in-process execution (no per-cell
timeout there: you cannot preempt your own process).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from typing import Callable, Dict, List, Optional, Tuple

from .jobs import execute_spec
from .progress import SweepProgress
from .serialize import decode_result, encode_result
from .spec import Spec

TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"
DEFAULT_RETRIES = 1
#: Seconds between scheduler polls of the worker pipes.
_POLL_INTERVAL = 0.05


def default_timeout() -> float:
    return float(os.environ.get(TIMEOUT_ENV, "600"))


def resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _fork_context():
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except (ValueError, AttributeError):  # pragma: no cover - exotic platforms
        pass
    return None


@dataclass
class CellFailure:
    """One spec that could not be computed (after retries)."""

    spec: Spec
    error: str
    attempts: int

    def describe(self) -> str:
        return (f"{self.spec.describe()}: {self.error} "
                f"(after {self.attempts} attempt{'s' if self.attempts != 1 else ''})")


def _worker(executor: Callable, spec: Spec, conn) -> None:
    """Worker-process body: compute, encode, report over the pipe."""
    try:
        payload = encode_result(executor(spec))
        conn.send(("ok", payload))
    except BaseException as exc:  # isolate *any* cell failure
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


def run_specs(
    specs: List[Spec],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    executor: Optional[Callable] = None,
    progress: Optional[SweepProgress] = None,
) -> Tuple[List[Tuple[Spec, object]], List[CellFailure]]:
    """Execute every spec; returns (completed ``(spec, result)``, failures).

    Order of the completed list follows completion time in parallel mode;
    callers index results by spec, never by position.
    """
    executor = executor or execute_spec
    progress = progress or SweepProgress()
    timeout = default_timeout() if timeout is None else timeout
    jobs = resolve_jobs(jobs)
    context = _fork_context()
    if jobs <= 1 or context is None:
        return _run_serial(specs, retries, executor, progress)
    return _run_parallel(specs, jobs, timeout, retries, executor, progress, context)


def _run_serial(specs, retries, executor, progress):
    results: List[Tuple[Spec, object]] = []
    failures: List[CellFailure] = []
    for spec in specs:
        for attempt in range(1, retries + 2):
            started = time.monotonic()
            try:
                # Round-trip through the wire encoding so serial results are
                # indistinguishable from parallel (and store-decoded) ones.
                result = decode_result(encode_result(executor(spec)))
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                if attempt <= retries:
                    progress.retry(spec, error)
                    continue
                progress.fail(spec, error)
                failures.append(CellFailure(spec, error, attempt))
            else:
                results.append((spec, result))
                progress.done(spec, time.monotonic() - started)
            break
    return results, failures


def _run_parallel(specs, jobs, timeout, retries, executor, progress, context):
    results: List[Tuple[Spec, object]] = []
    failures: List[CellFailure] = []
    pending = deque((spec, 1) for spec in specs)
    #: receive-pipe -> (spec, attempt, process, started)
    running: Dict[object, tuple] = {}

    def settle(spec, attempt, error):
        if attempt <= retries:
            progress.retry(spec, error)
            pending.append((spec, attempt + 1))
        else:
            progress.fail(spec, error)
            failures.append(CellFailure(spec, error, attempt))

    try:
        while pending or running:
            while pending and len(running) < jobs:
                spec, attempt = pending.popleft()
                receiver, sender = context.Pipe(duplex=False)
                process = context.Process(
                    target=_worker, args=(executor, spec, sender), daemon=True)
                process.start()
                sender.close()  # child's end; keep only the read side here
                running[receiver] = (spec, attempt, process, time.monotonic())

            for receiver in connection.wait(list(running), timeout=_POLL_INTERVAL):
                spec, attempt, process, started = running.pop(receiver)
                try:
                    status, payload = receiver.recv()
                except EOFError:
                    status = "error"
                    payload = f"worker died (exit code {process.exitcode})"
                process.join()
                receiver.close()
                if status == "ok":
                    results.append((spec, decode_result(payload)))
                    progress.done(spec, time.monotonic() - started)
                else:
                    settle(spec, attempt, payload)

            now = time.monotonic()
            for receiver, (spec, attempt, process, started) in list(running.items()):
                if now - started >= timeout:
                    del running[receiver]
                    process.terminate()
                    process.join(1.0)
                    receiver.close()
                    settle(spec, attempt, f"timeout after {timeout:.0f}s")
    finally:
        for _spec, _attempt, process, _started in running.values():
            process.terminate()
            process.join(1.0)
    return results, failures
