#!/usr/bin/env python
"""Atomic-region analysis of a workload (paper Figures 5, 6, and 12).

Classifies every register allocation chain of a trace into non-branch /
non-except / atomic regions, prints the consumer distribution of the
atomic ones, and renders a Figure-5-style per-instruction stage timing
table around the paper's omnetpp motif (load -> test+branch -> LEA/LEA/SHR).

Run:  python examples/atomic_region_analysis.py [benchmark]
"""

import dataclasses
import sys

from repro.analysis import classify_regions, timeline_table
from repro.pipeline import Core, golden_cove_config
from repro.workloads import build_trace, resolve


def main() -> None:
    name = resolve(sys.argv[1] if len(sys.argv) > 1 else "omnetpp")
    trace = build_trace(name, 6_000)
    report = classify_regions(trace)

    print(f"workload: {name}  ({len(trace)} instructions, "
          f"{report.total_allocations} register allocations)\n")
    for kind in ("non_branch", "non_except", "atomic"):
        print(f"  {kind:>11} region ratio: {report.ratio(kind):6.2%}")

    histogram = report.consumer_histogram()
    total = sum(histogram.values()) or 1
    print("\nconsumers per atomic region (paper Fig. 12):")
    for consumers in sorted(histogram):
        share = histogram[consumers] / total
        print(f"  {consumers} consumer(s): {share:6.2%}  {'#' * int(share * 40)}")
    print(f"  mean: {report.mean_consumers():.2f}  "
          f"(3-bit counter covers up to 6)")

    # Figure-5-style stage timing for a window around an atomic region.
    config = dataclasses.replace(
        golden_cove_config(rf_size=64, scheme="atr"), record_timeline=True
    )
    core = Core(config, trace)
    core.run()
    atomic = report.atomic_chains()
    if atomic:
        anchor = max(atomic, key=lambda c: c.consumers)
        start = max(0, anchor.alloc_seq - 2)
        print(f"\nstage timing around an atomic region "
              f"(alloc @{anchor.alloc_seq} -> redefine @{anchor.redefine_seq}):")
        print(timeline_table(core.timeline, trace, start_seq=start, count=8))


if __name__ == "__main__":
    main()
