"""Target predictors: BTB, indirect predictor, return address stack."""

import pytest

from repro.branch import (
    BranchTargetBuffer,
    BranchUnit,
    IndirectTargetPredictor,
    Prediction,
    ReturnAddressStack,
)
from repro.isa import Instruction, Opcode, ireg


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        assert btb.predict(0x40) is None
        btb.update(0x40, 0x80)
        assert btb.predict(0x40) == 0x80

    def test_update_overwrites(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        btb.update(0x40, 0x80)
        btb.update(0x40, 0x90)
        assert btb.predict(0x40) == 0x90

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(entries=8, ways=2)  # 4 sets
        a, b, c = 0, 4, 8  # same set (pc % 4 == 0)
        btb.update(a, 1)
        btb.update(b, 2)
        btb.predict(a)      # make a MRU
        btb.update(c, 3)    # evicts b
        assert btb.predict(a) == 1
        assert btb.predict(b) is None
        assert btb.predict(c) == 3

    def test_stats_counted(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        btb.predict(1)
        btb.update(1, 2)
        btb.predict(1)
        assert btb.lookups == 2
        assert btb.misses == 1

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, ways=3)


class TestIndirect:
    def test_last_target_fallback(self):
        p = IndirectTargetPredictor()
        p.update(0x40, 0x99)
        # different history, same pc: hashed entry may miss, fallback hits
        for _ in range(8):
            p.update(0x50, 0x10)
        assert p.predict(0x40) in (0x99, 0x10) or p.predict(0x40) == 0x99

    def test_repeating_target_predicted(self):
        p = IndirectTargetPredictor()
        for _ in range(5):
            p.update(0x40, 0x123)
        assert p.predict(0x40) == 0x123

    def test_unknown_pc_is_none(self):
        assert IndirectTargetPredictor().predict(0x77) is None


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack()
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_snapshot_restore(self):
        ras = ReturnAddressStack()
        ras.push(1)
        snap = ras.snapshot()
        ras.push(2)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.peek() == 1
        assert len(ras) == 1


class TestBranchUnit:
    def _branch(self, target=8):
        from repro.isa import FLAGS
        return Instruction(Opcode.BNE, srcs=(FLAGS,), target=target)

    def test_conditional_prediction_and_training(self):
        unit = BranchUnit()
        instr = self._branch()
        for _ in range(30):
            pred = unit.predict(4, instr)
            unit.resolve(4, instr, pred, taken=True, target=8)
        pred = unit.predict(4, instr)
        assert pred.taken is True
        assert pred.target == 8

    def test_mispredict_counted(self):
        unit = BranchUnit()
        instr = self._branch()
        pred = Prediction(taken=False, target=5)
        assert unit.resolve(4, instr, pred, taken=True, target=8)
        assert unit.stats.conditional_mispredicted == 1

    def test_call_pushes_return_address(self):
        unit = BranchUnit()
        call = Instruction(Opcode.CALL, dests=(ireg(15),), target=100)
        unit.predict(10, call)
        assert unit.ras.peek() == 11

    def test_return_pops_ras(self):
        unit = BranchUnit()
        call = Instruction(Opcode.CALL, dests=(ireg(15),), target=100)
        ret = Instruction(Opcode.RET, srcs=(ireg(15),))
        unit.predict(10, call)
        pred = unit.predict(105, ret)
        assert pred.taken and pred.target == 11

    def test_indirect_jump_trains(self):
        unit = BranchUnit()
        jr = Instruction(Opcode.JR, srcs=(ireg(3),))
        pred = unit.predict(20, jr)
        assert pred.target is None
        unit.resolve(20, jr, pred, taken=True, target=55)
        assert unit.predict(20, jr).target == 55

    def test_accuracy_metric(self):
        unit = BranchUnit()
        instr = self._branch()
        pred = Prediction(taken=True, target=8)
        unit.resolve(4, instr, pred, taken=True, target=8)
        assert unit.stats.accuracy() == 1.0
