"""Execute: functional-unit dispatch and the completion (writeback) phase.

``ExecuteUnit`` models the execution side effects of one launched
instruction — value computation through physical registers, store-record
capture, store-to-load forwarding, cache access — and returns its
latency; the per-``OpClass`` latency table is precomputed from the
config at construction so the hot path performs a single dict lookup.
The chaos engine's latency-jitter wrapper subclasses it.

``ExecuteStage`` is the per-cycle completion phase: writeback, wakeup of
waiting consumers, and branch resolution (which hands mispredicted
branches to the flush stage).
"""

from __future__ import annotations

from typing import Dict

from ...isa import OpClass, Opcode
from ...isa.semantics import compute
from ..rob import ROBEntry
from ..state import WORD
from . import Stage
from .issue import enqueue_ready


class ExecuteUnit:
    """Execution side effects + latency for one issued instruction."""

    def __init__(self, state):
        self.state = state
        config = state.config
        self.config = config
        self.execute_values = config.execute_values
        self.lat_store = config.lat_store
        self.lat_forward = config.lat_forward
        self.l1d_latency = config.memory.l1d_latency
        self.latency_table: Dict[OpClass, int] = {
            OpClass.INT_ALU: config.lat_int_alu,
            OpClass.INT_MUL: config.lat_int_mul,
            OpClass.INT_DIV: config.lat_int_div,
            OpClass.VEC_ALU: config.lat_vec_alu,
            OpClass.VEC_MUL: config.lat_vec_mul,
            OpClass.VEC_DIV: config.lat_vec_div,
            OpClass.BRANCH: config.lat_branch,
            OpClass.JUMP: config.lat_branch,
            OpClass.JUMP_INDIRECT: config.lat_branch,
            OpClass.CALL: config.lat_branch,
            OpClass.RETURN: config.lat_branch,
            OpClass.NOP: 1,
            OpClass.HALT: 1,
        }
        self.memory = state.memory
        self.values = state.values
        self.results = state.results
        self.stores = state.stores
        self.store_order = state.store_order
        self.mem_values = state.mem_values

    def dispatch(self, entry: ROBEntry, cycle: int) -> int:
        """Perform the execution side effects; returns the latency.

        Overridable extension point: the chaos engine's jitter wrapper
        adds seeded slack to the returned latency.
        """
        instr = entry.instr
        op_class = instr.op_class
        if op_class is OpClass.LOAD or op_class is OpClass.VEC_LOAD:
            return self._execute_load(entry, cycle)
        if op_class is OpClass.STORE or op_class is OpClass.VEC_STORE:
            self._execute_store(entry)
            return self.lat_store
        if self.execute_values and not entry.wrong_path and instr.dests:
            if instr.opcode is Opcode.CALL:
                self.results[entry.seq] = entry.dyn.pc + 1
            elif op_class is not OpClass.NOP and op_class is not OpClass.HALT:
                values = self.values
                srcs = [
                    values[file_cls][ptag]
                    for file_cls, _slot, ptag in entry.src_ptags
                ]
                self.results[entry.seq] = compute(instr, srcs)
        return self.latency_table[op_class]

    def _execute_store(self, entry: ROBEntry) -> None:
        record = self.stores.get(entry.seq)
        if record is None:
            return
        record.issued = True
        if self.execute_values and not entry.wrong_path:
            addr = entry.dyn.mem_addr
            file_cls, _slot, ptag = entry.src_ptags[0]
            value = self.values[file_cls][ptag]
            if entry.instr.opcode is Opcode.VST:
                record.words = [
                    ((addr + i * WORD), lane) for i, lane in enumerate(value)
                ]
            else:
                record.words = [(addr, value)]

    def _execute_load(self, entry: ROBEntry, cycle: int) -> int:
        addr = entry.dyn.mem_addr
        if addr is None:  # wrong-path fetch past image edge; treat as hit
            return self.l1d_latency
        is_vector = entry.instr.opcode is Opcode.VLD
        word_count = 4 if is_vector else 1
        forwarded = self._forward_from_stores(entry.seq, addr, word_count)
        if self.execute_values and not entry.wrong_path:
            lanes = []
            for i in range(word_count):
                word_addr = addr + i * WORD
                value = forwarded.get(word_addr)
                if value is None:
                    value = self.mem_values.get(word_addr, 0)
                lanes.append(value)
            self.results[entry.seq] = tuple(lanes) if is_vector else lanes[0]
        if not is_vector and len(forwarded) == word_count:
            return self.lat_forward
        completion = self.memory.load(cycle, addr, pc=entry.dyn.pc)
        return max(1, completion - cycle)

    def _forward_from_stores(self, load_seq: int, addr: int,
                             word_count: int) -> Dict[int, int]:
        """Youngest-older-store forwarding, per word."""
        out: Dict[int, int] = {}
        wanted = {addr + i * WORD for i in range(word_count)}
        stores = self.stores
        for store_seq in reversed(self.state.store_order):
            if store_seq >= load_seq:
                continue
            record = stores[store_seq]
            if not record.issued:
                continue
            for word_addr, value in record.words:
                if word_addr in wanted and word_addr not in out:
                    out[word_addr] = value
        return out


class ExecuteStage(Stage):
    """Completion phase: writeback, wakeup, branch resolution."""

    name = "execute"

    def __init__(self, state, flush_stage):
        super().__init__(state)
        self.flush = flush_stage
        self.scheme = state.scheme
        self.rename_unit = state.rename_unit
        self.completions = state.completions
        self.results = state.results
        self.values = state.values
        self.waiters = state.waiters
        self.ptag_ready = state.ptag_ready

    def run(self, state, cycle: int) -> None:
        pending = self.completions.pop(cycle, None)
        if not pending:
            return
        pending.sort(key=lambda e: e.seq)
        probes = state.probes
        results = self.results
        for entry in pending:
            if entry.squashed:
                results.pop(entry.seq, None)
                continue
            entry.completed = True
            entry.cycle_complete = cycle
            if probes is not None:
                for fn in probes.writeback:
                    fn(entry, cycle)
            result = results.pop(entry.seq, None)
            if result is not None and entry.dests:
                record = entry.dests[0]
                self.values[record.file][record.new_ptag] = result
            for record in entry.dests:
                self._set_ready(state, record.file, record.new_ptag, cycle)
            if entry.instr.is_control:
                entry.resolved = True
                if entry.mispredicted:
                    self.flush.flush_from(state, entry, cycle)

    def _set_ready(self, state, file_cls, ptag: int, cycle: int) -> None:
        self.ptag_ready[file_cls][ptag] = True
        self.rename_unit.files[file_cls].prt.mark_written(ptag)
        self.scheme.on_writeback(file_cls, ptag, cycle)
        waiters = self.waiters.pop((file_cls, ptag), None)
        if not waiters:
            return
        for waiter in waiters:
            if waiter.squashed or waiter.issued:
                continue
            waiter.unready_sources -= 1
            if waiter.unready_sources == 0:
                enqueue_ready(state, waiter)
