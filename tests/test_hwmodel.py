"""Hardware model: gate netlists, the bulk-NER circuit, McPAT-lite."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hwmodel import (
    BulkLogicSpec,
    CorePowerModel,
    Netlist,
    build_bulk_ner_circuit,
    consumer_counter_overhead,
    evaluate_circuit,
    reference_bulk_ner,
    timing_report,
)
from repro.pipeline import golden_cove_config


class TestNetlist:
    def test_gate_evaluation(self):
        n = Netlist()
        a = n.input("a")
        b = n.input("b")
        n.output("and", n.and_(a, b))
        n.output("or", n.or_(a, b))
        n.output("xor", n.xor(a, b))
        n.output("nand", n.nand(a, b))
        n.output("not_a", n.not_(a))
        out = n.evaluate({"a": True, "b": False})
        assert out == {"and": False, "or": True, "xor": True,
                       "nand": True, "not_a": False}

    def test_gate_count_excludes_inputs(self):
        n = Netlist()
        a = n.input("a")
        n.output("x", n.not_(a))
        assert n.gate_count == 1

    def test_depth_of_chain(self):
        n = Netlist()
        sig = n.input("a")
        for _ in range(5):
            sig = n.not_(sig)
        n.output("out", sig)
        assert n.logic_depth() == 5

    def test_reduce_tree_is_logarithmic(self):
        n = Netlist()
        inputs = [n.input(f"i{k}") for k in range(16)]
        n.output("out", n.reduce_tree(n.or_, inputs))
        assert n.logic_depth() == 4

    def test_equality_comparator(self):
        n = Netlist()
        a = [n.input(f"a{k}") for k in range(4)]
        b = [n.input(f"b{k}") for k in range(4)]
        n.output("eq", n.equals(a, b))
        inputs = {f"a{k}": bool(5 >> k & 1) for k in range(4)}
        inputs.update({f"b{k}": bool(5 >> k & 1) for k in range(4)})
        assert n.evaluate(inputs)["eq"]
        inputs["b0"] = not inputs["b0"]
        assert not n.evaluate(inputs)["eq"]

    def test_empty_reduce_rejected(self):
        n = Netlist()
        with pytest.raises(ValueError):
            n.reduce_tree(n.or_, [])

    def test_fo4_positive(self):
        n = Netlist()
        n.output("o", n.and_(n.input("a"), n.input("b")))
        assert n.fo4_delay() > 0


class TestBulkNerCircuit:
    SPEC = BulkLogicSpec(width=4, arch_regs=8, arch_bits=3)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_circuit_matches_reference(self, data):
        spec = self.SPEC
        net = build_bulk_ner_circuit(spec)
        is_breaker = data.draw(st.lists(st.booleans(), min_size=spec.width,
                                        max_size=spec.width))
        has_dest = data.draw(st.lists(st.booleans(), min_size=spec.width,
                                      max_size=spec.width))
        dest_id = data.draw(st.lists(st.integers(0, spec.arch_regs - 1),
                                     min_size=spec.width, max_size=spec.width))
        assert evaluate_circuit(net, spec, is_breaker, has_dest, dest_id) == \
            reference_bulk_ner(spec, is_breaker, has_dest, dest_id)

    def test_no_breaker_no_marking(self):
        spec = self.SPEC
        net = build_bulk_ner_circuit(spec)
        srt, new = evaluate_circuit(net, spec, [False] * 4, [True] * 4, [0, 1, 2, 3])
        assert not any(srt) and not any(new)

    def test_breaker_marks_everything_live(self):
        spec = self.SPEC
        net = build_bulk_ner_circuit(spec)
        srt, _ = evaluate_circuit(net, spec, [True, False, False, False],
                                  [False] * 4, [0] * 4)
        assert all(srt)

    def test_in_group_redefine_shields_slot(self):
        """Instruction 0 writes slot 3, instruction 1 is a breaker: slot
        3's OLD ptag left the SRT before the breaker, so it is not
        marked (its new ptag is, via ner_new)."""
        spec = self.SPEC
        net = build_bulk_ner_circuit(spec)
        srt, new = evaluate_circuit(
            net, spec,
            is_breaker=[False, True, False, False],
            has_dest=[True, False, False, False],
            dest_id=[3, 0, 0, 0],
        )
        assert not srt[3]
        assert all(srt[s] for s in range(8) if s != 3)
        assert new[0]  # the in-group new ptag is marked by the breaker

    def test_paper_scale_numbers(self):
        """Section 4.4: ~2,960 gates for the 8-wide 16-register scan."""
        report = timing_report(BulkLogicSpec())
        assert 2000 <= report.gates <= 4000
        assert report.logic_levels >= 10
        assert 1.0 <= report.max_frequency_ghz <= 6.0
        assert report.frequency_with_pipelining(3) > report.max_frequency_ghz

    def test_signal_count_matches_paper(self):
        assert BulkLogicSpec(width=8, arch_regs=16).signal_count == 23


class TestMcPat:
    def test_counter_overheads_match_section_44(self):
        assert consumer_counter_overhead(64, 3) == pytest.approx(3 / 64)
        assert consumer_counter_overhead(256, 3) == pytest.approx(3 / 256)

    def test_smaller_rf_smaller_area(self):
        big = CorePowerModel(golden_cove_config(rf_size=280)).core_area()
        small = CorePowerModel(golden_cove_config(rf_size=204)).core_area()
        assert small < big

    def test_counter_bits_add_area(self):
        plain = CorePowerModel(golden_cove_config(rf_size=204)).core_area()
        with_ctr = CorePowerModel(golden_cove_config(rf_size=204),
                                  extra_prf_bits=3).core_area()
        assert with_ctr > plain

    def test_area_saving_in_paper_regime(self):
        """280 -> 204 registers (+3 counter bits) should save a few
        percent of core area, like the paper's 2.7%."""
        reference = CorePowerModel(golden_cove_config(rf_size=280)).core_area()
        atr = CorePowerModel(golden_cove_config(rf_size=204),
                             extra_prf_bits=3).core_area()
        saving = 1 - atr / reference
        assert 0.005 < saving < 0.15

    def test_power_scales_with_activity(self):
        from repro.pipeline import SimStats
        model = CorePowerModel(golden_cove_config())
        busy = SimStats(cycles=100, renamed=400)
        idle = SimStats(cycles=100, renamed=10)
        assert model.runtime_power(busy) > model.runtime_power(idle)
