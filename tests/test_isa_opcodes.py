"""Unit tests for the opcode taxonomy — the classification ATR's atomic
regions are defined by."""

import pytest

from repro.isa import (
    MNEMONICS,
    OpClass,
    Opcode,
    breaks_atomic_region,
    breaks_region_control,
    is_conditional_branch,
    is_control,
    is_indirect,
    is_load,
    is_memory,
    is_store,
    is_vector,
    may_except,
    op_class,
)

CONDITIONAL = [Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE]
INDIRECT = [Opcode.JR, Opcode.RET]
DIRECT = [Opcode.JMP, Opcode.CALL]
MEMORY = [Opcode.LD, Opcode.ST, Opcode.VLD, Opcode.VST]
DIVIDES = [Opcode.DIV, Opcode.MOD, Opcode.VDIV]
PLAIN_ALU = [Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.LEA, Opcode.MOV,
             Opcode.MOVI, Opcode.CMP, Opcode.TEST, Opcode.SELECT,
             Opcode.SHL, Opcode.SHR, Opcode.NOT, Opcode.NEG, Opcode.MUL]
PLAIN_VEC = [Opcode.VADD, Opcode.VSUB, Opcode.VMUL, Opcode.VFMA,
             Opcode.VBROADCAST, Opcode.VREDUCE]


def test_every_opcode_classified():
    for op in Opcode:
        assert op_class(op) in OpClass


@pytest.mark.parametrize("op", CONDITIONAL)
def test_conditional_branches(op):
    assert is_conditional_branch(op)
    assert is_control(op)
    assert breaks_region_control(op)
    assert breaks_atomic_region(op)
    assert not may_except(op)


@pytest.mark.parametrize("op", INDIRECT)
def test_indirect_control(op):
    assert is_indirect(op)
    assert is_control(op)
    assert breaks_region_control(op)
    assert breaks_atomic_region(op)


@pytest.mark.parametrize("op", DIRECT)
def test_direct_jumps_do_not_break_regions(op):
    """Direct unconditional control flow cannot mispredict nor fault, so
    it does not end an atomic region (paper section 3.2)."""
    assert is_control(op)
    assert not breaks_region_control(op)
    assert not breaks_atomic_region(op)


@pytest.mark.parametrize("op", MEMORY)
def test_memory_ops_may_except(op):
    assert is_memory(op)
    assert may_except(op)
    assert breaks_atomic_region(op)
    assert not breaks_region_control(op)


@pytest.mark.parametrize("op", DIVIDES)
def test_divides_may_except(op):
    assert may_except(op)
    assert breaks_atomic_region(op)
    assert not is_memory(op)


@pytest.mark.parametrize("op", PLAIN_ALU + PLAIN_VEC)
def test_plain_ops_are_region_safe(op):
    assert not breaks_atomic_region(op)
    assert not may_except(op)
    assert not is_control(op)


def test_loads_vs_stores():
    assert is_load(Opcode.LD) and is_load(Opcode.VLD)
    assert not is_load(Opcode.ST)
    assert is_store(Opcode.ST) and is_store(Opcode.VST)
    assert not is_store(Opcode.LD)


@pytest.mark.parametrize("op", PLAIN_VEC + [Opcode.VLD, Opcode.VST, Opcode.VDIV])
def test_vector_classification(op):
    assert is_vector(op)


def test_scalar_not_vector():
    assert not is_vector(Opcode.ADD)
    assert not is_vector(Opcode.LD)


def test_mnemonic_table_bijective():
    assert len(MNEMONICS) == len(Opcode)
    for text, op in MNEMONICS.items():
        assert op.value == text


def test_mul_is_not_excepting():
    """Only divides can fault among arithmetic ops."""
    assert not may_except(Opcode.MUL)
    assert not may_except(Opcode.VMUL)
