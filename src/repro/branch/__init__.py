"""Branch prediction: TAGE-SC-L-lite, bimodal, gshare, BTB, indirect, RAS."""

from .interface import DirectionPredictor, Prediction, TargetPredictor, saturate
from .simple import AlwaysNotTaken, AlwaysTaken, Bimodal, GShare, Oracle
from .tage import LoopPredictor, Tage
from .targets import BranchTargetBuffer, IndirectTargetPredictor, ReturnAddressStack
from .unit import BranchStats, BranchUnit

#: Direction-predictor registry: config name -> zero-arg factory.  Single
#: source of truth shared by CoreConfig.validate() (fail-fast on unknown
#: names) and the fetch stage's make_predictor().
PREDICTORS = {
    "tage": Tage,
    "gshare": GShare,
    "bimodal": Bimodal,
    "always_taken": AlwaysTaken,
    "always_not_taken": AlwaysNotTaken,
}

__all__ = [
    "PREDICTORS",
    "DirectionPredictor", "TargetPredictor", "Prediction", "saturate",
    "AlwaysTaken", "AlwaysNotTaken", "Oracle", "Bimodal", "GShare",
    "Tage", "LoopPredictor",
    "BranchTargetBuffer", "IndirectTargetPredictor", "ReturnAddressStack",
    "BranchUnit", "BranchStats",
]
