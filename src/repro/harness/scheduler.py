"""Sweep scheduler: shard specs over worker processes, isolate failures.

Each cold spec runs in its own forked worker with a per-cell deadline;
a worker that hangs is terminated and the cell retried once (then
reported as a failure without sinking the sweep).  Results travel back
through the same JSON encoding the persistent store uses, so parallel
and serial execution produce byte-identical result objects.

With ``jobs=1`` — or on platforms without the ``fork`` start method —
the scheduler degrades to plain in-process execution (no per-cell
timeout there: you cannot preempt your own process).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from typing import Callable, Dict, List, Optional, Tuple

from .jobs import execute_spec, execute_spec_diagnose
from .progress import SweepProgress
from .serialize import decode_result, encode_result
from .spec import Spec

TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"
DEFAULT_RETRIES = 1
#: Base delay before the first retry; doubles per subsequent attempt.
DEFAULT_BACKOFF = 0.25
#: Seconds between scheduler polls of the worker pipes.
_POLL_INTERVAL = 0.05


def default_timeout() -> float:
    return float(os.environ.get(TIMEOUT_ENV, "600"))


def resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _fork_context():
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except (ValueError, AttributeError):  # pragma: no cover - exotic platforms
        pass
    return None


@dataclass
class CellFailure:
    """One spec that could not be computed (after retries)."""

    spec: Spec
    error: str
    attempts: int

    def describe(self) -> str:
        return (f"{self.spec.describe()}: {self.error} "
                f"(after {self.attempts} attempt{'s' if self.attempts != 1 else ''})")


def _worker(executor: Callable, spec: Spec, conn) -> None:
    """Worker-process body: compute, encode, report over the pipe."""
    try:
        payload = encode_result(executor(spec))
        conn.send(("ok", payload))
    except Exception as exc:  # isolate cell failures, but only real ones:
        # KeyboardInterrupt/SystemExit must propagate so Ctrl-C kills the
        # worker instead of being swallowed as a retryable cell error.
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


def _retry_delay(backoff: float, attempt: int) -> float:
    """Exponential backoff before re-running a failed *attempt*."""
    if backoff <= 0:
        return 0.0
    return backoff * (2 ** (attempt - 1))


def _pick_executor(executor: Callable, diagnostic_executor: Optional[Callable],
                   attempt: int) -> Callable:
    """Retries (attempt > 1) run under the diagnostic executor, so a
    reproducing crash comes back as a structured violation with a
    pipeline snapshot instead of a bare exception string."""
    if attempt > 1 and diagnostic_executor is not None:
        return diagnostic_executor
    return executor


def run_specs(
    specs: List[Spec],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    executor: Optional[Callable] = None,
    progress: Optional[SweepProgress] = None,
    backoff: float = DEFAULT_BACKOFF,
    diagnostic_executor: Optional[Callable] = None,
) -> Tuple[List[Tuple[Spec, object]], List[CellFailure]]:
    """Execute every spec; returns (completed ``(spec, result)``, failures).

    Order of the completed list follows completion time in parallel mode;
    callers index results by spec, never by position.  Retries wait
    ``backoff * 2**(attempt-1)`` seconds and run under
    *diagnostic_executor* (default: the standard executor with the
    invariant sanitizer enabled) so transient failures get spacing and
    deterministic crashes get a diagnosis.
    """
    if executor is None:
        executor = execute_spec
        if diagnostic_executor is None:
            diagnostic_executor = execute_spec_diagnose
    progress = progress or SweepProgress()
    timeout = default_timeout() if timeout is None else timeout
    jobs = resolve_jobs(jobs)
    context = _fork_context()
    if jobs <= 1 or context is None:
        return _run_serial(specs, retries, executor, progress, backoff,
                           diagnostic_executor)
    return _run_parallel(specs, jobs, timeout, retries, executor, progress,
                         context, backoff, diagnostic_executor)


def _run_serial(specs, retries, executor, progress, backoff=DEFAULT_BACKOFF,
                diagnostic_executor=None):
    results: List[Tuple[Spec, object]] = []
    failures: List[CellFailure] = []
    for spec in specs:
        for attempt in range(1, retries + 2):
            if attempt > 1:
                time.sleep(_retry_delay(backoff, attempt - 1))
            run = _pick_executor(executor, diagnostic_executor, attempt)
            started = time.monotonic()
            try:
                # Round-trip through the wire encoding so serial results are
                # indistinguishable from parallel (and store-decoded) ones.
                result = decode_result(encode_result(run(spec)))
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                if attempt <= retries:
                    progress.retry(spec, error)
                    continue
                progress.fail(spec, error)
                failures.append(CellFailure(spec, error, attempt))
            else:
                results.append((spec, result))
                progress.done(spec, time.monotonic() - started)
            break
    return results, failures


def _run_parallel(specs, jobs, timeout, retries, executor, progress, context,
                  backoff=DEFAULT_BACKOFF, diagnostic_executor=None):
    results: List[Tuple[Spec, object]] = []
    failures: List[CellFailure] = []
    #: (spec, attempt, not-before monotonic time)
    pending = deque((spec, 1, 0.0) for spec in specs)
    #: receive-pipe -> (spec, attempt, process, started)
    running: Dict[object, tuple] = {}

    def settle(spec, attempt, error):
        if attempt <= retries:
            progress.retry(spec, error)
            pending.append((spec, attempt + 1,
                            time.monotonic() + _retry_delay(backoff, attempt)))
        else:
            progress.fail(spec, error)
            failures.append(CellFailure(spec, error, attempt))

    try:
        while pending or running:
            while pending and len(running) < jobs:
                spec, attempt, ready_at = pending[0]
                # Retries land at the back of the deque, so a not-ready
                # head means only backoff waits remain; the poll below
                # keeps the loop ticking until it matures.
                if time.monotonic() < ready_at:
                    break
                pending.popleft()
                run = _pick_executor(executor, diagnostic_executor, attempt)
                receiver, sender = context.Pipe(duplex=False)
                process = context.Process(
                    target=_worker, args=(run, spec, sender), daemon=True)
                process.start()
                sender.close()  # child's end; keep only the read side here
                running[receiver] = (spec, attempt, process, time.monotonic())

            for receiver in connection.wait(list(running), timeout=_POLL_INTERVAL):
                spec, attempt, process, started = running.pop(receiver)
                try:
                    status, payload = receiver.recv()
                except EOFError:
                    status = "error"
                    payload = f"worker died (exit code {process.exitcode})"
                process.join()
                receiver.close()
                if status == "ok":
                    results.append((spec, decode_result(payload)))
                    progress.done(spec, time.monotonic() - started)
                else:
                    settle(spec, attempt, payload)

            now = time.monotonic()
            for receiver, (spec, attempt, process, started) in list(running.items()):
                if now - started >= timeout:
                    del running[receiver]
                    process.terminate()
                    process.join(1.0)
                    receiver.close()
                    settle(spec, attempt, f"timeout after {timeout:.0f}s")
    finally:
        for _spec, _attempt, process, _started in running.values():
            process.terminate()
            process.join(1.0)
    return results, failures
