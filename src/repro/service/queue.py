"""Durable sweep-job queue: on-disk, lease-based, deduplicating.

A *job* is one submission — an ordered list of specs plus a priority
and a label.  A *cell* is one unit of executable work, keyed by its
:func:`~repro.harness.spec.spec_digest`.  The queue stores cells once:
if two jobs (or the same client twice) submit an identical spec, both
jobs reference the **same** cell record and the cell executes exactly
once — that is the coalescing contract the dedup tests prove through
the store's ``puts`` counter.

Layout under one queue root (default ``<cache_root>/service``, or
``$REPRO_SERVICE_DIR``)::

    lock                 flock guard: every mutation runs under it
    index.json           scheduler state: pending list, leases, states
    jobs/<job-id>.json   job records (digests, priority, label, times)
    cells/<digest>.json  cell records (spec, attempts, error, times)
    hosts/<host>.json    worker-host heartbeats

Every file is written atomically (tmp + ``os.replace``) and every
read-modify-write runs under an exclusive ``fcntl`` lock on ``lock``,
so any number of server threads and worker processes on one host (or
on a shared filesystem) see a consistent queue.

Lease protocol: ``claim`` hands a cell to an owner with a deadline
(``now + lease``).  ``complete``/``fail`` are only honoured from the
owner currently holding the lease.  If an owner dies, its lease
expires and the next ``claim`` (or a server reaper tick) moves the
cell back to pending — crash-safe requeue.  A cell that fails
``max_attempts`` times is marked dead and its jobs report failure.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from ..harness.spec import Spec, spec_digest, spec_from_dict, spec_to_dict
from ..harness.store import cache_root

SERVICE_DIR_ENV = "REPRO_SERVICE_DIR"

#: Seconds a claimed cell may run before its lease expires and the cell
#: is eligible for requeue.  Must exceed the slowest expected cell.
DEFAULT_LEASE = 600.0
#: Executions per cell before it is declared dead (first run + retries).
DEFAULT_MAX_ATTEMPTS = 3

CELL_PENDING = "pending"
CELL_LEASED = "leased"
CELL_DONE = "done"
CELL_DEAD = "dead"

JOB_PENDING = "pending"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

#: A heartbeat older than this many seconds marks the host as gone.
HOST_TTL = 30.0


def queue_root() -> Path:
    """The default queue directory (sibling of the result store)."""
    override = os.environ.get(SERVICE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return cache_root() / "service"


def _write_json(path: Path, payload: Dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _read_json(path: Path) -> Optional[Dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


@dataclass
class Lease:
    """One claimed cell: what to run and under which identity."""

    digest: str
    spec: Spec
    attempt: int
    expires: float

    def to_dict(self) -> Dict:
        return {
            "digest": self.digest,
            "spec": spec_to_dict(self.spec),
            "attempt": self.attempt,
            "expires": self.expires,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Lease":
        return cls(
            digest=data["digest"],
            spec=spec_from_dict(data["spec"]),
            attempt=data["attempt"],
            expires=data["expires"],
        )


@dataclass
class SubmitReceipt:
    """What a submission bought: one job, and how its cells landed."""

    job_id: str
    total: int  #: unique cells in the job
    new: int  #: cells this submission introduced to the queue
    coalesced: int  #: cells already queued/running for another job
    warm: int  #: cells satisfied instantly from the result store
    duplicates: int = 0  #: repeated specs within this submission

    def to_dict(self) -> Dict:
        return {
            "job": self.job_id, "total": self.total, "new": self.new,
            "coalesced": self.coalesced, "warm": self.warm,
            "duplicates": self.duplicates,
        }


class JobQueue:
    """The durable queue.  All public methods are multi-process safe."""

    def __init__(self, root: Optional[Path] = None,
                 lease: float = DEFAULT_LEASE,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 clock: Callable[[], float] = time.time):
        self.root = Path(root) if root is not None else queue_root()
        self.lease = lease
        self.max_attempts = max_attempts
        self.clock = clock
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths & locking ---------------------------------------------------------
    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _job_path(self, job_id: str) -> Path:
        return self.root / "jobs" / f"{job_id}.json"

    def _cell_path(self, digest: str) -> Path:
        return self.root / "cells" / f"{digest}.json"

    def _host_path(self, host: str) -> Path:
        return self.root / "hosts" / f"{host}.json"

    @contextmanager
    def _locked(self):
        lock_path = self.root / "lock"
        handle = open(lock_path, "a+")
        try:
            try:
                import fcntl
            except ImportError:  # pragma: no cover - non-POSIX fallback
                yield
            else:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def _load_index(self) -> Dict:
        index = _read_json(self._index_path)
        if not index:
            index = {}
        index.setdefault("seq", 0)
        index.setdefault("pending", [])  # [[priority, seq, digest], ...]
        index.setdefault("leases", {})  # digest -> {owner, expires, attempt}
        index.setdefault("states", {})  # digest -> cell state
        index.setdefault("counters", {})
        return index

    def _save_index(self, index: Dict) -> None:
        _write_json(self._index_path, index)

    @staticmethod
    def _count(index: Dict, key: str, delta: int = 1) -> None:
        index["counters"][key] = index["counters"].get(key, 0) + delta

    # -- submission --------------------------------------------------------------
    def submit(self, specs: Iterable[Spec], priority: int = 0,
               label: str = "",
               is_warm: Optional[Callable[[Spec], bool]] = None) -> SubmitReceipt:
        """Enqueue one job; identical cells coalesce with existing work.

        *is_warm* (typically ``store.contains``) short-circuits cells
        whose result already exists: they are recorded as done without
        ever entering the pending list — the warm-resubmission path.
        """
        specs = list(specs)
        job_id = f"j-{uuid.uuid4().hex[:10]}"
        now = self.clock()
        digests: List[str] = []
        new = coalesced = warm = duplicates = 0
        with self._locked():
            index = self._load_index()
            seen_here = set()
            for spec in specs:
                digest = spec_digest(spec)
                if digest in seen_here:
                    duplicates += 1
                    continue
                seen_here.add(digest)
                digests.append(digest)
                state = index["states"].get(digest)
                cell = _read_json(self._cell_path(digest)) if state else None
                if (cell is not None and state == CELL_DONE
                        and is_warm is not None and not is_warm(spec)):
                    # Stale done-ness: the queue finished this cell once,
                    # but the store no longer holds its result (evicted
                    # by `cache gc`, or the code fingerprint moved on).
                    # Treat it as never-run so the job gets real data.
                    state = cell = None
                if cell is not None and state not in (None, CELL_DEAD):
                    # Coalesce: reference the live cell from this job too.
                    if job_id not in cell["jobs"]:
                        cell["jobs"].append(job_id)
                    cell["priority"] = max(cell["priority"], priority)
                    _write_json(self._cell_path(digest), cell)
                    if state == CELL_DONE:
                        warm += 1
                    else:
                        coalesced += 1
                        self._count(index, "coalesced")
                        # A higher-priority submission promotes the cell.
                        for entry in index["pending"]:
                            if entry[2] == digest:
                                entry[0] = max(entry[0], priority)
                    continue
                # New cell (or resurrect a dead one for a fresh try).
                record = {
                    "digest": digest,
                    "spec": spec_to_dict(spec),
                    "priority": priority,
                    "jobs": [job_id],
                    "attempts": 0,
                    "error": None,
                    "created": now,
                    "finished": None,
                    "elapsed": None,
                }
                if is_warm is not None and is_warm(spec):
                    record["finished"] = now
                    index["states"][digest] = CELL_DONE
                    warm += 1
                    self._count(index, "warm_hits")
                else:
                    index["seq"] += 1
                    index["pending"].append([priority, index["seq"], digest])
                    index["states"][digest] = CELL_PENDING
                    new += 1
                _write_json(self._cell_path(digest), record)
            _write_json(self._job_path(job_id), {
                "id": job_id,
                "label": label,
                "priority": priority,
                "digests": digests,
                "created": now,
                "cancelled": False,
            })
            self._count(index, "submitted_jobs")
            self._save_index(index)
        return SubmitReceipt(job_id, len(digests), new, coalesced, warm,
                             duplicates)

    # -- claiming ----------------------------------------------------------------
    def claim(self, owner: str, max_cells: int = 1) -> List[Lease]:
        """Lease up to *max_cells* pending cells to *owner*.

        Expired leases are requeued first, so a dead worker's cells are
        reclaimed by the next live claimer without a dedicated reaper.
        Highest priority wins; FIFO within a priority.
        """
        now = self.clock()
        leases: List[Lease] = []
        with self._locked():
            index = self._load_index()
            self._reap_locked(index, now)
            index["pending"].sort(key=lambda entry: (-entry[0], entry[1]))
            while index["pending"] and len(leases) < max_cells:
                _priority, _seq, digest = index["pending"].pop(0)
                cell = _read_json(self._cell_path(digest))
                if cell is None:  # orphaned index entry
                    index["states"].pop(digest, None)
                    continue
                cell["attempts"] += 1
                _write_json(self._cell_path(digest), cell)
                expires = now + self.lease
                index["leases"][digest] = {
                    "owner": owner, "expires": expires,
                    "attempt": cell["attempts"],
                }
                index["states"][digest] = CELL_LEASED
                leases.append(Lease(digest, spec_from_dict(cell["spec"]),
                                    cell["attempts"], expires))
            if leases:
                self._count(index, "claims", len(leases))
            self._save_index(index)
        return leases

    def _reap_locked(self, index: Dict, now: float) -> int:
        """Requeue expired leases (caller holds the lock)."""
        requeued = 0
        for digest, lease in list(index["leases"].items()):
            if lease["expires"] > now:
                continue
            del index["leases"][digest]
            cell = _read_json(self._cell_path(digest))
            if cell is None:
                index["states"].pop(digest, None)
                continue
            if cell["attempts"] >= self.max_attempts:
                cell["error"] = (f"lease expired after attempt "
                                 f"{cell['attempts']}/{self.max_attempts}")
                cell["finished"] = now
                _write_json(self._cell_path(digest), cell)
                index["states"][digest] = CELL_DEAD
                self._count(index, "dead")
            else:
                index["seq"] += 1
                index["pending"].append([cell["priority"], index["seq"], digest])
                index["states"][digest] = CELL_PENDING
                self._count(index, "requeued")
                requeued += 1
        return requeued

    def reap(self) -> int:
        """Requeue every expired lease; returns how many moved."""
        with self._locked():
            index = self._load_index()
            requeued = self._reap_locked(index, self.clock())
            self._save_index(index)
        return requeued

    # -- settlement --------------------------------------------------------------
    def _settle(self, digest: str, owner: str, state: str,
                error: Optional[str], elapsed: Optional[float]) -> bool:
        now = self.clock()
        with self._locked():
            index = self._load_index()
            lease = index["leases"].get(digest)
            if lease is None or lease["owner"] != owner:
                # Stale worker: its lease expired and the cell moved on.
                self._count(index, "stale_settlements")
                self._save_index(index)
                return False
            del index["leases"][digest]
            cell = _read_json(self._cell_path(digest))
            if cell is None:
                index["states"].pop(digest, None)
                self._save_index(index)
                return False
            if state == CELL_DONE:
                cell["error"] = None
                cell["finished"] = now
                cell["elapsed"] = elapsed
                index["states"][digest] = CELL_DONE
                self._count(index, "executed")
            elif cell["attempts"] >= self.max_attempts:
                cell["error"] = error
                cell["finished"] = now
                index["states"][digest] = CELL_DEAD
                self._count(index, "dead")
            else:
                cell["error"] = error
                index["seq"] += 1
                index["pending"].append([cell["priority"], index["seq"], digest])
                index["states"][digest] = CELL_PENDING
                self._count(index, "requeued")
            _write_json(self._cell_path(digest), cell)
            self._save_index(index)
        return True

    def complete(self, digest: str, owner: str,
                 elapsed: Optional[float] = None) -> bool:
        """Mark a leased cell done.  False if *owner* lost the lease."""
        return self._settle(digest, owner, CELL_DONE, None, elapsed)

    def fail(self, digest: str, owner: str, error: str) -> bool:
        """Report a cell failure; requeues until ``max_attempts``."""
        return self._settle(digest, owner, CELL_PENDING, error, None)

    # -- jobs --------------------------------------------------------------------
    def job(self, job_id: str) -> Optional[Dict]:
        """Status of one job: per-state cell counts + failed-cell detail."""
        record = _read_json(self._job_path(job_id))
        if record is None:
            return None
        index = self._load_index()
        counts = {CELL_PENDING: 0, CELL_LEASED: 0, CELL_DONE: 0, CELL_DEAD: 0}
        failed: List[Dict] = []
        for digest in record["digests"]:
            state = index["states"].get(digest, CELL_PENDING)
            counts[state] = counts.get(state, 0) + 1
            if state == CELL_DEAD:
                cell = _read_json(self._cell_path(digest)) or {}
                failed.append({"digest": digest,
                               "spec": cell.get("spec"),
                               "error": cell.get("error")})
        total = len(record["digests"])
        if record.get("cancelled"):
            state = JOB_CANCELLED
        elif counts[CELL_DEAD]:
            state = (JOB_FAILED
                     if counts[CELL_DONE] + counts[CELL_DEAD] == total
                     else JOB_RUNNING)
        elif counts[CELL_DONE] == total:
            state = JOB_DONE
        elif counts[CELL_LEASED] or counts[CELL_DONE]:
            state = JOB_RUNNING
        else:
            state = JOB_PENDING
        return {
            "id": job_id,
            "label": record.get("label", ""),
            "priority": record.get("priority", 0),
            "created": record.get("created"),
            "state": state,
            "total": total,
            "done": counts[CELL_DONE],
            "pending": counts[CELL_PENDING],
            "leased": counts[CELL_LEASED],
            "dead": counts[CELL_DEAD],
            "failed_cells": failed,
        }

    def jobs(self) -> List[Dict]:
        """Every known job, newest first."""
        out = []
        jobs_dir = self.root / "jobs"
        if jobs_dir.is_dir():
            for path in jobs_dir.glob("j-*.json"):
                status = self.job(path.stem)
                if status is not None:
                    out.append(status)
        out.sort(key=lambda j: j.get("created") or 0, reverse=True)
        return out

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; cells no other live job wants are dropped."""
        with self._locked():
            record = _read_json(self._job_path(job_id))
            if record is None or record.get("cancelled"):
                return False
            record["cancelled"] = True
            _write_json(self._job_path(job_id), record)
            index = self._load_index()
            for digest in record["digests"]:
                cell = _read_json(self._cell_path(digest))
                if cell is None:
                    continue
                if job_id in cell["jobs"]:
                    cell["jobs"].remove(job_id)
                _write_json(self._cell_path(digest), cell)
                # Drop pending cells that no remaining job references.
                # (Leased cells run to completion: their result is
                # cached and harmless; done/dead cells keep their state.)
                if not cell["jobs"] and \
                        index["states"].get(digest) == CELL_PENDING:
                    index["pending"] = [entry for entry in index["pending"]
                                        if entry[2] != digest]
                    index["states"].pop(digest, None)
                    self._count(index, "dropped")
            self._count(index, "cancelled_jobs")
            self._save_index(index)
        return True

    # -- hosts -------------------------------------------------------------------
    def heartbeat(self, host: str, workers: Optional[int] = None,
                  meta: Optional[Dict] = None) -> None:
        """Record that *host* is alive with *workers* worker processes.

        ``workers=None`` is a pure liveness refresh (e.g. from a claim):
        the last explicitly reported worker count is preserved.
        """
        if workers is None:
            previous = _read_json(self._host_path(host))
            workers = int((previous or {}).get("workers", 1))
        payload = {"host": host, "workers": workers,
                   "seen": self.clock()}
        if meta:
            payload["meta"] = meta
        _write_json(self._host_path(host), payload)

    def hosts(self, ttl: float = HOST_TTL) -> List[Dict]:
        """Registered hosts; ``alive`` is heartbeat recency vs. *ttl*."""
        now = self.clock()
        out = []
        hosts_dir = self.root / "hosts"
        if hosts_dir.is_dir():
            for path in sorted(hosts_dir.glob("*.json")):
                record = _read_json(path)
                if record is None:
                    continue
                record["alive"] = (now - record.get("seen", 0)) < ttl
                out.append(record)
        return out

    # -- stats -------------------------------------------------------------------
    def stats(self) -> Dict:
        index = self._load_index()
        states = index["states"].values()
        by_state = {state: 0 for state in
                    (CELL_PENDING, CELL_LEASED, CELL_DONE, CELL_DEAD)}
        for state in states:
            by_state[state] = by_state.get(state, 0) + 1
        hosts = self.hosts()
        return {
            "root": str(self.root),
            "cells": by_state,
            "pending_queue": len(index["pending"]),
            "active_leases": len(index["leases"]),
            "counters": dict(index["counters"]),
            "hosts": hosts,
            "alive_hosts": sum(1 for h in hosts if h["alive"]),
        }
