"""Fault injection + self-healing: plans, recovery, retry, auth, ETAs."""

import json
import socket
import threading

import pytest

from repro.harness import CellSpec, ResultStore, spec_to_dict
from repro.harness.spec import spec_digest
from repro.service import (
    ErrorTally,
    FaultInjector,
    FaultPlan,
    JobQueue,
    LocalBackend,
    RemoteBackend,
    ServiceAuthError,
    ServiceClient,
    ServiceError,
    ServiceFaultSpec,
    SkewedClock,
    SweepService,
    worker_loop,
)
from repro.service.queue import CELL_DEAD, CELL_DONE, CELL_PENDING


def spec(scheme="atr", rf=64, n=500):
    return CellSpec("505.mcf_r", rf, scheme, n)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    return JobQueue(root=tmp_path / "q", lease=60.0, clock=clock)


# -- fault plans -------------------------------------------------------------------

def test_fault_plan_is_deterministic_per_seed():
    a = FaultPlan.from_spec(ServiceFaultSpec(seed=7))
    b = FaultPlan.from_spec(ServiceFaultSpec(seed=7))
    c = FaultPlan.from_spec(ServiceFaultSpec(seed=8))
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()
    assert a.to_dict() == b.to_dict()


def test_medium_plans_cover_all_four_fault_classes():
    # Medium intensity always plans >=2 crashes and >=1 restart, so a
    # handful of seeds must jointly exercise every class.
    seen = set()
    for seed in range(5):
        seen.update(
            FaultPlan.from_spec(ServiceFaultSpec(seed=seed)).classes())
    assert seen == {"transport", "queuefs", "worker", "coordinator"}


def test_unknown_intensity_rejected():
    with pytest.raises(ValueError, match="unknown intensity"):
        FaultPlan.from_spec(ServiceFaultSpec(seed=0, intensity="armageddon"))


def test_skewed_clock_is_forward_only():
    clock = SkewedClock(base=lambda: 100.0)
    assert clock() == 100.0
    clock.advance(5.0)
    assert clock() == 105.0
    with pytest.raises(ValueError):
        clock.advance(-1.0)


# -- index rebuild -----------------------------------------------------------------

def test_corrupt_index_rebuilt_from_cell_records(tmp_path, clock):
    queue = JobQueue(root=tmp_path / "q", lease=60.0, clock=clock)
    queue.submit([spec("atr"), spec("baseline"), spec("combined")],
                 label="before-crash")
    (lease,) = queue.claim("w1")  # atr leased
    queue.complete(lease.digest, "w1")  # ...and done

    # A crashed writer tears index.json mid-write.
    (tmp_path / "q" / "index.json").write_text('{"pending": [1, ')

    rebuilt = JobQueue(root=tmp_path / "q", lease=60.0, clock=clock)
    stats = rebuilt.stats()
    assert stats["counters"]["index_rebuilds"] == 1
    # The done cell kept its verdict; the other two requeued.
    assert stats["cells"][CELL_DONE] == 1
    assert stats["cells"][CELL_PENDING] == 2
    leases = rebuilt.claim("w2", max_cells=10)
    assert len(leases) == 2
    for lease in leases:
        assert rebuilt.complete(lease.digest, "w2")


def test_rebuild_requeues_leased_cells_and_rejects_stale_complete(
        tmp_path, clock):
    queue = JobQueue(root=tmp_path / "q", lease=60.0, clock=clock)
    queue.submit([spec()])
    (lease,) = queue.claim("old-owner")

    (tmp_path / "q" / "index.json").unlink()  # index lost entirely

    rebuilt = JobQueue(root=tmp_path / "q", lease=60.0, clock=clock)
    # Leases are unreconstructable: the cell is pending again and the
    # old owner's late settlement is refused.
    assert rebuilt.stats()["cells"][CELL_PENDING] == 1
    assert not rebuilt.complete(lease.digest, "old-owner")
    (fresh,) = rebuilt.claim("new-owner")
    assert rebuilt.complete(fresh.digest, "new-owner")


def test_missing_index_with_no_cells_is_a_fresh_queue(tmp_path, clock):
    queue = JobQueue(root=tmp_path / "q", lease=60.0, clock=clock)
    assert queue.stats()["counters"] == {}  # no rebuild counted


# -- corrupt cell records ----------------------------------------------------------

def test_torn_cell_record_dies_with_cause_then_resurrects(queue, tmp_path):
    receipt = queue.submit([spec()])
    digest = spec_digest(spec())
    cell_path = tmp_path / "q" / "cells" / f"{digest}.json"
    cell_path.write_text(cell_path.read_text()[:20])  # torn write

    assert queue.claim("w") == []  # quarantined, not silently dropped
    status = queue.job(receipt.job_id)
    assert status["dead"] == 1
    assert "unreadable cell record" in status["failed_cells"][0]["error"]
    assert queue.stats()["counters"]["corrupt_cells"] == 1

    # Resubmitting the spec resurrects the cell with a fresh record.
    retry = queue.submit([spec()])
    assert retry.new == 1
    (lease,) = queue.claim("w2")
    assert queue.complete(lease.digest, "w2")
    assert queue.job(retry.job_id)["state"] == "done"


def test_complete_with_repairs_unreadable_cell_from_lease_spec(
        queue, tmp_path):
    queue.submit([spec()])
    (lease,) = queue.claim("w")
    digest = lease.digest
    (tmp_path / "q" / "cells" / f"{digest}.json").write_text("garbage{")

    published = []
    outcome = queue.complete_with(
        digest, "w", publish=published.append,
        spec_fallback=spec_to_dict(lease.spec))
    assert outcome == "accepted"
    assert published == [lease.spec]
    assert queue.stats()["counters"]["repaired_cells"] == 1
    assert queue.stats()["cells"][CELL_DONE] == 1


def test_complete_without_fallback_quarantines_unreadable_cell(
        queue, tmp_path):
    queue.submit([spec()])
    (lease,) = queue.claim("w")
    (tmp_path / "q" / "cells" / f"{lease.digest}.json").write_text("{")
    assert queue.complete_with(lease.digest, "w") == "stale"
    assert queue.stats()["cells"][CELL_DEAD] == 1


# -- exactly-once settlement -------------------------------------------------------

def test_duplicate_complete_does_not_republish(queue):
    queue.submit([spec()])
    (lease,) = queue.claim("w")
    published = []
    assert queue.complete_with(lease.digest, "w",
                               publish=published.append) == "accepted"
    # The retry (reply was dropped, say) settles as a duplicate no-op.
    assert queue.complete_with(lease.digest, "w",
                               publish=published.append) == "duplicate"
    assert len(published) == 1
    assert queue.stats()["counters"]["duplicate_settlements"] == 1
    # The boolean wrapper treats both as success for the worker.
    assert queue.complete(lease.digest, "w")


def test_expired_lease_yields_one_publish_across_two_executions(
        queue, clock):
    queue.submit([spec()])
    (doomed,) = queue.claim("doomed")
    clock.advance(61.0)
    (live,) = queue.claim("live")
    published = []
    # The live settlement publishes; the stale one must not.
    assert queue.complete_with(live.digest, "live",
                               publish=published.append) == "accepted"
    assert queue.complete_with(doomed.digest, "doomed",
                               publish=published.append) == "duplicate"
    assert len(published) == 1


def test_local_backend_put_counter_stays_exactly_once(tmp_path, queue):
    store = ResultStore(root=tmp_path / "store", fingerprint="d" * 64)
    backend = LocalBackend(queue, store, host="h")
    queue.submit([spec()])
    (lease,) = queue.claim("w")
    payload = {"kind": "raw", "data": {"x": 1}}
    assert backend.complete("w", lease, payload, elapsed=0.1)
    assert backend.complete("w", lease, payload, elapsed=0.1)  # retry
    assert store.info()["counters"]["lifetime"]["puts"] == 1


# -- progress ETAs -----------------------------------------------------------------

def test_job_eta_from_completed_cell_ewma(queue):
    receipt = queue.submit(
        [spec("atr"), spec("baseline"), spec("combined"), spec("nonspec_er")])
    leases = queue.claim("w", max_cells=2)
    for lease in leases:
        assert queue.complete(lease.digest, "w", elapsed=2.0)
    status = queue.job(receipt.job_id)
    assert status["cell_ewma"] == pytest.approx(2.0)
    # 2 cells left, none leased right now: eta = ewma * 2 / 1.
    assert status["eta"] == pytest.approx(4.0)

    queue.claim("w", max_cells=2)
    assert queue.job(receipt.job_id)["eta"] == pytest.approx(2.0)


def test_job_eta_none_without_history_or_when_done(queue):
    receipt = queue.submit([spec()])
    assert queue.job(receipt.job_id)["eta"] is None  # no timing yet
    (lease,) = queue.claim("w")
    queue.complete(lease.digest, "w", elapsed=1.0)
    done = queue.job(receipt.job_id)
    assert done["state"] == "done"
    assert done["eta"] is None  # nothing remaining
    assert done["cell_ewma"] == pytest.approx(1.0)


def test_ewma_smooths_cell_times(queue):
    receipt = queue.submit([spec("atr"), spec("baseline"), spec("combined")])
    (a, b) = queue.claim("w", max_cells=2)
    queue.complete(a.digest, "w", elapsed=1.0)
    queue.complete(b.digest, "w", elapsed=2.0)
    # ewma = 0.3 * 2.0 + 0.7 * 1.0
    assert queue.job(receipt.job_id)["cell_ewma"] == pytest.approx(1.3)


# -- worker error tally ------------------------------------------------------------

def test_error_tally_counts_and_rate_limits_logs():
    clock = FakeClock(0.0)
    lines = []
    tally = ErrorTally(log=lines.append, min_interval=5.0, clock=clock)
    for _ in range(10):
        tally.record("claim", RuntimeError("boom"))
    assert tally.counts["claim"] == 10
    assert len(lines) == 1  # rate-limited: one line for the burst
    clock.advance(5.0)
    tally.record("claim", RuntimeError("boom"))
    assert len(lines) == 2
    assert "#11" in lines[-1]
    assert tally.total == 11
    assert tally.snapshot() == {"claim": 11}


def test_worker_loop_tallies_and_reports_backend_errors(tmp_path, queue):
    store = ResultStore(root=tmp_path / "store", fingerprint="d" * 64)

    class FlakyBackend(LocalBackend):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.failures = 2

        def claim(self, owner, max_cells):
            if self.failures:
                self.failures -= 1
                raise ConnectionResetError("injected")
            return super().claim(owner, max_cells)

    queue.submit([spec()])
    backend = FlakyBackend(queue, store, host="flaky-host")
    tally = ErrorTally(log=lambda _line: None, min_interval=0.0)
    executed = worker_loop(
        backend, executor=lambda s: {"ok": True}, poll=0.01,
        max_cells=1, errors=tally)
    assert executed == 1
    assert tally.counts["claim"] == 2
    # The tally rides back to the coordinator inside heartbeats.
    backend.heartbeat(errors=tally.snapshot())
    hosts = {h["host"]: h for h in queue.hosts()}
    assert hosts["flaky-host"]["meta"]["errors"] == {"claim": 2}


# -- live service: transport faults, retry, auth, degradation ----------------------

class FaultyFixture:
    """A live service with a hand-written fault plan."""

    def __init__(self, tmp_path, plan=None, token=None, lease=0.6):
        fault_spec = ServiceFaultSpec(seed=0, intensity="low")
        self.injector = (FaultInjector(fault_spec, plan=plan)
                         if plan is not None else None)
        self.store = ResultStore(root=tmp_path / "store")
        self.queue = JobQueue(root=tmp_path / "queue", lease=lease,
                              faults=self.injector)
        self.service = SweepService(queue=self.queue, store=self.store,
                                    port=0, token=token,
                                    faults=self.injector)
        self.service.start(reaper_interval=0.1)
        self._stop = threading.Event()
        self._threads = []

    def client(self, **kwargs):
        return ServiceClient(self.service.address, timeout=2.0, **kwargs)

    def start_worker(self, token=None):
        backend = RemoteBackend(self.client(token=token), host="w")
        thread = threading.Thread(
            target=worker_loop,
            kwargs=dict(backend=backend, poll=0.05,
                        executor=lambda s: {"scheme": s.scheme},
                        stop=self._stop.is_set),
            daemon=True)
        thread.start()
        self._threads.append(thread)

    def close(self):
        self._stop.set()
        self.service.stop()
        for thread in self._threads:
            thread.join(5)


def test_client_retries_through_dropped_and_partial_replies(tmp_path):
    # The first two status replies are sabotaged; the third is clean.
    plan = FaultPlan(transport={"status": {0: ("drop", 0.0),
                                           1: ("partial", 0.0)}})
    fx = FaultyFixture(tmp_path, plan=plan)
    try:
        fx.start_worker()
        receipt = fx.client().submit([spec_to_dict(spec())])
        reply = fx.client(retries=4).status(receipt["job"])
        assert reply["job"]["id"] == receipt["job"]
    finally:
        fx.close()


def test_client_without_retries_surfaces_transport_fault(tmp_path):
    plan = FaultPlan(transport={"status": {0: ("drop", 0.0)}})
    fx = FaultyFixture(tmp_path, plan=plan)
    try:
        receipt = fx.client().submit([spec_to_dict(spec())])
        with pytest.raises(ServiceError):
            fx.client(retries=0).status(receipt["job"])
    finally:
        fx.close()


def test_reset_connection_is_retried(tmp_path):
    plan = FaultPlan(transport={"ping": {0: ("reset", 0.0)}})
    fx = FaultyFixture(tmp_path, plan=plan)
    try:
        assert fx.client(retries=3).ping()["service"] == "repro"
    finally:
        fx.close()


def test_partial_line_then_reconnect_by_hand(tmp_path):
    """The raw-socket view of the partial fault: the first connection
    yields a truncated line and EOF; a fresh connection succeeds."""
    plan = FaultPlan(transport={"ping": {0: ("partial", 0.0)}})
    fx = FaultyFixture(tmp_path, plan=plan)
    try:
        host, port = fx.service.address.rsplit(":", 1)
        with socket.create_connection((host, int(port)), timeout=2) as sock:
            sock.sendall(b'{"op": "ping"}\n')
            data = b""
            try:
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    data += chunk
            except OSError:
                pass  # injected RST
        assert b"\n" not in data  # truncated: no complete line arrived
        with pytest.raises(ValueError):
            json.loads(data.decode() or "{")
        # Reconnect: the one-shot fault spent itself, service is fine.
        assert fx.client(retries=0).ping()["ok"]
    finally:
        fx.close()


def test_auth_token_rejects_and_admits(tmp_path):
    fx = FaultyFixture(tmp_path, token="s3cret")
    try:
        with pytest.raises(ServiceAuthError, match="token"):
            fx.client().ping()
        with pytest.raises(ServiceAuthError):
            fx.client(token="wrong").ping()
        assert fx.client(token="s3cret").ping()["service"] == "repro"

        # The full work loop runs under auth.
        fx.start_worker(token="s3cret")
        client = fx.client(token="s3cret")
        receipt = client.submit([spec_to_dict(spec())])
        assert client.wait(receipt["job"])["state"] == "done"
    finally:
        fx.close()


def test_auth_failures_are_not_retried(tmp_path):
    fx = FaultyFixture(tmp_path, token="s3cret")
    try:
        attempts = []
        client = fx.client(token="wrong", retries=5,
                           sleep=lambda s: attempts.append(s))
        with pytest.raises(ServiceAuthError):
            client.ping()
        assert attempts == []  # no backoff sleeps: failed exactly once
    finally:
        fx.close()


def test_degraded_mode_rejects_mutations_serves_reads_then_heals(
        tmp_path, monkeypatch):
    fx = FaultyFixture(tmp_path)
    try:
        client = fx.client()
        receipt = client.submit([spec_to_dict(spec())])

        def sick(*_args, **_kwargs):
            raise OSError("disk on fire")

        real_submit, real_reap = fx.queue.submit, fx.queue.reap
        monkeypatch.setattr(fx.queue, "submit", sick)
        # Break the heal probe too, else the reaper thread un-degrades
        # the service between our asserts.
        monkeypatch.setattr(fx.queue, "reap", sick)
        with pytest.raises(ServiceError, match="disk on fire"):
            client.submit([spec_to_dict(spec("baseline"))])
        # Mutations now rejected with the typed degraded error...
        with pytest.raises(ServiceError, match="read-only") as excinfo:
            client.submit([spec_to_dict(spec("baseline"))])
        assert excinfo.value.kind == "degraded"
        # ...while reads keep answering.
        assert client.status(receipt["job"])["job"]["id"] == receipt["job"]
        assert client.ping()["degraded"] is not None
        assert client.stats()["degraded"] is not None

        # Queue dir healthy again: the heal probe restores full service.
        monkeypatch.setattr(fx.queue, "submit", real_submit)
        monkeypatch.setattr(fx.queue, "reap", real_reap)
        assert fx.service.check_health()
        assert client.ping()["degraded"] is None
        assert client.submit([spec_to_dict(spec("baseline"))])["total"] == 1
    finally:
        fx.close()


def test_corrupt_result_file_served_as_miss_not_crash(tmp_path):
    fx = FaultyFixture(tmp_path)
    try:
        fx.start_worker()
        client = fx.client()
        receipt = client.submit([spec_to_dict(spec())])
        assert client.wait(receipt["job"])["state"] == "done"
        assert client.fetch(spec_to_dict(spec())) is not None

        # The stored result file rots on disk.
        fx.store.path_for(spec()).write_text("not json{")
        assert client.fetch(spec_to_dict(spec())) is None  # miss, no crash
    finally:
        fx.close()


def test_server_complete_heals_store_on_duplicate(tmp_path):
    """A duplicate complete after `cache gc` re-publishes the result the
    store lost, instead of silently acknowledging."""
    fx = FaultyFixture(tmp_path)
    try:
        fx.start_worker()
        client = fx.client()
        receipt = client.submit([spec_to_dict(spec())])
        assert client.wait(receipt["job"])["state"] == "done"
        digest = spec_digest(spec())

        fx.store.clear()  # cache gc wiped everything
        assert not fx.store.contains(spec())
        # A (simulated) worker retry of the complete: queue says done,
        # so it settles as a duplicate — and repopulates the store.
        owner = "retrying-worker"
        accepted = client.complete(owner, digest,
                                   {"kind": "raw", "data": {"x": 1}},
                                   spec=spec_to_dict(spec()))
        assert accepted  # duplicate counts as success for the worker
        assert fx.store.contains(spec())
    finally:
        fx.close()
