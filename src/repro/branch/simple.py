"""Simple direction predictors: static, bimodal, gshare.

These serve as baselines, as TAGE's fallback component, and as cheap
predictors for fast unit tests of the pipeline.
"""

from __future__ import annotations

from .interface import DirectionPredictor, saturate


class AlwaysTaken(DirectionPredictor):
    """Static predict-taken (useful to force mispredictions in tests)."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class AlwaysNotTaken(DirectionPredictor):
    """Static predict-not-taken."""

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass


class Oracle(DirectionPredictor):
    """Perfect prediction (the simulator feeds it the actual outcome).

    Used for no-misprediction pipeline runs; ``set_outcome`` must be called
    before ``predict`` for the same pc.
    """

    def __init__(self):
        self._next_outcome = False

    def set_outcome(self, taken: bool) -> None:
        self._next_outcome = taken

    def predict(self, pc: int) -> bool:
        return self._next_outcome

    def update(self, pc: int, taken: bool) -> None:
        pass


class Bimodal(DirectionPredictor):
    """Classic per-PC 2-bit saturating counter table."""

    def __init__(self, entries: int = 4096, counter_bits: int = 2):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.max_counter = (1 << counter_bits) - 1
        self.threshold = 1 << (counter_bits - 1)
        self.table = [self.threshold] * entries

    def _index(self, pc: int) -> int:
        return pc & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= self.threshold

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        self.table[i] = saturate(self.table[i], 1 if taken else -1, 0, self.max_counter)

    def confidence(self, pc: int) -> bool:
        """Saturated counters are high-confidence."""
        counter = self.table[self._index(pc)]
        return counter == 0 or counter == self.max_counter


class GShare(DirectionPredictor):
    """Global-history XOR-indexed 2-bit counter table."""

    def __init__(self, entries: int = 16384, history_bits: int = 12):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.history_bits = history_bits
        self.history = 0
        self.table = [2] * entries

    def _index(self, pc: int) -> int:
        return (pc ^ (self.history & ((1 << self.history_bits) - 1))) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        self.table[i] = saturate(self.table[i], 1 if taken else -1, 0, 3)
        self.history = ((self.history << 1) | int(taken)) & ((1 << self.history_bits) - 1)

    def confidence(self, pc: int) -> bool:
        counter = self.table[self._index(pc)]
        return counter in (0, 3)
