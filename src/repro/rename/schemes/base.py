"""Release scheme interface.

A release scheme decides *when a physical register returns to the free
list*.  The pipeline invokes the hooks below at well-defined points; the
scheme is the only component allowed to call ``freelist.free`` (outside of
test fixtures), which is what makes the free-list conservation checking
meaningful.

Hook call order, per simulated cycle:

1. ``tick(cycle)`` — once, before any instruction processing (delayed
   redefinition signals become visible here).
2. ``on_commit(entry, cycle)`` — per committing instruction, in order.
3. ``on_precommit(entry, cycle)`` — per instruction passing the precommit
   pointer this cycle, in order.
4. ``on_issue(entry, cycle)`` — per issuing instruction (sources read).
5. ``pre_rename(entry, cycle)`` / ``post_rename(entry, cycle)`` — per
   renaming instruction, in program order within the cycle.  ``pre`` runs
   after source lookup but *before* destination allocation; ``post`` runs
   after the SRT has been updated.
6. ``on_flush(flushed, cycle)`` — on a pipeline flush, with the flushed
   entries ordered youngest first (tail -> flush point); the SRT has
   already been restored when this is called.

Entries expose: ``seq``, ``instr``, ``dests`` (:class:`DestRecord` list),
``src_ptags`` ((file, ptag) list), ``issued``, ``precommitted``,
``squashed``, ``wrong_path``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List

from ...isa import RegClass
from ..unit import RenameUnit


@dataclass
class SchemeStats:
    """Release accounting, the raw material of every figure."""

    commit_frees: int = 0
    flush_frees: int = 0
    atr_frees: int = 0
    nonspec_frees: int = 0
    atr_claims: int = 0
    bulk_mark_events: int = 0
    bulk_marked_ptags: int = 0
    flush_walks: int = 0
    pending_squashed: int = 0
    #: Histogram of lifetime consumer counts of ATR-claimed ptags (Fig 12).
    claim_consumers: Dict[int, int] = field(default_factory=dict)

    @property
    def early_frees(self) -> int:
        return self.atr_frees + self.nonspec_frees

    @property
    def total_frees(self) -> int:
        return self.commit_frees + self.flush_frees + self.early_frees

    def record_claim_consumers(self, count: int) -> None:
        self.claim_consumers[count] = self.claim_consumers.get(count, 0) + 1

    def to_dict(self) -> Dict:
        """JSON-serializable form; histogram keys become strings in JSON,
        so :meth:`from_dict` converts them back to ints."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["claim_consumers"] = dict(self.claim_consumers)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "SchemeStats":
        data = dict(data)
        data["claim_consumers"] = {
            int(k): v for k, v in data.get("claim_consumers", {}).items()
        }
        return cls(**data)


class ReleaseScheme:
    """Base scheme: owns no policy, provides shared plumbing."""

    name = "abstract"
    #: Whether the pipeline should maintain the precommit pointer for this
    #: scheme (it always does for analysis; this flag is informational).
    uses_precommit = False

    def __init__(self):
        self.stats = SchemeStats()
        self.unit: RenameUnit = None  # type: ignore[assignment]
        #: Optional callback(file_cls, ptag) fired on every *early* release;
        #: used by the register-event log and by tests observing releases.
        self.release_listener = None
        #: Optional callback(file_cls, ptag) fired when an atomic-region
        #: scheme claims a previous ptag (ATR takes ownership of the free).
        self.claim_listener = None

    def attach(self, unit: RenameUnit) -> None:
        self.unit = unit

    def _notify_release(self, file_cls, ptag: int) -> None:
        if self.release_listener is not None:
            self.release_listener(file_cls, ptag)

    def _notify_claim(self, file_cls, ptag: int) -> None:
        if self.claim_listener is not None:
            self.claim_listener(file_cls, ptag)

    # -- hooks (default: no-ops) ------------------------------------------------
    def tick(self, cycle: int) -> None:
        pass

    def next_pending_cycle(self) -> "int | None":
        """Earliest future cycle at which :meth:`tick` has queued work, or
        ``None`` when the scheme holds no time-delayed state.

        The core's skip-ahead fast path uses this to bound how far the
        cycle counter may jump without a tick observing anything; schemes
        with pipelined (delayed) signals must override it.
        """
        return None

    def pre_rename(self, entry, cycle: int) -> None:
        pass

    def post_rename(self, entry, cycle: int) -> None:
        pass

    def on_issue(self, entry, cycle: int) -> None:
        pass

    def on_writeback(self, file_cls, ptag: int, cycle: int) -> None:
        """The producer of *ptag* wrote the register file.

        Early-release schemes gate releases on this: a register whose
        write is still in flight cannot be handed to a new owner.
        """

    def on_precommit(self, entry, cycle: int) -> None:
        pass

    def on_commit(self, entry, cycle: int) -> None:
        """Default conventional release: free every still-owned prev ptag."""
        for record in entry.dests:
            if record.release_prev is not None:
                self.unit.files[record.file].freelist.free(record.release_prev)
                record.release_prev = None
                self.stats.commit_frees += 1

    def on_flush(self, flushed: List, cycle: int) -> None:
        """Default reclamation: free the new ptag of every flushed entry.

        *flushed* is ordered youngest -> oldest.  The SRT was already
        restored by the pipeline; schemes override this when some new
        ptags may already have been early released (ATR).
        """
        self.stats.flush_walks += 1
        for entry in flushed:
            for record in entry.dests:
                self.unit.files[record.file].freelist.free(record.new_ptag)
                self.stats.flush_frees += 1

    # -- shared helpers ---------------------------------------------------------
    def _free(self, file_cls: RegClass, ptag: int) -> None:
        self.unit.files[file_cls].freelist.free(ptag)

    def describe(self) -> str:
        return self.name
