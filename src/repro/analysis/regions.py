"""Trace-level atomic-region classification (paper section 3.2 / Figure 6).

Walks a dynamic trace in program order and classifies every register
allocation chain — from the instruction that renames an architectural
register to the instruction that redefines it — into the paper's three
region types:

* **non-branch**: no conditional branch or indirect jump between the
  renaming instruction (exclusive) and the redefining instruction
  (inclusive);
* **non-except**: no memory operation or divide in that window;
* **atomic**: both, i.e. all instructions in the chain commit or flush as
  a group.

The renaming instruction itself may be a region breaker (a region can
*begin* with a load); the redefining instruction may not (a faulting
redefiner would be flushed, un-redefining the register).  This matches
the runtime ATR mechanism, which bulk-marks the SRT *before* allocating
the breaker's own destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..frontend import Trace
from ..isa import ArchReg, RegClass


@dataclass
class RegionChain:
    """One allocation chain of one architectural register."""

    file: RegClass
    slot: int
    alloc_seq: int
    redefine_seq: Optional[int]  # None: never redefined before trace end
    consumers: int
    non_branch: bool
    non_except: bool

    @property
    def atomic(self) -> bool:
        return self.non_branch and self.non_except

    @property
    def closed(self) -> bool:
        return self.redefine_seq is not None

    def to_dict(self) -> Dict:
        return {
            "file": self.file.name,
            "slot": self.slot,
            "alloc_seq": self.alloc_seq,
            "redefine_seq": self.redefine_seq,
            "consumers": self.consumers,
            "non_branch": self.non_branch,
            "non_except": self.non_except,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RegionChain":
        data = dict(data)
        data["file"] = RegClass[data["file"]]
        return cls(**data)


@dataclass
class RegionReport:
    """Aggregate of a trace's region classification (one Figure 6 bar)."""

    name: str
    chains: List[RegionChain] = field(default_factory=list)

    def _closed(self) -> List[RegionChain]:
        return [c for c in self.chains if c.closed]

    @property
    def total_allocations(self) -> int:
        return len(self.chains)

    def ratio(self, kind: str, file: Optional[RegClass] = None) -> float:
        """Fraction of allocations in regions of *kind*
        ('non_branch' | 'non_except' | 'atomic')."""
        if kind not in ("non_branch", "non_except", "atomic"):
            raise ValueError(f"unknown region kind {kind!r}")
        chains = [c for c in self.chains if file is None or c.file is file]
        if not chains:
            return 0.0
        if kind == "non_branch":
            hit = sum(1 for c in chains if c.closed and c.non_branch)
        elif kind == "non_except":
            hit = sum(1 for c in chains if c.closed and c.non_except)
        else:
            hit = sum(1 for c in chains if c.closed and c.atomic)
        return hit / len(chains)

    def atomic_chains(self, file: Optional[RegClass] = None) -> List[RegionChain]:
        return [
            c for c in self.chains
            if c.closed and c.atomic and (file is None or c.file is file)
        ]

    def consumer_histogram(self, file: Optional[RegClass] = None) -> Dict[int, int]:
        """Consumers-per-atomic-region histogram (paper Figure 12)."""
        histogram: Dict[int, int] = {}
        for chain in self.atomic_chains(file):
            histogram[chain.consumers] = histogram.get(chain.consumers, 0) + 1
        return histogram

    def mean_consumers(self, file: Optional[RegClass] = None) -> float:
        chains = self.atomic_chains(file)
        if not chains:
            return 0.0
        return sum(c.consumers for c in chains) / len(chains)

    def to_dict(self) -> Dict:
        return {"name": self.name, "chains": [c.to_dict() for c in self.chains]}

    @classmethod
    def from_dict(cls, data: Dict) -> "RegionReport":
        return cls(
            name=data["name"],
            chains=[RegionChain.from_dict(c) for c in data["chains"]],
        )


class _OpenChain:
    __slots__ = ("alloc_seq", "consumers", "last_control", "last_except")

    def __init__(self, alloc_seq: int, last_control: int, last_except: int):
        self.alloc_seq = alloc_seq
        self.consumers = 0
        self.last_control = last_control
        self.last_except = last_except


def classify_regions(trace: Trace) -> RegionReport:
    """Classify every allocation chain in *trace*."""
    report = RegionReport(name=trace.name)
    open_chains: Dict[ArchReg, _OpenChain] = {}
    last_control = -1  # seq of last conditional branch / indirect jump
    last_except = -1   # seq of last memory op / divide

    for seq, entry in enumerate(trace.entries):
        instr = entry.instr
        # Breakers take effect before this instruction's own destination is
        # renamed (the bulk-marking order of section 4.2.2).
        if instr.breaks_region_control:
            last_control = seq
        if instr.may_except:
            last_except = seq
        for src in instr.srcs:
            chain = open_chains.get(src)
            if chain is not None:
                chain.consumers += 1
        for dest in instr.dests:
            previous = open_chains.get(dest)
            if previous is not None:
                report.chains.append(
                    RegionChain(
                        file=dest.cls.file,
                        slot=dest.srt_slot,
                        alloc_seq=previous.alloc_seq,
                        redefine_seq=seq,
                        consumers=previous.consumers,
                        non_branch=last_control <= previous.alloc_seq,
                        non_except=last_except <= previous.alloc_seq,
                    )
                )
            open_chains[dest] = _OpenChain(seq, last_control, last_except)

    for dest, chain in open_chains.items():
        report.chains.append(
            RegionChain(
                file=dest.cls.file,
                slot=dest.srt_slot,
                alloc_seq=chain.alloc_seq,
                redefine_seq=None,
                consumers=chain.consumers,
                non_branch=False,
                non_except=False,
            )
        )
    return report


def atomic_ratio(trace: Trace, file: Optional[RegClass] = None) -> float:
    """Convenience: the Figure 6 'atomic' ratio for one trace."""
    return classify_regions(trace).ratio("atomic", file=file)
