"""repro — reproduction of "ATR: Out-of-Order Register Release Exploiting
Atomic Regions" (Zhao, Oh, Xu, Litz — MICRO 2025).

Subpackages:

* :mod:`repro.isa` — the reproduction ISA (registers, opcodes, programs,
  assembler).
* :mod:`repro.frontend` — functional emulator (golden model), dynamic
  traces, wrong-path supply.
* :mod:`repro.workloads` — SPEC-named stand-in kernels, statistical
  synthesis, SimPoint-lite phase analysis.
* :mod:`repro.branch` — TAGE-SC-L-lite, BTB, indirect predictor, RAS.
* :mod:`repro.memory` — caches, prefetchers, DRAM, MSHRs.
* :mod:`repro.rename` — free lists, SRT, PRT, and the release schemes
  (baseline / nonspec-ER / **ATR** / combined) — the paper's core.
* :mod:`repro.pipeline` — the Golden-Cove-like cycle-level OoO core.
* :mod:`repro.analysis` — region classification, register lifecycle,
  event timing.
* :mod:`repro.hwmodel` — gate-level bulk-NER circuit, McPAT-lite.
* :mod:`repro.experiments` — one module per paper figure.

Quickstart::

    from repro.workloads import build_trace
    from repro.pipeline import golden_cove_config, Core

    trace = build_trace("505.mcf_r", 20_000)
    core = Core(golden_cove_config(rf_size=64, scheme="atr"), trace)
    stats = core.run()
    print(stats.ipc, core.scheme.stats.atr_frees)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
