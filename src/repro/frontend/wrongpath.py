"""Wrong-path instruction supply.

After a branch misprediction the real machine keeps fetching *static* code
at the predicted target; those wrong-path instructions are decoded, renamed
(allocating physical registers!) and executed until the branch resolves and
the pipeline flushes.  ATR's safety argument is precisely about this
situation, so the simulator models it faithfully: this module decodes the
static program image at an arbitrary PC and fabricates dynamic records for
the speculative stream.

Design notes:

* Wrong-path memory addresses are unknowable (the source registers hold
  wrong-path values); we synthesize a deterministic pseudo-address from
  (pc, seq) so dcache behaviour is reproducible, matching trace-based
  Scarab's treatment of wrong-path loads.
* Wrong-path control flow follows whatever the branch predictor says; the
  supplier itself reports conditional branches as not-taken so that the
  prediction alone steers the speculative stream.
* Fetching past the program image yields ``None`` (fetch stalls), like
  running into an unmapped page.
"""

from __future__ import annotations

from typing import Optional

from ..isa import Program
from .trace import DynamicInstruction

_MASK64 = (1 << 64) - 1


def _pseudo_address(pc: int, seq: int) -> int:
    """Deterministic pseudo-random address for a wrong-path memory op.

    Spread over a 1 MiB window, 8-byte aligned, so wrong-path accesses mix
    cache hits and misses without being degenerate.
    """
    h = (pc * 0x9E3779B97F4A7C15 + seq * 0xBF58476D1CE4E5B9) & _MASK64
    return (h % (1 << 20)) & ~0x7


class WrongPathSupplier:
    """Fabricates wrong-path dynamic instructions from the static image."""

    def __init__(self, program: Program):
        self.program = program
        self.supplied = 0

    def fetch(self, pc: int, seq: int) -> Optional[DynamicInstruction]:
        """A wrong-path dynamic record for the instruction at *pc*.

        Returns ``None`` when *pc* lies outside the program image; the
        fetch unit treats that as a stall until the flush arrives.
        """
        instr = self.program.at(pc)
        if instr is None or instr.is_halt:
            return None
        self.supplied += 1
        mem_addr = _pseudo_address(pc, seq) if instr.is_memory else None
        # Direct unconditional control flow still has a known target on the
        # wrong path; conditional direction and indirect targets are the
        # predictor's call (the record carries the fall-through).
        if instr.is_control and not instr.is_conditional_branch and instr.target is not None:
            next_pc = instr.target
        else:
            next_pc = pc + 1
        return DynamicInstruction(
            seq=seq,
            pc=pc,
            instr=instr,
            next_pc=next_pc,
            taken=False,
            mem_addr=mem_addr,
            wrong_path=True,
            trace_seq=-1,
        )
