"""The composite branch unit used by the fetch stage.

Combines a direction predictor, BTB, indirect predictor, and return
address stack into the single ``predict``/``resolve`` interface the
pipeline consumes.  Prediction happens at fetch; training happens when the
branch resolves at execute (correct-path only — wrong-path branches train
nothing, as in Scarab's trace-based mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa import Instruction, OpClass
from .interface import DirectionPredictor, Prediction
from .simple import AlwaysNotTaken
from .targets import BranchTargetBuffer, IndirectTargetPredictor, ReturnAddressStack
from .tage import Tage


@dataclass
class BranchStats:
    """Aggregate prediction accuracy counters."""

    conditional: int = 0
    conditional_mispredicted: int = 0
    indirect: int = 0
    indirect_mispredicted: int = 0

    @property
    def mpki_numerator(self) -> int:
        return self.conditional_mispredicted + self.indirect_mispredicted

    def accuracy(self) -> float:
        total = self.conditional + self.indirect
        if not total:
            return 1.0
        return 1.0 - self.mpki_numerator / total


class BranchUnit:
    """Fetch-facing facade over all the predictors."""

    def __init__(
        self,
        direction: Optional[DirectionPredictor] = None,
        btb_entries: int = 12288,
        indirect_entries: int = 3072,
        ras_depth: int = 32,
    ):
        self.direction = direction if direction is not None else Tage()
        self.btb = BranchTargetBuffer(entries=btb_entries)
        self.indirect = IndirectTargetPredictor(entries=indirect_entries)
        self.ras = ReturnAddressStack(depth=ras_depth)
        self.stats = BranchStats()

    def predict(self, pc: int, instr: Instruction) -> Prediction:
        """Predict the control flow of *instr* at *pc* (called at fetch).

        Maintains the RAS speculatively (push on call, pop on return), as
        the hardware does.
        """
        op_class = instr.op_class
        if op_class is OpClass.BRANCH:
            taken = self.direction.predict(pc)
            confident = self.direction.confidence(pc)
            target = instr.target if taken else pc + 1
            return Prediction(taken=taken, target=target, confident=confident)
        if op_class is OpClass.JUMP:
            return Prediction(taken=True, target=instr.target)
        if op_class is OpClass.CALL:
            self.ras.push(pc + 1)
            return Prediction(taken=True, target=instr.target)
        if op_class is OpClass.RETURN:
            target = self.ras.pop()
            if target is None:
                target = self.indirect.predict(pc)
            return Prediction(taken=True, target=target, confident=target is not None)
        if op_class is OpClass.JUMP_INDIRECT:
            target = self.indirect.predict(pc)
            return Prediction(taken=True, target=target, confident=target is not None)
        return Prediction(taken=False, target=pc + 1)

    def resolve(
        self, pc: int, instr: Instruction, predicted: Prediction, taken: bool, target: int
    ) -> bool:
        """Train predictors with the actual outcome; return True on a
        misprediction (called when a correct-path branch executes)."""
        op_class = instr.op_class
        mispredicted = False
        if op_class is OpClass.BRANCH:
            self.stats.conditional += 1
            mispredicted = predicted.taken != taken or (taken and predicted.target != target)
            if mispredicted:
                self.stats.conditional_mispredicted += 1
                self.direction.on_mispredict(pc, taken)
            self.direction.update(pc, taken)
            if taken:
                self.btb.update(pc, target)
        elif op_class in (OpClass.JUMP_INDIRECT, OpClass.RETURN):
            self.stats.indirect += 1
            mispredicted = predicted.target != target
            if mispredicted:
                self.stats.indirect_mispredicted += 1
            self.indirect.update(pc, target)
        elif op_class in (OpClass.JUMP, OpClass.CALL):
            mispredicted = predicted.target != target
            self.btb.update(pc, target)
        return mispredicted
