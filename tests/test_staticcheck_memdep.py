"""Value-set analysis over addresses: strided intervals, alias
verdicts, fixpoint determinism, and dynamic must-alias soundness."""

import random

import pytest

from repro.frontend.emulator import Emulator
from repro.isa import ProgramBuilder, ireg, vreg
from repro.staticcheck import (
    MAY,
    MUST,
    NO,
    StridedInterval,
    analyze_memdep,
    analyze_regions,
    build_cfg,
)
from repro.staticcheck.memdep import (
    ABS,
    TOP,
    _footprints_disjoint,
    si_const,
    vs_const,
)
from repro.workloads import builder_for

r = ireg
v = vreg


def _si(stride, phase, lo, hi):
    return StridedInterval(stride, phase, lo, hi)


class TestStridedInterval:
    def test_singleton_shift_and_add(self):
        assert si_const(8).shift(8) == si_const(16)
        assert si_const(8).add(si_const(-8)) == si_const(0)

    def test_add_takes_gcd_stride(self):
        a = _si(8, 0, 0, 32)
        b = _si(12, 0, 0, 24)
        out = a.add(b)
        assert out.stride == 4 and out.lo == 0 and out.hi == 56

    def test_negate_is_involutive(self):
        a = _si(8, 3, -16, 40)
        assert a.negate().negate() == a

    def test_join_of_two_constants(self):
        out = si_const(8).join(si_const(24))
        assert (out.stride, out.phase, out.lo, out.hi) == (16, 8, 8, 24)

    def test_join_reconciles_phases_by_gcd(self):
        out = _si(8, 0, 0, 64).join(_si(8, 4, 4, 68))
        assert out.stride == 4 and out.lo == 0 and out.hi == 68

    def test_join_is_an_upper_bound(self):
        a, b = _si(16, 0, 0, 64), si_const(24)
        out = a.join(b)
        # every member of both operands satisfies the joined constraints
        for x in (0, 16, 32, 48, 64, 24):
            assert out.lo <= x <= out.hi and x % out.stride == out.phase

    def test_abstract_keeps_singletons_exact(self):
        assert si_const(12345).abstract() == si_const(12345)

    def test_abstract_rounds_outward(self):
        out = _si(12, 3, -100, 100).abstract()
        assert out.stride == 4          # largest power-of-two divisor
        assert out.lo == -128 and out.hi == 128

    def test_abstract_is_idempotent(self):
        a = _si(24, 5, 7, 1000).abstract()
        assert a.abstract() == a

    def test_abstract_is_extensive(self):
        """x in gamma(si) implies x in gamma(si.abstract())."""
        si = _si(12, 6, 6, 90)
        out = si.abstract()
        for x in range(si.lo, si.hi + 1):
            if x % si.stride == si.phase:
                assert out.lo <= x <= out.hi
                assert x % out.stride == out.phase % out.stride

    def test_footprint_disjoint_by_range(self):
        assert _footprints_disjoint(si_const(0), 8, si_const(8), 8)
        assert not _footprints_disjoint(si_const(0), 8, si_const(7), 8)

    def test_footprint_disjoint_by_congruence(self):
        # stride-16 streams at phases 0 and 8, both 8 bytes wide
        a = _si(16, 0, None, None)
        b = _si(16, 8, None, None)
        assert _footprints_disjoint(a, 8, b, 8)
        # widen one access and the proof must fail
        assert not _footprints_disjoint(a, 16, b, 8)

    def test_congruence_needs_wraparound_safety(self):
        # gcd 24 is not a power of two and the spans are unbounded:
        # residues do not survive mod-2^64 reduction, so no proof.
        a = _si(24, 0, None, None)
        b = _si(24, 12, None, None)
        assert not _footprints_disjoint(a, 8, b, 8)
        # bounded spans restore the argument
        assert _footprints_disjoint(_si(24, 0, 0, 240), 8,
                                    _si(24, 12, 12, 252), 8)


class TestTransfer:
    def _value(self, build, reg):
        program = build.build()
        m = analyze_memdep(program)
        return m.value_at(len(program.instructions) - 1, reg)

    def test_constant_chain_folds(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x100)
        b.lea(r(2), r(1), 8)
        b.halt()
        assert self._value(b, r(2)) == vs_const(0x108)

    def test_load_creates_symbolic_region(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.ld(r(2), r(1))
        b.halt()
        vs = self._value(b, r(2))
        assert vs is not TOP and vs.single[0] == ("pc", 1)
        assert vs.single[1] == si_const(0)

    def test_same_region_difference_is_absolute(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.ld(r(2), r(1))
        b.lea(r(3), r(2), 24)
        b.sub(r(4), r(3), r(2))
        b.halt()
        assert self._value(b, r(4)) == vs_const(24)

    def test_and_mask_bounds_symbolic_value(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.ld(r(2), r(1))         # unknown value
        b.movi(r(3), 0x38)
        b.and_(r(4), r(2), r(3))
        b.halt()
        vs = self._value(b, r(4))
        region, si = vs.single
        assert region == ABS
        assert (si.stride, si.phase, si.lo, si.hi) == (8, 0, 0, 0x38)

    def test_vec_dest_is_top(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.vld(v(1), r(1))
        b.halt()
        assert self._value(b, v(1)) is TOP

    def test_select_joins_both_sources(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 8)
        b.movi(r(2), 24)
        b.movi(r(4), 0x40)
        b.ld(r(5), r(4))         # unknown condition: SELECT can't fold
        b.test(r(5), r(5))
        b.select(r(3), r(1), r(2))
        b.halt()
        vs = self._value(b, r(3))
        region, si = vs.single
        assert region == ABS
        assert si.lo == 8 and si.hi == 24 and si.stride == 16


class TestAliasVerdicts:
    def test_must_alias_same_slot(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.st(r(2), r(1), 0)      # pc 1
        b.ld(r(3), r(1), 0)      # pc 2
        b.halt()
        m = analyze_memdep(b.build())
        assert m.alias(m.access_at(1), m.access_at(2)) == MUST

    def test_no_alias_adjacent_slots(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.st(r(2), r(1), 0)
        b.ld(r(3), r(1), 8)
        b.halt()
        m = analyze_memdep(b.build())
        assert m.alias(m.access_at(1), m.access_at(2)) == NO

    def test_no_alias_by_loop_congruence(self):
        """A stride-16 loop with accesses at +0 and +8: disjoint by
        congruence even though the trip count is unknown."""
        b = ProgramBuilder("t")
        b.movi(r(1), 0)
        b.movi(r(5), 256)
        b.label("loop")
        b.st(r(9), r(1), 0)      # pc 2
        b.ld(r(2), r(1), 8)      # pc 3
        b.lea(r(1), r(1), 16)
        b.cmp(r(1), r(5))
        b.bne("loop")
        b.halt()
        m = analyze_memdep(b.build())
        assert m.alias(m.access_at(2), m.access_at(3)) == NO

    def test_multi_instance_region_demotes_to_may(self):
        """A pointer loaded inside a loop names a different instance each
        trip: equal offsets are not MUST without a same-instance proof."""
        b = ProgramBuilder("t")
        b.movi(r(1), 0)
        b.movi(r(5), 64)
        b.label("loop")
        b.ld(r(2), r(1), 0)      # pc 2: fresh region every iteration
        b.st(r(3), r(2), 0)      # pc 3
        b.ld(r(4), r(2), 0)      # pc 4
        b.lea(r(1), r(1), 8)
        b.cmp(r(1), r(5))
        b.bne("loop")
        b.halt()
        m = analyze_memdep(b.build())
        a, c = m.access_at(3), m.access_at(4)
        assert m.alias(a, c) == MAY
        assert m.alias(a, c, same_instance=True) == MUST

    def test_unrelated_symbolic_regions_are_may(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.ld(r(2), r(1), 0)
        b.ld(r(3), r(1), 8)
        b.st(r(4), r(2), 0)      # pc 3
        b.ld(r(5), r(3), 0)      # pc 4
        b.halt()
        m = analyze_memdep(b.build())
        assert m.alias(m.access_at(3), m.access_at(4)) == MAY

    def test_dependence_edges(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.st(r(2), r(1), 0)      # pc 1
        b.st(r(2), r(1), 8)      # pc 2: disjoint from the load
        b.ld(r(3), r(1), 0)      # pc 3
        b.halt()
        m = analyze_memdep(b.build())
        assert m.dependence_edges() == [(1, 3, MUST)]


class TestLintBackends:
    def test_undefined_load(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x1000)
        b.ld(r(2), r(1), 0)      # nothing ever stores near 0x1000
        b.halt()
        m = analyze_memdep(b.build())
        assert m.undefined_loads() == [1]

    def test_data_image_feeds_load(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x1000)
        b.ld(r(2), r(1), 0)
        b.halt()
        program = b.build()
        program.data[0x1000] = 7
        m = analyze_memdep(program)
        assert m.undefined_loads() == []

    def test_dead_store(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.st(r(2), r(1), 0)      # pc 1: fully overwritten below
        b.st(r(3), r(1), 0)      # pc 2
        b.halt()
        m = analyze_memdep(b.build())
        assert m.dead_stores() == [1]

    def test_intervening_load_keeps_store_alive(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.st(r(2), r(1), 0)
        b.ld(r(4), r(1), 0)
        b.st(r(3), r(1), 0)
        b.halt()
        m = analyze_memdep(b.build())
        assert m.dead_stores() == []

    def test_partial_overlap(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.vst(v(1), r(1), 0)     # pc 1: [0x40, 0x60)
        b.ld(r(2), r(1), 28)     # pc 2: [0x5c, 0x64) — straddles the end
        b.halt()
        m = analyze_memdep(b.build())
        assert m.partial_overlaps() == [(1, 2)]

    def test_contained_access_is_not_partial(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.vst(v(1), r(1), 0)
        b.ld(r(2), r(1), 8)      # fully inside the vector footprint
        b.halt()
        m = analyze_memdep(b.build())
        assert m.partial_overlaps() == []


class TestRegionClassification:
    def test_forwardable_load_in_region(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.movi(r(2), 7)          # pc 1: window redefined at pc 4
        b.st(r(2), r(1), 0)      # pc 2
        b.ld(r(3), r(1), 0)      # pc 3: forwardable from pc 2
        b.movi(r(2), 9)          # pc 4: redefiner closes the window
        b.halt()
        program = b.build()
        m = analyze_memdep(program)
        infos = m.classify_regions(analyze_regions(program))
        fwd = {pc for info in infos for pc in info.forwardable}
        assert 3 in fwd

    def test_disjoint_accesses_safe_to_reorder(self):
        b = ProgramBuilder("t")
        b.movi(r(1), 0x40)
        b.movi(r(2), 7)
        b.st(r(2), r(1), 0)      # pc 2
        b.ld(r(3), r(1), 16)     # pc 3: provably disjoint
        b.movi(r(2), 9)
        b.halt()
        program = b.build()
        m = analyze_memdep(program)
        infos = m.classify_regions(analyze_regions(program))
        safe = {pc for info in infos for pc in info.safe_reorder}
        assert {2, 3} <= safe


class TestDeterminism:
    """The fixpoint is order-independent: the loop-head abstraction is a
    monotone function, not a history-dependent widening, so chaotic
    iteration reaches the same least fixpoint from any worklist order."""

    KERNELS = ("505.mcf_r", "548.exchange2_r", "503.bwaves_r",
               "531.deepsjeng_r")

    @pytest.mark.parametrize("name", KERNELS)
    def test_shuffled_worklist_same_result(self, name):
        program = builder_for(name)(4)
        cfg = build_cfg(program)
        baseline = analyze_memdep(program)
        base_verdicts = self._verdicts(baseline)
        for seed in range(3):
            order = list(range(len(cfg.blocks)))
            random.Random(seed).shuffle(order)
            shuffled = analyze_memdep(program, worklist_order=order)
            assert self._verdicts(shuffled) == base_verdicts
            assert shuffled.alias_counts() == baseline.alias_counts()
            assert shuffled.dead_stores() == baseline.dead_stores()
            assert shuffled.undefined_loads() == baseline.undefined_loads()

    @staticmethod
    def _verdicts(m):
        return {(a.pc, b.pc): m.alias(a, b)
                for i, a in enumerate(m.accesses)
                for b in m.accesses[i + 1:]}

    def test_multi_back_edge_loop(self):
        """Two retreating edges into one head (continue + loop bottom):
        the head still converges to one fixpoint from any order."""
        b = ProgramBuilder("t")
        b.movi(r(1), 0)
        b.movi(r(5), 256)
        b.label("loop")
        b.st(r(9), r(1), 0)
        b.lea(r(1), r(1), 16)
        b.cmp(r(1), r(5))
        b.beq("loop")            # back edge 1
        b.ld(r(2), r(1), 8)
        b.cmp(r(2), r(9))
        b.bne("loop")            # back edge 2
        b.halt()
        program = b.build()
        cfg = build_cfg(program)
        baseline = self._verdicts(analyze_memdep(program))
        for seed in range(6):
            order = list(range(len(cfg.blocks)))
            random.Random(seed).shuffle(order)
            assert self._verdicts(
                analyze_memdep(program, worklist_order=order)) == baseline


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as hs  # noqa: E402

_REGS = [r(i) for i in range(1, 7)]


@hs.composite
def straight_line_programs(draw):
    """Random straight-line programs mixing address arithmetic with
    loads and stores (no branches: every pc executes at most once)."""
    b = ProgramBuilder("prop")
    reg = hs.sampled_from(_REGS)
    n = draw(hs.integers(min_value=2, max_value=14))
    for _ in range(n):
        op = draw(hs.sampled_from(("movi", "lea", "add", "ld", "st")))
        if op == "movi":
            b.movi(draw(reg), draw(hs.integers(0, 128)))
        elif op == "lea":
            b.lea(draw(reg), draw(reg), draw(hs.integers(-32, 64)))
        elif op == "add":
            b.add(draw(reg), draw(reg), draw(reg))
        elif op == "ld":
            b.ld(draw(reg), draw(reg), draw(hs.integers(0, 64)))
        else:
            b.st(draw(reg), draw(reg), draw(hs.integers(0, 64)))
    b.halt()
    return b.build()


@given(program=straight_line_programs())
@settings(max_examples=120, deadline=None)
def test_must_alias_soundness_on_straight_line(program):
    """Dynamically observed overlapping load/store pairs are never
    classified ``no`` — the NO verdict claims a proof of disjointness,
    and on straight-line code there is no instance ambiguity to hide
    behind."""
    trace = Emulator(program).run(max_instructions=64)
    mem = [(e.pc, e.mem_addr) for e in trace.entries
           if e.mem_addr is not None]
    m = analyze_memdep(program)
    mask = (1 << 64) - 1
    for i, (pc_a, addr_a) in enumerate(mem):
        for pc_b, addr_b in mem[i + 1:]:
            a, b = m.access_at(pc_a), m.access_at(pc_b)
            if a.kind == "load" and b.kind == "load":
                continue
            overlap = ((addr_b - addr_a) & mask) < a.width \
                or ((addr_a - addr_b) & mask) < b.width
            if overlap:
                assert m.alias(a, b) != NO, (
                    f"pcs {pc_a}/{pc_b} touched {addr_a:#x}/{addr_b:#x} "
                    f"but were classified no-alias")
            if addr_a == addr_b:
                assert m.alias(a, b) in (MUST, MAY)
