"""Sweep observability: per-cell progress lines and end-of-sweep summary.

The scheduler and sweep layers drive one :class:`SweepProgress` per
sweep.  With a stream attached (the CLI passes stderr) it narrates cache
hits, completions, retries, and failures as they happen; either way it
accumulates the numbers for :meth:`summary`.
"""

from __future__ import annotations

import os
import time
from typing import IO, List, Optional, Tuple

PROGRESS_ENV = "REPRO_PROGRESS"


def env_verbose() -> bool:
    return os.environ.get(PROGRESS_ENV, "").lower() in ("1", "true", "yes", "on")


class SweepProgress:
    """Counters + optional live narration for one sweep."""

    def __init__(self, stream: Optional[IO[str]] = None, verbose: bool = False):
        self.stream = stream
        self.verbose = verbose or env_verbose()
        self.total = 0
        self.hits = 0
        self.completed = 0
        self.failed = 0
        self.retries = 0
        self.cell_times: List[Tuple[str, float]] = []
        self._started_at: Optional[float] = None

    # -- events ------------------------------------------------------------------
    def start(self, total: int) -> None:
        self.total += total
        if self._started_at is None:
            self._started_at = time.monotonic()

    def hit(self, spec) -> None:
        self.hits += 1
        self._line(f"[cache {self._count()}] {spec.describe()}")

    def done(self, spec, elapsed: float) -> None:
        self.completed += 1
        self.cell_times.append((spec.describe(), elapsed))
        self._line(f"[done  {self._count()}] {spec.describe()} {elapsed:.2f}s")

    def retry(self, spec, reason: str) -> None:
        self.retries += 1
        self._line(f"[retry       ] {spec.describe()}: {reason}")

    def fail(self, spec, error: str) -> None:
        self.failed += 1
        self._line(f"[FAIL  {self._count()}] {spec.describe()}: {error}")

    # -- reporting ---------------------------------------------------------------
    @property
    def wall_time(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    @property
    def cpu_time(self) -> float:
        """Summed per-cell wall time (= CPU time spent simulating)."""
        return sum(elapsed for _name, elapsed in self.cell_times)

    def summary(self) -> str:
        parts = [
            f"{self.total} cells: {self.completed} simulated, "
            f"{self.hits} cache hits, {self.failed} failed"
        ]
        if self.retries:
            parts.append(f"{self.retries} retries")
        parts.append(f"wall {self.wall_time:.1f}s")
        if self.cell_times:
            slowest_name, slowest = max(self.cell_times, key=lambda item: item[1])
            mean = self.cpu_time / len(self.cell_times)
            parts.append(f"sim {self.cpu_time:.1f}s "
                         f"(mean {mean:.2f}s, slowest {slowest_name} {slowest:.2f}s)")
        return "sweep: " + ", ".join(parts)

    def emit_summary(self) -> None:
        if self.stream is not None:
            print(self.summary(), file=self.stream, flush=True)

    # -- plumbing ----------------------------------------------------------------
    def _count(self) -> str:
        return f"{self.hits + self.completed + self.failed}/{self.total}"

    def _line(self, text: str) -> None:
        if self.stream is not None and self.verbose:
            print(text, file=self.stream, flush=True)
