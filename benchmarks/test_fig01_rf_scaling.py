"""Figure 1: baseline IPC vs register file size (normalized to infinite)."""

from repro.experiments import fig01

from conftest import emit


def test_fig01_rf_scaling(benchmark, int_suite, instructions):
    result = benchmark.pedantic(
        fig01.run,
        kwargs=dict(benchmarks=int_suite, instructions=instructions,
                    sizes=(64, 96, 128, 160, 192, 224, 256, 280)),
        rounds=1, iterations=1,
    )
    emit(result)
    low, high = result.average[64], result.average[280]
    # Shape: IPC rises with registers and 280 is near-ideal (paper: 37.7%
    # of ideal at 64, within 5% at 280).
    assert low < high
    assert high > 0.90
