"""Rename-substrate error types.

These are *invariant violations*: a correct release scheme never raises
them.  The test suite provokes them deliberately (double frees, allocation
from an empty list) to prove the checking is live.
"""

from __future__ import annotations


class RenameError(RuntimeError):
    """Base class for rename-substrate invariant violations."""


class DoubleFreeError(RenameError):
    """A physical register was freed while already on the free list."""


class FreeListEmptyError(RenameError):
    """Allocation was attempted from an empty free list.

    The rename stage must stall before this happens (paper: stall when
    fewer than MAX_DEST x WIDTH entries remain), so reaching it indicates
    a scheme bug or a mis-sized reserve.
    """


class UseAfterFreeError(RenameError):
    """An instruction read a physical register after it was freed.

    Raised by the oracle release-safety monitor, never by the hardware
    model itself (real hardware would silently read garbage).
    """
