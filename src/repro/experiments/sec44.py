"""Section 4.4: hardware overheads of ATR.

Reproduces the synthesis study of the bulk no-early-release logic (the
paper reports 42 logic levels / 2,960 gates / 2.6 GHz un-pipelined from
Yosys at an assumed 4.5 ps-FO4 5nm node with 100% wire margin) and the
consumer-counter storage overhead (3/64 = 4.6% scalar, 3/256 = 1.1%
vector).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hwmodel import BulkLogicSpec, TimingReport, consumer_counter_overhead, timing_report
from . import expectations
from .report import compare_line


@dataclass
class Sec44Result:
    timing: TimingReport
    counter_overhead_int: float
    counter_overhead_vec: float

    def render(self) -> str:
        t = self.timing
        lines = [
            "Section 4.4: ATR hardware overheads",
            f"  bulk-NER circuit: {t.gates} gates, {t.logic_levels} logic levels, "
            f"{t.fo4_delay:.1f} FO4",
            f"  un-pipelined delay {t.delay_ps:.0f} ps -> "
            f"{t.max_frequency_ghz:.2f} GHz; with 2 extra pipeline stages: "
            f"{t.frequency_with_pipelining(3):.1f} GHz",
            "",
            compare_line("gate count", t.gates, expectations.SEC44_GATES, as_pct=False),
            compare_line("un-pipelined frequency (GHz)", t.max_frequency_ghz,
                         expectations.SEC44_FREQ_GHZ, as_pct=False),
            compare_line("counter overhead (scalar)", self.counter_overhead_int,
                         expectations.SEC44_COUNTER_OVERHEAD_INT),
            compare_line("counter overhead (vector)", self.counter_overhead_vec,
                         expectations.SEC44_COUNTER_OVERHEAD_VEC),
            "",
            "note: the paper's 42 levels are Yosys standard-cell levels "
            "(2-input NAND decomposition); our netlist counts complex-gate "
            "levels, hence the smaller depth at a comparable gate count.",
        ]
        return "\n".join(lines)


def run(spec: BulkLogicSpec = BulkLogicSpec(),
        jobs: Optional[int] = None) -> Sec44Result:
    # *jobs* accepted for CLI uniformity; the synthesis study has no
    # sweepable cells.
    return Sec44Result(
        timing=timing_report(spec),
        counter_overhead_int=consumer_counter_overhead(64, 3),
        counter_overhead_vec=consumer_counter_overhead(256, 3),
    )
