"""SimPoint-style phase analysis (paper section 5.1 methodology).

The paper simulates representative 10M-instruction SimPoints aggregated by
weight.  This module reimplements the SimPoint pipeline at our scale:

1. slice a trace into fixed-size intervals,
2. build a basic-block vector (BBV) per interval — execution counts per
   basic-block leader PC, L1-normalized,
3. cluster BBVs with k-means (random-restart, numpy),
4. pick the interval closest to each centroid as the representative and
   weight it by cluster population.

``weighted_mean`` then aggregates per-simpoint metrics (e.g. IPC) exactly
the way the paper aggregates its simpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..frontend import Trace


@dataclass
class SimPoint:
    """One representative interval."""

    interval_index: int
    start: int  # instruction offset into the trace
    length: int
    weight: float
    cluster: int


def basic_block_vectors(trace: Trace, interval: int = 2_000) -> Tuple[np.ndarray, List[int]]:
    """BBV matrix (intervals x blocks) and the block-leader PCs.

    A basic-block leader is the target of any control transfer or the
    entry PC; block execution is attributed to its leader.
    """
    leaders = {0}
    for entry in trace.entries:
        instr = entry.instr
        if instr.is_control:
            leaders.add(entry.next_pc)
            leaders.add(entry.pc + 1)
    leader_list = sorted(leaders)
    leader_index = {pc: i for i, pc in enumerate(leader_list)}

    rows: List[np.ndarray] = []
    current = np.zeros(len(leader_list), dtype=np.float64)
    current_leader = 0
    count_in_interval = 0
    for entry in trace.entries:
        if entry.pc in leader_index:
            current_leader = entry.pc
        current[leader_index[current_leader]] += 1
        count_in_interval += 1
        if count_in_interval >= interval:
            total = current.sum()
            rows.append(current / total if total else current)
            current = np.zeros(len(leader_list), dtype=np.float64)
            count_in_interval = 0
    if count_in_interval > interval // 2:
        total = current.sum()
        rows.append(current / total if total else current)
    if not rows:
        total = current.sum()
        rows.append(current / total if total else current)
    return np.vstack(rows), leader_list


def kmeans(data: np.ndarray, k: int, iterations: int = 50, seed: int = 0) -> np.ndarray:
    """Plain k-means; returns the cluster assignment per row."""
    rng = np.random.default_rng(seed)
    n = data.shape[0]
    k = min(k, n)
    centroids = data[rng.choice(n, size=k, replace=False)]
    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        distances = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assignment = distances.argmin(axis=1)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for c in range(k):
            members = data[assignment == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
    return assignment


def pick_simpoints(trace: Trace, interval: int = 2_000, max_k: int = 6,
                   seed: int = 0) -> List[SimPoint]:
    """The full SimPoint pipeline for *trace*."""
    bbvs, _ = basic_block_vectors(trace, interval=interval)
    n = bbvs.shape[0]
    k = max(1, min(max_k, n))
    assignment = kmeans(bbvs, k, seed=seed)
    simpoints: List[SimPoint] = []
    for cluster in sorted(set(assignment.tolist())):
        member_idx = np.flatnonzero(assignment == cluster)
        centroid = bbvs[member_idx].mean(axis=0)
        distances = ((bbvs[member_idx] - centroid) ** 2).sum(axis=1)
        representative = int(member_idx[distances.argmin()])
        simpoints.append(
            SimPoint(
                interval_index=representative,
                start=representative * interval,
                length=min(interval, len(trace.entries) - representative * interval),
                weight=len(member_idx) / n,
                cluster=int(cluster),
            )
        )
    return simpoints


def slice_trace(trace: Trace, simpoint: SimPoint) -> Trace:
    """The sub-trace covered by *simpoint* (entries re-sequenced)."""
    entries = trace.entries[simpoint.start: simpoint.start + simpoint.length]
    resequenced = [
        type(entry)(
            seq=i, pc=entry.pc, instr=entry.instr, next_pc=entry.next_pc,
            taken=entry.taken, mem_addr=entry.mem_addr,
        )
        for i, entry in enumerate(entries)
    ]
    return Trace(
        program=trace.program,
        entries=resequenced,
        name=f"{trace.name}@{simpoint.start}",
    )


def weighted_mean(values: Sequence[float], simpoints: Sequence[SimPoint]) -> float:
    """Weight-aggregate a per-simpoint metric, as the paper aggregates
    per-simpoint IPC."""
    if len(values) != len(simpoints):
        raise ValueError("one value per simpoint required")
    total_weight = sum(sp.weight for sp in simpoints)
    if total_weight == 0:
        return 0.0
    return sum(v * sp.weight for v, sp in zip(values, simpoints)) / total_weight
