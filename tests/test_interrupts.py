"""Interrupt handling (paper section 4.1): drain vs. counter-gated flush.

The critical property of the flush policy: re-executing the squashed
window after service must still produce the golden architectural state,
even with ATR's early releases in flight — that is exactly what the
open-atomic-region counter protects.
"""

import dataclasses

import pytest

from repro.frontend import final_state, run_program
from repro.isa import assemble
from repro.pipeline import Core, InterruptController, fast_test_config
from repro.rename.schemes import SCHEME_NAMES

from tests.conftest import ATOMIC_SRC, BRANCHY_SRC


def _run_with_interrupts(src, scheme, policy, at_cycles, rf_size=30,
                         predictor="tage"):
    program = assemble(src, name="irq")
    golden = final_state(program)
    trace = run_program(program)
    config = fast_test_config(rf_size=rf_size, scheme=scheme, predictor=predictor)
    core = Core(config, trace)
    controller = InterruptController(core, policy=policy, service_cycles=40)
    for cycle in at_cycles:
        controller.schedule(cycle)
    stats = core.run()
    state = core.architectural_state()
    assert state.int_regs == golden.int_regs
    assert state.flags == golden.flags
    core.check_conservation()
    return core, controller, stats


@pytest.mark.parametrize("scheme", SCHEME_NAMES)
@pytest.mark.parametrize("policy", ["drain", "flush"])
def test_interrupts_preserve_golden_state(scheme, policy):
    _core, controller, _stats = _run_with_interrupts(
        ATOMIC_SRC, scheme, policy, at_cycles=[40, 120]
    )
    assert controller.stats.serviced == 2


@pytest.mark.parametrize("scheme", ["atr", "combined"])
def test_flush_policy_under_mispredictions(scheme):
    _core, controller, stats = _run_with_interrupts(
        BRANCHY_SRC, scheme, "flush", at_cycles=[60, 200, 400],
        predictor="always_taken",
    )
    assert controller.stats.serviced == 3


def test_interrupt_costs_cycles():
    _, _, without = _run_with_interrupts(ATOMIC_SRC, "atr", "drain", [])
    _, _, with_irq = _run_with_interrupts(ATOMIC_SRC, "atr", "drain", [50])
    assert with_irq.cycles > without.cycles


def test_flush_policy_squashes_window():
    core, controller, _ = _run_with_interrupts(
        ATOMIC_SRC, "atr", "flush", at_cycles=[60]
    )
    assert controller.stats.flushed_instructions >= 0
    assert controller.stats.serviced == 1


def test_drain_policy_never_flushes():
    _core, controller, _ = _run_with_interrupts(
        ATOMIC_SRC, "combined", "drain", at_cycles=[60]
    )
    assert controller.stats.flushed_instructions == 0


def test_open_region_counter_returns_to_zero():
    core, controller, _ = _run_with_interrupts(
        ATOMIC_SRC, "atr", "flush", at_cycles=[]
    )
    # After full commit, every opened region was closed by its redefiner
    # or remains architecturally live; the counter equals the number of
    # still-open (never redefined) eligible registers.
    assert controller.open_region_counter == len(controller._counted)
    assert controller.open_region_counter >= 0


def test_unknown_policy_rejected(loop_trace):
    core = Core(fast_test_config(), loop_trace)
    with pytest.raises(ValueError):
        InterruptController(core, policy="vulcan")


def test_interrupt_wait_accounted():
    _, controller, _ = _run_with_interrupts(ATOMIC_SRC, "combined", "flush", [80])
    assert controller.stats.wait_cycles >= 0
    assert controller.stats.service_cycles_total == 40
